"""The unified ``execution=`` plan API.

Covers the :class:`~repro.congest.execution.ExecutionPlan` object itself,
the ``Network(execution=...)`` keyword, the golden-pinned legacy shims
(``engine=``/``shards=``/``REPRO_*``), ``Network.explain_execution()``'s
reason chains for every tier, plan inheritance into subnetworks,
kernel-fallback golden equivalence under sharding, and the zero-copy
halo-view mechanics the sharded-kernel tier is built on.
"""

import dataclasses
import os
import struct
import types
from array import array
from multiprocessing import shared_memory

import pytest

import repro
from repro.congest import (
    CONGEST,
    LOCAL,
    ExecutionPlan,
    LEGACY_ENGINE_ENV,
    NO_KERNELS_ENV,
    Network,
    SHARDS_ENV,
    TIERS,
    resolve_shards,
)
from repro.congest import kernels as kernels_mod
from repro.congest import sharding
from repro.dist.israeli_itai import israeli_itai
from repro.dist.luby_mis import LubyMISNode, luby_mis
from repro.graphs import gnp, path_graph


def _metrics_tuple(m):
    return (m.rounds, m.pipelined_extra_rounds, m.messages, m.total_bits,
            m.max_message_bits, tuple(sorted(m.protocol_rounds.items())))


def _run_israeli(seed, **net_kwargs):
    g = gnp(44, 0.12, rng=seed)
    net = Network(g, policy=CONGEST, seed=seed, **net_kwargs)
    try:
        matching = israeli_itai(net)
        return set(matching.edges()), _metrics_tuple(net.metrics)
    finally:
        net.close()


# --- the plan object ------------------------------------------------------

class TestExecutionPlan:
    def test_defaults(self):
        plan = ExecutionPlan()
        assert plan.tier == "auto"
        assert plan.shards is None
        assert plan.kernels is True
        assert plan.env_overrides is True

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionPlan().tier = "node"

    def test_tier_vocabulary(self):
        assert TIERS == ("compiled", "sharded-kernel", "kernel", "sharded",
                         "node", "legacy")
        for tier in TIERS:
            assert ExecutionPlan(tier=tier).tier == tier
        with pytest.raises(ValueError):
            ExecutionPlan(tier="warp")

    def test_all_tiers_cover_every_model(self):
        # plans validate against the union vocabulary; model-specific
        # rungs (mpc_kernel) are plan-constructible but rejected by
        # models that do not own them
        from repro.models import ALL_TIERS, MPC_TIERS

        assert set(TIERS) | set(MPC_TIERS) == set(ALL_TIERS)
        assert ExecutionPlan(tier="mpc_kernel").tier == "mpc_kernel"

    def test_contradictory_plans_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPlan(shards=-1)
        for tier in ("kernel", "mpc_kernel", "node", "legacy"):
            with pytest.raises(ValueError):
                ExecutionPlan(tier=tier, shards=2)
        for tier in ("kernel", "sharded-kernel", "mpc_kernel"):
            with pytest.raises(ValueError):
                ExecutionPlan(tier=tier, kernels=False)

    @pytest.mark.parametrize("engine,shards,expect", [
        ("csr", None, ExecutionPlan()),
        ("csr", 2, ExecutionPlan(shards=2)),
        ("csr", 0, ExecutionPlan(shards=0)),
        ("sharded", None, ExecutionPlan(tier="sharded-kernel")),
        ("sharded", 3, ExecutionPlan(tier="sharded-kernel", shards=3)),
        ("node", None, ExecutionPlan(tier="node")),
        ("legacy", None, ExecutionPlan(tier="legacy")),
    ])
    def test_from_legacy_mapping(self, engine, shards, expect):
        assert ExecutionPlan.from_legacy(engine, shards) == expect

    def test_from_legacy_rejects_bad_combos(self):
        with pytest.raises(ValueError):
            ExecutionPlan.from_legacy("turbo", None)
        for engine in ("node", "legacy"):
            with pytest.raises(ValueError):
                ExecutionPlan.from_legacy(engine, 2)

    @pytest.mark.parametrize("tier,engine", [
        ("auto", "csr"), ("sharded-kernel", "sharded"),
        ("kernel", "csr"), ("sharded", "sharded"),
        ("node", "node"), ("legacy", "legacy"),
    ])
    def test_engine_name_round_trip(self, tier, engine):
        shards = 2 if engine == "sharded" else None
        assert ExecutionPlan(tier=tier, shards=shards).engine_name() == engine


# --- the Network keyword --------------------------------------------------

class TestNetworkKeyword:
    def _net(self, **kwargs):
        return Network(gnp(30, 0.2, rng=0), policy=LOCAL, seed=0, **kwargs)

    def test_tier_name_shorthand(self):
        net = self._net(execution="node")
        assert net.execution_plan == ExecutionPlan(tier="node")
        assert net.engine == "node"

    def test_full_plan(self):
        plan = ExecutionPlan(tier="sharded-kernel", shards=2)
        net = self._net(execution=plan)
        assert net.execution_plan is plan
        assert net.engine == "sharded"
        assert net.requested_shards == 2

    def test_mutually_exclusive_with_legacy_kwargs(self):
        with pytest.raises(ValueError):
            self._net(execution="node", engine="csr")
        with pytest.raises(ValueError):
            self._net(execution="node", shards=2)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            self._net(execution=42)
        with pytest.raises(ValueError):
            self._net(execution="warp")

    def test_legacy_kwargs_normalize_into_a_plan(self):
        net = self._net(engine="sharded", shards=3)
        assert net.execution_plan == ExecutionPlan(tier="sharded-kernel",
                                                   shards=3)
        assert net.engine == "sharded"
        assert net.requested_shards == 3

    def test_legacy_env_default(self, monkeypatch):
        monkeypatch.setenv(LEGACY_ENGINE_ENV, "1")
        net = self._net()
        assert net.execution_plan == ExecutionPlan(tier="legacy")
        assert net.engine == "legacy"

    def test_run_facade_accepts_execution(self):
        from repro.graphs import random_bipartite

        g = random_bipartite(8, 8, 0.4, rng=0)
        result = repro.run("mcm", g, eps=0.25, seed=0, execution="kernel")
        assert result.size >= 1


# --- explain_execution ----------------------------------------------------

class TestExplainExecution:
    def _net(self, **kwargs):
        return Network(gnp(30, 0.2, rng=0), policy=LOCAL, seed=0, **kwargs)

    def _explain(self, factory=LubyMISNode, **kwargs):
        return self._net(**kwargs).explain_execution(factory)

    def test_never_resolves_to_auto(self):
        for kwargs in ({}, {"execution": "node"}, {"execution": "legacy"},
                       {"execution": ExecutionPlan(shards=2)}):
            assert self._explain(**kwargs).tier in TIERS

    def test_pinned_node(self):
        decision = self._explain(execution="node")
        assert decision.tier == "node"
        assert any("pinned by the plan" in r for r in decision.reasons)

    def test_pinned_legacy(self):
        decision = self._explain(execution="legacy")
        assert decision.tier == "legacy"
        assert any("pinned by the plan" in r for r in decision.reasons)

    def test_kernel_tier(self):
        decision = self._explain(execution="kernel")
        assert decision.tier == "kernel"
        assert decision.shards is None
        assert any("LubyMISKernel" in r and "selected" in r
                   for r in decision.reasons)

    def test_sharded_kernel_tier(self):
        decision = self._explain(
            execution=ExecutionPlan(tier="sharded-kernel", shards=2))
        assert decision.tier == "sharded-kernel"
        assert decision.shards == 2
        assert any("2 shard" in r for r in decision.reasons)

    def test_sharded_per_node_tier(self):
        decision = self._explain(
            execution=ExecutionPlan(tier="sharded", shards=2))
        assert decision.tier == "sharded"
        assert decision.shards == 2
        assert any("per-node dispatch" in r for r in decision.reasons)

    def test_auto_on_a_small_host_graph(self):
        # 30 nodes is below the auto-shard threshold: the sharded rungs
        # are skipped with a reason and the in-process kernel wins
        decision = self._explain()
        assert decision.tier == "kernel"
        assert any(r.startswith("tier 'sharded-kernel': skipped")
                   for r in decision.reasons)

    def test_no_factory_reason(self):
        decision = self._net().explain_execution()
        assert decision.tier == "node"
        assert any("no node factory" in r for r in decision.reasons)

    def test_unregistered_factory_reason(self):
        def no_kernel_factory(ctx):  # pragma: no cover - never run
            raise AssertionError

        decision = self._net().explain_execution(no_kernel_factory)
        assert decision.tier == "node"
        assert any("no RoundKernel is registered" in r
                   for r in decision.reasons)

    def test_shards_zero_kill_switch_reason(self):
        decision = self._explain(execution=ExecutionPlan(shards=0))
        assert decision.tier == "kernel"
        assert any("kill switch" in r or "no shard count resolved" in r
                   for r in decision.reasons)

    def test_plan_without_kernels(self):
        decision = self._explain(execution=ExecutionPlan(kernels=False))
        assert decision.tier == "node"
        assert any("kernels=False" in r for r in decision.reasons)

    def test_env_kill_switch_honored_by_default(self, monkeypatch):
        monkeypatch.setenv(NO_KERNELS_ENV, "1")
        decision = self._explain()
        assert decision.tier == "node"
        assert any(NO_KERNELS_ENV in r for r in decision.reasons)

    def test_env_overrides_false_ignores_the_env(self, monkeypatch):
        monkeypatch.setenv(NO_KERNELS_ENV, "1")
        decision = self._explain(
            execution=ExecutionPlan(env_overrides=False))
        assert decision.tier == "kernel"

    def test_numpy_probe_reported(self):
        # satellite of the compiled tier: the availability probe that
        # decides vectorized-vs-fallback is named in every chain
        decision = self._explain()
        assert any(r.startswith("numpy probe: available — eligible "
                                "kernels run their vectorized branch")
                   for r in decision.reasons)

    def test_numpy_probe_reports_the_fallback(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_np", None)
        decision = self._explain()
        assert any(r.startswith("numpy probe: unavailable — eligible "
                                "kernels run the pure-python fallback")
                   for r in decision.reasons)

    def test_compiled_skipped_without_numba(self):
        from repro.congest import compiled as compiled_mod
        if compiled_mod._numba is not None:  # pragma: no cover
            pytest.skip("numba installed on this host")
        decision = self._explain()
        assert decision.tier == "kernel"
        assert any(r == "tier 'compiled': skipped — numba is not "
                        "importable (install the repro[compiled] extra)"
                   for r in decision.reasons)

    def test_compiled_selected_when_numba_is_live(self, monkeypatch):
        from repro.congest import compiled as compiled_mod
        monkeypatch.setattr(compiled_mod, "_numba", object())
        decision = self._explain()
        assert decision.tier == "compiled"
        assert any(r == "tier 'compiled': selected — LubyMISKernel runs "
                        "numba-jitted over packed state"
                   for r in decision.reasons)

    def test_compiled_env_kill_switch(self, monkeypatch):
        from repro.congest import NO_COMPILED_ENV
        from repro.congest import compiled as compiled_mod
        monkeypatch.setattr(compiled_mod, "_numba", object())
        monkeypatch.setenv(NO_COMPILED_ENV, "1")
        decision = self._explain()
        assert decision.tier == "kernel"
        assert any(NO_COMPILED_ENV in r and "compiled" in r
                   for r in decision.reasons)

    def test_compiled_requires_the_audit_flag(self, monkeypatch):
        from repro.congest import compiled as compiled_mod
        from repro.congest.kernels import kernel_for
        monkeypatch.setattr(compiled_mod, "_numba", object())
        monkeypatch.setattr(kernel_for(LubyMISNode),
                            "compiled_audited", False)
        decision = self._explain()
        assert decision.tier == "kernel"
        assert any("LubyMISKernel is not compiled-audited" in r
                   for r in decision.reasons)

    def test_compiled_respects_additive_rng_pin(self, monkeypatch):
        from repro.congest import compiled as compiled_mod
        monkeypatch.setattr(compiled_mod, "_numba", object())
        monkeypatch.setenv("REPRO_ADDITIVE_NODE_RNG", "1")
        decision = self._explain()
        assert decision.tier == "kernel"
        assert any("REPRO_ADDITIVE_NODE_RNG pins the legacy additive "
                   "rng streams" in r for r in decision.reasons)

    def test_explain_formats_the_chain(self):
        decision = self._explain(
            execution=ExecutionPlan(tier="sharded-kernel", shards=2))
        text = decision.explain()
        assert text.startswith("resolved tier: sharded-kernel (2 shard(s))")
        assert "\n  - " in text

    def test_explain_is_dry(self):
        # no worker pool may be built by an explain call
        net = self._net(execution=ExecutionPlan(tier="sharded-kernel",
                                                shards=2))
        net.explain_execution(LubyMISNode)
        assert net._sharded_execs == {}


# --- the MPC ladder's reason chains (pinned) ------------------------------

class TestMPCLadderExplain:
    """explain_execution() on a cluster walks the MPC ladder, and the
    chain names only tiers the MPC model declares — pinned exactly."""

    def _cluster(self, **kwargs):
        from repro.mpc import MPCCluster

        return MPCCluster(path_graph(280), alpha=0.7, **kwargs)

    def test_node_pin_chain_exact(self):
        decision = self._cluster(execution="node").explain_execution()
        cluster = self._cluster(execution="node")
        assert decision.tier == "node"
        assert decision.reasons == (
            "model 'mpc': resolving plan tier 'node' on the MPC "
            "execution ladder (mpc_kernel > node)",
            "tier 'node': selected — supersteps execute in-process on "
            "simulated machines (per-machine memory guard "
            f"S = {cluster.machine_words} words, "
            f"{cluster.num_machines} machine(s))",
        )

    def test_auto_chain_exact(self):
        from repro.mpc.kernel import _np

        decision = self._cluster().explain_execution()
        head = ("model 'mpc': resolving plan tier 'auto' on the MPC "
                "execution ladder (mpc_kernel > node)")
        if _np is not None:
            assert decision.tier == "mpc_kernel"
            assert decision.reasons == (
                head,
                "tier 'mpc_kernel': selected — supersteps run as "
                "whole-cluster array passes over packed machine ledgers "
                "(numpy), budget-exact against the node tier",
            )
        else:
            assert decision.tier == "node"
            assert decision.reasons[0] == head
            assert "numpy is not importable" in decision.reasons[1]
            assert decision.reasons[1].startswith(
                "tier 'mpc_kernel': skipped — ")

    def test_kernels_false_chain_exact(self):
        decision = self._cluster(
            execution=ExecutionPlan(kernels=False)).explain_execution()
        cluster = self._cluster(execution="node")
        assert decision.tier == "node"
        assert decision.reasons == (
            "model 'mpc': resolving plan tier 'auto' on the MPC "
            "execution ladder (mpc_kernel > node)",
            "tier 'mpc_kernel': skipped — the plan excludes kernels "
            "(kernels=False)",
            "tier 'node': selected — supersteps execute in-process on "
            "simulated machines (per-machine memory guard "
            f"S = {cluster.machine_words} words, "
            f"{cluster.num_machines} machine(s))",
        )

    def test_congest_network_rejects_the_mpc_rung(self):
        from repro.models import ModelExecutionError

        with pytest.raises(ModelExecutionError, match="model 'congest'"):
            Network(path_graph(6), execution="mpc_kernel")


# --- legacy shims resolve identically (golden) ----------------------------

SHIM_COMBOS = [
    pytest.param({"engine": "csr"}, {"execution": ExecutionPlan()},
                 id="csr"),
    pytest.param({"engine": "csr", "shards": 2},
                 {"execution": ExecutionPlan(shards=2)}, id="csr-shards2"),
    pytest.param({"engine": "csr", "shards": 0},
                 {"execution": ExecutionPlan(shards=0)}, id="csr-shards0"),
    pytest.param({"engine": "sharded"},
                 {"execution": ExecutionPlan(tier="sharded-kernel")},
                 id="sharded"),
    pytest.param({"engine": "sharded", "shards": 3},
                 {"execution": ExecutionPlan(tier="sharded-kernel",
                                             shards=3)}, id="sharded-3"),
    pytest.param({"engine": "node"}, {"execution": "node"}, id="node"),
    pytest.param({"engine": "legacy"}, {"execution": "legacy"},
                 id="legacy"),
]


class TestShimGoldens:
    @pytest.mark.parametrize("legacy,plan", SHIM_COMBOS)
    def test_resolution_identical(self, legacy, plan):
        g = gnp(30, 0.2, rng=0)
        old = Network(g, policy=LOCAL, seed=0, **legacy)
        new = Network(g, policy=LOCAL, seed=0, **plan)
        d_old = old.explain_execution(LubyMISNode)
        d_new = new.explain_execution(LubyMISNode)
        assert (d_old.tier, d_old.shards) == (d_new.tier, d_new.shards)
        assert old.execution_plan == new.execution_plan
        assert old.engine == new.engine

    def test_env_shards_forces_both_paths(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "2")
        g = gnp(30, 0.2, rng=0)
        for kwargs in ({"engine": "csr"}, {"execution": ExecutionPlan()}):
            net = Network(g, policy=LOCAL, seed=0, **kwargs)
            assert resolve_shards(net) == 2
        monkeypatch.setenv(SHARDS_ENV, "0")
        net = Network(g, policy=LOCAL, seed=0,
                      execution=ExecutionPlan(tier="sharded-kernel",
                                              shards=4))
        assert resolve_shards(net) is None

    def test_env_overrides_false_shields_the_plan(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "0")
        net = Network(gnp(30, 0.2, rng=0), policy=LOCAL, seed=0,
                      execution=ExecutionPlan(tier="sharded-kernel",
                                              shards=4, env_overrides=False))
        assert resolve_shards(net) == 4

    def test_behavior_identical_under_sharding(self):
        golden = _run_israeli(7, engine="csr")
        assert _run_israeli(7, engine="sharded", shards=2) == golden
        assert _run_israeli(
            7, execution=ExecutionPlan(tier="sharded-kernel",
                                       shards=2)) == golden


# --- subnetworks inherit the plan -----------------------------------------

class TestSubnetworkPlan:
    def _parent(self, **kwargs):
        return Network(gnp(20, 0.2, rng=1), policy=LOCAL, seed=1, **kwargs)

    def test_child_inherits_the_full_plan(self):
        plan = ExecutionPlan(tier="sharded-kernel", shards=2)
        parent = self._parent(execution=plan)
        sub = parent.subnetwork(path_graph(4), label="probe")
        assert sub.network.execution_plan is plan
        assert sub.network.engine == "sharded"
        assert sub.network.requested_shards == 2

    def test_engine_override_still_works(self):
        parent = self._parent(execution="node")
        sub = parent.subnetwork(path_graph(4), label="probe", engine="csr")
        assert sub.network.execution_plan == ExecutionPlan()
        assert sub.network.engine == "csr"

    def test_execution_override(self):
        parent = self._parent()
        sub = parent.subnetwork(path_graph(4), label="probe",
                                execution="legacy")
        assert sub.network.execution_plan == ExecutionPlan(tier="legacy")

    def test_override_conflict_rejected(self):
        parent = self._parent()
        with pytest.raises(ValueError):
            parent.subnetwork(path_graph(4), label="probe",
                              engine="csr", execution="node")


# --- kernel fallbacks stay golden under sharding --------------------------

class TestFallbackGoldens:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_no_kernels_env_sharded_matches(self, shards, monkeypatch):
        golden = _run_israeli(3, engine="csr")
        monkeypatch.setenv(NO_KERNELS_ENV, "1")
        # same per-node semantics with and without kernels, sharded or not
        assert _run_israeli(3, engine="csr") == golden
        sharded = _run_israeli(3, engine="sharded", shards=shards)
        assert sharded == golden

    def test_no_kernels_resolves_to_per_node_sharding(self, monkeypatch):
        monkeypatch.setenv(NO_KERNELS_ENV, "1")
        net = Network(gnp(30, 0.2, rng=0), policy=LOCAL, seed=0,
                      execution=ExecutionPlan(shards=2))
        decision = net.explain_execution(LubyMISNode)
        assert decision.tier == "sharded"

    @pytest.mark.parametrize("shards", [1, 2])
    def test_numpy_free_sharded_matches(self, shards, monkeypatch):
        golden = _run_israeli(5, engine="csr")
        # workers are forked after the patch, so they inherit the pure
        # python array paths exactly like a host without numpy
        monkeypatch.setattr(kernels_mod, "_np", None)
        assert _run_israeli(5, engine="csr") == golden
        assert _run_israeli(5, engine="sharded", shards=shards) == golden


# --- zero-copy halo views -------------------------------------------------

def _publish_halo(base, worker, gen, k, dest, words, blob):
    """Write one halo block in the worker publish format (test fixture)."""
    header = 8 * (k + 1)
    seg = 8 + 8 * len(words) + 8 + len(blob)
    shm = shared_memory.SharedMemory(
        create=True, size=header + seg,
        name=sharding._halo_name(base, worker, gen))
    buf = shm.buf
    offsets = memoryview(buf)[:header].cast("q")
    pos = 0
    offsets[0] = 0
    for d in range(k):
        if d == dest:
            base_off = header + pos
            buf[base_off:base_off + 8] = struct.pack("q", len(words))
            raw = array("q", words).tobytes()
            buf[base_off + 8:base_off + 8 + len(raw)] = raw
            tail = base_off + 8 + len(raw)
            buf[tail:tail + 8] = struct.pack("q", len(blob))
            if blob:
                buf[tail + 8:tail + 8 + len(blob)] = blob
            pos += seg
        offsets[d + 1] = pos
    offsets.release()
    return shm


class TestZeroCopyHaloViews:
    def _reader(self, base, k, w, gen_of):
        """A minimal stand-in for the worker fields _load_incoming reads."""
        words = [0] * (sharding._CTRL_WORDS + k * sharding._S_COLS)
        for p, gen in gen_of.items():
            words[sharding._CTRL_WORDS + p * sharding._S_COLS
                  + sharding._S_HALO_GEN] = gen
        return types.SimpleNamespace(
            k=k, w=w, words=words, peer_halo=[None] * k,
            spec=types.SimpleNamespace(base=base))

    def _load(self, reader, views):
        ctx = types.SimpleNamespace(incoming=[])
        sharding._ShardWorker._load_incoming(reader, ctx, views)
        return ctx.incoming

    def _drop(self, reader, incoming, views):
        incoming.clear()
        sharding._ShardWorker._release_views(views)
        for cached in reader.peer_halo:
            if cached is not None:
                cached[1].close()

    def test_mutations_are_visible_through_the_view(self):
        np = kernels_mod._np
        if np is None:  # pragma: no cover - numpy-free host
            pytest.skip("numpy not available")
        base = f"zc{os.getpid()}a"
        shm = _publish_halo(base, 0, 5, k=2, dest=1,
                            words=[7, 8, 9], blob=b"xyz")
        reader = self._reader(base, k=2, w=1, gen_of={0: 5})
        views = []
        try:
            incoming = self._load(reader, views)
            [(peer, wordsv, blob)] = incoming
            assert peer == 0
            assert isinstance(wordsv, np.ndarray)
            assert not wordsv.flags.owndata  # a view, not a copy
            assert wordsv.tolist() == [7, 8, 9]
            assert bytes(blob) == b"xyz"
            # mutate the publisher's buffer: the view must see it with no
            # re-read — that is the zero-copy contract the kernel relies on
            header = 8 * 3
            shm.buf[header + 8:header + 16] = struct.pack("q", 42)
            assert wordsv[0] == 42
            del wordsv, blob
            self._drop(reader, incoming, views)
        finally:
            shm.close()
            shm.unlink()

    def test_fallback_views_are_zero_copy_too(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_np", None)
        base = f"zc{os.getpid()}b"
        shm = _publish_halo(base, 0, 1, k=2, dest=1, words=[11], blob=b"")
        reader = self._reader(base, k=2, w=1, gen_of={0: 1})
        views = []
        try:
            incoming = self._load(reader, views)
            [(peer, wordsv, blob)] = incoming
            assert list(wordsv) == [11]
            header = 8 * 3
            shm.buf[header + 8:header + 16] = struct.pack("q", 13)
            assert wordsv[0] == 13
            del wordsv, blob
            self._drop(reader, incoming, views)
        finally:
            shm.close()
            shm.unlink()

    def test_generation_bump_reattaches(self):
        base = f"zc{os.getpid()}c"
        old = _publish_halo(base, 0, 1, k=2, dest=1, words=[1], blob=b"")
        reader = self._reader(base, k=2, w=1, gen_of={0: 1})
        views = []
        try:
            incoming = self._load(reader, views)
            assert list(incoming[0][1]) == [1]
            self._drop(reader, incoming, views)
            gen0, cached0 = reader.peer_halo[0]
            assert gen0 == 1
            reader.peer_halo[0] = (gen0, cached0)

            # the publisher resizes: new generation, new block name
            new = _publish_halo(base, 0, 2, k=2, dest=1, words=[2, 3],
                                blob=b"")
            reader.words[sharding._CTRL_WORDS + sharding._S_HALO_GEN] = 2
            try:
                views = []
                incoming = self._load(reader, views)
                assert reader.peer_halo[0][0] == 2  # re-attached lazily
                assert list(incoming[0][1]) == [2, 3]
                self._drop(reader, incoming, views)
            finally:
                new.close()
                new.unlink()
        finally:
            old.close()
            old.unlink()
