"""Tests for the streaming matching service (repro.stream)."""

import json
import warnings

import pytest

import repro
from repro import run
from repro.congest.events import (
    ALL_KINDS,
    STRUCTURAL_KINDS,
    BatchEnd,
    BatchStart,
    JsonlTraceWriter,
    Repair,
    diff_traces,
    load_trace,
    render_timeline,
)
from repro.core.api import ALGORITHMS, stream_matching
from repro.dynamic import DynamicMatcher
from repro.graphs import Graph, gnp, path_graph
from repro.graphs.graph import GraphError
from repro.matching.sequential.blossom import max_cardinality
from repro.matching.verify import verify_matching
from repro.stream import (
    EdgeUpdate,
    MatchingService,
    as_update,
    load_updates,
    percentile,
    random_churn,
    replay_events,
    replay_events_legacy,
    replay_switch,
    save_updates,
)
from repro.switchsim import SwitchUpdateStream


def legacy_matcher(**kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return DynamicMatcher(**kwargs)


# ---------------------------------------------------------------------------
# workload: EdgeUpdate, JSONL persistence, churn generator
# ---------------------------------------------------------------------------


class TestWorkload:
    def test_update_validation(self):
        with pytest.raises(ValueError):
            EdgeUpdate("frobnicate", 0, 1)
        with pytest.raises(ValueError):
            EdgeUpdate("insert", 0)  # missing endpoint
        with pytest.raises(ValueError):
            EdgeUpdate("insert_node", 0, 1)  # node op with two endpoints

    def test_as_update_tuples(self):
        assert as_update(("insert", 1, 2, 3.0)) == EdgeUpdate("insert", 1, 2, 3.0)
        assert as_update(("delete", 1, 2)) == EdgeUpdate("delete", 1, 2)
        assert as_update(("insert_node", 7)) == EdgeUpdate("insert_node", 7)

    def test_jsonl_round_trip(self, tmp_path):
        updates = [EdgeUpdate("insert", 0, 1, 2.5),
                   EdgeUpdate("weight", 0, 1, 4.0),
                   EdgeUpdate("insert_node", 9),
                   EdgeUpdate("delete", 0, 1),
                   EdgeUpdate("delete_node", 9)]
        path = tmp_path / "ups.jsonl"
        assert save_updates(path, updates) == len(updates)
        assert list(load_updates(path)) == updates

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "insert", "u": 1}\n')
        with pytest.raises(ValueError):
            list(load_updates(path))

    def test_random_churn_is_replayable(self):
        g = gnp(12, 0.2, rng=5)
        updates = random_churn(g, 80, seed=1, weight_fraction=0.25)
        svc = MatchingService(g)
        svc.apply(updates)
        svc.commit()
        assert svc.verify_invariant()

    def test_percentile(self):
        assert percentile([], 99) == 0.0
        assert percentile([1.0], 50) == 1.0
        assert percentile(list(range(1, 101)), 50) == 50
        assert percentile(list(range(1, 101)), 95) == 96
        assert percentile(list(range(1, 101)), 100) == 100


# ---------------------------------------------------------------------------
# service basics: construction, validation, snapshots
# ---------------------------------------------------------------------------


class TestServiceBasics:
    def test_init_establishes_invariant(self):
        g = gnp(20, 0.2, rng=1)
        svc = MatchingService(g, k=2)
        assert svc.verify_invariant()
        assert svc.current_ratio() >= svc.guarantee - 1e-9
        assert svc.history[0].mode == "init"

    def test_eps_resolves_to_k(self):
        assert MatchingService(eps=0.25).k == 3
        assert MatchingService(k=4).k == 4
        with pytest.raises(ValueError):
            MatchingService(k=2, eps=0.1)
        with pytest.raises(ValueError):
            MatchingService(k=0)

    def test_graph_is_copied(self):
        g = path_graph(4)
        svc = MatchingService(g, k=1)
        svc.insert_edge(0, 3)
        svc.commit()
        assert not g.has_edge(0, 3)

    def test_enqueue_validates_against_virtual_state(self):
        svc = MatchingService(path_graph(3))
        with pytest.raises(GraphError):
            svc.delete_edge(0, 2)  # never existed
        svc.delete_edge(0, 1)
        with pytest.raises(GraphError):
            svc.delete_edge(0, 1)  # already pending-deleted
        svc.insert_edge(0, 1)
        svc.delete_edge(0, 1)  # pending re-insert makes it deletable again
        with pytest.raises(GraphError):
            svc.insert_edge(5, 5)
        with pytest.raises(GraphError):
            svc.insert_edge(0, 2, weight=-1)
        with pytest.raises(GraphError):
            svc.set_weight(7, 8, 2.0)

    def test_delete_node_invalidates_pending_incident_edges(self):
        svc = MatchingService(path_graph(4))
        svc.delete_node(1)
        with pytest.raises(GraphError):
            svc.delete_edge(0, 1)  # died with the node
        with pytest.raises(GraphError):
            svc.set_weight(1, 2, 5.0)
        svc.insert_node(1)
        with pytest.raises(GraphError):
            svc.delete_edge(1, 2)  # re-inserted node comes back bare
        svc.commit()
        assert svc.graph.has_node(1)
        assert not svc.graph.has_edge(0, 1)
        assert svc.verify_invariant()

    def test_commit_is_noop_when_nothing_pending(self):
        svc = MatchingService(path_graph(4))
        stats = svc.commit()
        assert stats.updates == 0
        assert svc.epoch == 0

    def test_weight_only_batch_seeds_nothing(self):
        svc = MatchingService(path_graph(6))
        for _ in range(3):
            svc.set_weight(0, 1, 5.0)
            svc.set_weight(2, 3, 7.0)
        stats = svc.commit()
        assert stats.updates == 6
        assert stats.seeds == 0
        assert stats.nodes_explored == 0
        assert svc.graph.weight(0, 1) == 5.0

    def test_insert_delete_pair_coalesces_to_nothing(self):
        svc = MatchingService(path_graph(6))
        svc.insert_edge(0, 5)
        svc.delete_edge(0, 5)
        stats = svc.commit()
        assert stats.seeds == 0
        assert not svc.graph.has_edge(0, 5)

    def test_broken_matched_edge_seeds_despite_reinsert(self):
        svc = MatchingService(path_graph(2))  # single edge, matched
        assert svc.matching.size == 1
        svc.delete_edge(0, 1)
        svc.insert_edge(0, 1)
        stats = svc.commit()
        assert stats.seeds == 2  # net topology unchanged, matching broke
        assert svc.matching.size == 1  # repair re-matched it
        assert svc.verify_invariant()

    def test_snapshot_epoch_semantics(self):
        svc = MatchingService(path_graph(4))
        snap0 = svc.snapshot()
        assert snap0.epoch == 0
        assert svc.snapshot() is snap0  # cached per epoch
        svc.insert_edge(0, 3)
        assert svc.snapshot() is snap0  # pending updates don't leak
        svc.commit()
        snap1 = svc.snapshot()
        assert snap1.epoch == 1
        assert snap1.matching is not svc.matching
        # the snapshot's matching is a private copy
        assert snap1.size == svc.matching.size

    def test_auto_commit_batches(self):
        svc = MatchingService(batch=4)
        for i in range(8):
            svc.insert_node(i)
        assert svc.epoch == 2
        assert svc.pending == 0

    def test_context_manager_commits_and_closes(self):
        with MatchingService(path_graph(4)) as svc:
            svc.insert_edge(0, 3)
        assert svc.epoch == 1
        with pytest.raises(RuntimeError):
            svc.insert_edge(0, 2)

    def test_result_totals(self):
        g = gnp(14, 0.2, rng=2)
        svc = MatchingService(g, k=2, seed=3)
        svc.apply(random_churn(g, 50, seed=4))
        result = svc.result(certify_result=True)
        assert result.epochs == svc.epoch
        assert result.updates == 50
        assert result.k == 2
        assert result.guarantee == pytest.approx(2 / 3)
        assert result.certificate.valid
        assert "StreamResult" in repr(result)


class TestGraphSetWeight:
    def test_set_weight_decreases(self):
        g = path_graph(3)
        g.set_weight(0, 1, 9.0)
        assert g.weight(0, 1) == 9.0
        g.set_weight(0, 1, 0.5)  # add_edge would refuse to go down
        assert g.weight(0, 1) == 0.5

    def test_set_weight_validation(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.set_weight(0, 2, 1.0)
        with pytest.raises(GraphError):
            g.set_weight(0, 1, 0.0)


# ---------------------------------------------------------------------------
# golden matrix: batched maintenance vs from-scratch recompute
# ---------------------------------------------------------------------------


class TestBatchedVsFromScratch:
    """Batched repair must be invariant-equivalent to recomputing."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("batch", [1, 7, 50])
    @pytest.mark.parametrize("insert_fraction", [0.35, 0.65])
    def test_matrix(self, seed, batch, insert_fraction):
        g = gnp(14, 0.2, rng=seed)
        updates = random_churn(g, 50, seed=seed + 10,
                               insert_fraction=insert_fraction,
                               weight_fraction=0.2)
        svc = MatchingService(g, k=2, seed=seed, batch=batch)
        svc.apply(updates)
        svc.commit()
        # checker-verified: the maintained matching is valid and satisfies
        # the invariant, hence is a (1 - 1/(k+1))-approximation (Lemma 3.3)
        verify_matching(svc.graph, svc.matching)
        assert svc.verify_invariant()
        # invariant-equivalence to a from-scratch recompute on the final
        # graph: both sides satisfy the same invariant, so both clear the
        # same ratio bar against the exact optimum
        scratch = MatchingService(svc.graph, k=2, seed=seed)
        assert scratch.verify_invariant()
        optimum = max_cardinality(svc.graph).size
        bar = svc.guarantee * optimum - 1e-9
        assert svc.matching.size >= bar
        assert scratch.matching.size >= bar

    def test_node_churn_stream(self):
        g = gnp(12, 0.3, rng=3)
        svc = MatchingService(g, k=2, batch=5)
        next_id = 12
        import random as _random

        rng = _random.Random(7)
        alive = set(range(12))
        for _ in range(20):
            if alive and rng.random() < 0.4:
                victim = rng.choice(sorted(alive))
                svc.delete_node(victim)
                alive.discard(victim)
            else:
                svc.insert_node(next_id)
                for t in rng.sample(sorted(alive), min(2, len(alive))):
                    svc.insert_edge(next_id, t)
                alive.add(next_id)
                next_id += 1
        svc.commit()
        verify_matching(svc.graph, svc.matching)
        assert svc.verify_invariant()


# ---------------------------------------------------------------------------
# the DynamicMatcher shim: golden-pinned, bit-identical
# ---------------------------------------------------------------------------

# Captured from the pre-1.7 DynamicMatcher (commit 6e4dccb) with the driver
# in _drive_legacy below.  The shim must reproduce these bit for bit.
SHIM_GOLDENS = {
    0: {
        "edges": [(0, 5), (3, 12), (4, 11), (7, 9), (8, 19)],
        "size": 5, "graph_nodes": 15, "graph_edges": 22,
        "history": [
            ("init", 4, 114), ("insert_edge", 1, 8), ("delete_edge", 0, 12),
            ("insert_edge", 0, 14), ("delete_edge", 0, 5),
            ("insert_edge", 0, 19), ("insert_node", 0, 0),
            ("insert_edge", 0, 13), ("insert_edge", 0, 15),
            ("delete_node", 0, 8), ("insert_edge", 0, 18),
            ("insert_edge", 1, 22), ("insert_edge", 1, 54),
            ("insert_edge", 0, 17), ("insert_edge", 0, 20),
            ("insert_node", 0, 0), ("insert_edge", 0, 25),
            ("insert_edge", 0, 23), ("insert_edge", 0, 22),
            ("insert_edge", 0, 23), ("delete_node", 1, 70),
            ("insert_edge", 0, 24), ("insert_edge", 0, 24),
            ("delete_node", 0, 0), ("insert_edge", 0, 24),
            ("delete_node", 0, 29), ("insert_edge", 0, 22),
            ("insert_edge", 0, 22), ("insert_edge", 0, 22),
            ("delete_node", 0, 11), ("insert_edge", 0, 22),
            ("insert_edge", 0, 22), ("insert_edge", 0, 22),
            ("insert_edge", 0, 22), ("delete_edge", 0, 22),
            ("insert_node", 0, 0), ("delete_node", 1, 60),
            ("insert_node", 0, 0), ("insert_edge", 0, 22),
            ("insert_edge", 0, 22), ("insert_node", 0, 0),
        ],
    },
    1: {
        "edges": [(0, 3), (1, 2), (5, 9), (6, 8), (12, 13)],
        "size": 5, "graph_nodes": 13, "graph_edges": 20,
        "history": [
            ("init", 5, 198), ("insert_edge", 1, 23), ("insert_edge", 0, 25),
            ("delete_node", 0, 0), ("delete_edge", 1, 80),
            ("insert_edge", 0, 19), ("insert_node", 0, 0),
            ("insert_edge", 0, 24), ("insert_edge", 0, 27),
            ("insert_edge", 0, 23), ("insert_edge", 0, 26),
            ("insert_edge", 0, 25), ("delete_edge", 0, 27),
            ("insert_edge", 0, 28), ("delete_edge", 1, 68),
            ("insert_edge", 0, 26), ("delete_edge", 0, 30),
            ("insert_edge", 0, 30), ("delete_edge", 1, 71),
            ("insert_edge", 1, 90), ("delete_node", 0, 14),
            ("insert_edge", 0, 26), ("insert_node", 0, 0),
            ("insert_edge", 0, 28), ("insert_edge", 0, 28),
            ("insert_edge", 0, 28), ("insert_edge", 0, 28),
            ("insert_edge", 0, 28), ("insert_edge", 0, 28),
            ("insert_edge", 0, 28), ("delete_edge", 0, 28),
            ("insert_edge", 0, 28), ("insert_edge", 0, 28),
            ("insert_node", 0, 0), ("insert_edge", 0, 28),
            ("delete_node", 1, 143), ("insert_edge", 0, 26),
            ("delete_node", 1, 96), ("insert_edge", 0, 24),
            ("insert_edge", 0, 24), ("delete_node", 0, 33),
        ],
    },
    2: {
        "edges": [(0, 4), (1, 10), (2, 13), (3, 7), (5, 11), (6, 9),
                  (12, 25)],
        "size": 7, "graph_nodes": 15, "graph_edges": 27,
        "history": [
            ("init", 5, 172), ("insert_edge", 0, 23), ("insert_edge", 0, 23),
            ("insert_edge", 0, 26), ("insert_node", 0, 0),
            ("insert_edge", 0, 24), ("insert_edge", 0, 28),
            ("insert_edge", 1, 72), ("delete_node", 0, 0),
            ("insert_edge", 0, 27), ("insert_edge", 0, 28),
            ("insert_edge", 0, 28), ("insert_node", 0, 0),
            ("insert_edge", 0, 28), ("delete_edge", 0, 27),
            ("insert_edge", 0, 28), ("insert_edge", 0, 26),
            ("insert_edge", 0, 28), ("insert_edge", 0, 25),
            ("delete_edge", 0, 29), ("insert_edge", 0, 26),
            ("delete_edge", 0, 27), ("insert_edge", 0, 23),
            ("insert_edge", 1, 71), ("insert_edge", 0, 30),
            ("delete_node", 0, 42), ("insert_edge", 0, 24),
            ("insert_edge", 0, 28), ("insert_edge", 0, 28),
            ("insert_edge", 0, 28), ("insert_edge", 0, 24),
            ("delete_edge", 0, 26), ("insert_edge", 1, 89),
            ("insert_edge", 0, 30), ("insert_edge", 0, 30),
            ("insert_node", 0, 0), ("insert_edge", 0, 30),
            ("delete_node", 1, 120), ("insert_edge", 0, 28),
            ("delete_edge", 0, 28), ("delete_edge", 0, 28),
        ],
    },
}


def _drive_legacy(seed, n=14, steps=40, k=2):
    import random as _random

    rng = _random.Random(seed)
    dm = legacy_matcher(k=k, graph=gnp(n, 0.2, rng=seed))
    for step in range(steps):
        roll = rng.random()
        if roll < 0.45:
            u, v = rng.sample(range(n), 2)
            if dm.graph.has_edge(u, v):
                dm.delete_edge(u, v)
            else:
                dm.insert_edge(u, v, weight=1.0 + rng.randrange(4))
        elif roll < 0.55 and dm.graph.num_nodes > 4:
            dm.delete_node(rng.choice(sorted(dm.graph.nodes)))
        elif roll < 0.65:
            dm.insert_node(n + step)
        else:
            u, v = rng.sample(sorted(dm.graph.nodes), 2)
            if not dm.graph.has_edge(u, v):
                dm.insert_edge(u, v)
            else:
                dm.delete_edge(u, v)
    return dm


class TestShimGoldens:
    @pytest.mark.parametrize("seed", sorted(SHIM_GOLDENS))
    def test_bit_identical_to_pre_shim_behavior(self, seed):
        golden = SHIM_GOLDENS[seed]
        dm = _drive_legacy(seed)
        hist = [(h.operation, h.augmentations, h.nodes_explored)
                for h in dm.history]
        assert sorted(dm.matching.edges()) == golden["edges"]
        assert dm.matching.size == golden["size"]
        assert dm.graph.num_nodes == golden["graph_nodes"]
        assert dm.graph.num_edges == golden["graph_edges"]
        assert hist == golden["history"]

    def test_shim_warns_deprecation(self):
        with pytest.warns(DeprecationWarning):
            DynamicMatcher(k=1)

    def test_shim_matches_legacy_mode_service(self):
        g = gnp(12, 0.25, rng=9)
        dm = legacy_matcher(k=2, graph=g)
        svc = MatchingService(g, k=2, repair="legacy")
        updates = random_churn(g, 30, seed=11)
        for up in updates:
            if up.op == "insert":
                dm.insert_edge(up.u, up.v, up.weight)
            else:
                dm.delete_edge(up.u, up.v)
            svc.apply([up])
            svc.commit()
            assert svc.matching == dm.matching
        assert svc.graph.edge_set() == dm.graph.edge_set()

    def test_fast_mode_is_invariant_equivalent_to_shim(self):
        g = gnp(12, 0.25, rng=4)
        updates = random_churn(g, 30, seed=5)
        dm = legacy_matcher(k=2, graph=g)
        svc = MatchingService(g, k=2)
        for up in updates:
            if up.op == "insert":
                dm.insert_edge(up.u, up.v, up.weight)
            else:
                dm.delete_edge(up.u, up.v)
        svc.apply(updates)
        svc.commit()
        assert svc.verify_invariant() and dm.verify_invariant()
        optimum = max_cardinality(svc.graph).size
        assert svc.matching.size >= svc.guarantee * optimum - 1e-9
        assert dm.matching.size >= dm.guarantee * optimum - 1e-9

    def test_shim_threads_seed(self):
        dm = legacy_matcher(k=2, graph=path_graph(4), seed=7)
        assert dm._service.seed == 7


# ---------------------------------------------------------------------------
# events: batch lifecycle on the bus, traces, rendering
# ---------------------------------------------------------------------------


class TestStreamEvents:
    def test_new_kinds_are_structural(self):
        for kind in ("batch_start", "batch_end", "repair"):
            assert kind in ALL_KINDS
            assert kind in STRUCTURAL_KINDS

    def test_batch_lifecycle_events(self):
        events = []
        svc = MatchingService(path_graph(4), observe=events.append,
                              name="svc")
        svc.insert_edge(0, 3)
        svc.delete_edge(1, 2)
        svc.commit()
        starts = [e for e in events if isinstance(e, BatchStart)]
        ends = [e for e in events if isinstance(e, BatchEnd)]
        repairs = [e for e in events if isinstance(e, Repair)]
        assert [e.epoch for e in starts] == [1]
        assert starts[0].updates == 2 and starts[0].service == "svc"
        assert ends[0].epoch == 1 and ends[0].size == svc.matching.size
        # one init repair (epoch 0) + one batch repair (epoch 1)
        assert [(r.epoch, r.mode) for r in repairs] == [(0, "init"),
                                                        (1, "local")]

    def test_trace_round_trip_and_equality(self, tmp_path):
        def drive(path):
            g = gnp(10, 0.3, rng=1)
            svc = MatchingService(g, k=2, seed=2, trace=path, batch=4)
            svc.apply(random_churn(g, 20, seed=3))
            svc.close()

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        drive(a)
        drive(b)
        trace = load_trace(a)
        assert any(e.kind == "batch_end" for e in trace)
        assert any(e.kind == "repair" for e in trace)
        # bit-identical run to run (no wall-clock in the stream)
        assert diff_traces(trace, load_trace(b)) is None
        timeline = render_timeline(trace)
        assert "batch" in timeline and "repair" in timeline

    def test_profiler_aggregates_batches_into_one_row(self):
        g = gnp(10, 0.3, rng=1)
        svc = MatchingService(g, k=2, profile=True, batch=4)
        svc.apply(random_churn(g, 20, seed=3))
        result = svc.result()
        svc.close()
        rows = [p for p in result.profile.phases if p.phase == "batch"]
        assert len(rows) == 1
        assert rows[0].entries == svc.epoch


# ---------------------------------------------------------------------------
# unified API: run("stream", ...), registry, JSONL input
# ---------------------------------------------------------------------------


class TestUnifiedAPI:
    def test_registry_entries(self):
        assert ALGORITHMS["stream"] is stream_matching
        assert ALGORITHMS["matching_service"] is stream_matching

    def test_run_stream(self):
        g = gnp(14, 0.2, rng=2)
        result = run("stream", g, updates=random_churn(g, 40, seed=1),
                     eps=0.25, seed=1)
        assert result.algorithm == "matching_service"
        assert result.updates == 40
        assert result.certificate.valid
        assert result.certificate.cardinality_ratio >= result.guarantee - 1e-9

    def test_run_stream_from_trace_file(self, tmp_path):
        g = gnp(10, 0.25, rng=3)
        path = tmp_path / "ups.jsonl"
        save_updates(path, random_churn(g, 25, seed=2))
        result = stream_matching(g, updates=path, k=2)
        assert result.updates == 25

    def test_top_level_exports(self):
        assert repro.MatchingService is MatchingService
        assert repro.stream_matching is stream_matching
        assert repro.EdgeUpdate is EdgeUpdate


# ---------------------------------------------------------------------------
# recompute escalation
# ---------------------------------------------------------------------------


class TestRecomputeEscalation:
    def test_large_batch_escalates(self):
        g = gnp(24, 0.15, rng=6)
        svc = MatchingService(g, k=2, seed=5,
                              recompute_min_seeds=4, recompute_fraction=0.2)
        # churn enough edges that the coalesced seed set crosses the bar
        updates = random_churn(g, 60, seed=7, insert_fraction=0.8)
        svc.apply(updates)
        stats = svc.commit()
        assert stats.mode == "recompute"
        assert svc.recomputes == 1
        assert svc.verify_invariant()
        verify_matching(svc.graph, svc.matching)
        optimum = max_cardinality(svc.graph).size
        assert svc.matching.size >= svc.guarantee * optimum - 1e-9

    def test_recompute_events_flow_to_service_bus(self):
        events = []
        g = gnp(20, 0.2, rng=8)
        svc = MatchingService(g, k=2, observe=events.append,
                              recompute_min_seeds=2, recompute_fraction=0.1)
        svc.apply(random_churn(g, 40, seed=9, insert_fraction=0.8))
        svc.commit()
        repairs = [e for e in events if isinstance(e, Repair)]
        assert any(r.mode == "recompute" for r in repairs)
        # the nested static run published its rounds onto the same bus
        assert any(e.kind == "round_end" for e in events)

    def test_small_batches_stay_local(self):
        g = gnp(20, 0.2, rng=8)
        svc = MatchingService(g, k=2)  # default thresholds: 256 seeds
        svc.insert_edge(0, 19)
        stats = svc.commit()
        assert stats.mode == "local"
        assert svc.recomputes == 0


# ---------------------------------------------------------------------------
# switch workload + replay harnesses
# ---------------------------------------------------------------------------


class TestSwitchUpdateStream:
    def test_occupancy_transitions(self):
        stream = SwitchUpdateStream(4, pattern="uniform", load=1.0, seed=0)
        first = stream.arrivals(0)
        assert all(u.op == "insert" and u.weight == 1.0 for u in first)
        # same VOQs hit again -> weight updates, never duplicate inserts
        seen = {(u.u, u.v) for u in first}
        second = [u for u in stream.arrivals(1) if (u.u, u.v) in seen]
        assert all(u.op == "weight" for u in second)

    def test_departures_drain_to_delete(self):
        from repro.matching.core import Matching

        stream = SwitchUpdateStream(4, load=0.0, seed=0)
        stream.queues[(0, 1)] = 2
        served = Matching([(0, stream.output_node(1))])
        ups = stream.departures(served)
        assert [u.op for u in ups] == ["weight"]
        ups = stream.departures(served)
        assert [u.op for u in ups] == ["delete"]
        assert stream.backlog == 0
        assert stream.departures(served) == []  # drained: no-op

    def test_closed_loop_replay(self):
        report = replay_switch(ports=6, cycles=120, load=0.6, seed=1,
                               batch=16, spot_checks=2)
        assert report.events > 0
        assert report.epochs == report.batches
        assert all(c["invariant"] for c in report.spot_checks)
        assert report.extra["cells_departed"] > 0

    def test_max_events_stops_early(self):
        report = replay_switch(ports=6, cycles=10 ** 6, load=0.6, seed=1,
                               batch=16, spot_checks=0, max_events=100)
        assert 100 <= report.events <= 120  # stops at the cycle boundary

    def test_recorded_stream_rebuilds_the_same_graph(self):
        record = []
        live_svc = MatchingService(k=2, seed=2)
        live = replay_switch(ports=6, cycles=100, load=0.6, seed=2,
                             batch=16, spot_checks=0, record=record,
                             service=live_svc)
        replay_svc = MatchingService(k=2, seed=2)
        replayed = replay_events(record, batch=16, service=replay_svc)
        # graph evolution depends only on the events, so the recorded
        # stream rebuilds the exact demand graph (batch boundaries differ,
        # so the matching trajectory may not — the invariant must hold on
        # both)
        assert replayed.events == live.events
        assert replay_svc.graph.edge_set() == live_svc.graph.edge_set()
        assert live_svc.verify_invariant()
        assert replay_svc.verify_invariant()

    def test_legacy_baseline_replay(self):
        record = []
        replay_switch(ports=4, cycles=40, load=0.5, seed=3, batch=8,
                      spot_checks=0, record=record)
        report = replay_events_legacy(record, k=2, limit=50)
        assert report.events == min(50, len(record))
        assert report.updates_per_sec > 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestStreamCLI:
    def test_switch_workload_with_save_and_profile(self, tmp_path, capsys):
        from repro.__main__ import main

        saved = tmp_path / "ups.jsonl"
        trace = tmp_path / "stream.jsonl"
        rc = main(["stream", "--ports", "6", "--cycles", "60",
                   "--batch", "16", "--spot-checks", "1",
                   "--save", str(saved), "--trace", str(trace),
                   "--profile"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "updates/sec" in out
        assert "batch (matching_service)" in out
        assert saved.exists() and trace.exists()
        assert any(e.kind == "batch_end" for e in load_trace(trace))

    def test_replay_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        g = gnp(10, 0.25, rng=1)
        path = tmp_path / "ups.jsonl"
        save_updates(path, random_churn(g, 30, seed=2))
        rc = main(["stream", "--replay", str(path), "--graph", "gnp:10:0.25",
                   "--seed", "1", "--batch", "8", "--spot-checks", "1"])
        assert rc == 0
        assert "replayed" in capsys.readouterr().out
