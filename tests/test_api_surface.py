"""Tests for the unified API surface: shared keywords, shims, run() facade."""

import warnings

import pytest

import repro
from repro import ALGORITHMS, run
from repro.congest import CONGEST, LOCAL, PIPELINE, Tracer
from repro.core.api import approx_mcm, approx_mwm, maximal_matching
from repro.graphs import exponential_weights, gnp, random_bipartite


@pytest.fixture
def bip():
    return random_bipartite(10, 10, 0.25, rng=1)


@pytest.fixture
def weighted():
    return gnp(14, 0.25, rng=2, weight_fn=exponential_weights(8))


class TestSharedKeywords:
    def test_policy_keyword(self, bip):
        res = approx_mcm(bip, eps=0.4, seed=0, policy=LOCAL)
        assert res.certificate.valid

    def test_tracer_keyword(self, bip):
        tracer = Tracer()
        res = approx_mcm(bip, eps=0.4, seed=0, tracer=tracer)
        assert res.certificate.valid
        assert tracer.events

    def test_tracer_everywhere(self, weighted):
        for call in (
            lambda t: approx_mwm(weighted, eps=0.2, seed=0, tracer=t),
            lambda t: maximal_matching(weighted, seed=0, tracer=t),
        ):
            tracer = Tracer()
            assert call(tracer).certificate.valid
            assert tracer.events

    def test_max_rounds_keyword(self, bip):
        from repro.congest import ProtocolError

        # the limit becomes the network default and trips the livelock guard
        with pytest.raises(ProtocolError, match="exceeded 1 rounds"):
            maximal_matching(bip, seed=0, max_rounds=1)
        assert maximal_matching(bip, seed=0,
                                max_rounds=10_000).certificate.valid

    def test_k_overrides_eps(self, bip):
        res = approx_mcm(bip, eps=0.9, k=3, seed=0)  # eps alone would give k=1
        assert len(res.detail.stats.phases) == 3

    def test_k_validation(self, bip):
        with pytest.raises(ValueError):
            approx_mcm(bip, k=0)

    def test_network_metrics_alias(self, bip):
        res = approx_mcm(bip, eps=0.4, seed=0)
        assert res.network_metrics is res.metrics
        assert res.network_metrics.total_rounds == res.rounds


class TestDeprecatedPositional:
    def test_approx_mcm_positional_warns(self, bip):
        with pytest.warns(DeprecationWarning):
            old = approx_mcm(bip, 0.4, 3)
        new = approx_mcm(bip, eps=0.4, seed=3)
        assert set(old.matching.edges()) == set(new.matching.edges())

    def test_approx_mwm_positional_warns(self, weighted):
        with pytest.warns(DeprecationWarning):
            old = approx_mwm(weighted, 0.2, 1)
        new = approx_mwm(weighted, eps=0.2, seed=1)
        assert set(old.matching.edges()) == set(new.matching.edges())

    def test_maximal_matching_positional_warns(self, bip):
        with pytest.warns(DeprecationWarning):
            old = maximal_matching(bip, 5)
        new = maximal_matching(bip, seed=5)
        assert set(old.matching.edges()) == set(new.matching.edges())

    def test_too_many_positionals_rejected(self, bip):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                maximal_matching(bip, 5, CONGEST, "extra")

    def test_keyword_calls_stay_silent(self, bip):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            approx_mcm(bip, eps=0.4, seed=0)


class TestRunFacade:
    def test_by_name(self, bip):
        res = run("mcm", bip, eps=0.4, seed=0)
        assert res.algorithm == "bipartite_mcm"
        assert res.certificate.valid

    def test_name_case_insensitive(self, bip):
        assert run("MCM", bip, eps=0.4).algorithm == "bipartite_mcm"

    def test_aliases_cover_families(self, bip, weighted):
        assert run("maximal", bip).algorithm == "israeli_itai"
        assert run("mwm", weighted, eps=0.2).algorithm.startswith("algorithm5")
        assert run("exact_mcm", bip).algorithm == "exact_mcm"

    def test_callable_passthrough(self, bip):
        res = run(approx_mcm, bip, eps=0.4, seed=0)
        assert res.certificate.valid

    def test_unknown_name(self, bip):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run("simplex", bip)

    def test_exported_at_top_level(self):
        assert repro.run is run
        assert "mcm" in repro.ALGORITHMS
        assert set(ALGORITHMS) >= {"approx_mcm", "approx_mwm",
                                   "maximal_matching", "exact_mcm",
                                   "exact_mwm"}
