"""Tests for the sequential exact and approximate matchers."""

import pytest

import networkx as nx

from repro.graphs import (
    augmenting_chain,
    blossom_gadget,
    complete_bipartite,
    complete_graph,
    crown_graph,
    cycle_graph,
    gnp,
    path_graph,
    random_bipartite,
    uniform_weights,
)
from repro.graphs.graph import Graph, GraphError
from repro.graphs.interop import to_networkx
from repro.matching import verify_matching
from repro.matching.sequential import (
    BruteForceLimitError,
    brute_force_mcm,
    brute_force_mwm,
    greedy_mcm,
    greedy_mwm,
    hopcroft_karp,
    locally_heaviest_mwm,
    max_cardinality,
    max_cardinality_bipartite,
    max_cardinality_general,
    max_weight_bipartite,
    path_growing_mwm,
)


class TestHopcroftKarp:
    def test_perfect_matching_complete_bipartite(self):
        g = complete_bipartite(5, 5)
        assert max_cardinality_bipartite(g).size == 5

    def test_crown_graph_perfect(self):
        g = crown_graph(5)
        assert max_cardinality_bipartite(g).size == 5

    def test_empty_graph(self):
        g = random_bipartite(4, 4, 0.0, rng=0)
        assert max_cardinality_bipartite(g).size == 0

    def test_matches_networkx_on_random(self):
        for seed in range(5):
            g = random_bipartite(15, 18, 0.15, rng=seed)
            ours = max_cardinality_bipartite(g)
            verify_matching(g, ours)
            nxg = to_networkx(g)
            nx_size = len(nx.bipartite.maximum_matching(
                nxg, top_nodes=set(g.left))) // 2
            assert ours.size == nx_size

    def test_phase_trace_monotone(self):
        g = random_bipartite(20, 20, 0.1, rng=2)
        res = hopcroft_karp(g)
        lengths = [p.path_length for p in res.phases]
        assert lengths == sorted(lengths)
        assert all(a < b for a, b in zip(lengths, lengths[1:]))
        sizes = [p.matching_size for p in res.phases]
        assert sizes == sorted(sizes)
        assert res.phases[0].path_length == 1

    def test_rejects_non_bipartite(self):
        with pytest.raises(GraphError):
            max_cardinality_bipartite(cycle_graph(5))

    def test_plain_graph_input(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert max_cardinality_bipartite(g).size == 1


class TestBlossom:
    def test_odd_cycle(self):
        assert max_cardinality_general(cycle_graph(5)).size == 2
        assert max_cardinality_general(cycle_graph(7)).size == 3

    def test_blossom_gadgets(self):
        g = blossom_gadget(3)
        m = max_cardinality_general(g)
        verify_matching(g, m)
        assert m.size == 9

    def test_complete_graph(self):
        assert max_cardinality_general(complete_graph(6)).size == 3
        assert max_cardinality_general(complete_graph(7)).size == 3

    def test_matches_networkx_on_random(self):
        for seed in range(5):
            g = gnp(18, 0.2, rng=seed)
            ours = max_cardinality_general(g)
            verify_matching(g, ours)
            nx_m = nx.max_weight_matching(to_networkx(g),
                                          maxcardinality=True)
            assert ours.size == len(nx_m)

    def test_matches_brute_force(self):
        for seed in range(5):
            g = gnp(8, 0.35, rng=seed + 10)
            assert max_cardinality_general(g).size == brute_force_mcm(g).size

    def test_dispatch_bipartite(self):
        g = random_bipartite(8, 8, 0.3, rng=1)
        assert max_cardinality(g).size == max_cardinality_bipartite(g).size

    def test_dispatch_general(self):
        g = cycle_graph(5)
        assert max_cardinality(g).size == 2


class TestHungarian:
    def test_simple(self):
        g = complete_bipartite(2, 2, weight_fn=None)
        assert max_weight_bipartite(g).size == 2

    def test_prefers_heavy_edge_over_two_light(self):
        g = Graph()
        g.add_edge(0, 2, 10.0)  # heavy
        g.add_edge(0, 3, 1.0)
        g.add_edge(1, 2, 1.0)
        m = max_weight_bipartite(g)
        # two light edges (0,3)+(1,2) weigh 2 < 10
        assert m.weight(g) == 10.0

    def test_matches_networkx_on_random(self):
        for seed in range(6):
            g = random_bipartite(10, 12, 0.3, rng=seed,
                                 weight_fn=uniform_weights())
            ours = max_weight_bipartite(g)
            verify_matching(g, ours)
            nx_m = nx.max_weight_matching(to_networkx(g))
            nx_w = sum(g.weight(u, v) for u, v in nx_m)
            assert abs(ours.weight(g) - nx_w) < 1e-6

    def test_empty(self):
        g = random_bipartite(3, 3, 0.0, rng=0)
        assert max_weight_bipartite(g).size == 0

    def test_rejects_non_bipartite(self):
        with pytest.raises(GraphError):
            max_weight_bipartite(cycle_graph(5))


class TestGreedy:
    def test_greedy_mwm_half_guarantee(self):
        for seed in range(5):
            g = gnp(14, 0.3, rng=seed, weight_fn=uniform_weights())
            m = greedy_mwm(g)
            verify_matching(g, m)
            opt = brute_force_mwm(g) if g.num_edges <= 24 else None
            if opt is not None:
                assert m.weight(g) >= 0.5 * opt.weight(g) - 1e-9

    def test_greedy_mcm_maximal(self):
        g = gnp(20, 0.2, rng=3)
        m = greedy_mcm(g, rng=1)
        verify_matching(g, m)
        for u, v, _ in g.edges():
            assert not (m.is_free(u) and m.is_free(v))

    def test_greedy_half_worst_case(self):
        # on the augmenting chain, the middle-edge matching is half
        g = augmenting_chain(4, link_length=3)
        opt = max_cardinality(g).size
        assert opt == 8
        m = greedy_mcm(g)
        assert m.size >= opt // 2

    def test_path_growing_half(self):
        for seed in range(4):
            g = gnp(12, 0.4, rng=seed, weight_fn=uniform_weights())
            if g.num_edges > 24:
                continue
            m = path_growing_mwm(g)
            verify_matching(g, m)
            opt = brute_force_mwm(g).weight(g)
            assert m.weight(g) >= 0.5 * opt - 1e-9

    def test_locally_heaviest_half(self):
        for seed in range(4):
            g = gnp(12, 0.35, rng=seed + 20, weight_fn=uniform_weights())
            if g.num_edges > 24:
                continue
            m = locally_heaviest_mwm(g)
            verify_matching(g, m)
            opt = brute_force_mwm(g).weight(g)
            assert m.weight(g) >= 0.5 * opt - 1e-9


class TestBruteForce:
    def test_known_small_cases(self):
        assert brute_force_mcm(path_graph(4)).size == 2
        assert brute_force_mcm(cycle_graph(5)).size == 2

    def test_weighted_picks_heavy(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 3.0)
        m = brute_force_mwm(g)
        assert m.weight(g) == 3.0

    def test_size_limit(self):
        with pytest.raises(BruteForceLimitError):
            brute_force_mcm(complete_graph(10))
