"""Tests for dynamic matching maintenance."""

import random

import pytest

from repro.dynamic import DynamicMatcher
from repro.graphs import Graph, gnp, path_graph
from repro.graphs.graph import GraphError
from repro.matching.verify import verify_matching


class TestBasics:
    def test_empty_start(self):
        dm = DynamicMatcher(k=2)
        assert dm.matching.size == 0
        assert dm.guarantee == pytest.approx(2 / 3)

    def test_init_establishes_invariant(self):
        g = gnp(20, 0.2, rng=1)
        dm = DynamicMatcher(k=2, graph=g)
        assert dm.verify_invariant()
        assert dm.current_ratio() >= dm.guarantee - 1e-9

    def test_k_validation(self):
        with pytest.raises(ValueError):
            DynamicMatcher(k=0)

    def test_graph_is_copied(self):
        g = path_graph(4)
        dm = DynamicMatcher(k=1, graph=g)
        dm.insert_edge(0, 3)
        assert not g.has_edge(0, 3)


class TestSingleUpdates:
    def test_insert_edge_matches_it(self):
        dm = DynamicMatcher(k=1)
        dm.insert_node(0)
        dm.insert_node(1)
        stats = dm.insert_edge(0, 1)
        assert dm.matching.contains_edge(0, 1)
        assert stats.augmentations == 1

    def test_delete_matched_edge_repairs(self):
        # path 0-1-2-3: optimal matching {(0,1),(2,3)}
        dm = DynamicMatcher(k=2, graph=path_graph(4))
        assert dm.matching.size == 2
        # delete a matched edge; the survivor should re-augment
        matched = list(dm.matching.edges())[0]
        dm.delete_edge(*matched)
        assert dm.verify_invariant()

    def test_delete_unmatched_edge_is_cheap(self):
        dm = DynamicMatcher(k=2, graph=path_graph(4))
        # (1,2) is never matched in the optimal path matching
        if not dm.matching.contains_edge(1, 2):
            stats = dm.delete_edge(1, 2)
            assert stats.augmentations == 0

    def test_delete_node(self):
        g = path_graph(5)
        dm = DynamicMatcher(k=2, graph=g)
        dm.delete_node(2)
        assert dm.verify_invariant()
        verify_matching(dm.graph, dm.matching)

    def test_delete_missing_node_raises(self):
        dm = DynamicMatcher(k=2)
        with pytest.raises(GraphError):
            dm.delete_node(5)


class TestRandomUpdateSequences:
    @pytest.mark.parametrize("seed", range(3))
    def test_invariant_and_ratio_throughout(self, seed):
        rng = random.Random(seed)
        dm = DynamicMatcher(k=2, graph=gnp(14, 0.2, rng=seed))
        for step in range(30):
            u, v = rng.sample(range(14), 2)
            if dm.graph.has_edge(u, v):
                dm.delete_edge(u, v)
            else:
                dm.insert_edge(u, v)
            verify_matching(dm.graph, dm.matching)
            if step % 10 == 9:
                assert dm.verify_invariant()
                assert dm.current_ratio() >= dm.guarantee - 1e-9

    def test_node_churn(self):
        rng = random.Random(7)
        dm = DynamicMatcher(k=2, graph=gnp(12, 0.3, rng=3))
        alive = set(range(12))
        next_id = 12
        for _ in range(15):
            if alive and rng.random() < 0.4:
                victim = rng.choice(sorted(alive))
                dm.delete_node(victim)
                alive.discard(victim)
            else:
                dm.insert_node(next_id)
                targets = rng.sample(sorted(alive), min(2, len(alive)))
                alive.add(next_id)
                for t in targets:
                    dm.insert_edge(next_id, t)
                next_id += 1
            verify_matching(dm.graph, dm.matching)
        assert dm.verify_invariant()

    def test_history_recorded(self):
        dm = DynamicMatcher(k=1, graph=path_graph(3))
        before = len(dm.history)
        dm.insert_edge(0, 2)
        assert len(dm.history) == before + 1
        assert dm.history[-1].operation == "insert_edge"


class TestLocality:
    def test_work_does_not_scale_with_n(self):
        # an edge deletion far from everything touches a bounded region
        explored = []
        for n in (40, 160):
            g = path_graph(n)
            dm = DynamicMatcher(k=2, graph=g)
            matched = next(e for e in dm.matching.edges() if e[0] > 4)
            stats = dm.delete_edge(*matched)
            explored.append(stats.nodes_explored)
        # ball sizes on a path are O(k); allow generous slack
        assert max(explored) <= 40
        assert abs(explored[0] - explored[1]) <= 20
