"""Tests for the Bertsekas auction MWM."""

import pytest

from repro.congest import CONGEST, Network
from repro.congest.asynchrony import HeavyTailDelay, SynchronizedNetwork, UniformDelay
from repro.dist import auction_mwm
from repro.graphs import (
    BipartiteGraph,
    complete_bipartite,
    cycle_graph,
    random_bipartite,
    uniform_weights,
)
from repro.graphs.graph import Graph, GraphError
from repro.matching.sequential import max_weight_bipartite
from repro.matching.verify import verify_matching


class TestAuctionQuality:
    @pytest.mark.parametrize("seed", range(4))
    def test_one_minus_eps_guarantee(self, seed):
        g = random_bipartite(14, 14, 0.3, rng=seed,
                             weight_fn=uniform_weights())
        m, _ = auction_mwm(g, eps=0.1, seed=seed)
        verify_matching(g, m)
        opt = max_weight_bipartite(g).weight(g)
        assert m.weight(g) >= (1 - 0.1) * opt - 1e-9

    def test_tighter_eps_tighter_result(self):
        g = random_bipartite(12, 12, 0.4, rng=5, weight_fn=uniform_weights())
        opt = max_weight_bipartite(g).weight(g)
        loose, _ = auction_mwm(g, eps=0.5, seed=1)
        tight, _ = auction_mwm(g, eps=0.02, seed=1)
        assert tight.weight(g) >= (1 - 0.02) * opt - 1e-9
        assert loose.weight(g) >= (1 - 0.5) * opt - 1e-9

    def test_prefers_heavy_edge(self):
        g = BipartiteGraph([0, 1], [2, 3])
        g.add_edge(0, 2, 10.0)
        g.add_edge(0, 3, 1.0)
        g.add_edge(1, 2, 1.0)
        m, _ = auction_mwm(g, eps=0.05, seed=0)
        assert m.contains_edge(0, 2)

    def test_complete_bipartite_perfect(self):
        g = complete_bipartite(5, 5)
        m, _ = auction_mwm(g, eps=0.1, seed=0)
        assert m.size == 5

    def test_unbalanced_sides(self):
        g = random_bipartite(6, 14, 0.4, rng=7, weight_fn=uniform_weights())
        m, _ = auction_mwm(g, eps=0.1, seed=7)
        verify_matching(g, m)
        assert m.size <= 6


class TestAuctionMechanics:
    def test_empty_graph(self):
        g = BipartiteGraph([0, 1], [2, 3])
        m, _ = auction_mwm(g, eps=0.1, seed=0)
        assert m.size == 0

    def test_rejects_non_bipartite(self):
        with pytest.raises(GraphError):
            auction_mwm(cycle_graph(5), eps=0.1)

    def test_eps_validation(self):
        g = complete_bipartite(2, 2)
        with pytest.raises(ValueError):
            auction_mwm(g, eps=1.5)
        with pytest.raises(ValueError):
            auction_mwm(g, eps=0.1, epsilon=0.0)

    def test_congest_compliant(self):
        g = random_bipartite(20, 20, 0.2, rng=1, weight_fn=uniform_weights())
        m, net = auction_mwm(g, eps=0.1, seed=1, policy=CONGEST)
        assert net.metrics.max_message_bits <= CONGEST.budget_bits(40)

    def test_deterministic(self):
        g = random_bipartite(10, 10, 0.4, rng=2, weight_fn=uniform_weights())
        a, _ = auction_mwm(g, eps=0.1, seed=4)
        b, _ = auction_mwm(g, eps=0.1, seed=4)
        assert a == b

    def test_async_identical(self):
        g = random_bipartite(10, 10, 0.4, rng=3, weight_fn=uniform_weights())
        sync, _ = auction_mwm(g, eps=0.1, seed=5)
        for model in (UniformDelay(0.2, 3.0), HeavyTailDelay()):
            asy, _ = auction_mwm(
                g, eps=0.1, seed=5,
                network=SynchronizedNetwork(g, model, seed=5))
            assert asy == sync

    def test_rounds_grow_as_eps_shrinks(self):
        g = random_bipartite(12, 12, 0.5, rng=6, weight_fn=uniform_weights())
        _, loose_net = auction_mwm(g, eps=0.5, seed=2)
        _, tight_net = auction_mwm(g, eps=0.01, seed=2)
        assert tight_net.metrics.rounds >= loose_net.metrics.rounds
