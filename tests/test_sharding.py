"""Sharded multi-core execution: partitioner properties and golden parity.

The sharded executor must be *bit-identical* to the single-process engine:
same outputs, same round counts, same physical :class:`~repro.congest.
metrics.Metrics`, same structural event stream, same errors at the same
points — across every kernelized protocol, seed, and shard count
(including the degenerate 1-shard pool).  The partitioner must be a pure
deterministic function of ``(graph, shards, seed, balance)``, including
across processes.
"""

import pathlib
import subprocess
import sys
import threading

import pytest

from repro.congest import (
    CONGEST,
    LOCAL,
    PIPELINE,
    BandwidthExceeded,
    BandwidthPolicy,
    FaultSpec,
    MessageDelivered,
    Network,
    ProtocolError,
    RoundEnd,
    RoundStart,
    ShardingError,
    congest,
    partition_graph,
    resolve_shards,
)
from repro.congest import sharding
from repro.congest.sharding import decode_payload, encode_payload
from repro.dist.bipartite_counting import (
    X_SIDE,
    Y_SIDE,
    CountingNode,
    run_counting,
)
from repro.dist.israeli_itai import IsraeliItaiNode, israeli_itai
from repro.dist.luby_mis import LubyMISNode, luby_mis
from repro.dist.token_mis import TokenNode, run_token_selection
from repro.graphs import gnp, grid_graph, path_graph, random_bipartite


def _metrics_tuple(m):
    return (m.rounds, m.pipelined_extra_rounds, m.messages, m.total_bits,
            m.max_message_bits, tuple(sorted(m.protocol_rounds.items())))


def _network(g, policy, seed, shards):
    """A reference (csr) or sharded network, same graph and seed."""
    if shards is None:
        return Network(g, policy=policy, seed=seed, engine="csr")
    return Network(g, policy=policy, seed=seed, engine="sharded",
                   shards=shards)


class Collect:
    def __init__(self, kinds=None):
        if kinds is not None:
            self.interest = kinds
        self.events = []

    def on_event(self, event):
        self.events.append(event)


# --- partitioner properties ---------------------------------------------

PART_CASES = [
    pytest.param(n, p, k, seed, id=f"n{n}-p{p}-k{k}-s{seed}")
    for n, p in ((40, 0.15), (90, 0.06), (17, 0.3))
    for k in (1, 2, 3, 4)
    for seed in (0, 7)
]


class TestPartitioner:
    @pytest.mark.parametrize("n,p,k,seed", PART_CASES)
    def test_every_node_in_exactly_one_shard(self, n, p, k, seed):
        g = gnp(n, p, rng=seed)
        part = partition_graph(g, k, seed=seed)
        seen = [v for shard in part.shards for v in shard]
        assert sorted(seen) == list(range(g.num_nodes))
        assert all(part.owner[v] == s
                   for s, shard in enumerate(part.shards) for v in shard)

    @pytest.mark.parametrize("n,p,k,seed", PART_CASES)
    def test_balance_bound(self, n, p, k, seed):
        g = gnp(n, p, rng=seed)
        part = partition_graph(g, k, seed=seed)
        n_real, k_real = g.num_nodes, part.k
        equal_fill = -(-n_real // k_real)
        assert max(part.sizes) <= equal_fill  # the equal-fill guarantee
        assert part.imbalance == max(part.sizes) * k_real / n_real

    @pytest.mark.parametrize("n,p,k,seed", PART_CASES)
    def test_cut_edges_symmetric_count(self, n, p, k, seed):
        g = gnp(n, p, rng=seed)
        part = partition_graph(g, k, seed=seed)
        csr = g.to_csr()
        crossing = set()
        for i in range(len(csr.order)):
            for e in range(csr.indptr[i], csr.indptr[i + 1]):
                j = csr.indices[e]
                if part.owner[i] != part.owner[j]:
                    crossing.add((min(i, j), max(i, j)))
        assert part.cut_edges == len(crossing)
        if k == 1:
            assert part.cut_edges == 0

    def test_deterministic_for_equal_seeds(self):
        g = gnp(70, 0.1, rng=4)
        a = partition_graph(g, 3, seed=12)
        b = partition_graph(g, 3, seed=12)
        assert a.owner == b.owner and a.shards == b.shards
        c = partition_graph(g, 3, seed=13)
        assert c.owner != a.owner  # different stream, different growth

    def test_bit_identical_across_processes(self, tmp_path):
        g = gnp(120, 0.08, rng=7)
        local = partition_graph(g, 3, seed=7)
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        script = (
            "from repro.graphs import gnp\n"
            "from repro.congest import partition_graph\n"
            "part = partition_graph(gnp(120, 0.08, rng=7), 3, seed=7)\n"
            "print(repr(part.owner))\n"
            "print(part.cut_edges, part.sizes)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, check=True)
        lines = out.stdout.strip().splitlines()
        assert lines[0] == repr(local.owner)
        assert lines[1] == f"{local.cut_edges} {local.sizes}"

    def test_more_shards_than_nodes_clamps(self):
        part = partition_graph(path_graph(3), 8, seed=0)
        assert part.k == 3 and all(s == 1 for s in part.sizes)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_graph(path_graph(4), 0)
        with pytest.raises(ValueError):
            partition_graph(path_graph(4), 2, balance=0.9)

    def test_bfs_growth_keeps_shards_contiguous(self):
        # BFS growth makes the first shard a contiguous path segment, so
        # the cut is at most 2 edges (1 when growth starts near an end) —
        # far below the ~32 expected of a random 50/50 node split
        for seed in range(6):
            part = partition_graph(path_graph(64), 2, seed=seed)
            assert part.cut_edges <= 2


# --- halo payload codec --------------------------------------------------

CODEC_CASES = [
    None, True, False, 0, 1, -1, 7, -123456789, 1 << 200, -(1 << 200),
    0.0, -2.5, 1e300, "", "halo", "ünïcode", (), (1, 2), [3, "x", None],
    {"a": 1, "b": (2.5, False)}, {1: {2: [3]}}, set(), {1, 2, 3},
    frozenset({(1, 2)}), ((((42,)),),), [{"deep": [1, {"er": (None,)}]}],
]


class TestCodec:
    @pytest.mark.parametrize("payload", CODEC_CASES,
                             ids=[str(i) for i in range(len(CODEC_CASES))])
    def test_roundtrip(self, payload):
        buf = bytearray()
        encode_payload(buf, payload)
        decoded, pos = decode_payload(memoryview(bytes(buf)), 0)
        assert pos == len(buf)
        assert decoded == payload
        assert type(decoded) is type(payload)

    def test_dict_order_preserved(self):
        buf = bytearray()
        encode_payload(buf, {"z": 1, "a": 2})
        decoded, _ = decode_payload(memoryview(bytes(buf)), 0)
        assert list(decoded) == ["z", "a"]

    def test_rejects_non_plain_data(self):
        with pytest.raises(ShardingError):
            encode_payload(bytearray(), object())


# --- golden workloads (shard count is the only degree of freedom) --------

def _run_israeli(policy, seed, shards=None):
    g = gnp(48, 0.12, rng=seed)
    net = _network(g, policy, seed, shards)
    try:
        matching = israeli_itai(net)
        return set(matching.edges()), _metrics_tuple(net.metrics)
    finally:
        net.close()


def _run_luby(policy, seed, shards=None):
    g = gnp(56, 0.1, rng=seed)
    net = _network(g, policy, seed, shards)
    try:
        mis = luby_mis(net)
        return frozenset(mis), _metrics_tuple(net.metrics)
    finally:
        net.close()


def _counting_instance(seed):
    half = 22
    g = random_bipartite(half, half, 0.14, rng=seed)
    side = {v: (X_SIDE if v < half else Y_SIDE) for v in sorted(g.nodes)}
    mate = {v: None for v in g.nodes}
    for u in sorted(g.nodes):  # deterministic greedy seed matching
        if side[u] != X_SIDE or mate[u] is not None:
            continue
        for v in sorted(g.neighbors(u)):
            if mate[v] is None:
                mate[u] = v
                mate[v] = u
                break
    return g, side, mate


def _freeze_counts(outputs):
    return tuple(
        (v, None if s is None else (s.t, tuple(sorted(s.counts.items())),
                                    s.total, s.early_free_y))
        for v, s in sorted(outputs.items())
    )


def _run_counting_workload(policy, seed, shards=None, ell=4):
    g, side, mate = _counting_instance(seed)
    net = _network(g, policy, seed, shards)
    try:
        outputs = run_counting(net, side, mate, ell)
        return _freeze_counts(outputs), _metrics_tuple(net.metrics)
    finally:
        net.close()


def _run_token(policy, seed, shards=None, ell=1):
    # counting feeds token selection on the same network, so this also
    # exercises run-counter continuity and shared dicts holding CountState
    # objects across the process boundary
    g, side, mate = _counting_instance(seed)
    n_bound = max(2, g.num_nodes) * max(2, g.max_degree) ** ((ell + 1) // 2)
    net = _network(g, policy, seed, shards)
    try:
        states = run_counting(net, side, mate, ell)
        new_mate, applied = run_token_selection(
            net, side, mate, ell, states, n_bound ** 4)
        return (tuple(sorted(new_mate.items())), applied,
                _metrics_tuple(net.metrics))
    finally:
        net.close()


WORKLOADS = {
    "israeli_itai": (_run_israeli, [CONGEST, LOCAL]),
    "luby_mis": (_run_luby, [CONGEST, LOCAL]),
    "counting": (_run_counting_workload, [PIPELINE, LOCAL]),
    "token": (_run_token, [PIPELINE]),
}

MATRIX = [
    pytest.param(name, policy, seed, shards,
                 id=f"{name}-{policy.mode.value}-s{seed}-k{shards}")
    for name, (_, policies) in WORKLOADS.items()
    for policy in policies
    for seed in (0, 3, 11)
    for shards in (1, 2, 4)
]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name,policy,seed,shards", MATRIX)
    def test_sharded_matches_single_process(self, name, policy, seed,
                                            shards):
        runner = WORKLOADS[name][0]
        assert runner(policy, seed, shards=shards) == runner(policy, seed)

    def test_structural_event_streams_identical(self):
        streams = {}
        for shards in (None, 3):
            collect = Collect(kinds=(RoundStart, RoundEnd))
            g = gnp(48, 0.12, rng=5)
            net = Network(g, policy=CONGEST, seed=5, observe=collect,
                          **({"engine": "csr"} if shards is None else
                             {"engine": "sharded", "shards": shards}))
            try:
                israeli_itai(net)
            finally:
                net.close()
            streams[shards] = [
                (type(e).__name__, e.protocol, e.round,
                 getattr(e, "messages", None), getattr(e, "bits", None),
                 getattr(e, "dropped", None))
                for e in collect.events
            ]
        assert streams[3] == streams[None]
        assert any(kind == "RoundStart" for kind, *_ in streams[3])

    def test_sequential_runs_share_one_pool(self):
        # metrics accumulate across protocols on one network, and the
        # worker pool (plus per-node rng run counter) carries over
        g = gnp(56, 0.1, rng=2)
        ref = Network(g, policy=LOCAL, seed=2, engine="csr")
        mis_a = frozenset(luby_mis(ref))
        mis_b = frozenset(luby_mis(ref))
        net = Network(g, policy=LOCAL, seed=2, engine="sharded", shards=2)
        try:
            assert frozenset(luby_mis(net)) == mis_a
            assert frozenset(luby_mis(net)) == mis_b
            assert len(net._sharded_execs) == 1  # one pool, reused
            assert _metrics_tuple(net.metrics) == _metrics_tuple(ref.metrics)
        finally:
            net.close()

    def test_halo_resize_is_transparent(self, monkeypatch):
        # a 64-byte initial halo block forces generation bumps on the
        # first real round; outputs and metrics must not notice
        golden = _run_israeli(CONGEST, 3)
        monkeypatch.setattr(sharding, "INITIAL_HALO_BYTES", 64)
        assert _run_israeli(CONGEST, 3, shards=2) == golden

    def test_shard_account_populated(self):
        g = grid_graph(8, 8)
        net = Network(g, policy=LOCAL, seed=1, engine="sharded", shards=2)
        try:
            luby_mis(net)
            part = net._sharded_execs[2].partition
            assert net.metrics.shard_cut_edges == part.cut_edges > 0
            assert net.metrics.shard_imbalance == part.imbalance >= 1.0
            assert net.metrics.shard_halo_bits > 0
        finally:
            net.close()

    def test_single_shard_has_no_halo(self):
        g = gnp(40, 0.15, rng=6)
        net = Network(g, policy=LOCAL, seed=6, engine="sharded", shards=1)
        try:
            luby_mis(net)
            assert net.metrics.shard_cut_edges == 0
            assert net.metrics.shard_halo_bits == 0
        finally:
            net.close()


class TestErrorEquivalence:
    def test_round_limit_error_identical_and_pool_survives(self):
        outcomes = {}
        for shards in (None, 2):
            g = gnp(40, 0.15, rng=2)
            net = _network(g, CONGEST, 2, shards)
            try:
                with pytest.raises(ProtocolError) as exc:
                    net.run(LubyMISNode, protocol="luby_mis", max_rounds=3)
                partial = (str(exc.value), _metrics_tuple(net.metrics))
                # the pool must survive an aborted run and finish a new one
                mis = frozenset(luby_mis(net))
                outcomes[shards] = (partial, mis,
                                    _metrics_tuple(net.metrics))
            finally:
                net.close()
        assert outcomes[2] == outcomes[None]
        assert "exceeded 3 rounds" in outcomes[2][0][0]

    def test_bandwidth_exceeded_identical(self):
        # a 1x-log budget the counting pass must blow — in the same round,
        # with the same message and the same partial accounting
        outcomes = {}
        for shards in (None, 2):
            g, side, mate = _counting_instance(9)
            net = _network(g, congest(multiplier=1), 9, shards)
            try:
                with pytest.raises(BandwidthExceeded) as exc:
                    run_counting(net, side, mate, ell=6)
                outcomes[shards] = (str(exc.value),
                                    _metrics_tuple(net.metrics))
            finally:
                net.close()
        assert outcomes[2] == outcomes[None]


class TestPoolRecovery:
    """A foreign exception mid-run (a hook or subscriber raising, a
    pickling failure during dispatch, an interrupt) must never leave
    workers parked mid-protocol: the next run on a cached pool would
    silently resume the aborted protocol and return wrong outputs."""

    def test_raising_hook_aborts_run_and_next_run_is_golden(self):
        outcomes = {}
        for shards in (None, 2):
            g = gnp(40, 0.15, rng=2)
            net = _network(g, CONGEST, 2, shards)
            try:
                def boom(round_number, network):
                    raise RuntimeError("hook crashed")

                with pytest.raises(RuntimeError, match="hook crashed"):
                    net.run(LubyMISNode, protocol="luby_mis",
                            on_round_end=boom)
                if shards is not None:
                    # the ABORT handshake keeps the same pool reusable
                    assert not net._sharded_execs[2].broken
                mis = frozenset(luby_mis(net))
                outcomes[shards] = (mis, _metrics_tuple(net.metrics))
            finally:
                net.close()
        assert outcomes[2] == outcomes[None]

    def test_raising_subscriber_aborts_run_and_next_run_is_golden(self):
        class AngryOnce:
            interest = (RoundStart,)

            def __init__(self):
                self.fired = False

            def on_event(self, event):
                if not self.fired:
                    self.fired = True
                    raise ValueError("subscriber crashed")

        outcomes = {}
        for shards in (None, 2):
            g = gnp(40, 0.15, rng=4)
            net = Network(g, policy=LOCAL, seed=4, observe=AngryOnce(),
                          **({"engine": "csr"} if shards is None else
                             {"engine": "sharded", "shards": shards}))
            try:
                with pytest.raises(ValueError, match="subscriber crashed"):
                    net.run(LubyMISNode, protocol="luby_mis")
                if shards is not None:
                    assert not net._sharded_execs[2].broken
                mis = frozenset(luby_mis(net))
                outcomes[shards] = (mis, _metrics_tuple(net.metrics))
            finally:
                net.close()
        assert outcomes[2] == outcomes[None]

    def test_undispatchable_shared_closes_pool_and_rebuilds(self):
        # an unpicklable (non-callable) shared value fails inside the run
        # dispatch, after some workers may already hold the command: the
        # pool cannot be trusted and must be broken, closed, and replaced
        g = gnp(40, 0.15, rng=3)
        ref = Network(g, policy=LOCAL, seed=3, engine="csr")
        ref.run(LubyMISNode, protocol="luby_mis")  # burn run counter 1
        golden = frozenset(luby_mis(ref))
        net = _network(g, LOCAL, 3, 2)
        try:
            with pytest.raises(TypeError, match="pickle"):
                net.run(LubyMISNode, protocol="luby_mis",
                        shared={"lock": threading.Lock()})
            assert net._sharded_execs[2].broken
            assert frozenset(luby_mis(net)) == golden  # fresh pool
            assert not net._sharded_execs[2].broken
        finally:
            net.close()

    def test_keyboard_interrupt_in_wait_breaks_and_closes_pool(self):
        g = gnp(30, 0.2, rng=0)
        net = Network(g, policy=LOCAL, seed=0, engine="sharded", shards=2)
        try:
            executor = net._select_sharded(LubyMISNode, {})
            real_barrier = executor._barrier

            class Interrupted:
                def wait(self, timeout=None):
                    raise KeyboardInterrupt

                def abort(self):
                    real_barrier.abort()

            executor._barrier = Interrupted()
            # the original exception type must survive, but the pool may
            # not: broken and closed, so the next run rebuilds
            with pytest.raises(KeyboardInterrupt):
                executor._wait()
            assert executor.broken and executor._closed
        finally:
            net.close()

    def test_barrier_timeout_env_override(self, monkeypatch):
        assert sharding.barrier_timeout() == sharding.BARRIER_TIMEOUT
        monkeypatch.setenv(sharding.TIMEOUT_ENV, "12.5")
        assert sharding.barrier_timeout() == 12.5
        monkeypatch.setenv(sharding.TIMEOUT_ENV, "not-a-number")
        assert sharding.barrier_timeout() == sharding.BARRIER_TIMEOUT
        monkeypatch.setenv(sharding.TIMEOUT_ENV, "-5")
        assert sharding.barrier_timeout() == sharding.BARRIER_TIMEOUT
        monkeypatch.setenv(sharding.TIMEOUT_ENV, "12.5")
        g = gnp(30, 0.2, rng=0)
        net = Network(g, policy=LOCAL, seed=0, engine="sharded", shards=1)
        try:
            assert net._select_sharded(LubyMISNode, {}).timeout == 12.5
        finally:
            net.close()


class TestSelection:
    def _eligible_net(self, **kwargs):
        return Network(gnp(30, 0.2, rng=0), policy=LOCAL, seed=0, **kwargs)

    def test_explicit_shards_engage(self):
        net = self._eligible_net(engine="sharded", shards=1)
        try:
            assert net._select_sharded(LubyMISNode, {}) is not None
        finally:
            net.close()

    def test_shards_argument_implies_opt_in_on_csr(self):
        net = self._eligible_net(engine="csr", shards=1)
        try:
            assert net._select_sharded(LubyMISNode, {}) is not None
        finally:
            net.close()

    def test_auto_requires_size_and_cores(self):
        net = self._eligible_net(engine="csr")
        try:
            # 30 nodes is far below the auto threshold
            assert resolve_shards(net) is None
            assert net._select_sharded(LubyMISNode, {}) is None
        finally:
            net.close()

    def test_auto_sharding_composes_with_kernels(self, monkeypatch):
        monkeypatch.setattr(sharding, "AUTO_SHARD_MIN_NODES", 10)
        monkeypatch.setattr(sharding.os, "cpu_count", lambda: 4)
        net = self._eligible_net(engine="csr")
        try:
            # shard workers now run the kernel fast path themselves, so
            # auto-sharding no longer defers to it: an eligible network
            # gets a shard count whether kernels are on or off
            assert resolve_shards(net) == 4
            monkeypatch.setenv("REPRO_NO_KERNELS", "1")
            assert resolve_shards(net) == 4
        finally:
            net.close()

    def test_shard_safety_is_declared_not_inferred(self):
        from repro.congest.kernels import RoundKernel, kernel_for

        # opt-in per audited kernel: the base class never volunteers
        assert RoundKernel.shardable is False

        class Unaudited(RoundKernel):
            pass

        assert Unaudited.shardable is False
        for node_cls in (IsraeliItaiNode, LubyMISNode, CountingNode,
                         TokenNode):
            assert kernel_for(node_cls).shardable is True, node_cls

    def test_unaudited_kernel_never_shards(self, monkeypatch):
        from repro.congest import kernels

        monkeypatch.setattr(kernels.kernel_for(LubyMISNode),
                            "shardable", False)
        net = self._eligible_net(engine="sharded", shards=1)
        try:
            assert net._select_sharded(LubyMISNode, {}) is None
        finally:
            net.close()

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(sharding.SHARDS_ENV, "0")
        net = self._eligible_net(engine="sharded", shards=2)
        try:
            assert net._select_sharded(LubyMISNode, {}) is None
        finally:
            net.close()

    def test_env_forces_shards(self, monkeypatch):
        monkeypatch.setenv(sharding.SHARDS_ENV, "1")
        net = self._eligible_net(engine="csr")
        try:
            assert net._select_sharded(LubyMISNode, {}) is not None
        finally:
            net.close()

    def test_fallback_conditions(self):
        # every condition that must force single-process execution does
        class EdgePolicy(BandwidthPolicy):
            pass

        cases = {
            "faults": self._eligible_net(engine="sharded", shards=1,
                                         faults=FaultSpec(loss=0.1)),
            "policy": Network(gnp(30, 0.2, rng=0), policy=EdgePolicy(),
                              seed=0, engine="sharded", shards=1),
            "observer": self._eligible_net(
                engine="sharded", shards=1,
                observe=Collect(kinds=(MessageDelivered,))),
        }
        try:
            for label, net in cases.items():
                assert net._select_sharded(LubyMISNode, {}) is None, label
            net = self._eligible_net(engine="sharded", shards=1)
            cases["clean"] = net
            # unregistered factory (a subclass) and callable shared values
            class SubLuby(LubyMISNode):
                pass

            assert net._select_sharded(SubLuby, {}) is None
            assert net._select_sharded(
                LubyMISNode, {"observer": lambda e: None}) is None
            assert net._select_sharded(LubyMISNode, {}) is not None
        finally:
            for net in cases.values():
                net.close()

    def test_sharded_engine_falls_back_to_kernels(self):
        # an ineligible run on engine="sharded" drops down the ladder
        # (kernel, then per-node) and stays golden
        g = gnp(40, 0.15, rng=8)
        plain = Network(g, policy=CONGEST, seed=8, engine="sharded",
                        shards=1)
        try:
            assert plain._select_kernel(LubyMISNode) is not None
        finally:
            plain.close()
        results = {}
        for engine in ("csr", "sharded"):
            net = Network(g, policy=CONGEST, seed=8, engine=engine,
                          faults=FaultSpec(loss=0.1),
                          **({} if engine == "csr" else {"shards": 2}))
            try:
                assert net._select_sharded(LubyMISNode, {}) is None
                results[engine] = (frozenset(luby_mis(net)),
                                   _metrics_tuple(net.metrics))
            finally:
                net.close()
        assert results["sharded"] == results["csr"]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Network(path_graph(4), engine="node", shards=2)
        with pytest.raises(ValueError):
            Network(path_graph(4), engine="legacy", shards=2)

    def test_shards_zero_is_a_kill_switch(self):
        # shards=0 pins single-process execution (the programmatic twin of
        # REPRO_SHARDS=0) instead of raising
        net = self._eligible_net(engine="csr", shards=0)
        try:
            assert resolve_shards(net) is None
            assert net._select_sharded(LubyMISNode, {}) is None
        finally:
            net.close()

    def test_close_is_idempotent_and_network_stays_usable(self):
        g = gnp(40, 0.15, rng=1)
        ref = Network(g, policy=LOCAL, seed=1, engine="csr")
        first = frozenset(luby_mis(ref))
        second = frozenset(luby_mis(ref))  # run counter advances the rng
        net = Network(g, policy=LOCAL, seed=1, engine="sharded", shards=2)
        try:
            assert frozenset(luby_mis(net)) == first
            net.close()
            net.close()
            # a fresh pool is built on demand, resuming the run counter
            assert frozenset(luby_mis(net)) == second
            assert _metrics_tuple(net.metrics) == _metrics_tuple(ref.metrics)
        finally:
            net.close()
