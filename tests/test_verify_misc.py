"""Coverage for verifiers, certificates, results, and interop edges."""

import pytest

from repro.core.results import MatchingResult
from repro.graphs import (
    Graph,
    cycle_graph,
    gnp,
    path_graph,
    random_bipartite,
    uniform_weights,
)
from repro.graphs.interop import from_networkx, to_networkx
from repro.matching import (
    Matching,
    MatchingError,
    certify,
    has_augmenting_path_shorter_than,
    is_maximal,
    verify_matching,
)
from repro.matching.verify import Certificate


class TestVerifyMatching:
    def test_accepts_valid(self):
        g = path_graph(4)
        verify_matching(g, Matching([(0, 1), (2, 3)]))

    def test_rejects_non_edge(self):
        g = path_graph(4)
        with pytest.raises(MatchingError):
            verify_matching(g, Matching([(0, 2)]))

    def test_empty_matching_valid_everywhere(self):
        verify_matching(cycle_graph(5), Matching())


class TestIsMaximal:
    def test_maximal(self):
        g = path_graph(3)
        assert is_maximal(g, Matching([(0, 1)]))
        assert is_maximal(g, Matching([(1, 2)]))

    def test_not_maximal(self):
        g = path_graph(3)
        assert not is_maximal(g, Matching())


class TestHasShortAugmentingPath:
    def test_detects(self):
        g = path_graph(2)
        assert has_augmenting_path_shorter_than(g, Matching(), 2)
        assert not has_augmenting_path_shorter_than(
            g, Matching([(0, 1)]), 100)

    def test_threshold_exclusive(self):
        g = path_graph(4)
        m = Matching([(1, 2)])
        # the only augmenting path has length 3
        assert not has_augmenting_path_shorter_than(g, m, 3)
        assert has_augmenting_path_shorter_than(g, m, 4)


class TestCertificate:
    def test_certify_full(self):
        g = path_graph(4)
        m = Matching([(0, 1), (2, 3)])
        cert = certify(g, m, optimum_size=2)
        assert cert.valid and cert.maximal
        assert cert.cardinality_ratio == 1.0

    def test_zero_optimum(self):
        g = Graph()
        g.add_nodes(range(3))
        cert = certify(g, Matching(), optimum_size=0, optimum_weight=0.0)
        assert cert.cardinality_ratio == 1.0
        assert cert.weight_ratio == 1.0

    def test_missing_optimum_means_none(self):
        g = path_graph(2)
        cert = certify(g, Matching([(0, 1)]))
        assert cert.cardinality_ratio is None
        assert cert.weight_ratio is None

    def test_certify_raises_on_invalid(self):
        g = path_graph(3)
        with pytest.raises(MatchingError):
            certify(g, Matching([(0, 2)]))


class TestMatchingResult:
    def test_fields(self):
        g = path_graph(2)
        m = Matching([(0, 1)])
        cert = certify(g, m, optimum_size=1)
        res = MatchingResult(matching=m, algorithm="x", certificate=cert)
        assert res.size == 1
        assert res.weight == 1.0
        assert res.rounds is None


class TestInterop:
    def test_round_trip_plain(self):
        g = gnp(12, 0.3, rng=1, weight_fn=uniform_weights())
        back = from_networkx(to_networkx(g))
        assert set(back.edges()) == set(g.edges())
        assert back.nodes == g.nodes

    def test_bipartite_round_trip(self):
        g = random_bipartite(5, 6, 0.4, rng=2)
        nxg = to_networkx(g)
        back = from_networkx(nxg, bipartite_left=set(g.left))
        from repro.graphs import BipartiteGraph

        assert isinstance(back, BipartiteGraph)
        assert back.left == g.left

    def test_missing_weight_defaults_to_one(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.weight(0, 1) == 1.0

    def test_exactness_agreement_on_random_instances(self):
        import networkx as nx

        from repro.matching.sequential import max_cardinality

        for seed in range(3):
            g = gnp(16, 0.25, rng=seed)
            ours = max_cardinality(g).size
            theirs = len(nx.max_weight_matching(to_networkx(g),
                                                maxcardinality=True))
            assert ours == theirs
