"""Tests for distributed self-verification."""

import pytest

from repro.congest import Network
from repro.dist import israeli_itai
from repro.dist.checkers import check_matching, check_maximality
from repro.graphs import Graph, gnp, path_graph


class TestCheckMatching:
    def test_accepts_correct_output(self):
        g = gnp(30, 0.15, rng=1)
        net = Network(g, seed=1)
        m = israeli_itai(net)
        mate = m.as_mate_map(g.nodes)
        assert check_matching(net, mate) == set()

    def test_detects_asymmetric_register(self):
        g = path_graph(3)
        net = Network(g, seed=0)
        mate = {0: 1, 1: None, 2: None}  # 0 claims 1, 1 denies
        bad = check_matching(net, mate)
        assert 0 in bad or 1 in bad

    def test_detects_non_neighbor_register(self):
        g = path_graph(3)
        net = Network(g, seed=0)
        mate = {0: 2, 1: None, 2: 0}  # 0-2 is not an edge
        assert check_matching(net, mate) != set()

    def test_isolated_node_must_be_free(self):
        g = Graph()
        g.add_node(0)
        g.add_edge(1, 2)
        net = Network(g, seed=0)
        assert check_matching(net, {0: 5, 1: 2, 2: 1}) == {0}


class TestCheckMaximality:
    def test_accepts_maximal(self):
        g = gnp(25, 0.2, rng=2)
        net = Network(g, seed=2)
        m = israeli_itai(net)
        assert check_maximality(net, m.as_mate_map(g.nodes)) == set()

    def test_flags_free_free_edge(self):
        g = path_graph(2)
        net = Network(g, seed=0)
        witnesses = check_maximality(net, {0: None, 1: None})
        assert witnesses == {0, 1}

    def test_non_maximal_partial(self):
        g = path_graph(5)  # 0-1-2-3-4
        net = Network(g, seed=0)
        mate = {0: 1, 1: 0, 2: None, 3: None, 4: None}
        witnesses = check_maximality(net, mate)
        assert {2, 3} <= witnesses

    def test_costs_one_round(self):
        g = gnp(20, 0.2, rng=3)
        net = Network(g, seed=3)
        m = israeli_itai(net)
        before = net.metrics.rounds
        check_matching(net, m.as_mate_map(g.nodes))
        check_maximality(net, m.as_mate_map(g.nodes))
        assert net.metrics.rounds - before <= 4
