"""Tests for the composable protocol runtime (repro.congest.runtime).

Covers the Subnetwork lifecycle (seed spawning, the three fold modes,
event nesting, fault inheritance), the PhaseDriver scaffold, the shared
ProtocolResult surface, and the deprecation shims: ``subnetworks=
"detached"`` driver paths and legacy two-argument black-box callables are
golden-pinned to the exact pre-runtime behavior.
"""

import random
import warnings

import pytest

from repro.congest import (
    CONGEST,
    LOCAL,
    EventBus,
    FaultSpec,
    MISDecision,
    Network,
    PhaseDriver,
    PhaseEnd,
    PhaseStart,
    Profiler,
    ProtocolResult,
    RoundStart,
    Subnetwork,
    as_network,
    nested_network,
    register_map,
)
from repro.dist import generic_mcm, spawn_rng, spawn_seed
from repro.dist.luby_mis import luby_mis
from repro.dist.weighted import approximate_mwm, class_greedy_mwm
from repro.dist.weighted.hv_local import hv_mwm
from repro.graphs import gnp, path_graph, uniform_weights
from repro.matching import verify_matching


class Collect:
    """Minimal observer: records every event it is routed."""

    def __init__(self, kinds=None):
        if kinds is not None:
            self.interest = kinds
        self.events = []

    def on_event(self, event):
        self.events.append(event)

    def of(self, cls):
        return [e for e in self.events if isinstance(e, cls)]


def metric_tuple(metrics):
    return (metrics.total_rounds, metrics.messages, metrics.total_bits,
            metrics.max_message_bits)


# ---------------------------------------------------------------------------
# seed spawning
# ---------------------------------------------------------------------------

class TestSpawnSeed:
    def test_deterministic_and_64_bit(self):
        a = spawn_seed(7, "conflict", 3)
        assert a == spawn_seed(7, "conflict", 3)
        assert 0 <= a < 2 ** 64

    def test_distinct_across_path_and_root(self):
        seeds = {
            spawn_seed(0, "conflict", 1),
            spawn_seed(0, "conflict", 2),
            spawn_seed(0, "class_mis", 1),
            spawn_seed(1, "conflict", 1),
            spawn_seed(0, "conflict"),
            spawn_seed(0),
        }
        assert len(seeds) == 6

    def test_order_sensitive(self):
        assert spawn_seed(0, 1, 2) != spawn_seed(0, 2, 1)
        assert spawn_seed(0, "a", "b") != spawn_seed(0, "b", "a")

    def test_string_elements_are_process_stable(self):
        # pinned values: builtin hash() is salted per process, so the
        # derivation must not depend on it.  These constants only change
        # if the mixing function changes — which would silently re-seed
        # every subnetwork in the repo.
        assert spawn_seed(0, "conflict", 1) == 841572270994800358
        assert spawn_seed(0, "conflict", 2) == 1168021146989943882
        assert spawn_seed(1, "conflict", 1) == 13301429639097598436

    def test_spawn_rng_matches_spawn_seed(self):
        rng = spawn_rng(5, "x", 2)
        twin = random.Random(spawn_seed(5, "x", 2))
        assert [rng.random() for _ in range(4)] == \
            [twin.random() for _ in range(4)]

    def test_rejects_bad_path_elements(self):
        with pytest.raises(TypeError):
            spawn_seed(0, 1.5)


# ---------------------------------------------------------------------------
# register_map
# ---------------------------------------------------------------------------

class TestRegisterMap:
    def test_extracts_key_per_node(self):
        outputs = {1: {"mate": 2}, 2: {"mate": 1}, 3: {"mate": None}}
        assert register_map(outputs) == {1: 2, 2: 1, 3: None}

    def test_missing_outputs_use_fallback_then_default(self):
        outputs = {1: {"mate": 2}, 2: None, 3: None}
        assert register_map(outputs, fallback={2: 1}) == {1: 2, 2: 1, 3: None}
        assert register_map(outputs, default=-1) == {1: 2, 2: -1, 3: -1}

    def test_custom_key(self):
        outputs = {1: {"ok": True}, 2: None}
        assert register_map(outputs, key="ok", default=False) == \
            {1: True, 2: False}


# ---------------------------------------------------------------------------
# Subnetwork lifecycle and fold modes
# ---------------------------------------------------------------------------

class TestSubnetwork:
    def test_seed_spawned_from_parent_label_and_path(self):
        parent = Network(path_graph(4), seed=9)
        sub = parent.subnetwork(path_graph(3), label="conflict",
                                seed_path=(5,))
        assert sub.seed == spawn_seed(9, "conflict", 5)
        explicit = parent.subnetwork(path_graph(3), label="conflict",
                                     seed=1234)
        assert explicit.seed == 1234

    def test_inherits_policy_engine_and_bus(self):
        bus = EventBus()
        parent = Network(path_graph(4), policy=LOCAL, seed=0, observe=bus)
        sub = parent.subnetwork(path_graph(3), label="x")
        assert sub.network.policy is LOCAL
        assert sub.network.engine == parent.engine
        assert sub.network.bus is bus

    def test_invalid_fold_mode_rejected(self):
        parent = Network(path_graph(3))
        with pytest.raises(ValueError):
            parent.subnetwork(path_graph(2), label="x", fold="merge")

    def test_emulate_charges_parent_and_fills_sub_account(self):
        parent = Network(path_graph(6), policy=LOCAL, seed=3)
        with parent.subnetwork(path_graph(6), label="mis", policy=LOCAL,
                               emulation_factor=3,
                               charge_label="mis_emulation") as sub:
            luby_mis(sub)
            child_rounds = sub.rounds
            child_messages = sub.metrics.messages
            child_bits = sub.metrics.total_bits
        assert child_rounds > 0
        m = parent.metrics
        assert m.protocol_rounds["mis_emulation"] == 3 * child_rounds
        assert m.total_rounds == 3 * child_rounds
        assert m.messages == 0  # traffic stays virtual by default
        assert (m.sub_rounds, m.sub_messages, m.sub_bits) == \
            (child_rounds, child_messages, child_bits)
        assert m.subnetwork_rounds == {"mis": child_rounds}
        assert m.rounds_total == m.total_rounds + child_rounds

    def test_emulate_fold_traffic_moves_traffic_to_physical_account(self):
        parent = Network(path_graph(6), policy=LOCAL, seed=3)
        with parent.subnetwork(path_graph(6), label="mis", policy=LOCAL,
                               fold_traffic=True) as sub:
            luby_mis(sub)
            child_messages = sub.metrics.messages
            child_bits = sub.metrics.total_bits
        m = parent.metrics
        assert (m.messages, m.total_bits) == (child_messages, child_bits)
        # no double count: folded traffic must not also sit in the
        # subnetwork account
        assert (m.sub_messages, m.sub_bits) == (0, 0)
        assert m.sub_rounds > 0

    def test_absorb_folds_physically_without_double_count(self):
        parent = Network(path_graph(6), seed=2)
        with parent.subnetwork(path_graph(6), label="box",
                               fold="absorb") as sub:
            luby_mis(sub)
            child = metric_tuple(sub.metrics)
            child_rounds = sub.rounds
        m = parent.metrics
        assert metric_tuple(m) == child
        assert (m.sub_rounds, m.sub_messages, m.sub_bits) == (0, 0, 0)
        assert m.subnetwork_rounds == {"box": child_rounds}
        assert m.rounds_total == m.total_rounds

    def test_none_fold_is_bookkeeping_only(self):
        parent = Network(path_graph(6), seed=2)
        with parent.subnetwork(path_graph(6), label="probe",
                               fold="none") as sub:
            luby_mis(sub)
            child_rounds = sub.rounds
        m = parent.metrics
        assert metric_tuple(m) == (0, 0, 0, 0)
        assert m.sub_rounds == child_rounds
        assert m.subnetwork_rounds == {"probe": child_rounds}

    def test_repeated_labels_accumulate(self):
        parent = Network(path_graph(6), policy=LOCAL, seed=1)
        total = 0
        for it in range(2):
            with parent.subnetwork(path_graph(6), label="mis",
                                   policy=LOCAL, seed_path=(it,)) as sub:
                luby_mis(sub)
                total += sub.rounds
        assert parent.metrics.subnetwork_rounds == {"mis": total}
        assert parent.metrics.sub_rounds == total

    def test_child_events_nested_between_phase_pair(self):
        bus = EventBus()
        collect = bus.subscribe(Collect(
            kinds=(PhaseStart, PhaseEnd, RoundStart, MISDecision)))
        parent = Network(path_graph(5), policy=LOCAL, seed=0, observe=bus)
        with parent.subnetwork(path_graph(5), label="mis", policy=LOCAL,
                               algorithm="demo", phase="mis pass") as sub:
            luby_mis(sub)
        kinds = [e.kind for e in collect.events]
        assert kinds[0] == "phase_start"
        assert kinds[-1] == "phase_end"
        assert "round_start" in kinds[1:-1] and "mis_decision" in kinds[1:-1]
        start, end = collect.events[0], collect.events[-1]
        assert (start.algorithm, start.phase) == ("demo", "mis pass")
        assert (end.algorithm, end.phase) == ("demo", "mis pass")
        assert end.detail["fold"] == "emulate"
        assert end.detail["rounds"] == parent.metrics.sub_rounds
        assert end.detail["messages"] > 0

    def test_unobserved_subnetwork_emits_nothing(self):
        parent = Network(path_graph(5), policy=LOCAL, seed=0)
        with parent.subnetwork(path_graph(5), label="mis",
                               policy=LOCAL) as sub:
            luby_mis(sub)
        assert parent.metrics.sub_rounds > 0  # folding still happened

    def test_failure_closes_phase_without_folding(self):
        bus = EventBus()
        collect = bus.subscribe(Collect(kinds=(PhaseStart, PhaseEnd)))
        parent = Network(path_graph(5), policy=LOCAL, seed=0, observe=bus)
        with pytest.raises(RuntimeError):
            with parent.subnetwork(path_graph(5), label="mis",
                                   policy=LOCAL) as sub:
                luby_mis(sub)
                raise RuntimeError("boom")
        ends = collect.of(PhaseEnd)
        assert len(ends) == 1 and ends[0].detail["failed"] is True
        assert parent.metrics.sub_rounds == 0
        assert parent.metrics.total_rounds == 0

    def test_close_is_idempotent(self):
        parent = Network(path_graph(5), policy=LOCAL, seed=0)
        with parent.subnetwork(path_graph(5), label="mis",
                               policy=LOCAL) as sub:
            luby_mis(sub)
        folded = parent.metrics.sub_rounds
        sub.close()
        sub.close()
        assert parent.metrics.sub_rounds == folded

    def test_run_delegates_to_child_network(self):
        parent = Network(path_graph(5), policy=LOCAL, seed=0)
        with parent.subnetwork(path_graph(5), label="mis",
                               policy=LOCAL) as sub:
            mis = luby_mis(sub)  # luby_mis accepts the Subnetwork directly
        assert mis  # nonempty on a path
        assert as_network(sub) is sub.network
        net = Network(path_graph(3))
        assert as_network(net) is net


class TestSubnetworkFaults:
    def test_faultspec_reaches_mis_subprotocol(self):
        """A parent FaultSpec must reach protocols run on a Subnetwork."""
        g = gnp(24, 0.3, rng=random.Random(0))
        parent = Network(g, policy=LOCAL, seed=0,
                         faults=FaultSpec(loss=0.3))
        with parent.subnetwork(g, label="mis", policy=LOCAL,
                               max_rounds=400) as sub:
            assert sub.network.faults is parent.faults
            luby_mis(sub)
            assert sub.network.dropped > 0
            child_dropped = sub.network.dropped
        # the child's drop count folds up so fault injection is visible
        # end to end
        assert parent.dropped == child_dropped

    def test_sibling_subnetworks_get_decorrelated_drop_streams(self):
        g = gnp(24, 0.3, rng=random.Random(0))

        def signature_on(label):
            parent = Network(g, policy=LOCAL, seed=0,
                             faults=FaultSpec(loss=0.3))
            with parent.subnetwork(g, label=label, policy=LOCAL,
                                   max_rounds=400) as sub:
                luby_mis(sub)
            return (parent.dropped, parent.metrics.sub_rounds,
                    parent.metrics.sub_messages)

        # FaultSpec(seed=None) follows the network seed, and sibling
        # subnetworks spawn distinct seeds — so their loss patterns differ.
        # Raw drop totals alone can collide by chance, so compare the whole
        # run signature the drop pattern shapes.
        assert signature_on("a") != signature_on("b")


# ---------------------------------------------------------------------------
# PhaseDriver scaffold
# ---------------------------------------------------------------------------

class TestPhaseDriver:
    def test_phase_emits_scoped_pair_with_detail(self):
        bus = EventBus()
        collect = bus.subscribe(Collect(kinds=(PhaseStart, PhaseEnd)))
        net = Network(path_graph(4), observe=bus)
        driver = PhaseDriver(net, "demo")
        assert driver.observed
        with driver.phase("stage=1") as ph:
            ph.set_detail(applied=3)
            ph.set_detail(size=7)
        start, end = collect.events
        assert (start.algorithm, start.phase) == ("demo", "stage=1")
        assert end.detail == {"applied": 3, "size": 7}

    def test_unobserved_driver_emits_nothing(self):
        net = Network(path_graph(4))
        driver = PhaseDriver(net, "demo")
        assert not driver.observed
        with driver.phase("stage=1") as ph:
            ph.set_detail(x=1)  # harmless without listeners

    def test_emit_augmentation_is_gated_on_interest(self):
        bus = EventBus()
        collect = bus.subscribe(Collect(kinds=("augmentation",)))
        net = Network(path_graph(4), observe=bus)
        driver = PhaseDriver(net, "demo")
        driver.emit_augmentation("p", paths=2, size=5, gain=1.5)
        (event,) = collect.events
        assert (event.paths, event.size, event.gain) == (2, 5, 1.5)
        silent = PhaseDriver(Network(path_graph(4)), "demo")
        silent.emit_augmentation("p", paths=1, size=1)  # no bus: no-op

    def test_subnetwork_tags_driver_algorithm(self):
        net = Network(path_graph(4), seed=0)
        driver = PhaseDriver(net, "demo")
        sub = driver.subnetwork(path_graph(3), label="conflict")
        assert sub.algorithm == "demo"
        assert sub.phase == "subnet:conflict"


class TestProtocolResult:
    def test_metrics_and_rounds_total_surface(self):
        net = Network(path_graph(4), policy=LOCAL, seed=0)
        with net.subnetwork(path_graph(4), label="mis",
                            policy=LOCAL) as sub:
            luby_mis(sub)
        result = ProtocolResult(network=net)
        assert result.metrics is net.metrics
        assert result.rounds_total == net.metrics.rounds_total
        assert result.rounds_total > net.metrics.total_rounds
        detached = ProtocolResult()
        assert detached.metrics is None and detached.rounds_total is None


# ---------------------------------------------------------------------------
# driver composition: inherited subnetworks
# ---------------------------------------------------------------------------

class TestDriverComposition:
    def test_generic_mcm_sub_costs_visible_in_parent(self):
        g = gnp(18, 0.18, rng=random.Random(0))
        result = generic_mcm(g, k=2, seed=0)
        m = result.metrics
        assert m.sub_rounds > 0
        assert "conflict" in m.subnetwork_rounds
        assert m.rounds_total == m.total_rounds + m.sub_rounds
        assert result.rounds_total == m.rounds_total
        verify_matching(g, result.matching)

    def test_hv_mwm_sub_costs_visible_in_parent(self):
        g = gnp(14, 0.3, rng=random.Random(1),
                weight_fn=uniform_weights())
        result = hv_mwm(g, eps=0.25, seed=1)
        m = result.metrics
        assert m.sub_rounds > 0
        assert "class_mis" in m.subnetwork_rounds
        assert m.rounds_total == m.total_rounds + m.sub_rounds

    def test_profiler_sees_nested_subnetwork_phases(self):
        g = gnp(18, 0.18, rng=random.Random(0))
        profiler = Profiler(clock=lambda: 0.0)
        net = Network(g, policy=LOCAL, seed=0, observe=profiler)
        generic_mcm(g, k=2, network=net)
        assert "luby_mis" in profiler.protocols  # child rounds profiled
        sub_phases = [key for key in profiler.phases
                      if key[0] == "generic_mcm"
                      and key[1].startswith("conflict ell=")]
        assert sub_phases
        assert any(profiler.phases[key].rounds > 0 for key in sub_phases)

    def test_generic_mcm_runs_under_faults(self):
        """End to end: FaultSpec reaches Algorithm 1's MIS subnetworks.

        The loss rate is deliberately mild — Algorithm 1 asserts MIS
        independence, which heavy loss can genuinely break (lost Luby
        coin announcements); the point here is that drops *happen inside
        the sub-protocol* and surface on the parent.
        """
        g = gnp(18, 0.18, rng=random.Random(1))
        net = Network(g, policy=LOCAL, seed=0, faults=FaultSpec(loss=0.02))
        result = generic_mcm(g, k=2, network=net)
        assert net.dropped > 0
        verify_matching(g, result.matching)


# ---------------------------------------------------------------------------
# deprecation shims, golden-pinned (PR 2 pattern)
# ---------------------------------------------------------------------------

class TestDeprecationShims:
    """The detached paths must reproduce the pre-runtime goldens exactly."""

    def test_generic_mcm_detached_golden(self, monkeypatch):
        # this golden was pinned against the pre-1.4 additive node_rng
        # streams; the compat shim restores them (networks constructed
        # after the env flip pick it up)
        monkeypatch.setenv("REPRO_ADDITIVE_NODE_RNG", "1")
        g = gnp(18, 0.18, rng=random.Random(0))
        with pytest.warns(DeprecationWarning, match="detached"):
            result = generic_mcm(g, k=2, seed=0, subnetworks="detached")
        assert sorted(result.matching.edges()) == [
            (2, 5), (7, 14), (8, 13), (9, 17), (10, 11), (12, 16)]
        assert metric_tuple(result.metrics) == (22, 458, 46285, 346)
        assert result.metrics.protocol_rounds == {
            "augmentation": 4, "local_views": 8, "mis_emulation": 10}
        # detached children fold nothing into the subnetwork account
        assert result.metrics.sub_rounds == 0
        assert result.rounds_total == 22

    def test_hv_mwm_detached_golden(self):
        g = gnp(14, 0.3, rng=random.Random(1),
                weight_fn=uniform_weights())
        with pytest.warns(DeprecationWarning, match="detached"):
            result = hv_mwm(g, eps=0.25, seed=1, subnetworks="detached")
        assert sorted(result.matching.edges()) == [
            (0, 3), (1, 12), (2, 6), (4, 5), (7, 10), (8, 13), (9, 11)]
        assert metric_tuple(result.metrics) == (117, 516, 81366, 341)
        weight = sum(g.weight(u, v) for u, v in result.matching.edges())
        assert weight == pytest.approx(467.8218915799)

    def test_legacy_black_box_callable_matches_composable(self):
        g = gnp(16, 0.25, rng=random.Random(3),
                weight_fn=uniform_weights())

        def legacy_box(graph, seed):  # historical 2-arg contract
            return class_greedy_mwm(graph, seed=seed)

        with pytest.warns(DeprecationWarning, match="detached"):
            old = approximate_mwm(g, eps=0.2, seed=3, black_box=legacy_box)
        new = approximate_mwm(g, eps=0.2, seed=3, black_box="class_greedy")
        # the subnetwork child gets the same historical seed and policy, so
        # the two paths are bit-identical
        assert sorted(old.matching.edges()) == sorted(new.matching.edges())
        assert metric_tuple(old.metrics) == metric_tuple(new.metrics)
        assert old.metrics.subnetwork_rounds == new.metrics.subnetwork_rounds

    def test_nested_network_shim_is_detached(self):
        parent = Network(path_graph(5), policy=LOCAL, seed=11)
        with pytest.warns(DeprecationWarning, match="nested_network"):
            child = nested_network(parent, path_graph(3))
        assert child.seed == 11 and child.policy is LOCAL
        assert child.faults is None
        luby_mis(child)
        assert parent.metrics.total_rounds == 0  # nothing folds back
