"""Tests for Algorithm 3 (path counting) and the token selection protocol.

The counting claims (Lemma 3.8) are validated against explicit path
enumeration; the token protocol is checked to always produce disjoint valid
augmentations.
"""

import pytest

from repro.congest import PIPELINE, Network
from repro.dist import (
    X_SIDE,
    Y_SIDE,
    leaders_of,
    run_counting,
    run_token_selection,
    sample_max_uniform,
    side_map_of,
    weighted_choice,
)
from repro.graphs import BipartiteGraph, complete_bipartite, crown_graph, random_bipartite
from repro.matching import Matching, enumerate_augmenting_paths
from repro.matching.core import Matching as M


def _setup(graph, matching):
    side = side_map_of(graph)
    mate = {v: matching.mate(v) for v in graph.nodes}
    net = Network(graph, policy=PIPELINE, seed=0)
    return net, side, mate


class TestCountingLemma38:
    def test_single_edge(self):
        g = BipartiteGraph([0], [1])
        g.add_edge(0, 1)
        net, side, mate = _setup(g, Matching())
        outputs = run_counting(net, side, mate, ell=1)
        assert outputs[1].t == 1
        assert outputs[1].total == 1
        assert outputs[0].t == 0

    def test_counts_equal_enumerated_paths(self):
        for seed in range(4):
            g = random_bipartite(10, 10, 0.3, rng=seed)
            matching = Matching()
            net, side, mate = _setup(g, matching)
            outputs = run_counting(net, side, mate, ell=1)
            paths = enumerate_augmenting_paths(g, matching, 1)
            # count paths ending at each free Y node
            by_y = {}
            for p in paths:
                y = p[0] if side[p[0]] == Y_SIDE else p[-1]
                by_y[y] = by_y.get(y, 0) + 1
            leaders = leaders_of(outputs, side, mate, 1)
            assert {y: st.total for y, st in leaders.items()} == by_y

    def test_counts_length_three(self):
        # 0-2 matched; free 1 (X) and free 3 (Y): 1-2... build explicitly
        g = BipartiteGraph([0, 1], [2, 3])
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        g.add_edge(0, 3)
        matching = Matching([(0, 2)])
        net, side, mate = _setup(g, matching)
        outputs = run_counting(net, side, mate, ell=3)
        # unique augmenting path 1-2-0-3
        leaders = leaders_of(outputs, side, mate, 3)
        assert set(leaders) == {3}
        assert leaders[3].total == 1

    def test_count_multiplicity(self):
        # K_{2,2} plus an extra free Y: two length-3 paths to it? Construct
        # X={0,1}, Y={2,3}; matched (0,2),(1,3); add free X 4 and free Y 5
        g = BipartiteGraph([0, 1, 4], [2, 3, 5])
        for u in (0, 1):
            for v in (2, 3):
                g.add_edge(u, v)
        g.add_edge(4, 2)
        g.add_edge(4, 3)
        g.add_edge(0, 5)
        g.add_edge(1, 5)
        matching = Matching([(0, 2), (1, 3)])
        net, side, mate = _setup(g, matching)
        outputs = run_counting(net, side, mate, ell=3)
        leaders = leaders_of(outputs, side, mate, 3)
        # paths: 4-2-0-5 and 4-3-1-5 -> two paths end at 5
        assert leaders[5].total == 2
        expected = enumerate_augmenting_paths(g, matching, 3)
        assert len(expected) == 2

    def test_no_leaders_when_maximum(self):
        g = complete_bipartite(3, 3)
        matching = Matching([(0, 3), (1, 4), (2, 5)])
        net, side, mate = _setup(g, matching)
        outputs = run_counting(net, side, mate, ell=1)
        assert leaders_of(outputs, side, mate, 1) == {}
        outputs = run_counting(net, side, mate, ell=3)
        assert leaders_of(outputs, side, mate, 3) == {}

    def test_matched_y_records_but_is_not_leader(self):
        g = BipartiteGraph([0], [1])
        g.add_edge(0, 1)
        matching = Matching([(0, 1)])
        net, side, mate = _setup(g, matching)
        outputs = run_counting(net, side, mate, ell=1)
        assert leaders_of(outputs, side, mate, 1) == {}


class TestTokenSelection:
    def _value_cap(self, g, ell):
        n_bound = max(2, g.num_nodes) * max(2, g.max_degree) ** ((ell + 1) // 2)
        return n_bound ** 4

    def test_single_augmentation(self):
        g = BipartiteGraph([0], [1])
        g.add_edge(0, 1)
        net, side, mate = _setup(g, Matching())
        outputs = run_counting(net, side, mate, ell=1)
        new_mate, applied = run_token_selection(
            net, side, mate, 1, outputs, self._value_cap(g, 1))
        assert applied == 1
        assert new_mate[0] == 1 and new_mate[1] == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_augmentations_always_valid_and_disjoint(self, seed):
        g = random_bipartite(12, 12, 0.25, rng=seed)
        matching = Matching()
        net, side, mate = _setup(g, matching)
        ell = 1
        outputs = run_counting(net, side, mate, ell)
        leaders = leaders_of(outputs, side, mate, ell)
        if not leaders:
            pytest.skip("no length-1 paths in this instance")
        new_mate, applied = run_token_selection(
            net, side, mate, ell, outputs, self._value_cap(g, ell))
        assert applied >= 1
        m2 = Matching.from_mate_map(new_mate)
        # validity: every matched pair is a graph edge
        for u, v in m2.edges():
            assert g.has_edge(u, v)
        assert m2.size == matching.size + applied

    def test_progress_until_no_short_paths(self):
        g = crown_graph(6)
        matching = Matching()
        net, side, mate = _setup(g, matching)
        ell = 1
        for _ in range(50):
            outputs = run_counting(net, side, mate, ell)
            leaders = leaders_of(outputs, side, mate, ell)
            if not leaders:
                break
            mate, applied = run_token_selection(
                net, side, mate, ell, outputs, self._value_cap(g, ell))
            assert applied >= 1
        m = Matching.from_mate_map(mate)
        assert enumerate_augmenting_paths(g, m, 1) == []


class TestRandomTools:
    def test_sample_max_uniform_range(self):
        import random

        rng = random.Random(0)
        for _ in range(100):
            v = sample_max_uniform(rng, 5, 1000)
            assert 1 <= v <= 1000

    def test_sample_max_stochastic_dominance(self):
        import random

        rng = random.Random(1)
        lo = [sample_max_uniform(rng, 1, 10 ** 6) for _ in range(400)]
        hi = [sample_max_uniform(rng, 50, 10 ** 6) for _ in range(400)]
        assert sum(hi) / len(hi) > sum(lo) / len(lo)

    def test_sample_max_validation(self):
        import random

        rng = random.Random(0)
        with pytest.raises(ValueError):
            sample_max_uniform(rng, 0, 10)
        with pytest.raises(ValueError):
            sample_max_uniform(rng, 1, 0)

    def test_weighted_choice_proportional(self):
        import random

        rng = random.Random(2)
        counts = {1: 0, 2: 0}
        for _ in range(3000):
            counts[weighted_choice(rng, {1: 1, 2: 3})] += 1
        assert counts[2] > 2 * counts[1]

    def test_weighted_choice_validation(self):
        import random

        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), {1: 0})
