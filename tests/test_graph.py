"""Tests for the Graph and BipartiteGraph data structures."""

import pytest

from repro.graphs import BipartiteGraph, Graph, GraphError, edge_key


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_equal_endpoints_allowed_by_key(self):
        assert edge_key(2, 2) == (2, 2)


class TestGraphConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.max_degree == 0

    def test_add_nodes_and_edges(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2, weight=2.5)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.weight(1, 2) == 2.5
        assert g.weight(0, 1) == 1.0

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(5)
        g.add_node(5)
        assert g.nodes == [5]

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_nonpositive_weight_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(0, 1, weight=0.0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, weight=-2.0)

    def test_non_integer_node_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("a")

    def test_parallel_edge_keeps_heavier(self):
        g = Graph()
        g.add_edge(0, 1, weight=3.0)
        g.add_edge(1, 0, weight=1.0)
        assert g.weight(0, 1) == 3.0
        g.add_edge(0, 1, weight=7.0)
        assert g.weight(0, 1) == 7.0
        assert g.num_edges == 1


class TestGraphQueries:
    @pytest.fixture
    def triangle(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(0, 2, 3.0)
        return g

    def test_neighbors_sorted(self, triangle):
        assert triangle.neighbors(1) == [0, 2]

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2
        assert triangle.max_degree == 2

    def test_edges_iteration_canonical(self, triangle):
        edges = list(triangle.edges())
        assert edges == [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == 6.0

    def test_has_edge(self, triangle):
        assert triangle.has_edge(2, 0)
        assert not triangle.has_edge(0, 5)

    def test_contains(self, triangle):
        assert 0 in triangle
        assert 9 not in triangle

    def test_missing_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(9)
        with pytest.raises(GraphError):
            triangle.degree(9)
        with pytest.raises(GraphError):
            triangle.weight(0, 9)

    def test_is_unweighted(self, triangle):
        assert not triangle.is_unweighted()
        g = Graph()
        g.add_edge(0, 1)
        assert g.is_unweighted()


class TestGraphMutation:
    def test_remove_edge(self):
        g = Graph()
        g.add_edge(0, 1)
        g.remove_edge(1, 0)
        assert g.num_edges == 0
        assert g.num_nodes == 2
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_remove_node(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.remove_node(1)
        assert g.num_nodes == 2
        assert g.num_edges == 0
        with pytest.raises(GraphError):
            g.remove_node(1)

    def test_copy_is_independent(self):
        g = Graph()
        g.add_edge(0, 1, 2.0)
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2
        assert h.weight(0, 1) == 2.0


class TestDerivedGraphs:
    def test_subgraph_induced(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub = g.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.edge_set() == {(0, 1), (1, 2)}

    def test_subgraph_ignores_missing(self):
        g = Graph()
        g.add_edge(0, 1)
        sub = g.subgraph([0, 1, 99])
        assert sub.num_nodes == 2

    def test_edge_subgraph(self):
        g = Graph()
        g.add_edge(0, 1, 5.0)
        g.add_edge(1, 2)
        sub = g.edge_subgraph([(0, 1)])
        assert sub.edge_set() == {(0, 1)}
        assert sub.weight(0, 1) == 5.0

    def test_connected_components(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_node(4)
        comps = sorted(map(sorted, g.connected_components()))
        assert comps == [[0, 1], [2, 3], [4]]


class TestTraversal:
    def test_bfs_distances(self):
        g = Graph()
        for i in range(4):
            g.add_edge(i, i + 1)
        dist = g.bfs_distances(0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_limit(self):
        g = Graph()
        for i in range(4):
            g.add_edge(i, i + 1)
        dist = g.bfs_distances(0, limit=2)
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_diameter_path(self):
        g = Graph()
        for i in range(5):
            g.add_edge(i, i + 1)
        assert g.diameter() == 5

    def test_diameter_disconnected_raises(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        with pytest.raises(GraphError):
            g.diameter()

    def test_ball(self):
        g = Graph()
        for i in range(5):
            g.add_edge(i, i + 1)
        assert g.ball(2, 1) == {1, 2, 3}


class TestBipartition:
    def test_even_cycle_bipartite(self):
        g = Graph()
        for i in range(4):
            g.add_edge(i, (i + 1) % 4)
        split = g.bipartition()
        assert split is not None
        left, right = split
        assert left | right == {0, 1, 2, 3}
        for u, v, _ in g.edges():
            assert (u in left) != (v in left)

    def test_odd_cycle_not_bipartite(self):
        g = Graph()
        for i in range(5):
            g.add_edge(i, (i + 1) % 5)
        assert g.bipartition() is None


class TestBipartiteGraph:
    def test_sides(self):
        g = BipartiteGraph([0, 1], [2, 3])
        g.add_edge(0, 2)
        assert g.side(0) == "left"
        assert g.side(2) == "right"
        assert g.is_left(1)
        assert not g.is_left(3)

    def test_same_side_edge_rejected(self):
        g = BipartiteGraph([0, 1], [2, 3])
        with pytest.raises(GraphError):
            g.add_edge(0, 1)
        with pytest.raises(GraphError):
            g.add_edge(2, 3)

    def test_auto_side_registration(self):
        g = BipartiteGraph([0], [])
        g.add_edge(0, 5)
        assert g.side(5) == "right"
        g.add_edge(5, 6)
        assert g.side(6) == "left"

    def test_orphan_edge_rejected(self):
        g = BipartiteGraph([0], [1])
        with pytest.raises(GraphError):
            g.add_edge(7, 8)

    def test_node_cannot_switch_sides(self):
        g = BipartiteGraph([0], [1])
        with pytest.raises(GraphError):
            g.add_right(0)

    def test_copy_preserves_sides(self):
        g = BipartiteGraph([0], [1])
        g.add_edge(0, 1, 4.0)
        h = g.copy()
        assert h.side(0) == "left"
        assert h.weight(0, 1) == 4.0

    def test_missing_side_raises(self):
        g = BipartiteGraph([0], [1])
        with pytest.raises(GraphError):
            g.side(9)


class TestCSRAdjacency:
    """Structural properties of the flat CSR snapshot (the engines' world).

    Checked over a batch of random graphs plus the degenerate shapes
    (empty, isolated nodes, non-contiguous ids) — property-style, since
    every delivery engine assumes these invariants without rechecking.
    """

    def graphs(self):
        import random

        from repro.graphs import gnp, path_graph, star_graph, uniform_weights

        yield Graph()
        lonely = Graph()
        lonely.add_nodes([3, 11, 7])
        yield lonely
        sparse = Graph()
        sparse.add_edge(100, 5, 2.5)
        sparse.add_edge(5, 42, 0.5)
        sparse.add_node(9)
        yield sparse
        yield path_graph(6)
        yield star_graph(5)
        for trial in range(6):
            yield gnp(14, 0.3, rng=random.Random(trial),
                      weight_fn=uniform_weights())

    def test_order_sorted_and_index_inverse(self):
        for g in self.graphs():
            csr = g.to_csr()
            assert list(csr.order) == sorted(g.nodes)
            assert all(csr.order[csr.index[v]] == v for v in csr.order)

    def test_indptr_monotone_and_covers_all_slots(self):
        for g in self.graphs():
            csr = g.to_csr()
            assert len(csr.indptr) == len(csr.order) + 1
            assert csr.indptr[0] == 0
            assert all(csr.indptr[i] <= csr.indptr[i + 1]
                       for i in range(len(csr.order)))
            assert csr.indptr[-1] == csr.num_slots == 2 * g.num_edges
            assert all(csr.degree_of(i) == g.degree(v)
                       for i, v in enumerate(csr.order))

    def test_rows_sorted_by_neighbor_id(self):
        for g in self.graphs():
            csr = g.to_csr()
            for i in range(len(csr.order)):
                row = [csr.order[csr.indices[e]]
                       for e in range(csr.indptr[i], csr.indptr[i + 1])]
                assert row == sorted(row)

    def test_rev_is_a_slot_involution(self):
        for g in self.graphs():
            csr = g.to_csr()
            for i in range(len(csr.order)):
                for e in range(csr.indptr[i], csr.indptr[i + 1]):
                    r = csr.rev[e]
                    assert csr.rev[r] == e  # involution
                    j = csr.indices[e]
                    # rev[e] really is the j -> i directed slot
                    assert csr.indptr[j] <= r < csr.indptr[j + 1]
                    assert csr.indices[r] == i

    def test_weights_match_dict_adjacency(self):
        for g in self.graphs():
            csr = g.to_csr()
            seen = set()
            for i, v in enumerate(csr.order):
                for e in range(csr.indptr[i], csr.indptr[i + 1]):
                    u = csr.order[csr.indices[e]]
                    assert csr.weights[e] == g.weight(v, u)
                    assert csr.weights[csr.rev[e]] == csr.weights[e]
                    seen.add(edge_key(v, u))
            assert seen == {edge_key(u, v) for u, v, _ in g.edges()}

    def test_snapshot_does_not_track_mutation(self):
        g = Graph()
        g.add_edge(0, 1)
        csr = g.to_csr()
        g.add_edge(1, 2)
        assert csr.num_slots == 2
        assert len(g.to_csr().indices) == 4
