"""Tests for the simulated MPC model (repro.mpc).

Covers the memory guard (hard cap, provable trip below the alpha floor,
peak accounting into Metrics), the maximal-matching driver on a
seed x alpha x graph-family matrix, determinism, and the observability
trio (trace/profile/observe) through ``repro.run("mpc_maximal", ...)``.
"""

import json
import random

import pytest

import repro
from repro.graphs import gnp, grid_graph, path_graph, random_bipartite
from repro.graphs.generators import star_graph
from repro.matching.verify import is_maximal, verify_matching
from repro.mpc import (
    BASE_WORDS,
    MIN_MACHINE_WORDS,
    MemoryExceeded,
    MPCCluster,
    MPCMachine,
    machine_words,
    mpc_maximal,
)


def _families():
    # all large enough that S = ceil(n**0.5) clears the 16-word floor
    return {
        "gnp": gnp(300, 0.02, rng=random.Random(7)),
        "path": path_graph(280),
        "grid": grid_graph(17, 17),
        "bipartite": random_bipartite(140, 140, 0.025, rng=random.Random(3)),
    }


class TestMachineWords:
    def test_budget_formula(self):
        assert machine_words(10_000, 0.5) == 100
        assert machine_words(1, 0.5) == 1

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_alpha_domain(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            machine_words(100, alpha)


class TestMachineLedger:
    def test_charge_release_peak(self):
        mach = MPCMachine(0, limit=10)
        mach.charge(6, "test")
        mach.charge(4, "test")
        assert mach.resident == 10 and mach.peak == 10
        mach.release(7)
        assert mach.resident == 3
        assert mach.peak == 10  # peaks are sticky
        mach.release(100)
        assert mach.resident == 0

    def test_overflow_raises_with_context(self):
        mach = MPCMachine(3, limit=8)
        mach.charge(8, "fill")
        with pytest.raises(MemoryExceeded) as err:
            mach.charge(1, "overflow phase")
        exc = err.value
        assert (exc.machine, exc.needed, exc.limit) == (3, 9, 8)
        assert exc.phase == "overflow phase"
        assert "raise alpha" in str(exc)


class TestMemoryGuard:
    def test_floor_trips_at_construction(self):
        # S = ceil(300**0.3) = 6 < 16: provably cannot hold even the
        # base state plus one record with working headroom
        with pytest.raises(MemoryExceeded) as err:
            MPCCluster(path_graph(300), alpha=0.3)
        assert err.value.limit == machine_words(300, 0.3)
        assert err.value.needed == MIN_MACHINE_WORDS

    def test_peak_never_exceeds_cap(self):
        for name, g in _families().items():
            for alpha in (0.5, 0.7, 0.9):
                cluster = MPCCluster(g, alpha=alpha, seed=0)
                res = mpc_maximal(cluster)
                assert res.peak_words <= cluster.machine_words, (name, alpha)
                assert all(m.resident <= m.limit for m in cluster.machines)

    def test_metrics_memory_account(self):
        cluster = MPCCluster(path_graph(280), alpha=0.7, seed=0)
        res = mpc_maximal(cluster)
        m = cluster.metrics
        assert m.memory_peak_words == res.peak_words > 0
        assert m.memory_limit_words == cluster.machine_words
        assert m.memory_machines == cluster.num_machines

    def test_memory_fields_do_not_affect_equality(self):
        # CONGEST goldens compare Metrics objects; the memory account is
        # a gauge (compare=False) so pre-refactor equality still holds
        from repro.runtime.metrics import Metrics
        a, b = Metrics(), Metrics()
        a.record_memory(100, 128, 4)
        assert a == b

    def test_base_words_charged_everywhere(self):
        cluster = MPCCluster(path_graph(280), alpha=0.9)
        assert all(m.resident >= BASE_WORDS for m in cluster.machines)


class TestMaximalMatching:
    @pytest.mark.parametrize("alpha", [0.5, 0.7, 0.9])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_and_maximal_matrix(self, alpha, seed):
        for name, g in _families().items():
            cluster = MPCCluster(g, alpha=alpha, seed=seed)
            res = mpc_maximal(cluster)
            verify_matching(g, res.matching)
            assert is_maximal(g, res.matching), (name, alpha, seed)

    def test_deterministic(self):
        g = gnp(300, 0.02, rng=random.Random(11))
        runs = [mpc_maximal(MPCCluster(g, alpha=0.6, seed=5))
                for _ in range(2)]
        assert (sorted(runs[0].matching.edges())
                == sorted(runs[1].matching.edges()))
        assert runs[0].supersteps == runs[1].supersteps
        assert runs[0].peak_words == runs[1].peak_words

    def test_result_surface(self):
        g = gnp(300, 0.02, rng=random.Random(2))
        cluster = MPCCluster(g, alpha=0.6, seed=0)
        res = mpc_maximal(cluster)
        assert res.alpha == 0.6
        assert res.iterations >= 1
        assert res.supersteps == cluster.metrics.rounds  # the loop unit
        assert res.num_machines == cluster.num_machines
        assert len(res.iteration_stats) == res.iterations
        # every iteration matches at least one edge (the mutual-minimum
        # progress certificate)
        assert all(matched >= 1 for _, _, matched in res.iteration_stats)

    def test_edgeless_graph(self):
        res = mpc_maximal(MPCCluster(gnp(300, 0.0), alpha=0.6))
        assert res.matching.size == 0
        assert res.iterations == 0

    def test_tiny_graph_needs_the_floor(self):
        # even alpha=1 cannot give a 1-node graph 16 words: the guard is
        # honest about inputs too small for the sublinear regime
        with pytest.raises(MemoryExceeded):
            MPCCluster(path_graph(1), alpha=0.9)

    def test_star_matches_exactly_one(self):
        res = mpc_maximal(MPCCluster(star_graph(280), alpha=0.5))
        assert res.matching.size == 1


class TestRunEntryPoint:
    def test_run_mpc_maximal(self):
        g = gnp(300, 0.02, rng=random.Random(4))
        result = repro.run("mpc_maximal", g, alpha=0.6, seed=1)
        assert result.certificate.valid
        assert result.algorithm == "mpc_maximal(alpha=0.6)"
        assert result.network_metrics.memory_peak_words > 0
        # "mpc" is an alias
        alias = repro.run("mpc", g, alpha=0.6, seed=1)
        assert (sorted(alias.matching.edges())
                == sorted(result.matching.edges()))

    def test_trace_integration(self, tmp_path):
        g = gnp(300, 0.02, rng=random.Random(0))
        path = tmp_path / "mpc.jsonl"
        result = repro.run("mpc_maximal", g, alpha=0.7, trace=str(path))
        assert str(result.trace_path) == str(path)
        kinds = {json.loads(line)["kind"]
                 for line in path.read_text().splitlines() if line.strip()}
        assert {"phase_start", "phase_end", "round_start",
                "round_end", "augmentation"} <= kinds

    def test_profile_integration(self):
        g = gnp(300, 0.02, rng=random.Random(0))
        result = repro.run("mpc_maximal", g, alpha=0.7, profile=True)
        assert result.profile is not None
        protocols = {p.protocol for p in result.profile.protocols}
        assert "mpc_maximal" in protocols
        phases = {ph.phase for ph in result.profile.phases}
        assert any(ph.startswith("sparsify") for ph in phases)
        assert any(ph.startswith("ball_growing") for ph in phases)

    def test_guard_propagates_through_run(self):
        with pytest.raises(MemoryExceeded):
            repro.run("mpc_maximal", path_graph(300), alpha=0.3)
