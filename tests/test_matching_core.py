"""Tests for the Matching type and augmentation primitives."""

import pytest

from repro.graphs import Graph, path_graph
from repro.matching import Matching, MatchingError, matching_from_edges


class TestMatchingBasics:
    def test_empty(self):
        m = Matching()
        assert m.size == 0
        assert m.mate(0) is None
        assert m.is_free(0)

    def test_add_and_query(self):
        m = Matching([(1, 2)])
        assert m.size == 1
        assert m.mate(1) == 2
        assert m.mate(2) == 1
        assert m.is_matched(1)
        assert m.contains_edge(2, 1)
        assert not m.contains_edge(1, 3)

    def test_add_conflicts_rejected(self):
        m = Matching([(1, 2)])
        with pytest.raises(MatchingError):
            m.add(2, 3)
        with pytest.raises(MatchingError):
            m.add(0, 1)
        with pytest.raises(MatchingError):
            m.add(4, 4)

    def test_remove(self):
        m = Matching([(1, 2)])
        m.remove(1, 2)
        assert m.size == 0
        with pytest.raises(MatchingError):
            m.remove(1, 2)

    def test_edges_canonical_sorted(self):
        m = Matching([(5, 4), (1, 0)])
        assert list(m.edges()) == [(0, 1), (4, 5)]
        assert m.edge_set() == frozenset({(0, 1), (4, 5)})

    def test_matched_nodes(self):
        m = Matching([(0, 1)])
        assert m.matched_nodes() == {0, 1}

    def test_copy_independent(self):
        m = Matching([(0, 1)])
        c = m.copy()
        c.add(2, 3)
        assert m.size == 1 and c.size == 2

    def test_equality_and_hash(self):
        a = Matching([(0, 1), (2, 3)])
        b = Matching([(2, 3), (1, 0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Matching([(0, 1)])

    def test_weight(self):
        g = Graph()
        g.add_edge(0, 1, 2.0)
        g.add_edge(2, 3, 3.5)
        m = Matching([(0, 1), (2, 3)])
        assert m.weight(g) == 5.5

    def test_as_mate_map(self):
        m = Matching([(0, 1)])
        assert m.as_mate_map([0, 1, 2]) == {0: 1, 1: 0, 2: None}


class TestFromMateMap:
    def test_roundtrip(self):
        m = Matching([(0, 1), (4, 7)])
        m2 = Matching.from_mate_map(m.as_mate_map([0, 1, 4, 7, 9]))
        assert m == m2

    def test_one_sided_entries_ok(self):
        m = Matching.from_mate_map({0: 1})
        assert m.contains_edge(0, 1)

    def test_asymmetric_rejected(self):
        with pytest.raises(MatchingError):
            Matching.from_mate_map({0: 1, 1: 2, 2: 1})


class TestAugmentation:
    def test_single_edge_path(self):
        m = Matching()
        assert m.is_augmenting_path([0, 1])
        m.augment([0, 1])
        assert m.contains_edge(0, 1)

    def test_length_three_path(self):
        m = Matching([(1, 2)])
        path = [0, 1, 2, 3]
        assert m.is_augmenting_path(path)
        m.augment(path)
        assert m.contains_edge(0, 1)
        assert m.contains_edge(2, 3)
        assert not m.contains_edge(1, 2)
        assert m.size == 2

    def test_rejects_even_length(self):
        m = Matching([(1, 2)])
        assert not m.is_augmenting_path([0, 1, 2])

    def test_rejects_matched_endpoint(self):
        m = Matching([(0, 1)])
        assert not m.is_augmenting_path([0, 2])
        assert not m.is_augmenting_path([2, 0])

    def test_rejects_non_alternating(self):
        m = Matching([(1, 2)])
        assert not m.is_augmenting_path([0, 3, 2, 1])  # middle edge unmatched

    def test_rejects_repeated_nodes(self):
        m = Matching([(1, 2)])
        assert not m.is_augmenting_path([0, 1, 2, 0])

    def test_augment_invalid_raises(self):
        m = Matching([(0, 1)])
        with pytest.raises(MatchingError):
            m.augment([0, 2])

    def test_long_path(self):
        # path 0-1-2-3-4-5 with (1,2), (3,4) matched
        m = Matching([(1, 2), (3, 4)])
        path = [0, 1, 2, 3, 4, 5]
        m.augment(path)
        assert m.size == 3
        assert m.edge_set() == frozenset({(0, 1), (2, 3), (4, 5)})


class TestSymmetricDifference:
    def test_disjoint_union(self):
        m = Matching([(0, 1)])
        m2 = m.symmetric_difference([(2, 3)])
        assert m2.edge_set() == frozenset({(0, 1), (2, 3)})

    def test_flip_path(self):
        m = Matching([(1, 2)])
        m2 = m.symmetric_difference([(0, 1), (1, 2), (2, 3)])
        assert m2.edge_set() == frozenset({(0, 1), (2, 3)})

    def test_invalid_result_raises(self):
        m = Matching([(0, 1)])
        with pytest.raises(MatchingError):
            m.symmetric_difference([(2, 3), (3, 4)])

    def test_original_untouched(self):
        m = Matching([(0, 1)])
        m.symmetric_difference([(0, 1)])
        assert m.size == 1


class TestMatchingFromEdges:
    def test_checks_graph_membership(self):
        g = path_graph(3)
        m = matching_from_edges(g, [(0, 1)])
        assert m.size == 1
        with pytest.raises(MatchingError):
            matching_from_edges(g, [(0, 2)])
