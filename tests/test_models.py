"""Tests for the computation-model seam (repro.models).

Covers the :class:`~repro.models.base.ComputationModel` contract (tier
validation, registry), ``explain_execution`` reason chains naming the
model on both executors, MPC's rejection of CONGEST-only tiers, and the
golden-pinned ``repro.congest`` shim surface: every class hoisted into
``repro.runtime`` / ``repro.observe`` / ``repro.models`` must still be
importable from its pre-refactor home *as the same object*.
"""

import pytest

from repro.congest.network import Network
from repro.graphs import gnp, path_graph
from repro.models import (
    CONGEST_MODEL,
    MODELS,
    MPC_MODEL,
    ExecutionPlan,
    ModelExecutionError,
    get_model,
)
from repro.mpc import MPCCluster


class TestRegistry:
    def test_models_registered(self):
        assert set(MODELS) == {"congest", "mpc"}
        assert get_model("congest") is CONGEST_MODEL
        assert get_model("mpc") is MPC_MODEL

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown computation model"):
            get_model("pram")

    def test_loop_units(self):
        assert CONGEST_MODEL.loop_unit == "round"
        assert MPC_MODEL.loop_unit == "superstep"

    def test_tier_vocabulary(self):
        # CONGEST owns the six-rung ladder; MPC owns its own two rungs
        assert MPC_MODEL.tiers == ("mpc_kernel", "node")
        # 'node' is the only rung the ladders share; 'mpc_kernel' is
        # MPC-private (CONGEST must not accept it)
        assert set(MPC_MODEL.tiers) & set(CONGEST_MODEL.tiers) == {"node"}
        assert "mpc_kernel" not in CONGEST_MODEL.tiers


class TestCheckPlan:
    def test_auto_always_passes(self):
        CONGEST_MODEL.check_plan(ExecutionPlan())
        MPC_MODEL.check_plan(ExecutionPlan())

    @pytest.mark.parametrize("tier", ["kernel", "sharded", "sharded-kernel",
                                      "legacy"])
    def test_mpc_rejects_congest_tiers(self, tier):
        plan = ExecutionPlan(tier=tier)
        with pytest.raises(ModelExecutionError) as err:
            MPC_MODEL.check_plan(plan)
        # the error must be diagnosable: it names the model, the tier,
        # and the rungs that *do* work — not a silent ladder fallthrough
        msg = str(err.value)
        assert "model 'mpc'" in msg
        assert f"tier '{tier}'" in msg
        assert "execution='auto', 'mpc_kernel' or 'node'" in msg

    @pytest.mark.parametrize("tier", ["kernel", "sharded", "sharded-kernel",
                                      "legacy", "node"])
    def test_congest_accepts_every_rung(self, tier):
        CONGEST_MODEL.check_plan(ExecutionPlan(tier=tier))


class TestClusterPlanValidation:
    """MPCCluster validates at construction — fail fast, not mid-run."""

    @pytest.mark.parametrize("tier", ["kernel", "sharded", "sharded-kernel"])
    def test_cluster_rejects_congest_tiers(self, tier):
        with pytest.raises(ModelExecutionError, match="model 'mpc'"):
            MPCCluster(path_graph(40), alpha=0.8, execution=tier)

    def test_cluster_accepts_node_and_auto(self):
        MPCCluster(path_graph(40), alpha=0.8, execution="node")
        MPCCluster(path_graph(40), alpha=0.8)  # auto default

    def test_cluster_rejects_garbage_execution(self):
        with pytest.raises(TypeError, match="ExecutionPlan or a tier name"):
            MPCCluster(path_graph(40), alpha=0.8, execution=42)


class TestExplainNamesTheModel:
    """Reason chains open by naming the computation model."""

    def test_congest_chain(self):
        net = Network(path_graph(6))
        decision = net.explain_execution()
        assert decision.reasons
        assert any("model 'congest'" in r for r in decision.reasons)

    def test_mpc_chain(self):
        cluster = MPCCluster(path_graph(40), alpha=0.8,
                             execution="node")
        decision = cluster.explain_execution()
        assert decision.tier == "node"
        assert any("model 'mpc'" in r for r in decision.reasons)
        # the chain surfaces the memory envelope, the model's signature
        joined = " ".join(decision.reasons)
        assert f"S = {cluster.machine_words} words" in joined

    def test_mpc_auto_chain_names_only_mpc_rungs(self):
        # explain_execution() on a cluster must walk the MPC ladder —
        # no CONGEST rung (compiled/kernel/shard) may appear
        cluster = MPCCluster(path_graph(40), alpha=0.8)
        decision = cluster.explain_execution()
        assert decision.tier in ("mpc_kernel", "node")
        joined = " ".join(decision.reasons)
        for foreign in ("compiled", "sharded-kernel", "'kernel'",
                        "'sharded'", "legacy"):
            assert foreign not in joined

    def test_network_carries_its_model(self):
        assert Network(path_graph(4)).model is CONGEST_MODEL
        assert MPCCluster(path_graph(40), alpha=0.8).model is MPC_MODEL


class TestCongestShimSurface:
    """The pre-refactor import paths stay alive and identical."""

    def test_events_shim(self):
        from repro.congest import events as old
        from repro.observe import events as new
        assert old.EventBus is new.EventBus
        assert old.ALL_KINDS is new.ALL_KINDS
        assert old.EVENT_CLASSES is new.EVENT_CLASSES
        assert old.PhaseStart is new.PhaseStart

    def test_tracing_shim(self):
        from repro.congest import tracing as old
        from repro.observe import tracing as new
        assert old.Tracer is new.Tracer
        assert old.TraceEvent is new.TraceEvent

    def test_profiling_shim(self):
        from repro.congest import profiling as old
        from repro.observe import profiling as new
        assert old.Profiler is new.Profiler
        assert old.ObservabilityScope is new.ObservabilityScope

    def test_metrics_shim(self):
        from repro.congest import metrics as old
        from repro.runtime import metrics as new
        assert old.Metrics is new.Metrics

    def test_runtime_shim(self):
        from repro.congest import runtime as old
        from repro.runtime import driver as new
        assert old.PhaseDriver is new.PhaseDriver
        assert old.ProtocolResult is new.ProtocolResult
        assert old.Subnetwork is new.Subnetwork
        assert old.FOLD_MODES is new.FOLD_MODES

    def test_execution_shim(self):
        from repro.congest import execution as old
        from repro.models import execution as new
        assert old.ExecutionPlan is new.ExecutionPlan
        assert old.resolve_execution is new.resolve_execution
        assert old.TIERS is new.TIERS

    def test_package_reexports(self):
        import repro.congest as congest
        from repro.models import ExecutionPlan
        from repro.observe import EventBus, Profiler, Tracer
        from repro.runtime import Metrics, PhaseDriver
        assert congest.EventBus is EventBus
        assert congest.Tracer is Tracer
        assert congest.Profiler is Profiler
        assert congest.Metrics is Metrics
        assert congest.PhaseDriver is PhaseDriver
        assert congest.ExecutionPlan is ExecutionPlan
