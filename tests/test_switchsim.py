"""Tests for the input-queued switch simulator (Figure 1 application)."""

import pytest

from repro.switchsim import (
    BernoulliDiagonal,
    BernoulliUniform,
    BurstyOnOff,
    DistributedMCMScheduler,
    DistributedMWMScheduler,
    Hotspot,
    ISLIP,
    MaxSizeScheduler,
    MaxWeightScheduler,
    PIM,
    VOQSwitch,
    simulate,
)


class TestTraffic:
    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliUniform(1, 0.5)
        with pytest.raises(ValueError):
            BernoulliUniform(4, 1.5)
        with pytest.raises(ValueError):
            Hotspot(4, 0.5, hot_fraction=2.0)
        with pytest.raises(ValueError):
            BurstyOnOff(4, 0.5, mean_burst=0)

    def test_uniform_load(self):
        t = BernoulliUniform(8, 0.5, seed=1)
        total = sum(len(t.arrivals(c)) for c in range(1000))
        assert 3200 < total < 4800  # ~ 0.5 * 8 * 1000

    def test_arrivals_within_ports(self):
        for t in (BernoulliUniform(4, 0.9, seed=2),
                  BernoulliDiagonal(4, 0.9, seed=2),
                  Hotspot(4, 0.9, seed=2),
                  BurstyOnOff(4, 0.9, seed=2)):
            for c in range(50):
                for i, j in t.arrivals(c):
                    assert 0 <= i < 4 and 0 <= j < 4

    def test_diagonal_concentration(self):
        t = BernoulliDiagonal(8, 0.9, seed=3)
        diag = 0
        total = 0
        for c in range(500):
            for i, j in t.arrivals(c):
                total += 1
                diag += j == i
        assert diag / total > 0.5

    def test_hotspot_concentration(self):
        t = Hotspot(8, 0.5, seed=4, hot_fraction=0.8, hot_port=3)
        hot = 0
        total = 0
        for c in range(500):
            for i, j in t.arrivals(c):
                total += 1
                hot += j == 3
        assert hot / total > 0.6

    def test_bursty_same_destination_within_burst(self):
        t = BurstyOnOff(4, 1.0, seed=5, mean_burst=50)
        dests = [j for c in range(10) for i, j in t.arrivals(c) if i == 0]
        assert len(set(dests)) <= 2  # one burst, maybe a boundary


class TestVOQSwitch:
    def test_enqueue_occupancy(self):
        s = VOQSwitch(2)
        s.enqueue([(0, 1), (0, 1), (1, 0)], cycle=0)
        assert s.occupancy() == [[0, 2], [1, 0]]
        assert s.backlog == 3

    def test_transmit_and_delay(self):
        s = VOQSwitch(2)
        s.enqueue([(0, 1)], cycle=0)
        delivered = s.transmit([(0, 1)], cycle=3)
        assert delivered == 1
        assert s.mean_delay == 3.0
        assert s.backlog == 0

    def test_transmit_empty_queue_noop(self):
        s = VOQSwitch(2)
        assert s.transmit([(0, 1)], cycle=0) == 0

    def test_crossbar_constraint_enforced(self):
        s = VOQSwitch(3)
        with pytest.raises(ValueError):
            s.transmit([(0, 1), (0, 2)], cycle=0)
        with pytest.raises(ValueError):
            s.transmit([(0, 1), (2, 1)], cycle=0)

    def test_port_validation(self):
        with pytest.raises(ValueError):
            VOQSwitch(1)


class TestSchedulers:
    def _occupancy(self):
        return [[2, 0, 1], [0, 3, 0], [1, 0, 0]]

    @pytest.mark.parametrize("sched", [
        PIM(seed=0),
        ISLIP(3),
        MaxSizeScheduler(),
        MaxWeightScheduler(),
        DistributedMCMScheduler(k=2, seed=0),
        DistributedMWMScheduler(eps=0.2, seed=0),
    ])
    def test_schedules_are_valid_matchings(self, sched):
        match = sched.schedule(self._occupancy(), cycle=0)
        ins = [i for i, _ in match]
        outs = [j for _, j in match]
        assert len(set(ins)) == len(ins)
        assert len(set(outs)) == len(outs)
        occ = self._occupancy()
        for i, j in match:
            assert occ[i][j] > 0

    def test_max_size_is_maximum(self):
        match = MaxSizeScheduler().schedule(self._occupancy(), 0)
        assert len(match) == 3

    def test_max_weight_prefers_long_queues(self):
        occ = [[5, 1], [0, 1]]
        match = MaxWeightScheduler().schedule(occ, 0)
        assert (0, 0) in match and (1, 1) in match

    def test_islip_pointers_advance(self):
        s = ISLIP(2, iterations=1)
        occ = [[1, 1], [1, 1]]
        s.schedule(occ, 0)
        assert any(p != 0 for p in s.grant_ptr + s.accept_ptr)

    def test_empty_occupancy(self):
        occ = [[0, 0], [0, 0]]
        for sched in (PIM(seed=1), ISLIP(2), MaxSizeScheduler(),
                      MaxWeightScheduler(), DistributedMCMScheduler(seed=1),
                      DistributedMWMScheduler(seed=1)):
            assert sched.schedule(occ, 0) == []


class TestSimulate:
    def test_conservation(self):
        stats = simulate(PIM(seed=0), BernoulliUniform(4, 0.6, seed=1), 200)
        assert stats.arrived == stats.delivered + stats.backlog

    def test_light_load_full_throughput(self):
        stats = simulate(MaxSizeScheduler(),
                         BernoulliUniform(4, 0.2, seed=2), 300, drain=True)
        assert stats.throughput > 0.999

    def test_matching_scheduler_competitive_with_pim(self):
        traffic_seed = 7
        pim = simulate(PIM(seed=0),
                       BernoulliUniform(6, 0.85, seed=traffic_seed), 250)
        ours = simulate(DistributedMCMScheduler(k=2, seed=0),
                        BernoulliUniform(6, 0.85, seed=traffic_seed), 250)
        assert ours.throughput >= pim.throughput - 0.05

    def test_cycle_validation(self):
        with pytest.raises(ValueError):
            simulate(PIM(), BernoulliUniform(4, 0.5), 0)

    def test_stats_fields(self):
        stats = simulate(ISLIP(4), BernoulliUniform(4, 0.5, seed=3), 100)
        assert stats.scheduler == "islip"
        assert 0 <= stats.throughput <= 1
        assert stats.normalized_backlog >= 0
