"""Tests for vertex covers and duality certificates."""

import pytest

from repro.graphs import (
    complete_bipartite,
    crown_graph,
    cycle_graph,
    gnp,
    path_graph,
    random_bipartite,
)
from repro.graphs.graph import GraphError
from repro.matching import (
    Matching,
    duality_certificate,
    greedy_vertex_cover,
    is_vertex_cover,
    koenig_cover,
)
from repro.matching.sequential import (
    greedy_mcm,
    max_cardinality,
    max_cardinality_bipartite,
)


class TestIsVertexCover:
    def test_full_node_set_covers(self):
        g = cycle_graph(5)
        assert is_vertex_cover(g, set(g.nodes))

    def test_empty_cover_fails(self):
        g = path_graph(2)
        assert not is_vertex_cover(g, set())
        assert is_vertex_cover(g, {0})


class TestKoenig:
    @pytest.mark.parametrize("seed", range(5))
    def test_cover_size_equals_maximum_matching(self, seed):
        g = random_bipartite(12, 14, 0.2, rng=seed)
        m = max_cardinality_bipartite(g)
        cover = koenig_cover(g, m)
        assert is_vertex_cover(g, cover)
        assert len(cover) == m.size  # König's theorem

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 5)
        m = max_cardinality_bipartite(g)
        cover = koenig_cover(g, m)
        assert is_vertex_cover(g, cover)
        assert len(cover) == 3

    def test_crown(self):
        g = crown_graph(4)
        m = max_cardinality_bipartite(g)
        cert = duality_certificate(g, m)
        assert cert.proves_optimal

    def test_non_maximum_matching_detected(self):
        # a maximal-but-not-maximum matching: König construction fails to
        # cover, so the certificate does not prove optimality
        g = path_graph(4)
        m = Matching([(1, 2)])
        cert = duality_certificate(g, m)
        assert not cert.proves_optimal

    def test_rejects_non_bipartite(self):
        with pytest.raises(GraphError):
            koenig_cover(cycle_graph(5), Matching())


class TestDualityCertificate:
    def test_ratio_floor_with_external_cover(self):
        g = gnp(20, 0.2, rng=1)
        m = greedy_mcm(g, rng=2)
        cover = greedy_vertex_cover(g)
        cert = duality_certificate(g, m, cover=cover)
        assert cert.cover_valid
        floor = cert.ratio_floor
        true_ratio = m.size / max_cardinality(g).size
        assert floor is not None
        assert floor <= true_ratio + 1e-9  # the floor never overclaims

    def test_invalid_cover_rejected(self):
        g = path_graph(3)
        cert = duality_certificate(g, Matching([(0, 1)]), cover={2})
        assert not cert.cover_valid
        assert cert.ratio_floor is None

    def test_empty_graph(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_nodes(range(3))
        cert = duality_certificate(g, Matching(), cover=set())
        assert cert.cover_valid
        assert cert.ratio_floor == 1.0


class TestGreedyCover:
    @pytest.mark.parametrize("seed", range(3))
    def test_always_valid_and_2_approx(self, seed):
        g = gnp(18, 0.2, rng=seed)
        cover = greedy_vertex_cover(g)
        assert is_vertex_cover(g, cover)
        # |cover| = 2 |maximal matching| <= 2 |M*| <= 2 |min cover| ... and
        # also >= min cover; sanity: within 2x of matching-based bound
        opt_m = max_cardinality(g).size
        assert len(cover) <= 2 * opt_m
