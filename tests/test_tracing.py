"""Tests for execution tracing."""

from repro.congest import Network, Tracer
from repro.dist import israeli_itai, luby_mis
from repro.graphs import gnp, path_graph


class TestTracer:
    def test_records_events(self):
        g = path_graph(4)
        tracer = Tracer()
        net = Network(g, seed=0, tracer=tracer)
        israeli_itai(net)
        assert len(tracer) > 0
        e = tracer.events[0]
        assert e.protocol == "israeli_itai"
        assert e.bits > 0
        assert g.has_edge(e.sender, e.receiver)

    def test_filtering(self):
        g = gnp(12, 0.3, rng=1)
        tracer = Tracer()
        net = Network(g, seed=1, tracer=tracer)
        israeli_itai(net)
        luby_mis(net)
        assert set(tracer.protocols()) == {"israeli_itai", "luby_mis"}
        only_luby = tracer.filter(protocol="luby_mis")
        assert only_luby
        assert all(e.protocol == "luby_mis" for e in only_luby)
        node0 = tracer.filter(node=0)
        assert all(0 in (e.sender, e.receiver) for e in node0)
        first_round = tracer.filter(rounds=range(1, 2))
        assert all(e.round == 1 for e in first_round)

    def test_messages_between(self):
        g = path_graph(2)
        tracer = Tracer()
        net = Network(g, seed=0, tracer=tracer)
        israeli_itai(net)
        convo = tracer.messages_between(0, 1)
        assert convo
        assert all({e.sender, e.receiver} == {0, 1} for e in convo)

    def test_render(self):
        g = path_graph(2)
        tracer = Tracer()
        net = Network(g, seed=0, tracer=tracer)
        israeli_itai(net)
        text = tracer.render()
        assert "israeli_itai" in text
        assert "->" in text

    def test_render_truncates_payloads(self):
        from repro.congest.tracing import TraceEvent

        event = TraceEvent(protocol="p", round=1, sender=0, receiver=1,
                           bits=8, payload="x" * 200)
        assert len(event.render()) < 120

    def test_capacity_bound(self):
        g = gnp(15, 0.3, rng=2)
        tracer = Tracer(capacity=10)
        net = Network(g, seed=2, tracer=tracer)
        israeli_itai(net)
        assert len(tracer) == 10

    def test_predicate_filter(self):
        g = gnp(10, 0.4, rng=3)
        tracer = Tracer()
        net = Network(g, seed=3, tracer=tracer)
        israeli_itai(net)
        proposals = tracer.filter(predicate=lambda e: e.payload == "p")
        assert all(e.payload == "p" for e in proposals)
