"""Tests for sequential local-search MWM and the fault-injection harness."""

import networkx as nx
import pytest

from repro.congest import LossyNetwork, Network
from repro.dist import israeli_itai
from repro.dist.checkers import check_matching, check_maximality
from repro.graphs import gnp, path_graph, uniform_weights
from repro.graphs.interop import to_networkx
from repro.matching import Matching, verify_matching
from repro.matching.sequential import (
    brute_force_mwm,
    greedy_mwm,
    guarantee_of,
    local_search_mwm,
)


def exact_weight(g):
    m = nx.max_weight_matching(to_networkx(g))
    return sum(g.weight(u, v) for u, v in m)


class TestLocalSearchMWM:
    def test_guarantee_of(self):
        assert guarantee_of(1) == pytest.approx(1 / 2)
        assert guarantee_of(2) == pytest.approx(2 / 3)
        assert guarantee_of(4) == pytest.approx(4 / 5)
        with pytest.raises(ValueError):
            guarantee_of(0)

    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_meets_lemma42_corollary(self, k, seed):
        g = gnp(14, 0.3, rng=seed, weight_fn=uniform_weights())
        m, applied = local_search_mwm(g, k=k)
        verify_matching(g, m)
        assert m.weight(g) >= guarantee_of(k) * exact_weight(g) - 1e-9

    def test_improves_on_greedy_start(self):
        g = gnp(12, 0.4, rng=3, weight_fn=uniform_weights())
        greedy = greedy_mwm(g)
        improved, applied = local_search_mwm(g, k=3, initial=greedy)
        assert improved.weight(g) >= greedy.weight(g) - 1e-9

    def test_exact_on_small_graphs_with_large_k(self):
        g = gnp(8, 0.5, rng=4, weight_fn=uniform_weights())
        if g.num_edges > 20:
            pytest.skip("brute force limit")
        m, _ = local_search_mwm(g, k=4)
        opt = brute_force_mwm(g).weight(g)
        assert m.weight(g) >= (4 / 5) * opt - 1e-9

    def test_max_augmentations_respected(self):
        g = gnp(12, 0.4, rng=5, weight_fn=uniform_weights())
        _, applied = local_search_mwm(g, k=2, max_augmentations=3)
        assert applied <= 3

    def test_k_validation(self):
        with pytest.raises(ValueError):
            local_search_mwm(path_graph(3), k=0)


class TestLossyNetwork:
    def test_loss_validation(self):
        with pytest.raises(ValueError):
            LossyNetwork(path_graph(2), loss=1.0)

    def test_zero_loss_is_identical(self):
        g = gnp(20, 0.2, rng=1)
        m_ref = israeli_itai(Network(g, seed=5))
        m_lossy = israeli_itai(LossyNetwork(g, loss=0.0, seed=5))
        assert m_ref == m_lossy

    def test_drops_are_counted(self):
        from repro.congest import ProtocolError

        g = gnp(20, 0.2, rng=2)
        net = LossyNetwork(g, loss=0.3, seed=2)
        try:
            israeli_itai(net, max_rounds=200)
        except ProtocolError:
            pass  # loss-induced livelock is itself a failure mode
        assert net.dropped > 0

    def test_checkers_catch_loss_induced_damage(self):
        """The paper's no-faults assumption, demonstrated: under message
        loss Israeli-Itai livelocks (a finished node's MATCHED announcement
        is lost, so a neighbor proposes to it forever) or leaves damaged
        registers, and the O(1)-round distributed checkers notice."""
        from repro.congest import ProtocolError
        from repro.dist.israeli_itai import IsraeliItaiNode

        damage_found = False
        for seed in range(12):
            g = gnp(24, 0.2, rng=seed)
            net = LossyNetwork(g, loss=0.35, seed=seed)
            shared = {"initial_mate": {v: None for v in g.nodes}}
            try:
                raw = net.run(IsraeliItaiNode, shared=shared, max_rounds=300)
            except ProtocolError:
                damage_found = True  # livelock: the run never terminates
                break
            mate = {v: (out or {}).get("mate")
                    for v, out in raw.outputs.items()}
            clean = Network(g, seed=seed)
            if check_matching(clean, mate) or check_maximality(clean, mate):
                damage_found = True
                break
        assert damage_found, "message loss never caused observable damage"
