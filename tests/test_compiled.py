"""The compiled execution tier: jitted kernels and the native halo codec.

Golden equivalence is the whole contract: for every audited kernel the
compiled rung must reproduce the kernel/fallback/per-node tiers bit for
bit — outputs, rounds, Metrics, per-node rng streams — across seeds,
graph families and shard counts.  On numba-free hosts (like CI's plain
leg) the jitted functions run interpreted through ``maybe_njit``'s shim,
so every equivalence below still exercises the real compiled code paths;
``_force_numba`` only flips the availability probe the resolver reads.
"""

import math
import random
import struct
import subprocess
import sys
from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import (
    CONGEST,
    NO_COMPILED_ENV,
    Network,
    PIPELINE,
    compiled_enabled,
    numba_available,
)
from repro.congest import compiled as compiled_mod
from repro.congest import kernels as kernels_mod
from repro.congest.compiled import (
    CompiledNodeRandom,
    RngPool,
    load_i64,
    pack_segment,
    splitmix64,
    store_i64,
    unpack_segment,
)
from repro.congest.kernels import kernel_for
from repro.congest.sharding import decode_payload, encode_payload
from repro.dist.bipartite_counting import (
    X_SIDE,
    Y_SIDE,
    CountingNode,
    run_counting,
)
from repro.dist.israeli_itai import IsraeliItaiNode, israeli_itai
from repro.dist.luby_mis import LubyMISNode, luby_mis
from repro.dist.random_tools import (
    _splitmix64,
    node_seed_from_prefix,
    sample_max_uniform,
    weighted_choice,
)
from repro.dist.token_mis import TokenNode, run_token_selection
from repro.graphs import gnp, path_graph, random_bipartite
from repro.models.execution import ExecutionPlan, resolve_execution

settings.register_profile(
    "repro", deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

np = compiled_mod.np


@pytest.fixture
def force_numba(monkeypatch):
    """Make the resolver see numba as importable.

    The jitted functions were already wrapped (interpreted) at import
    time, so everything downstream runs the genuine compiled-tier code;
    only the availability probe is faked.
    """
    monkeypatch.setattr(compiled_mod, "_numba", object())


def _metrics_tuple(m):
    return (m.rounds, m.pipelined_extra_rounds, m.messages, m.total_bits,
            m.max_message_bits, tuple(sorted(m.protocol_rounds.items())))


# -- the packed MT19937 pool ------------------------------------------------


class TestRngParity:
    def test_splitmix64_matches_random_tools(self):
        for x in (0, 1, 7, 2**31, 2**63 - 1, 2**64 - 1, 0xDEADBEEF):
            assert int(splitmix64(np.uint64(x))) == _splitmix64(x)

    def test_node_seed_matches_prefix_chain(self):
        prefix = 0x9E3779B97F4A7C15
        for node in (0, 1, 5, 1023, 2**40):
            assert (int(compiled_mod.node_seed(np.uint64(prefix),
                                               np.uint64(node)))
                    == node_seed_from_prefix(prefix, node))

    def test_facade_replays_cpython_streams(self):
        prefix = 0xA5A5A5A5DEADBEEF
        pool = RngPool(list(range(6)), prefix)
        for row in range(6):
            ref = random.Random(node_seed_from_prefix(prefix, row))
            fac = pool.view(row)
            for i in range(200):
                k = 1 + (i * 7) % 64
                assert fac.getrandbits(k) == ref.getrandbits(k), (row, i, k)
                assert fac.random() == ref.random(), (row, i)

    def test_facade_wide_getrandbits(self):
        # >64-bit requests are assembled from 32-bit words exactly like
        # CPython's genrand_int32 loop (last word truncated)
        pool = RngPool([0], 12345)
        ref = random.Random(node_seed_from_prefix(12345, 0))
        for k in (65, 70, 96, 128, 144, 200):
            assert pool.view(0).getrandbits(k) == ref.getrandbits(k), k

    def test_facade_choice_randrange_randint(self):
        pool = RngPool(list(range(4)), 999)
        ref = random.Random(node_seed_from_prefix(999, 3))
        fac = pool.view(3)
        seq = list(range(17))
        for _ in range(100):
            assert fac.choice(seq) == ref.choice(seq)
            assert fac.randrange(1000) == ref.randrange(1000)
            assert fac.randint(1, 10**6) == ref.randint(1, 10**6)
            # bigint bounds leave the jitted fast path but keep the stream
            assert fac.randrange(2**70) == ref.randrange(2**70)

    def test_facade_through_random_tools(self):
        # the exact call surface token_mis uses at leaders/odd layers
        pool = RngPool([0, 1], 4242)
        for row in (0, 1):
            ref = random.Random(node_seed_from_prefix(4242, row))
            fac = pool.view(row)
            counts = {5: 3, 9: 11, 2: 7, 40: 1}
            for _ in range(50):
                assert (sample_max_uniform(fac, 12, 10**24)
                        == sample_max_uniform(ref, 12, 10**24))
                assert (weighted_choice(fac, counts)
                        == weighted_choice(ref, counts))

    def test_luby_jitted_redraw_matches_python_loop(self):
        from repro.dist.luby_mis import _luby_redraw

        cap = 1000 ** 4
        k = cap.bit_length()
        pool = RngPool([0], 777)
        ref = random.Random(node_seed_from_prefix(777, 0))
        for _ in range(300):
            v = ref.getrandbits(k)
            while v >= cap:
                v = ref.getrandbits(k)
            want = v + 1
            got = int(_luby_redraw(pool.mt, pool.mti, pool.ids,
                                   pool.prefix, 0, cap, k))
            assert got == want

    def test_rows_are_independent_and_lazy(self):
        pool = RngPool([10, 20, 30], 1)
        # drawing from row 2 first must not perturb rows 0/1
        a = pool.view(2).random()
        assert pool.view(0).random() == random.Random(
            node_seed_from_prefix(1, 10)).random()
        assert a == random.Random(node_seed_from_prefix(1, 30)).random()


# -- availability probes ----------------------------------------------------


class TestAvailability:
    def test_env_kill_switch(self, monkeypatch):
        assert compiled_enabled() or NO_COMPILED_ENV in dict()
        monkeypatch.setenv(NO_COMPILED_ENV, "1")
        assert not compiled_enabled()

    def test_unavailable_reason_names_the_extra(self, monkeypatch):
        monkeypatch.setattr(compiled_mod, "_numba", None)
        reason = compiled_mod.unavailable_reason()
        assert reason is not None and "repro[compiled]" in reason

    def test_unavailable_reason_numpy_first(self, monkeypatch):
        monkeypatch.setattr(compiled_mod, "_np", None)
        reason = compiled_mod.unavailable_reason()
        assert reason is not None and "numpy" in reason

    def test_warmup_reports_availability(self):
        # touches every jitted entry point; on numba-free hosts the
        # interpreted shims must still run clean
        assert compiled_mod.warmup() == numba_available()

    def test_all_four_kernels_are_compiled_audited(self):
        for node_cls in (IsraeliItaiNode, LubyMISNode, CountingNode,
                         TokenNode):
            assert kernel_for(node_cls).compiled_audited is True, node_cls


# -- golden equivalence matrix ----------------------------------------------


def _run_israeli(seed, tier, shards=None):
    g = gnp(44, 0.12, rng=seed)
    kwargs = ({"engine": "sharded", "shards": shards} if shards
              else {"execution": tier})
    net = Network(g, policy=CONGEST, seed=seed, **kwargs)
    try:
        matching = israeli_itai(net)
        return set(matching.edges()), _metrics_tuple(net.metrics)
    finally:
        net.close()


def _run_luby(seed, tier, shards=None):
    g = gnp(48, 0.1, rng=seed)
    kwargs = ({"engine": "sharded", "shards": shards} if shards
              else {"execution": tier})
    net = Network(g, policy=CONGEST, seed=seed, **kwargs)
    try:
        mis = luby_mis(net)
        return frozenset(mis), _metrics_tuple(net.metrics)
    finally:
        net.close()


def _counting_instance(seed):
    half = 20
    g = random_bipartite(half, half, 0.14, rng=seed)
    side = {v: (X_SIDE if v < half else Y_SIDE) for v in sorted(g.nodes)}
    mate = {v: None for v in g.nodes}
    for u in sorted(g.nodes):
        if side[u] != X_SIDE or mate[u] is not None:
            continue
        for v in sorted(g.neighbors(u)):
            if mate[v] is None:
                mate[u] = v
                mate[v] = u
                break
    return g, side, mate


def _run_counting_token(seed, tier, shards=None, ell=1):
    # counting feeds token selection on the same network: exercises both
    # passive kernels plus run-counter continuity across the pair
    g, side, mate = _counting_instance(seed)
    n_bound = max(2, g.num_nodes) * max(2, g.max_degree) ** ((ell + 1) // 2)
    kwargs = ({"engine": "sharded", "shards": shards} if shards
              else {"execution": tier})
    net = Network(g, policy=PIPELINE, seed=seed, **kwargs)
    try:
        states = run_counting(net, side, mate, ell)
        new_mate, applied = run_token_selection(
            net, side, mate, ell, states, n_bound ** 4)
        frozen = tuple(
            (v, None if s is None else (s.t, tuple(sorted(s.counts.items())),
                                        s.total, s.early_free_y))
            for v, s in sorted(states.items()))
        return frozen, tuple(sorted(new_mate.items())), applied, \
            _metrics_tuple(net.metrics)
    finally:
        net.close()


WORKLOADS = {
    "israeli_itai": _run_israeli,
    "luby_mis": _run_luby,
    "counting+token": _run_counting_token,
}

MATRIX = [
    pytest.param(name, seed, id=f"{name}-s{seed}")
    for name in WORKLOADS
    for seed in (0, 3, 11)
]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name,seed", MATRIX)
    def test_compiled_matches_every_lower_tier(self, name, seed,
                                               force_numba):
        runner = WORKLOADS[name]
        golden = runner(seed, "kernel")
        assert runner(seed, "compiled") == golden
        assert runner(seed, "node") == golden

    @pytest.mark.parametrize("name,seed", MATRIX)
    def test_compiled_matches_the_pure_python_fallback(self, name, seed,
                                                       force_numba,
                                                       monkeypatch):
        runner = WORKLOADS[name]
        golden = runner(seed, "compiled")
        monkeypatch.setattr(kernels_mod, "_np", None)
        assert runner(seed, "node") == golden

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_workers_pick_the_compiled_step(self, name, shards,
                                                    force_numba):
        # forked workers inherit the faked probe, so their compiled
        # pickup (and the jitted halo packer) is live in this run
        runner = WORKLOADS[name]
        assert runner(3, None, shards=shards) == runner(3, "compiled")

    def test_compiled_resolution_is_selected(self, force_numba):
        net = Network(gnp(30, 0.2, rng=0), policy=CONGEST, seed=0)
        decision = resolve_execution(net, LubyMISNode, None,
                                     skip_sharding=True)
        assert decision.tier == "compiled"

    def test_structural_events_identical(self, force_numba):
        from repro.observe import RoundEnd, RoundStart

        class Collect:
            interest = (RoundStart, RoundEnd)

            def __init__(self):
                self.events = []

            def on_event(self, event):
                self.events.append(
                    (type(event).__name__, event.protocol, event.round))

        streams = {}
        for tier in ("compiled", "kernel", "node"):
            collect = Collect()
            g = gnp(30, 0.15, rng=5)
            net = Network(g, policy=CONGEST, seed=5, execution=tier,
                          observe=collect)
            luby_mis(net)
            streams[tier] = collect.events
        assert streams["compiled"] == streams["kernel"] == streams["node"]


# -- silent fallthrough on numba-free hosts ---------------------------------


class TestFallthrough:
    def test_numba_free_subprocess_falls_through_silently(self):
        # a fresh interpreter (no monkeypatching) on a host without
        # numba: plans asking for the compiled tier must complete on
        # the kernel rung without any warning or error
        code = (
            "import warnings; warnings.simplefilter('error')\n"
            "from repro.congest import Network, CONGEST, numba_available\n"
            "from repro.dist.luby_mis import LubyMISNode, luby_mis\n"
            "from repro.graphs import gnp\n"
            "from repro.models.execution import resolve_execution\n"
            "net = Network(gnp(24, 0.2, rng=1), policy=CONGEST, seed=1,\n"
            "              execution='compiled')\n"
            "dec = resolve_execution(net, LubyMISNode, None,\n"
            "                        skip_sharding=True)\n"
            "expected = 'compiled' if numba_available() else 'kernel'\n"
            "assert dec.tier == expected, dec.tier\n"
            "mis = luby_mis(net)\n"
            "print('tier', dec.tier, 'mis', len(mis))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True)
        assert out.returncode == 0, out.stderr
        assert out.stdout.startswith("tier ")

    def test_no_compiled_env_downgrades(self, force_numba, monkeypatch):
        monkeypatch.setenv(NO_COMPILED_ENV, "1")
        net = Network(gnp(24, 0.2, rng=1), policy=CONGEST, seed=1)
        decision = resolve_execution(net, LubyMISNode, None,
                                     skip_sharding=True)
        assert decision.tier == "kernel"

    def test_compiled_plan_still_runs_without_numba(self, monkeypatch):
        monkeypatch.setattr(compiled_mod, "_numba", None)
        golden = _run_luby(7, "kernel")
        assert _run_luby(7, "compiled") == golden


# -- native halo codec ------------------------------------------------------


class TestNativeCodec:
    def test_store_load_i64_struct_identity(self):
        values = [0, 1, -1, 255, -256, 2**31, -(2**31) - 1,
                  2**62, -(2**62), 2**63 - 1, -(2**63)]
        for v in values:
            out = np.zeros(16, dtype=np.uint8)
            end = store_i64(out, 4, np.int64(v))
            assert end == 12
            assert bytes(out[4:12]) == struct.pack("<q", v), v
            assert int(load_i64(out, 4)) == v

    def test_int_payload_codec_matches_struct_encoder(self):
        values = [0, 1, -1, 12345, -12345, 2**40, -(2**40),
                  2**62, -(2**62), 2**63 - 1, -(2**63)]
        for v in values:
            ref = bytearray()
            encode_payload(ref, v)
            out = np.zeros(64, dtype=np.uint8)
            end = compiled_mod.encode_int_payload(out, 0, np.int64(v))
            assert bytes(out[:end]) == bytes(ref), v
            decoded, pos = compiled_mod.decode_int_payload(out, 0)
            assert int(decoded) == v and pos == end

    def test_pack_segment_matches_struct_layout(self):
        # the python publish path, byte for byte
        rng = random.Random(5)
        for trial in range(20):
            words = [rng.randrange(-2**63, 2**63) for _ in
                     range(rng.randrange(0, 12))]
            blob = bytes(rng.randrange(256) for _ in
                         range(rng.randrange(0, 21)))
            size = (16 + 8 * len(words) + len(blob) + 7) & ~7
            ref = bytearray(size)
            ref[0:8] = struct.pack("<q", len(words))
            raw = array("q", words).tobytes()
            ref[8:8 + len(raw)] = raw
            tail = 8 + len(raw)
            ref[tail:tail + 8] = struct.pack("<q", len(blob))
            ref[tail + 8:tail + 8 + len(blob)] = blob
            out = np.zeros(size, dtype=np.uint8)
            end = pack_segment(
                out, 0,
                np.asarray(words, dtype=np.int64),
                np.frombuffer(blob, dtype=np.uint8))
            assert end == size, trial
            assert bytes(out) == bytes(ref), trial

    def test_pack_unpack_round_trip(self):
        words = np.asarray([3, -7, 2**62, -(2**63), 0], dtype=np.int64)
        blob = np.frombuffer(b"overflow-bytes!", dtype=np.uint8)
        out = np.zeros(256, dtype=np.uint8)
        end = pack_segment(out, 8, words, blob)
        assert end % 8 == 0
        words_out = np.zeros(8, dtype=np.int64)
        n, blob_start, blob_len = unpack_segment(out, 8, words_out)
        assert int(n) == 5
        assert list(words_out[:5]) == list(words)
        assert bytes(out[int(blob_start):int(blob_start) + int(blob_len)]) \
            == b"overflow-bytes!"

    def test_pack_segment_zeroes_the_padding(self):
        out = np.full(64, 0xAA, dtype=np.uint8)
        end = pack_segment(out, 0, np.zeros(0, dtype=np.int64),
                           np.frombuffer(b"abc", dtype=np.uint8))
        assert end == 24  # 8 + 8 + 3 blob + 5 pad
        assert bytes(out[19:24]) == b"\x00" * 5


# -- payload codec round trip (hypothesis) ----------------------------------

# exactly the plain-data universe the pricing model knows; oversized
# ints force the length-prefixed blob branch the sentinel words point at
_payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**100), max_value=2**100)
    | st.floats(allow_nan=False)
    | st.text(max_size=12),
    lambda children: st.tuples(children, children)
    | st.lists(children, max_size=4)
    | st.lists(children, max_size=4).map(tuple),
    max_leaves=12,
)


class TestPayloadRoundTrip:
    @given(obj=_payloads)
    def test_encode_decode_round_trip(self, obj):
        buf = bytearray()
        encode_payload(buf, obj)
        decoded, pos = decode_payload(memoryview(bytes(buf)), 0)
        assert decoded == obj
        assert pos == len(buf)

    @given(value=st.integers(min_value=2**63,
                             max_value=2**200) | st.integers(
                                 min_value=-(2**200), max_value=-(2**63) - 1))
    def test_oversized_int_blob_overflow(self, value):
        # beyond int64 the codec switches to the sign-tagged magnitude
        # blob; these are the values the word stream cannot carry inline
        buf = bytearray()
        encode_payload(buf, value)
        tag = buf[0]
        assert tag in (3, 4)  # _T_INT_POS / _T_INT_NEG
        decoded, pos = decode_payload(memoryview(bytes(buf)), 0)
        assert decoded == value and pos == len(buf)

    @given(values=st.lists(
        st.integers(min_value=-(2**63), max_value=2**63 - 1),
        min_size=1, max_size=8))
    def test_int64_range_jitted_bit_identity(self, values):
        # satellite: struct-based and jitted codecs agree byte for byte
        # over the whole inline-int range
        ref = bytearray()
        for v in values:
            encode_payload(ref, v)
        out = np.zeros(32 * len(values), dtype=np.uint8)
        pos = 0
        for v in values:
            pos = compiled_mod.encode_int_payload(out, pos, np.int64(v))
        assert bytes(out[:pos]) == bytes(ref)
