"""Tests for the high-level public API."""

import pytest

import repro
from repro import (
    Matching,
    approx_mcm,
    approx_mwm,
    eps_to_k,
    exact_mcm,
    exact_mwm,
    maximal_matching,
)
from repro.graphs import (
    cycle_graph,
    gnp,
    random_bipartite,
    uniform_weights,
)


class TestEpsToK:
    def test_mapping(self):
        assert eps_to_k(0.5) == 1
        assert eps_to_k(1 / 3) == 2
        assert eps_to_k(0.25) == 3
        assert eps_to_k(0.1) == 9

    def test_guarantee_holds(self):
        for eps in (0.5, 0.34, 0.25, 0.2):
            k = eps_to_k(eps)
            assert 1 - 1 / (k + 1) >= 1 - eps - 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            eps_to_k(0.0)
        with pytest.raises(ValueError):
            eps_to_k(1.0)


class TestApproxMCM:
    def test_bipartite_dispatch(self):
        g = random_bipartite(12, 12, 0.2, rng=0)
        res = approx_mcm(g, eps=0.34, seed=0)
        assert res.algorithm == "bipartite_mcm"
        assert res.certificate.cardinality_ratio >= 1 - 0.34 - 1e-9
        assert res.rounds is not None and res.rounds > 0

    def test_general_dispatch(self):
        g = cycle_graph(9)
        res = approx_mcm(g, eps=0.34, seed=0)
        assert res.algorithm == "general_mcm"
        assert res.certificate.cardinality_ratio >= 1 - 0.34 - 1e-9

    def test_local_model(self):
        g = gnp(14, 0.2, rng=1)
        res = approx_mcm(g, eps=0.34, seed=1, model="local")
        assert "local" in res.algorithm
        assert res.certificate.cardinality_ratio >= 1 - 0.34 - 1e-9

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            approx_mcm(cycle_graph(4), model="quantum")

    def test_certificate_fields(self):
        g = random_bipartite(8, 8, 0.3, rng=2)
        res = approx_mcm(g, eps=0.5, seed=2)
        assert res.certificate.valid
        assert res.certificate.optimum_size is not None
        assert res.size == res.certificate.size


class TestApproxMWM:
    def test_congest(self):
        g = gnp(20, 0.25, rng=0, weight_fn=uniform_weights())
        res = approx_mwm(g, eps=0.1, seed=0)
        assert "algorithm5" in res.algorithm
        assert res.weight > 0

    def test_bipartite_gets_reference(self):
        g = random_bipartite(8, 8, 0.4, rng=1, weight_fn=uniform_weights())
        res = approx_mwm(g, eps=0.1, seed=1)
        ratio = res.certificate.weight_ratio
        assert ratio is not None
        assert ratio >= 0.4 - 1e-9

    def test_explicit_reference(self):
        g = gnp(14, 0.3, rng=2, weight_fn=uniform_weights())
        res = approx_mwm(g, eps=0.2, seed=2, reference=100.0)
        assert res.certificate.weight_ratio == pytest.approx(
            res.weight / 100.0)

    def test_local_model(self):
        g = gnp(12, 0.3, rng=3, weight_fn=uniform_weights())
        res = approx_mwm(g, eps=0.25, seed=3, model="local")
        assert "hv" in res.algorithm

    def test_black_box_selection(self):
        g = gnp(14, 0.3, rng=4, weight_fn=uniform_weights())
        res = approx_mwm(g, eps=0.2, seed=4, black_box="local_greedy")
        assert "local_greedy" in res.algorithm

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            approx_mwm(cycle_graph(4), model="nope")


class TestMaximalMatching:
    def test_baseline(self):
        g = gnp(30, 0.15, rng=0)
        res = maximal_matching(g, seed=0)
        assert res.certificate.maximal
        assert res.certificate.cardinality_ratio >= 0.5 - 1e-9


class TestExact:
    def test_exact_mcm(self):
        g = cycle_graph(7)
        res = exact_mcm(g)
        assert res.size == 3
        assert res.certificate.cardinality_ratio == 1.0
        assert res.rounds is None

    def test_exact_mwm(self):
        g = random_bipartite(6, 6, 0.5, rng=1, weight_fn=uniform_weights())
        res = exact_mwm(g)
        assert res.certificate.weight_ratio == 1.0


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_result_repr(self):
        g = cycle_graph(6)
        res = exact_mcm(g)
        assert "exact_mcm" in repr(res)
        dres = maximal_matching(g, seed=1)
        assert "rounds=" in repr(dres)


class TestAuctionModel:
    def test_auction_dispatch(self):
        from repro.graphs import random_bipartite, uniform_weights

        g = random_bipartite(10, 10, 0.3, rng=4, weight_fn=uniform_weights())
        res = approx_mwm(g, eps=0.1, seed=4, model="auction")
        assert res.algorithm == "auction"
        assert res.certificate.weight_ratio >= 1 - 0.1 - 1e-9

    def test_auction_rejects_general_graphs(self):
        from repro.graphs.graph import GraphError

        with pytest.raises(GraphError):
            approx_mwm(cycle_graph(5), model="auction")
