"""Tests for the structured event bus, JSONL traces, and profiling.

The load-bearing guarantees: observers never change what a run computes
(same engine, same outputs, same metrics), both delivery engines emit the
same event sequence, traces round-trip through disk exactly, and the
legacy ``tracer=``/``LossyNetwork`` surfaces are faithful shims over the
bus and ``faults=``.
"""

import dataclasses

import pytest

from repro.congest import (
    BROADCAST,
    LOCAL,
    NodeAlgorithm,
    STRUCTURAL_KINDS,
    Augmentation,
    CheckerVerdict,
    EventBus,
    FaultSpec,
    JsonlTraceWriter,
    MessageDelivered,
    MISDecision,
    Network,
    PhaseEnd,
    PhaseStart,
    Profiler,
    RoundEnd,
    RoundStart,
    TokenCollision,
    Tracer,
    diff_traces,
    edge_sample_unit,
    load_trace,
    observing,
    render_timeline,
)
from repro.congest.faults import LossyNetwork
from repro.core.api import run
from repro.dist.checkers import check_matching
from repro.dist.israeli_itai import israeli_itai
from repro.dist.luby_mis import luby_mis
from repro.graphs import gnp, path_graph, random_bipartite


class Flood(NodeAlgorithm):
    """Broadcast the max id seen for 5 rounds; termination is loss-immune."""

    ROUNDS = 5

    def __init__(self, ctx):
        super().__init__(ctx)
        self.best = ctx.node_id
        self.seen = 0

    def start(self):
        return {BROADCAST: self.best}

    def on_round(self, inbox):
        self.seen += 1
        for value in inbox.values():
            self.best = max(self.best, value)
        if self.seen >= self.ROUNDS:
            return self.halt(self.best)
        return {BROADCAST: self.best}


class Collect:
    """Minimal observer: records every event it is routed."""

    def __init__(self, kinds=None, sample=None):
        if kinds is not None:
            self.interest = kinds
        if sample is not None:
            self.sample = sample
        self.events = []

    def on_event(self, event):
        self.events.append(event)

    def of(self, cls):
        return [e for e in self.events if isinstance(e, cls)]


class TestEventBus:
    def test_wants_is_false_without_subscribers(self):
        bus = EventBus()
        assert not bus.wants("round_start")
        assert not bus.wants(RoundStart)

    def test_interest_mask_routes_by_kind(self):
        bus = EventBus()
        rounds = bus.subscribe(Collect(kinds=(RoundStart, "round_end")))
        assert bus.wants(RoundStart) and bus.wants(RoundEnd)
        assert not bus.wants(PhaseStart)
        bus.emit(RoundStart(protocol="p", round=1))
        bus.emit(PhaseStart(algorithm="a", phase="x"))  # nobody listens
        bus.emit(RoundEnd(protocol="p", round=1, messages=2, bits=16))
        assert [e.kind for e in rounds.events] == ["round_start", "round_end"]

    def test_plain_callable_subscriber_gets_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(MISDecision(node=3, selected=True))
        bus.emit(CheckerVerdict(checker="c", ok=True))
        assert [e.kind for e in seen] == ["mis_decision", "checker_verdict"]

    def test_unsubscribe_clears_routes(self):
        bus = EventBus()
        observer = bus.subscribe(Collect())
        assert bus.wants(RoundStart)
        bus.unsubscribe(observer)
        assert not bus.wants(RoundStart)
        assert bus.subscribers == []

    def test_find_locates_subscriber_by_class(self):
        bus = EventBus()
        profiler = bus.subscribe(Profiler())
        assert bus.find(Profiler) is profiler
        assert bus.find(Tracer) is None

    def test_invalid_inputs_rejected(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(object())
        with pytest.raises(ValueError):
            bus.subscribe(Collect(), kinds=("no_such_kind",))
        with pytest.raises(ValueError):
            bus.subscribe(Collect(), sample=1.5)

    def test_message_sampling_is_per_edge_and_deterministic(self):
        bus = EventBus()
        everything = bus.subscribe(Collect(kinds=(MessageDelivered,)))
        nothing = bus.subscribe(Collect(kinds=(MessageDelivered,)),
                                sample=0.0)
        half = bus.subscribe(Collect(kinds=(MessageDelivered,)), sample=0.5)
        batch = [MessageDelivered(protocol="p", round=1, sender=u,
                                  receiver=v, bits=8)
                 for u in range(6) for v in range(6) if u != v]
        bus.emit_messages(batch)
        assert len(everything.events) == len(batch)
        assert nothing.events == []
        expected = [m for m in batch
                    if edge_sample_unit(m.sender, m.receiver) < 0.5]
        assert half.events == expected
        assert 0 < len(expected) < len(batch)

    def test_edge_sample_unit_properties(self):
        units = [edge_sample_unit(u, v) for u in range(20) for v in range(20)]
        assert all(0.0 <= x < 1.0 for x in units)
        assert edge_sample_unit(3, 7) == edge_sample_unit(3, 7)
        assert edge_sample_unit(3, 7) != edge_sample_unit(7, 3)


class TestObserversDoNotPerturbRuns:
    def test_observer_keeps_default_engine(self):
        g = gnp(10, 0.3, rng=1)
        plain = Network(g)
        observed = Network(g, observe=Collect())
        assert observed.engine == plain.engine == "csr"

    def test_observed_run_is_bit_identical(self):
        g = random_bipartite(10, 10, 0.3, rng=2)
        plain_net = Network(g, seed=5)
        plain = israeli_itai(plain_net)
        observed_net = Network(g, seed=5, observe=Collect())
        observed = israeli_itai(observed_net)
        assert set(observed.edges()) == set(plain.edges())
        assert observed_net.metrics.total_rounds == \
            plain_net.metrics.total_rounds
        assert observed_net.metrics.total_bits == plain_net.metrics.total_bits

    @pytest.mark.parametrize("engine", ["legacy", "csr"])
    def test_round_events_bracket_every_round(self, engine):
        g = gnp(8, 0.4, rng=3)
        collector = Collect(kinds=(RoundStart, RoundEnd))
        net = Network(g, seed=0, engine=engine, observe=collector)
        israeli_itai(net)
        starts = collector.of(RoundStart)
        ends = collector.of(RoundEnd)
        assert len(starts) == len(ends) == net.metrics.total_rounds
        assert [e.round for e in starts] == [e.round for e in ends]
        assert sum(e.messages for e in ends) == net.metrics.messages
        assert sum(e.bits for e in ends) == net.metrics.total_bits


class TestGoldenEventStream:
    """Both engines emit the identical event sequence for a seeded run."""

    def _message_stream(self, engine, faults=None):
        g = random_bipartite(12, 12, 0.25, rng=4)
        collector = Collect(kinds=(MessageDelivered,))
        net = Network(g, policy=LOCAL, seed=7, engine=engine,
                      observe=collector, faults=faults)
        if faults is None:
            israeli_itai(net)
        else:
            net.run(Flood)  # terminates regardless of message loss
        return [dataclasses.astuple(e) for e in collector.events]

    def test_legacy_and_csr_emit_identical_messages(self):
        legacy = self._message_stream("legacy")
        csr = self._message_stream("csr")
        assert legacy == csr
        assert legacy  # non-empty

    def test_identical_under_fault_injection(self):
        faults = FaultSpec(loss=0.2)
        legacy = self._message_stream("legacy", faults=faults)
        csr = self._message_stream("csr", faults=faults)
        assert legacy == csr
        # fault injection really removed messages from the stream
        assert len(legacy) < len(self._message_stream("csr",
                                                      FaultSpec(loss=0.0)))


class TestTracerShim:
    def _traced(self, make_network):
        g = gnp(10, 0.35, rng=6)
        tracer = Tracer()
        net = make_network(g, tracer)
        result = israeli_itai(net)
        return set(result.edges()), [dataclasses.astuple(e)
                                     for e in tracer.events]

    def test_tracer_kwarg_warns_and_matches_observe(self):
        with pytest.warns(DeprecationWarning):
            edges_shim, events_shim = self._traced(
                lambda g, t: Network(g, seed=2, tracer=t))
        edges_bus, events_bus = self._traced(
            lambda g, t: Network(g, seed=2, observe=[t]))
        assert edges_shim == edges_bus
        assert events_shim == events_bus
        assert events_bus

    def test_lossy_network_is_a_faults_shim(self):
        g = gnp(14, 0.3, rng=8)
        with pytest.warns(DeprecationWarning):
            lossy = LossyNetwork(g, loss=0.25, policy=LOCAL, seed=1)
        assert lossy.loss == 0.25
        plain = Network(g, policy=LOCAL, seed=1,
                        faults=FaultSpec(loss=0.25))
        out_lossy = lossy.run(Flood).outputs
        out_plain = plain.run(Flood).outputs
        assert out_lossy == out_plain
        assert lossy.dropped == plain.dropped > 0

    def test_fault_spec_validates_loss(self):
        with pytest.raises(ValueError):
            FaultSpec(loss=1.0)
        with pytest.raises(ValueError):
            FaultSpec(loss=-0.1)


class TestJsonlRoundTrip:
    def test_structural_trace_round_trips(self, tmp_path):
        g = random_bipartite(12, 12, 0.25, rng=3)
        path = tmp_path / "run.jsonl"
        result = run("bipartite_mcm", g, eps=0.25, seed=0, trace=path)
        assert result.trace_path == path
        events = load_trace(path)
        kinds = {e.kind for e in events}
        assert "phase_start" in kinds
        assert "augmentation" in kinds
        assert "round_start" in kinds and "round_end" in kinds
        assert "message" not in kinds  # structural by default
        # reloading is exact: a second load yields the same sequence
        assert diff_traces(events, load_trace(path)) is None

    def test_message_payloads_round_trip_exactly(self, tmp_path):
        g = gnp(8, 0.4, rng=5)
        path = tmp_path / "messages.jsonl"
        live = Collect()
        with JsonlTraceWriter(path, messages=True) as writer:
            bus = EventBus()
            bus.subscribe(writer)
            bus.subscribe(live)
            net = Network(g, seed=0, observe=bus)
            israeli_itai(net)
        loaded = load_trace(path)
        assert loaded == live.events
        assert any(isinstance(e, MessageDelivered) and e.payload is not None
                   for e in loaded)

    def test_writer_counts_and_closed_state(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path / "t.jsonl")
        assert writer.interest == STRUCTURAL_KINDS
        writer.on_event(RoundStart(protocol="p", round=1))
        writer.close()
        assert writer.count == 1
        assert writer.counts == {"round_start": 1}
        with pytest.raises(ValueError):
            writer.on_event(RoundStart(protocol="p", round=2))

    def test_diff_traces_reports_first_divergence(self):
        a = [RoundStart(protocol="p", round=1),
             RoundEnd(protocol="p", round=1)]
        b = [RoundStart(protocol="p", round=1),
             RoundEnd(protocol="p", round=1, messages=9)]
        index, ea, eb = diff_traces(a, b)
        assert index == 1 and ea != eb
        index, ea, eb = diff_traces(a, a + [RoundStart(protocol="p", round=2)])
        assert index == 2 and ea is None and eb is not None
        assert diff_traces(a, list(a)) is None

    def test_render_timeline_nests_phases(self):
        events = [
            PhaseStart(algorithm="alg", phase="ell=1"),
            Augmentation(algorithm="alg", phase="ell=1", paths=2, size=5),
            PhaseEnd(algorithm="alg", phase="ell=1",
                     detail={"matching_size": 5}),
        ]
        text = render_timeline(events)
        lines = text.splitlines()
        assert lines[0].startswith("alg: phase ell=1")
        assert lines[1].startswith("  ")  # indented inside the phase
        assert "matching_size=5" in lines[2]


class TestDriverEvents:
    def test_bipartite_mcm_emits_collisions_and_phases(self, tmp_path):
        g = random_bipartite(12, 12, 0.3, rng=9)
        path = tmp_path / "drivers.jsonl"
        run("bipartite_mcm", g, eps=0.25, seed=1, trace=path)
        kinds = {e.kind for e in load_trace(path)}
        assert {"phase_start", "phase_end", "augmentation",
                "token_collision"} <= kinds

    def test_luby_mis_emits_one_decision_per_node(self):
        g = gnp(12, 0.3, rng=2)
        collector = Collect(kinds=(MISDecision,))
        net = Network(g, seed=0, observe=collector)
        members = luby_mis(net)
        decisions = collector.of(MISDecision)
        assert len(decisions) == g.num_nodes
        assert {d.node for d in decisions if d.selected} == members

    def test_checker_emits_verdict(self):
        g = path_graph(4)
        collector = Collect(kinds=(CheckerVerdict,))
        net = Network(g, seed=0, observe=collector)
        complaints = check_matching(net, {0: 1, 1: 0, 2: None, 3: None})
        assert complaints == set()
        (verdict,) = collector.of(CheckerVerdict)
        assert verdict.checker == "check_matching"
        assert verdict.ok and verdict.complaints == 0

    def test_unobserved_drivers_skip_emission(self):
        # wants() gates driver instrumentation: a bus with no interest in
        # TokenCollision must never be handed an emit callback.
        g = path_graph(3)
        net = Network(g, observe=Collect(kinds=(RoundStart,)))
        assert net.observer_for(TokenCollision) is None
        assert net.wants(RoundStart)
        assert not net.wants(Augmentation)


class TestProfiler:
    def _fake_clock(self, times):
        ticks = iter(times)
        return lambda: next(ticks)

    def test_accounting_with_injected_clock(self):
        # phase open @0; round 1 runs 1..3; round 2 runs 5..6; phase end @10
        profiler = Profiler(clock=self._fake_clock([0.0, 1.0, 3.0, 5.0,
                                                    6.0, 10.0]))
        profiler.on_event(PhaseStart(algorithm="alg", phase="ell=1"))
        profiler.on_event(RoundStart(protocol="p", round=1))
        profiler.on_event(RoundEnd(protocol="p", round=1, messages=4,
                                   bits=32))
        profiler.on_event(RoundStart(protocol="p", round=2))
        profiler.on_event(RoundEnd(protocol="p", round=2, messages=6,
                                   bits=48))
        profiler.on_event(PhaseEnd(algorithm="alg", phase="ell=1"))
        report = profiler.report()
        proto = report.protocol("p")
        assert (proto.rounds, proto.messages, proto.bits) == (2, 10, 80)
        assert proto.wall == pytest.approx(3.0)  # (3-1) + (6-5)
        assert report.wall == pytest.approx(3.0)
        (phase,) = report.phases
        assert (phase.entries, phase.rounds, phase.messages) == (1, 2, 10)
        assert phase.wall == pytest.approx(10.0)  # inclusive: 10 - 0
        assert "p" in report.table() and "ell=1" in report.table()

    def test_unmatched_phase_end_is_ignored(self):
        profiler = Profiler(clock=self._fake_clock([0.0]))
        profiler.on_event(PhaseEnd(algorithm="alg", phase="nope"))
        assert profiler.report().phases == []

    def test_profile_surfaces_on_result(self):
        g = random_bipartite(10, 10, 0.3, rng=1)
        result = run("bipartite_mcm", g, eps=0.25, seed=0, profile=True)
        assert result.profile is not None
        protocols = {p.protocol for p in result.profile.protocols}
        assert protocols  # at least one protocol accounted
        assert all(p.rounds > 0 for p in result.profile.protocols)


class TestAmbientObserving:
    def test_networks_inside_context_attach(self):
        g = gnp(8, 0.4, rng=1)
        collector = Collect(kinds=(RoundStart,))
        with observing(collector):
            israeli_itai(Network(g, seed=0))
        assert collector.events
        count = len(collector.events)
        israeli_itai(Network(g, seed=0))  # outside: no ambient bus
        assert len(collector.events) == count

    def test_explicit_observe_beats_ambient(self):
        g = path_graph(4)
        ambient = Collect(kinds=(RoundStart,))
        explicit = Collect(kinds=(RoundStart,))
        with observing(ambient):
            israeli_itai(Network(g, seed=0, observe=explicit))
        assert explicit.events
        assert ambient.events == []


class TestCliSmoke:
    def test_profile_subcommand_prints_table(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "bipartite:8x8:0.3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "protocol" in out
        assert "rounds" in out
        # at least one non-header protocol row with numbers
        assert any(line.split() and line.split()[-1].endswith("%")
                   for line in out.splitlines()[3:])

    def test_trace_subcommand_records_and_diffs(self, tmp_path, capsys):
        from repro.__main__ import main

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for out in (a, b):
            assert main(["trace", "bipartite:8x8:0.3", "--seed", "2",
                         "--out", str(out)]) == 0
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["trace", "--load", str(a)]) == 0
        assert "round" in capsys.readouterr().out

    def test_trace_without_input_is_an_error(self, capsys):
        from repro.__main__ import main

        assert main(["trace"]) == 2
