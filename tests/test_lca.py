"""Tests for the local-computation matching oracle."""

import pytest

from repro.graphs import cycle_graph, gnp, path_graph, random_regular
from repro.lca import MatchingOracle
from repro.matching import Matching, is_maximal, verify_matching


class TestOracleConsistency:
    @pytest.mark.parametrize("seed", range(3))
    def test_queries_match_global_execution(self, seed):
        g = gnp(30, 0.1, rng=seed)
        oracle = MatchingOracle(g, seed=seed, iterations=5)
        reference = oracle.global_matching()
        for u, v, _ in g.edges():
            assert oracle.edge_in_matching(u, v) == (reference.get(u) == v)

    def test_node_mate_queries(self):
        g = gnp(25, 0.12, rng=4)
        oracle = MatchingOracle(g, seed=1, iterations=5)
        reference = oracle.global_matching()
        for v in g.nodes:
            assert oracle.node_mate(v) == reference.get(v)

    def test_global_matching_is_valid_and_maximal(self):
        g = gnp(40, 0.1, rng=2)
        oracle = MatchingOracle(g, seed=3)
        m = Matching.from_mate_map(oracle.global_matching())
        verify_matching(g, m)
        assert is_maximal(g, m)

    def test_queries_are_mutually_consistent(self):
        # no node may appear matched to two different neighbors
        g = random_regular(20, 3, rng=5)
        oracle = MatchingOracle(g, seed=2, iterations=4)
        mates = {}
        for u, v, _ in g.edges():
            if oracle.edge_in_matching(u, v):
                assert u not in mates and v not in mates
                mates[u] = v
                mates[v] = u


class TestProbeComplexity:
    def test_probes_counted(self):
        g = cycle_graph(30)
        oracle = MatchingOracle(g, seed=0, iterations=3)
        oracle.edge_in_matching(0, 1)
        assert oracle.last_query_probes > 0
        assert oracle.total_probes >= oracle.last_query_probes

    def test_probes_independent_of_n_on_cycles(self):
        # on bounded-degree graphs, probes depend on the radius, not on n
        probes = []
        for n in (50, 200, 800):
            oracle = MatchingOracle(cycle_graph(n), seed=1, iterations=3)
            oracle.edge_in_matching(0, 1)
            probes.append(oracle.last_query_probes)
        # the ball has ~2*(3k+1) nodes regardless of n; per-query cost is
        # bounded by a constant (it varies slightly with the random run)
        assert max(probes) <= 2 * min(probes)
        assert max(probes) < 10 * (2 * (3 * 3 + 1) + 2)

    def test_non_edge_rejected(self):
        g = path_graph(4)
        oracle = MatchingOracle(g, seed=0, iterations=2)
        with pytest.raises(ValueError):
            oracle.edge_in_matching(0, 3)

    def test_default_iterations_scale(self):
        g = cycle_graph(64)
        oracle = MatchingOracle(g, seed=0)
        assert oracle.iterations >= 2 * 7  # 2 * bit_length(64)
