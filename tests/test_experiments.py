"""Smoke tests for the experiment suite and table formatting."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, Table, run_all
from repro.experiments.suite import (
    exact_mwm_weight,
    t01_bipartite_ratio,
    t04_ii_baseline,
    t06_mwm_convergence,
    t07_phase_structure,
    t09_switch,
    t10_sampling_ablation,
    t12_blackbox_ablation,
)
from repro.graphs import cycle_graph, gnp, random_bipartite, uniform_weights


class TestTable:
    def test_add_row_validates_width(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_format_contains_everything(self):
        t = Table("My Title", ["col1", "col2"])
        t.add_row(1, 0.123456)
        t.add_row("x", True)
        t.add_note("a note")
        text = t.format()
        assert "My Title" in text
        assert "col1" in text and "col2" in text
        assert "0.123" in text
        assert "yes" in text
        assert "note: a note" in text

    def test_float_formatting(self):
        assert Table._fmt(0.0) == "0"
        assert Table._fmt(12345.678) == "1.23e+04"
        assert Table._fmt(1.5) == "1.5"
        assert Table._fmt(False) == "no"

    def test_empty_table_formats(self):
        t = Table("empty", ["a"])
        assert "empty" in t.format()


class TestSuiteRegistry:
    def test_all_twelve_registered(self):
        assert len(ALL_EXPERIMENTS) == 19
        assert set(ALL_EXPERIMENTS) == {f"t{i:02d}" for i in range(1, 20)}

    def test_run_all_subset(self):
        tables = run_all(["t04"])
        assert len(tables) == 1
        assert "Israeli-Itai" in tables[0].title


class TestSmallScaleRuns:
    """Each experiment at tiny scale: the bound columns must all hold."""

    def test_t01_bounds_hold(self):
        t = t01_bipartite_ratio(n_side=10, p=0.25, ks=(1, 2), seeds=(0, 1))
        assert all(row[-1] for row in t.rows)  # "all above bound"

    def test_t04_ratios_above_half(self):
        t = t04_ii_baseline(ns=(20, 40), seeds=(0, 1))
        for row in t.rows:
            assert row[2] >= 0.5  # min ratio column

    def test_t06_all_above_lemma_bound(self):
        t = t06_mwm_convergence(n=16, p=0.3, eps=0.1, seed=0)
        assert t.rows
        assert all(row[-1] for row in t.rows)

    def test_t07_phase_bounds(self):
        t = t07_phase_structure(n_side=12, p=0.2, k=2, seed=0)
        assert all(row[-1] for row in t.rows)

    def test_t09_runs_and_conserves(self):
        t = t09_switch(ports=4, cycles=40, load=0.7, seed=0)
        assert len(t.rows) == 3 * 6
        for row in t.rows:
            assert 0 <= row[2] <= 1  # throughput

    def test_t10_ablation_runs(self):
        t = t10_sampling_ablation(n=12, p=0.25, k=2, biases=(0.3, 0.5),
                                  seeds=(0,))
        assert len(t.rows) == 2

    def test_t12_both_boxes(self):
        t = t12_blackbox_ablation(n=14, p=0.3, eps=0.2, seeds=(0,))
        assert {row[0] for row in t.rows} == {"class_greedy", "local_greedy"}


class TestExactMWMHelper:
    def test_bipartite_uses_hungarian(self):
        g = random_bipartite(6, 6, 0.5, rng=0, weight_fn=uniform_weights())
        assert exact_mwm_weight(g) > 0

    def test_general_uses_networkx(self):
        g = cycle_graph(5)
        assert exact_mwm_weight(g) == 2.0
