"""Tests for the distributed b-matching extension (c-matching)."""

import pytest

from repro.dist.b_matching import (
    BMatchingError,
    b_matching_as_matching,
    b_matching_weight,
    distributed_b_matching,
    validate_b_matching,
)
from repro.dist.weighted import local_greedy_mwm
from repro.graphs import (
    Graph,
    complete_graph,
    gnp,
    path_graph,
    star_graph,
    uniform_weights,
)
from repro.matching.sequential.brute import brute_force_mwbm, greedy_mwbm


def unit_caps(graph, c=1):
    return {v: c for v in graph.nodes}


class TestValidation:
    def test_accepts_valid(self):
        g = path_graph(4)
        validate_b_matching(g, {(0, 1), (2, 3)}, unit_caps(g))

    def test_rejects_overload(self):
        g = star_graph(3)
        with pytest.raises(BMatchingError):
            validate_b_matching(g, {(0, 1), (0, 2)}, unit_caps(g))
        validate_b_matching(g, {(0, 1), (0, 2)}, {0: 2, 1: 1, 2: 1, 3: 1})

    def test_rejects_non_edge(self):
        g = path_graph(3)
        with pytest.raises(BMatchingError):
            validate_b_matching(g, {(0, 2)}, unit_caps(g))


class TestDistributedBMatching:
    def test_capacity_one_is_a_matching(self):
        g = gnp(20, 0.3, rng=1, weight_fn=uniform_weights())
        edges, _ = distributed_b_matching(g, unit_caps(g), seed=1)
        m = b_matching_as_matching(edges)  # validates no node reuse
        assert m.size == len(edges)

    def test_capacity_one_agrees_with_local_greedy(self):
        g = gnp(18, 0.3, rng=2, weight_fn=uniform_weights())
        edges, _ = distributed_b_matching(g, unit_caps(g), seed=2)
        lg, _ = local_greedy_mwm(g, seed=2)
        assert edges == set(lg.edges())

    def test_star_with_center_capacity(self):
        g = star_graph(5)
        edges, _ = distributed_b_matching(g, {0: 3, **{v: 1 for v in range(1, 6)}},
                                          seed=0)
        assert len(edges) == 3
        assert all(u == 0 for u, _ in edges)

    @pytest.mark.parametrize("seed", range(3))
    def test_half_approximation(self, seed):
        g = gnp(10, 0.4, rng=seed, weight_fn=uniform_weights())
        if g.num_edges > 20:
            pytest.skip("too large for the brute-force reference")
        caps = {v: 1 + (v % 3) for v in g.nodes}
        edges, _ = distributed_b_matching(g, caps, seed=seed)
        validate_b_matching(g, edges, caps)
        opt = b_matching_weight(g, brute_force_mwbm(g, caps))
        assert b_matching_weight(g, edges) >= 0.5 * opt - 1e-9

    def test_maximality(self):
        g = gnp(16, 0.3, rng=4, weight_fn=uniform_weights())
        caps = {v: 2 for v in g.nodes}
        edges, _ = distributed_b_matching(g, caps, seed=4)
        load = {}
        for u, v in edges:
            load[u] = load.get(u, 0) + 1
            load[v] = load.get(v, 0) + 1
        for u, v, _ in g.edges():
            if (u, v) in edges:
                continue
            # at least one endpoint must be saturated
            assert load.get(u, 0) >= caps[u] or load.get(v, 0) >= caps[v]

    def test_zero_capacity_nodes_sit_out(self):
        g = path_graph(3)
        edges, _ = distributed_b_matching(g, {0: 1, 1: 0, 2: 1}, seed=0)
        assert edges == set()

    def test_negative_capacity_rejected(self):
        g = path_graph(2)
        with pytest.raises(BMatchingError):
            distributed_b_matching(g, {0: -1, 1: 1}, seed=0)

    def test_complete_graph_high_capacity(self):
        g = complete_graph(6)
        caps = {v: 5 for v in g.nodes}
        edges, _ = distributed_b_matching(g, caps, seed=1)
        # with capacity = degree every edge fits
        assert len(edges) == g.num_edges

    def test_deterministic(self):
        g = gnp(14, 0.3, rng=5, weight_fn=uniform_weights())
        caps = {v: 2 for v in g.nodes}
        e1, _ = distributed_b_matching(g, caps, seed=9)
        e2, _ = distributed_b_matching(g, caps, seed=9)
        assert e1 == e2


class TestSequentialBMatchingReferences:
    def test_greedy_vs_brute(self):
        for seed in range(3):
            g = gnp(9, 0.4, rng=seed, weight_fn=uniform_weights())
            if g.num_edges > 20:
                continue
            caps = {v: 2 for v in g.nodes}
            greedy = b_matching_weight(g, greedy_mwbm(g, caps))
            opt = b_matching_weight(g, brute_force_mwbm(g, caps))
            assert greedy >= 0.5 * opt - 1e-9

    def test_brute_respects_capacity(self):
        g = star_graph(4)
        caps = {0: 2, 1: 1, 2: 1, 3: 1, 4: 1}
        edges = brute_force_mwbm(g, caps)
        validate_b_matching(g, edges, caps)
        assert len(edges) == 2
