"""Tests for Algorithm 4 (general graphs) and Algorithm 1 (generic LOCAL)."""

import pytest

from repro.dist import general_mcm, generic_mcm, theory_iterations
from repro.graphs import (
    blossom_gadget,
    complete_graph,
    cycle_graph,
    gnp,
    path_graph,
    random_bipartite,
    random_regular,
)
from repro.matching import shortest_augmenting_path_length, verify_matching
from repro.matching.sequential import max_cardinality


class TestGeneralMCM:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_certified_guarantee(self, seed):
        g = gnp(24, 0.15, rng=seed)
        k = 2
        opt = max_cardinality(g).size
        res = general_mcm(g, k=k, seed=seed, stopping="exact")
        verify_matching(g, res.matching)
        assert res.certified
        assert res.matching.size >= (1 - 1 / (k + 1)) * opt - 1e-9
        assert shortest_augmenting_path_length(
            g, res.matching, max_len=2 * k - 1) is None

    def test_handles_blossoms(self):
        g = blossom_gadget(3)
        res = general_mcm(g, k=3, seed=1, stopping="exact")
        assert res.matching.size == 9  # optimum

    def test_odd_cycle(self):
        g = cycle_graph(9)
        res = general_mcm(g, k=3, seed=0, stopping="exact")
        assert res.matching.size == 4

    def test_complete_graph(self):
        g = complete_graph(10)
        res = general_mcm(g, k=2, seed=0, stopping="exact")
        assert res.matching.size >= int((1 - 1 / 3) * 5)

    def test_regular_graph(self):
        g = random_regular(20, 3, rng=4)
        opt = max_cardinality(g).size
        res = general_mcm(g, k=2, seed=4, stopping="exact")
        assert res.matching.size >= (2 / 3) * opt - 1e-9

    def test_patience_stopping(self):
        g = gnp(20, 0.2, rng=2)
        res = general_mcm(g, k=2, seed=2, stopping="patience", patience=5)
        verify_matching(g, res.matching)
        assert res.iterations_used >= 1

    def test_theory_iterations_formula(self):
        import math

        assert theory_iterations(3) == math.ceil(2 ** 7 * 4 * math.log(3))
        with pytest.raises(ValueError):
            theory_iterations(2)

    def test_max_iterations_cap(self):
        g = gnp(20, 0.2, rng=3)
        res = general_mcm(g, k=2, seed=3, stopping="patience",
                          max_iterations=2)
        assert res.iterations_used <= 2

    def test_parameter_validation(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            general_mcm(g, k=0)
        with pytest.raises(ValueError):
            general_mcm(g, k=2, color_bias=0.0)
        with pytest.raises(ValueError):
            general_mcm(g, k=2, stopping="bogus")

    def test_iteration_stats(self):
        g = gnp(18, 0.2, rng=1)
        res = general_mcm(g, k=2, seed=1, stopping="exact")
        assert res.iterations
        sizes = [it.matching_size for it in res.iterations]
        assert sizes == sorted(sizes)  # matching never shrinks
        for it in res.iterations:
            assert 0 <= it.sampled_nodes <= g.num_nodes

    def test_deterministic_given_seed(self):
        g = gnp(16, 0.2, rng=8)
        a = general_mcm(g, k=2, seed=11, stopping="exact").matching
        b = general_mcm(g, k=2, seed=11, stopping="exact").matching
        assert a == b

    def test_biased_coloring_still_correct(self):
        g = gnp(16, 0.2, rng=5)
        res = general_mcm(g, k=2, seed=5, stopping="exact", color_bias=0.3)
        assert res.certified

    def test_works_on_bipartite_inputs_too(self):
        g = random_bipartite(10, 10, 0.2, rng=3)
        opt = max_cardinality(g).size
        res = general_mcm(g, k=2, seed=3, stopping="exact")
        assert res.matching.size >= (2 / 3) * opt - 1e-9


class TestGenericMCM:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_certified_guarantee(self, k):
        g = gnp(18, 0.18, rng=0)
        opt = max_cardinality(g).size
        res = generic_mcm(g, k=k, seed=0)
        verify_matching(g, res.matching)
        assert res.matching.size >= (1 - 1 / (k + 1)) * opt - 1e-9
        assert shortest_augmenting_path_length(
            g, res.matching, max_len=2 * k - 1) is None

    def test_blossom_gadget_exact(self):
        g = blossom_gadget(2)
        res = generic_mcm(g, k=3, seed=0)
        assert res.matching.size == 6

    def test_phase_trace(self):
        g = gnp(16, 0.2, rng=1)
        res = generic_mcm(g, k=2, seed=1)
        assert [p.ell for p in res.phases] == [1, 3]
        assert all(p.mis_size <= p.conflict_nodes for p in res.phases)

    def test_message_sizes_are_large(self):
        # the LOCAL algorithm floods graph descriptions: messages far
        # exceed the CONGEST budget, which is the point of Section 3.2
        g = gnp(16, 0.25, rng=2)
        res = generic_mcm(g, k=2, seed=2)
        from repro.congest import log2n

        assert res.network.metrics.max_message_bits > 16 * log2n(16)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            generic_mcm(path_graph(3), k=0)
