"""Tests for graph generators and weight distributions."""

import math
import random

import pytest

from repro.graphs import (
    BipartiteGraph,
    GraphError,
    augmenting_chain,
    blossom_gadget,
    complete_bipartite,
    complete_graph,
    crown_graph,
    cycle_graph,
    exponential_weights,
    gnp,
    grid_graph,
    integer_weights,
    path_graph,
    polarized_weights,
    power_law_graph,
    power_of_two_weights,
    random_bipartite,
    random_regular,
    random_tree,
    reweight,
    star_graph,
    switch_request_graph,
    uniform_weights,
    weight_spread,
)


class TestDeterministicTopologies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.num_edges == 4

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert isinstance(g, BipartiteGraph)
        assert g.num_edges == 12


class TestRandomGraphs:
    def test_gnp_seeded_reproducible(self):
        g1 = gnp(30, 0.2, rng=7)
        g2 = gnp(30, 0.2, rng=7)
        assert g1.edge_set() == g2.edge_set()

    def test_gnp_different_seeds_differ(self):
        g1 = gnp(30, 0.2, rng=1)
        g2 = gnp(30, 0.2, rng=2)
        assert g1.edge_set() != g2.edge_set()

    def test_gnp_extreme_p(self):
        assert gnp(10, 0.0, rng=0).num_edges == 0
        assert gnp(10, 1.0, rng=0).num_edges == 45

    def test_random_bipartite_structure(self):
        g = random_bipartite(10, 12, 0.3, rng=3)
        assert g.left == list(range(10))
        assert g.right == list(range(10, 22))
        for u, v, _ in g.edges():
            assert g.is_left(u) != g.is_left(v)

    def test_random_tree(self):
        g = random_tree(20, rng=4)
        assert g.num_edges == 19
        assert len(g.connected_components()) == 1

    def test_random_regular_degrees(self):
        g = random_regular(20, 4, rng=5)
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            random_regular(5, 3, rng=0)
        with pytest.raises(GraphError):
            random_regular(4, 5, rng=0)

    def test_power_law_graph(self):
        g = power_law_graph(100, exponent=2.5, rng=6)
        assert g.num_nodes == 100
        assert g.num_edges > 0
        with pytest.raises(GraphError):
            power_law_graph(10, exponent=0.9)

    def test_weighted_generation(self):
        g = gnp(15, 0.5, rng=1, weight_fn=uniform_weights(2, 5))
        for _, _, w in g.edges():
            assert 2 <= w <= 5


class TestMatchingInstances:
    def test_augmenting_chain(self):
        g = augmenting_chain(3, link_length=3)
        assert g.num_nodes == 12
        assert g.num_edges == 9
        assert len(g.connected_components()) == 3

    def test_augmenting_chain_validation(self):
        with pytest.raises(GraphError):
            augmenting_chain(2, link_length=0)

    def test_crown_graph(self):
        g = crown_graph(4)
        assert g.num_edges == 4 * 3
        assert not g.has_edge(0, 4)
        assert g.has_edge(0, 5)
        with pytest.raises(GraphError):
            crown_graph(1)

    def test_blossom_gadget(self):
        g = blossom_gadget(2)
        assert g.num_nodes == 12
        assert g.num_edges == 12
        assert g.bipartition() is None  # contains odd cycles

    def test_switch_request_graph(self):
        occupancy = [[0, 2], [1, 0]]
        g = switch_request_graph(2, occupancy, weighted=True)
        assert g.has_edge(0, 3) and g.weight(0, 3) == 2.0
        assert g.has_edge(1, 2) and g.weight(1, 2) == 1.0
        assert not g.has_edge(0, 2)
        gu = switch_request_graph(2, occupancy, weighted=False)
        assert gu.weight(0, 3) == 1.0


class TestWeightDistributions:
    def test_factories_validate(self):
        with pytest.raises(ValueError):
            uniform_weights(5, 1)
        with pytest.raises(ValueError):
            integer_weights(0, 3)
        with pytest.raises(ValueError):
            exponential_weights(-1)
        with pytest.raises(ValueError):
            power_of_two_weights(-1)
        with pytest.raises(ValueError):
            polarized_weights(heavy_fraction=1.5)

    def test_integer_weights_integral(self):
        rng = random.Random(0)
        fn = integer_weights(1, 9)
        for _ in range(50):
            w = fn(rng)
            assert w == int(w) and 1 <= w <= 9

    def test_power_of_two(self):
        rng = random.Random(0)
        fn = power_of_two_weights(6)
        for _ in range(50):
            w = fn(rng)
            assert math.log2(w) == int(math.log2(w))

    def test_polarized(self):
        rng = random.Random(0)
        fn = polarized_weights(heavy_fraction=0.5, heavy=10, light=1)
        values = {fn(rng) for _ in range(100)}
        assert values == {1.0, 10.0}

    def test_reweight_preserves_structure(self):
        g = gnp(10, 0.4, rng=1)
        h = reweight(g, uniform_weights(10, 20), rng=2)
        assert h.edge_set() == g.edge_set()
        assert all(10 <= w <= 20 for _, _, w in h.edges())
        # original untouched
        assert all(w == 1.0 for _, _, w in g.edges())

    def test_weight_spread(self):
        g = gnp(6, 1.0, rng=0, weight_fn=power_of_two_weights(8))
        assert weight_spread(g) <= 8
        single = path_graph(2)
        assert weight_spread(single) == 0.0
