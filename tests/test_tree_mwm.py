"""Tests for the exact distributed tree MWM."""

import pytest

from repro.dist import tree_mwm
from repro.graphs import (
    Graph,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
    uniform_weights,
)
from repro.graphs.graph import GraphError
from repro.matching.sequential.tree_dp import max_weight_forest
from repro.matching.verify import verify_matching


class TestTreeMWM:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_on_random_trees(self, seed):
        g = random_tree(30, rng=seed, weight_fn=uniform_weights())
        m, net = tree_mwm(g, seed=seed)
        verify_matching(g, m)
        assert abs(m.weight(g) - max_weight_forest(g).weight(g)) < 1e-9

    def test_path(self):
        g = path_graph(7)
        m, _ = tree_mwm(g, seed=0)
        assert m.size == 3

    def test_star_single_edge(self):
        g = star_graph(5)
        m, _ = tree_mwm(g, seed=0)
        assert m.size == 1

    def test_weighted_star_picks_heaviest(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 9.0)
        g.add_edge(0, 3, 4.0)
        m, _ = tree_mwm(g, seed=0)
        assert m.contains_edge(0, 2)

    def test_forest_with_isolates(self):
        g = Graph()
        g.add_node(99)
        g.add_edge(0, 1, 5.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(3, 4, 2.0)
        m, _ = tree_mwm(g, seed=0)
        assert m.edge_set() == frozenset({(0, 1), (3, 4)})

    def test_single_edge(self):
        g = path_graph(2)
        m, _ = tree_mwm(g, seed=0)
        assert m.size == 1

    def test_empty_graph(self):
        g = Graph()
        m, _ = tree_mwm(g, seed=0)
        assert m.size == 0

    def test_rejects_cycles(self):
        with pytest.raises(GraphError):
            tree_mwm(cycle_graph(4))

    def test_rounds_scale_with_depth_not_size(self):
        # a star has depth 1 regardless of leaf count
        small, net_small = tree_mwm(star_graph(10), seed=1)
        large, net_large = tree_mwm(star_graph(200), seed=1)
        assert net_large.metrics.rounds <= net_small.metrics.rounds + 4

    def test_deterministic(self):
        g = random_tree(20, rng=3, weight_fn=uniform_weights())
        m1, _ = tree_mwm(g, seed=5)
        m2, _ = tree_mwm(g, seed=5)
        assert m1 == m2

    def test_metrics_protocols(self):
        g = random_tree(15, rng=2, weight_fn=uniform_weights())
        _, net = tree_mwm(g, seed=2)
        assert "flood_max" in net.metrics.protocol_rounds
        assert "tree_mwm" in net.metrics.protocol_rounds
