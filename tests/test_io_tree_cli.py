"""Tests for graph I/O, the forest DP, and the command-line interface."""

import pytest

from repro.graphs import (
    BipartiteGraph,
    GraphError,
    cycle_graph,
    gnp,
    path_graph,
    random_bipartite,
    random_tree,
    star_graph,
    uniform_weights,
)
from repro.graphs.io import (
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)
from repro.matching.sequential import brute_force_mwm
from repro.matching.sequential.tree_dp import is_forest, max_weight_forest
from repro.matching.verify import verify_matching


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        g = gnp(15, 0.3, rng=1, weight_fn=uniform_weights())
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert h.nodes == g.nodes
        assert {(u, v, w) for u, v, w in h.edges()} == set(g.edges())

    def test_isolated_nodes_preserved(self, tmp_path):
        from repro.graphs import Graph

        g = Graph()
        g.add_node(7)
        g.add_edge(0, 1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert h.has_node(7)
        assert h.num_nodes == 3

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 2.5  # inline\n2\n")
        g = read_edge_list(path)
        assert g.weight(0, 1) == 2.5
        assert g.has_node(2)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            read_edge_list(path)
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            read_edge_list(path)


class TestJsonIO:
    def test_round_trip_plain(self, tmp_path):
        g = gnp(10, 0.4, rng=2, weight_fn=uniform_weights())
        path = tmp_path / "g.json"
        write_json(g, path)
        h = read_json(path)
        assert set(h.edges()) == set(g.edges())

    def test_round_trip_bipartite(self, tmp_path):
        g = random_bipartite(5, 6, 0.4, rng=3)
        path = tmp_path / "g.json"
        write_json(g, path)
        h = read_json(path)
        assert isinstance(h, BipartiteGraph)
        assert h.left == g.left
        assert set(h.edges()) == set(g.edges())


class TestForestDP:
    def test_is_forest(self):
        assert is_forest(path_graph(6))
        assert is_forest(star_graph(4))
        assert not is_forest(cycle_graph(5))

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_on_random_trees(self, seed):
        g = random_tree(11, rng=seed, weight_fn=uniform_weights())
        m = max_weight_forest(g)
        verify_matching(g, m)
        assert abs(m.weight(g) - brute_force_mwm(g).weight(g)) < 1e-9

    def test_path_alternation(self):
        g = path_graph(6)
        m = max_weight_forest(g)
        assert m.size == 3

    def test_rejects_cycles(self):
        with pytest.raises(GraphError):
            max_weight_forest(cycle_graph(4))

    def test_forest_with_isolates(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_node(9)
        g.add_edge(0, 1, 5.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(3, 4, 2.0)
        m = max_weight_forest(g)
        assert m.edge_set() == frozenset({(0, 1), (3, 4)})

    def test_star_picks_heaviest_leaf(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 9.0)
        g.add_edge(0, 3, 4.0)
        m = max_weight_forest(g)
        assert m.contains_edge(0, 2)
        assert m.size == 1

    def test_large_tree_no_recursion_issue(self):
        g = path_graph(3000)  # a 3000-node path would break naive recursion
        m = max_weight_forest(g)
        assert m.size == 1500


class TestCLI:
    def test_experiments_list(self, capsys):
        from repro.__main__ import main

        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "t01" in out and "t13" in out

    def test_experiments_unknown(self, capsys):
        from repro.__main__ import main

        assert main(["experiments", "t99"]) == 2

    def test_experiments_nothing(self, capsys):
        from repro.__main__ import main

        assert main(["experiments"]) == 2

    def test_match_unweighted(self, tmp_path, capsys):
        from repro.__main__ import main

        g = gnp(14, 0.3, rng=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert main(["match", str(path), "--eps", "0.5", "--output"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert "rounds" in out

    def test_match_weighted(self, tmp_path, capsys):
        from repro.__main__ import main

        g = random_bipartite(6, 6, 0.4, rng=2, weight_fn=uniform_weights())
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert main(["match", str(path), "--weighted", "--eps", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "algorithm5" in out
