"""Tests for Algorithm 2's view flooding and view materialization."""

from repro.congest import LOCAL, Network
from repro.dist import flood_views, view_to_graph
from repro.graphs import gnp, path_graph
from repro.matching import Matching, enumerate_augmenting_paths


class TestFloodViews:
    def test_radius_one(self):
        g = path_graph(5)
        net = Network(g, policy=LOCAL, seed=0)
        views = flood_views(net, {v: None for v in g.nodes}, rounds=1)
        # node 2 after 1 round knows edges incident to nodes within dist 1
        graph2, _ = view_to_graph(views[2])
        assert graph2.edge_set() == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_full_radius_recovers_graph(self):
        g = gnp(12, 0.3, rng=1)
        net = Network(g, policy=LOCAL, seed=0)
        views = flood_views(net, {v: None for v in g.nodes}, rounds=12)
        for v in g.nodes:
            if g.degree(v) == 0:
                continue
            local, _ = view_to_graph(views[v])
            comp = next(c for c in g.connected_components() if v in c)
            expected = g.subgraph(comp).edge_set()
            assert local.edge_set() == expected

    def test_matched_flags_travel(self):
        g = path_graph(4)
        mate = {0: None, 1: 2, 2: 1, 3: None}
        net = Network(g, policy=LOCAL, seed=0)
        views = flood_views(net, mate, rounds=4)
        _, seen_mate = view_to_graph(views[0])
        assert seen_mate[1] == 2 and seen_mate[2] == 1
        assert seen_mate[0] is None

    def test_local_path_enumeration_matches_global(self):
        g = gnp(14, 0.25, rng=3)
        m = Matching()
        for u, v, _ in g.edges():
            if m.is_free(u) and m.is_free(v):
                m.add(u, v)
        mate = {v: m.mate(v) for v in g.nodes}
        ell = 3
        net = Network(g, policy=LOCAL, seed=0)
        views = flood_views(net, mate, rounds=2 * ell)
        global_paths = set(enumerate_augmenting_paths(g, m, ell))
        local_paths = set()
        for v in g.nodes:
            if m.is_matched(v):
                continue
            lg, lmate = view_to_graph(views[v])
            if not lg.has_node(v):
                continue
            lm = Matching.from_mate_map(lmate)
            for p in enumerate_augmenting_paths(lg, lm, ell):
                if min(p[0], p[-1]) == v:
                    local_paths.add(p)
        assert local_paths == global_paths

    def test_message_sizes_recorded(self):
        g = gnp(10, 0.4, rng=2)
        net = Network(g, policy=LOCAL, seed=0)
        flood_views(net, {v: None for v in g.nodes}, rounds=4)
        assert net.metrics.max_message_bits > 0
