"""Tests for the cellular coverage application."""

import pytest

from repro.cellular import (
    CellularScenario,
    Client,
    RadioModel,
    Station,
    assign_distributed,
    assign_greedy_snr,
    assign_optimal,
    assign_sequential_greedy,
)
from repro.dist.b_matching import validate_b_matching


class TestRadioModel:
    def test_rate_decreases_with_distance(self):
        radio = RadioModel()
        near = radio.rate(0.01, 0.0)
        far = radio.rate(0.3, 0.0)
        assert near is not None and far is not None
        assert near > far

    def test_out_of_range_is_none(self):
        radio = RadioModel(max_range=0.2)
        assert radio.rate(0.5, 0.0) is None

    def test_symmetric_in_displacement(self):
        radio = RadioModel()
        assert radio.rate(0.1, 0.2) == radio.rate(-0.1, -0.2)


class TestScenario:
    def test_random_reproducible(self):
        a = CellularScenario.random(4, 10, rng=1)
        b = CellularScenario.random(4, 10, rng=1)
        assert [(c.x, c.y) for c in a.clients] == [(c.x, c.y) for c in b.clients]

    def test_validation(self):
        with pytest.raises(ValueError):
            CellularScenario.random(0, 5)
        with pytest.raises(ValueError):
            CellularScenario.random(3, 5, capacity=0)

    def test_association_graph_structure(self):
        sc = CellularScenario.random(3, 8, capacity=2, rng=2)
        graph, capacity = sc.association_graph()
        offset = sc.station_offset
        assert offset == 8
        for u, v, w in graph.edges():
            assert w > 0
            assert min(u, v) < offset <= max(u, v)
        for c in sc.clients:
            assert capacity[c.client_id] == 1
        for s in sc.stations:
            assert capacity[offset + s.station_id] == 2

    def test_clustered_placement_in_bounds(self):
        sc = CellularScenario.random(4, 30, rng=3, clustered=True)
        for c in sc.clients:
            assert 0.0 <= c.x <= 1.0 and 0.0 <= c.y <= 1.0


class TestAssignment:
    def test_distributed_respects_capacities(self):
        sc = CellularScenario.random(5, 30, capacity=3, rng=4, clustered=True)
        result = assign_distributed(sc, seed=4)
        graph, capacity = sc.association_graph()
        validate_b_matching(graph, result.edges, capacity)

    def test_distributed_beats_or_ties_naive(self):
        for seed in range(4):
            sc = CellularScenario.random(6, 40, capacity=3, rng=seed,
                                         clustered=True)
            dist = assign_distributed(sc, seed=seed)
            naive = assign_greedy_snr(sc)
            assert dist.total_rate >= naive.total_rate - 1e-9

    def test_half_of_optimal_on_small_instances(self):
        sc = CellularScenario.random(3, 8, capacity=2, rng=5)
        graph, _ = sc.association_graph()
        if graph.num_edges > 20:
            pytest.skip("instance too large for the brute-force reference")
        dist = assign_distributed(sc, seed=5)
        opt = assign_optimal(sc)
        assert dist.total_rate >= 0.5 * opt.total_rate - 1e-9

    def test_metrics_fields(self):
        sc = CellularScenario.random(4, 12, capacity=2, rng=6)
        r = assign_distributed(sc, seed=6)
        assert 0.0 <= r.coverage <= 1.0
        assert 0.0 <= r.fairness <= 1.0 + 1e-9
        assert r.served_clients <= r.total_clients
        assert r.rounds is not None

    def test_sequential_greedy_valid(self):
        sc = CellularScenario.random(5, 25, capacity=2, rng=7, clustered=True)
        result = assign_sequential_greedy(sc)
        graph, capacity = sc.association_graph()
        validate_b_matching(graph, result.edges, capacity)

    def test_empty_association(self):
        # stations far outside every client's range
        radio = RadioModel(max_range=1e-6)
        sc = CellularScenario.random(3, 5, rng=8, radio=radio)
        result = assign_distributed(sc, seed=8)
        assert result.total_rate == 0.0
        assert result.coverage == 0.0
