"""Tests for Section 4: gain machinery, black boxes, Algorithm 5, HV."""

import math

import networkx as nx
import pytest

from repro.congest import CONGEST, Network
from repro.dist.weighted import (
    BLACK_BOX_DELTA,
    apply_wraps,
    approximate_mwm,
    class_greedy_mwm,
    default_iterations,
    gain,
    local_greedy_mwm,
    residual_graph,
    residual_weights,
    weight_class,
    wrap_path,
)
from repro.dist.weighted.hv_local import hv_mwm
from repro.graphs import (
    Graph,
    exponential_weights,
    gnp,
    path_graph,
    polarized_weights,
    power_of_two_weights,
    random_bipartite,
    uniform_weights,
)
from repro.graphs.interop import to_networkx
from repro.matching import Matching, verify_matching
from repro.matching.sequential import greedy_mwm, max_weight_bipartite


def exact_weight(g):
    m = nx.max_weight_matching(to_networkx(g))
    return sum(g.weight(u, v) for u, v in m)


def three_path():
    """The paper's own worst case: three unit edges in series."""
    g = Graph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 1.0)
    return g


class TestWrapGain:
    def test_wrap_free_endpoints(self):
        g = path_graph(2)
        assert wrap_path(g, Matching(), 0, 1) == [(0, 1)]

    def test_wrap_with_mates(self):
        g = three_path()
        m = Matching([(0, 1), (2, 3)])
        assert wrap_path(g, m, 1, 2) == [(0, 1), (1, 2), (2, 3)]

    def test_wrap_on_matching_edge_rejected(self):
        g = path_graph(2)
        m = Matching([(0, 1)])
        with pytest.raises(ValueError):
            wrap_path(g, m, 0, 1)

    def test_gain_definition(self):
        g = Graph()
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 7.0)
        g.add_edge(2, 3, 3.0)
        m = Matching([(0, 1), (2, 3)])
        assert gain(g, m, 1, 2) == 7.0 - 2.0 - 3.0

    def test_papers_series_worst_case(self):
        # gain of the middle-edge matching is 0 everywhere: Algorithm 5
        # cannot beat 1/2 here (the paper's closing remark)
        g = three_path()
        m = Matching([(1, 2)])
        assert residual_weights(g, m) == {}
        res = approximate_mwm(g, eps=0.05, seed=0)
        assert res.matching.weight(g) >= 1.0

    def test_residual_weights_positive_only(self):
        g = three_path()
        m = Matching([(0, 1)])
        rw = residual_weights(g, m)
        assert (2, 3) in rw and rw[(2, 3)] == 1.0
        assert (0, 1) not in rw  # matching edge
        assert (1, 2) not in rw  # zero gain

    def test_residual_graph_structure(self):
        g = three_path()
        gp = residual_graph(g, Matching([(0, 1)]))
        assert gp.edge_set() == {(2, 3)}

    def test_apply_wraps_lemma41(self):
        # Lemma 4.1: w(M'') >= w(M) + w_M(M') and M'' is a matching
        for seed in range(4):
            g = gnp(14, 0.3, rng=seed, weight_fn=uniform_weights())
            m = greedy_mwm(g)
            gp = residual_graph(g, m)
            if gp.num_edges == 0:
                continue
            mprime = greedy_mwm(gp)  # any matching in G'
            m2 = apply_wraps(g, m, mprime.edges())
            verify_matching(g, m2)
            assert m2.weight(g) >= m.weight(g) + mprime.weight(gp) - 1e-9

    def test_apply_wraps_rejects_matching_edges(self):
        g = path_graph(2)
        m = Matching([(0, 1)])
        with pytest.raises(ValueError):
            apply_wraps(g, m, [(0, 1)])


class TestWeightClass:
    def test_values(self):
        assert weight_class(1.0) == 0
        assert weight_class(2.0) == 1
        assert weight_class(3.9) == 1
        assert weight_class(0.5) == -1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            weight_class(0.0)


class TestClassGreedy:
    @pytest.mark.parametrize("seed", range(3))
    def test_quarter_guarantee(self, seed):
        g = gnp(30, 0.15, rng=seed, weight_fn=exponential_weights())
        m, net = class_greedy_mwm(g, seed=seed, eps=0.2)
        verify_matching(g, m)
        assert m.weight(g) >= 0.25 * (1 - 0.2) * exact_weight(g) - 1e-9

    def test_power_of_two_weights_exact_classes(self):
        g = gnp(20, 0.3, rng=1, weight_fn=power_of_two_weights(6))
        m, _ = class_greedy_mwm(g, seed=1)
        verify_matching(g, m)
        assert m.weight(g) >= 0.25 * exact_weight(g) - 1e-9

    def test_polarized_weights(self):
        g = gnp(30, 0.2, rng=2, weight_fn=polarized_weights())
        m, _ = class_greedy_mwm(g, seed=2)
        assert m.weight(g) >= 0.2 * exact_weight(g) - 1e-9

    def test_empty_graph(self):
        g = Graph()
        g.add_nodes(range(4))
        m, _ = class_greedy_mwm(g, seed=0)
        assert m.size == 0

    def test_flooded_max_variant(self):
        g = gnp(16, 0.25, rng=3, weight_fn=uniform_weights())
        m1, _ = class_greedy_mwm(g, seed=3, known_max=True)
        m2, net2 = class_greedy_mwm(g, seed=3, known_max=False)
        verify_matching(g, m2)
        assert "flood_max" in net2.metrics.protocol_rounds

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            class_greedy_mwm(path_graph(2), eps=1.5)

    def test_congest_compliant(self):
        g = gnp(24, 0.2, rng=4, weight_fn=uniform_weights())
        m, net = class_greedy_mwm(g, seed=4, policy=CONGEST)
        assert net.metrics.max_message_bits <= CONGEST.budget_bits(24)


class TestLocalGreedy:
    @pytest.mark.parametrize("seed", range(3))
    def test_half_guarantee(self, seed):
        g = gnp(26, 0.2, rng=seed + 30, weight_fn=uniform_weights())
        m, _ = local_greedy_mwm(g, seed=seed)
        verify_matching(g, m)
        assert m.weight(g) >= 0.5 * exact_weight(g) - 1e-9

    def test_decreasing_chain_serializes_but_correct(self):
        g = Graph()
        for i in range(10):
            g.add_edge(i, i + 1, 100.0 - i)
        m, net = local_greedy_mwm(g, seed=0)
        # greedy by decreasing weight picks every other edge
        assert m.contains_edge(0, 1)
        assert m.contains_edge(2, 3)
        assert net.metrics.rounds >= 6  # the chain forces sequential matching

    def test_initial_and_filter(self):
        g = path_graph(4)
        m, _ = local_greedy_mwm(g, seed=0, initial=Matching([(1, 2)]))
        assert m.contains_edge(1, 2) and m.size == 1
        m2, _ = local_greedy_mwm(g, seed=0, allowed_edges=[(2, 3)])
        assert m2.edge_set() == frozenset({(2, 3)})


class TestAlgorithm5:
    def test_default_iterations(self):
        assert default_iterations(0.5, 0.1) == math.ceil(3.0 * math.log(20))
        with pytest.raises(ValueError):
            default_iterations(0.0, 0.1)
        with pytest.raises(ValueError):
            default_iterations(0.5, 1.0)

    @pytest.mark.parametrize("box", ["class_greedy", "local_greedy"])
    def test_half_minus_eps(self, box):
        eps = 0.1
        for seed in range(3):
            g = gnp(26, 0.2, rng=seed, weight_fn=exponential_weights())
            res = approximate_mwm(g, eps=eps, seed=seed, black_box=box)
            verify_matching(g, res.matching)
            assert res.matching.weight(g) >= (0.5 - eps) * exact_weight(g) - 1e-9

    def test_improves_on_black_box(self):
        # Algorithm 5 must never end below its own black box's first shot
        g = gnp(30, 0.2, rng=7, weight_fn=exponential_weights())
        bb, _ = class_greedy_mwm(g, seed=7 * 7919 + 1)
        res = approximate_mwm(g, eps=0.05, seed=7)
        assert res.matching.weight(g) >= bb.weight(g) - 1e-9

    def test_weights_monotone_across_iterations(self):
        g = gnp(24, 0.25, rng=2, weight_fn=uniform_weights())
        res = approximate_mwm(g, eps=0.05, seed=2)
        weights = [it.matching_weight for it in res.iterations]
        assert weights == sorted(weights)
        assert all(it.gain_applied >= -1e-9 for it in res.iterations)

    def test_lemma_43_convergence_bound(self):
        g = gnp(24, 0.25, rng=3, weight_fn=uniform_weights())
        opt = exact_weight(g)
        res = approximate_mwm(g, eps=0.02, seed=3)
        for it in res.iterations:
            bound = 0.5 * (1 - math.exp(-2 * res.delta * it.iteration / 3))
            assert it.matching_weight / opt >= bound - 1e-9

    def test_custom_black_box_callable(self):
        calls = []

        def box(g, seed, network):
            calls.append(seed)
            return local_greedy_mwm(g, seed=seed, network=network)

        g = gnp(14, 0.3, rng=4, weight_fn=uniform_weights())
        res = approximate_mwm(g, eps=0.3, seed=4, black_box=box)
        assert calls
        verify_matching(g, res.matching)
    def test_unknown_black_box(self):
        with pytest.raises(ValueError):
            approximate_mwm(path_graph(2), black_box="nope")

    def test_early_exit_when_residual_empty(self):
        g = path_graph(2)  # one edge: first iteration matches it, then done
        res = approximate_mwm(g, eps=0.01, seed=0)
        assert res.matching.size == 1
        assert res.iterations_used < default_iterations(res.delta, 0.01)

    def test_unweighted_graph(self):
        g = gnp(20, 0.2, rng=5)
        res = approximate_mwm(g, eps=0.1, seed=5)
        verify_matching(g, res.matching)
        assert res.matching.size >= 1


class TestHVLocal:
    @pytest.mark.parametrize("seed", range(3))
    def test_one_minus_eps(self, seed):
        g = gnp(14, 0.3, rng=seed, weight_fn=uniform_weights())
        res = hv_mwm(g, eps=0.25, seed=seed)
        verify_matching(g, res.matching)
        assert res.matching.weight(g) >= 0.75 * exact_weight(g) - 1e-9

    def test_beats_algorithm5_on_bipartite(self):
        g = random_bipartite(8, 8, 0.4, rng=1, weight_fn=uniform_weights())
        opt = max_weight_bipartite(g).weight(g)
        hv = hv_mwm(g, eps=0.2, seed=1).matching.weight(g)
        assert hv >= 0.8 * opt - 1e-9

    def test_sweep_trace(self):
        g = gnp(12, 0.3, rng=2, weight_fn=uniform_weights())
        res = hv_mwm(g, eps=0.34, seed=2)
        weights = [s.matching_weight for s in res.sweeps]
        assert weights == sorted(weights)

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            hv_mwm(path_graph(2), eps=0.0)
