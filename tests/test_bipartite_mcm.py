"""Tests for the Theorem 3.10 bipartite CONGEST driver."""

import pytest

from repro.congest import PIPELINE, Network
from repro.dist import augment_to_level, bipartite_mcm, side_map_of
from repro.dist.bipartite_counting import X_SIDE, Y_SIDE
from repro.graphs import (
    BipartiteGraph,
    complete_bipartite,
    crown_graph,
    cycle_graph,
    path_graph,
    random_bipartite,
)
from repro.graphs.graph import GraphError
from repro.matching import (
    Matching,
    shortest_augmenting_path_length,
    verify_matching,
)
from repro.matching.sequential import max_cardinality_bipartite


class TestSideMap:
    def test_bipartite_graph_sides(self):
        g = BipartiteGraph([0, 1], [2, 3])
        g.add_edge(0, 2)
        side = side_map_of(g)
        assert side[0] == X_SIDE and side[2] == Y_SIDE

    def test_plain_bipartite_graph(self):
        side = side_map_of(path_graph(4))
        for u in range(3):
            assert side[u] != side[u + 1]

    def test_non_bipartite_raises(self):
        with pytest.raises(GraphError):
            side_map_of(cycle_graph(5))


class TestBipartiteMCM:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_guarantee_and_no_short_paths(self, k, seed):
        g = random_bipartite(20, 20, 0.15, rng=seed)
        opt = max_cardinality_bipartite(g).size
        res = bipartite_mcm(g, k=k, seed=seed)
        verify_matching(g, res.matching)
        assert res.matching.size >= (1 - 1 / (k + 1)) * opt - 1e-9
        assert shortest_augmenting_path_length(
            g, res.matching, max_len=2 * k - 1) is None

    def test_perfect_on_complete_bipartite(self):
        g = complete_bipartite(6, 6)
        res = bipartite_mcm(g, k=3, seed=0)
        assert res.matching.size == 6

    def test_crown_graph(self):
        g = crown_graph(8)
        res = bipartite_mcm(g, k=3, seed=1)
        assert res.matching.size >= 6  # (1 - 1/4) * 8

    def test_empty_graph(self):
        g = random_bipartite(5, 5, 0.0, rng=0)
        res = bipartite_mcm(g, k=2, seed=0)
        assert res.matching.size == 0

    def test_phase_stats_recorded(self):
        g = random_bipartite(15, 15, 0.2, rng=3)
        res = bipartite_mcm(g, k=3, seed=3)
        assert [p.ell for p in res.stats.phases] == [1, 3, 5]
        sizes = [p.matching_size for p in res.stats.phases]
        assert sizes == sorted(sizes)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            bipartite_mcm(path_graph(2), k=0)

    def test_initial_matching_respected(self):
        g = complete_bipartite(3, 3)
        initial = Matching([(0, 3)])
        res = bipartite_mcm(g, k=2, seed=0, initial=initial)
        assert res.matching.size == 3

    def test_deterministic_given_seed(self):
        g = random_bipartite(15, 15, 0.2, rng=5)
        a = bipartite_mcm(g, k=2, seed=7).matching
        b = bipartite_mcm(g, k=2, seed=7).matching
        assert a == b

    def test_monotone_in_k(self):
        g = random_bipartite(25, 25, 0.08, rng=6)
        sizes = [bipartite_mcm(g, k=k, seed=2).matching.size for k in (1, 2, 3)]
        assert sizes[0] <= sizes[-1]

    def test_metrics_populated(self):
        g = random_bipartite(10, 10, 0.3, rng=1)
        res = bipartite_mcm(g, k=2, seed=1)
        m = res.network.metrics
        assert m.rounds > 0
        assert m.messages > 0
        assert "counting" in m.protocol_rounds


class TestAugmentToLevel:
    def test_respects_allowed_edges(self):
        g = complete_bipartite(2, 2)
        net = Network(g, policy=PIPELINE, seed=0)
        side = side_map_of(g)
        mate = {v: None for v in g.nodes}
        allowed = {(0, 2)}
        new_mate, stats = augment_to_level(net, side, mate, 1, allowed=allowed)
        m = Matching.from_mate_map(new_mate)
        assert m.edge_set() <= {(0, 2)}

    def test_skips_non_participants(self):
        g = complete_bipartite(2, 2)
        net = Network(g, policy=PIPELINE, seed=0)
        side = side_map_of(g)
        side[0] = None  # node 0 sits out
        mate = {v: None for v in g.nodes}
        new_mate, _ = augment_to_level(net, side, mate, 1)
        assert new_mate[0] is None
        m = Matching.from_mate_map(new_mate)
        assert m.size == 1  # only node 1 can match
