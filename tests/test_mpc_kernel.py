"""Tests for the vectorized MPC execution tier (repro.mpc.kernel).

Three concerns, mirroring the guarantees the tier makes:

* **golden equivalence** — on a seed x alpha x graph-family matrix the
  ``mpc_kernel`` and ``node`` rungs produce the identical matching,
  supersteps, Metrics, memory gauges (cluster peak *and* per-machine
  ledgers) and structural event stream, including identical
  :class:`~repro.mpc.cluster.MemoryExceeded` failures at the identical
  superstep when machine limits are squeezed mid-run;
* **ladder resolution** — ``unavailable_reason`` gates (kernels=False
  plans, the ``REPRO_NO_KERNELS`` kill switch, numpy absence, non-int
  node ids) fall through to ``node`` with the reason in the
  ``explain_execution()`` chain, and the chain never names CONGEST rungs;
* **ledger invariants** — hypothesis property tests over
  :class:`~repro.mpc.cluster.MPCMachine` charge/release sequences (peak
  monotone and sticky, resident never negative, the guard trips exactly
  when resident would pass the cap) and the bit-exactness of
  :func:`~repro.mpc.kernel.vec_splitmix64` against the scalar chain.
"""

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.dist.random_tools import _MASK64, spawn_seed
from repro.graphs import gnp, grid_graph, path_graph, random_bipartite
from repro.graphs.generators import power_law_graph, star_graph
from repro.models import ExecutionPlan
from repro.mpc import (
    MemoryExceeded,
    MPCCluster,
    MPCMachine,
    machine_words,
    mpc_maximal,
)
from repro.mpc.kernel import _np, unavailable_reason, vec_splitmix64
from repro.observe.events import EventBus

numpy_only = pytest.mark.skipif(_np is None, reason="numpy not installed")


def _families():
    # all large enough that S = ceil(n**0.5) clears the 16-word floor
    return {
        "gnp": gnp(300, 0.02, rng=random.Random(7)),
        "path": path_graph(280),
        "grid": grid_graph(17, 17),
        "bipartite": random_bipartite(140, 140, 0.025, rng=random.Random(3)),
        "power_law": power_law_graph(300, rng=random.Random(5)),
        "star": star_graph(280),
        "dense": gnp(280, 0.12, rng=random.Random(13)),
    }


def _run(g, alpha, seed, tier):
    """One observed run; returns (result, cluster, event tuples)."""
    events = []
    bus = EventBus()
    bus.subscribe(lambda e: events.append((type(e).__name__,
                                           dict(vars(e)))))
    cluster = MPCCluster(g, alpha=alpha, seed=seed, observe=bus,
                         execution=tier)
    result = mpc_maximal(cluster)
    return result, cluster, events


@numpy_only
class TestGoldenEquivalence:
    """node and mpc_kernel are indistinguishable except in wall-clock."""

    @pytest.mark.parametrize("alpha", [0.5, 0.7, 0.9])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_matrix(self, alpha, seed):
        for name, g in _families().items():
            rn, cn, en = _run(g, alpha, seed, "node")
            rv, cv, ev = _run(g, alpha, seed, "mpc_kernel")
            ctx = (name, alpha, seed)
            assert rn.tier == "node" and rv.tier == "mpc_kernel", ctx
            assert sorted(rn.matching.edges()) == \
                sorted(rv.matching.edges()), ctx
            assert rn.supersteps == rv.supersteps, ctx
            assert rn.iterations == rv.iterations, ctx
            assert rn.iteration_stats == rv.iteration_stats, ctx
            assert rn.delta_est == rv.delta_est, ctx
            assert rn.edge_decay == rv.edge_decay, ctx
            # budget-exact: the whole memory account, not just the peak
            assert rn.peak_words == rv.peak_words, ctx
            assert [m.peak for m in cn.machines] == \
                [m.peak for m in cv.machines], ctx
            assert [m.resident for m in cn.machines] == \
                [m.resident for m in cv.machines], ctx
            assert cn.metrics.snapshot() == cv.metrics.snapshot(), ctx
            # the structural event stream is identical, details included
            assert en == ev, ctx

    def test_counter_values_are_plain_python(self):
        # details are JSON-traced; numpy scalars must never leak out
        g = gnp(300, 0.02, rng=random.Random(1))
        _, _, events = _run(g, 0.7, 0, "mpc_kernel")
        for kind, payload in events:
            if kind == "PhaseEnd":
                for key, value in payload["detail"].items():
                    assert type(value) in (int, float), (key, value)

    def test_memory_exceeded_parity_mid_run(self):
        # squeeze every machine's cap post-construction so the guard
        # trips mid-run; both tiers must fail with the bit-identical
        # exception at the same superstep, with identical partial ledgers
        g = gnp(300, 0.02, rng=random.Random(9))

        def squeezed(tier, headroom):
            cluster = MPCCluster(g, alpha=0.6, seed=0, execution=tier)
            for mach in cluster.machines:
                mach.limit = mach.resident + headroom
            try:
                mpc_maximal(cluster)
                return cluster, None
            except MemoryExceeded as exc:
                return cluster, exc

        tripped = 0
        for headroom in range(0, 40, 3):
            cn, exn = squeezed("node", headroom)
            cv, exv = squeezed("mpc_kernel", headroom)
            assert (exn is None) == (exv is None), headroom
            if exn is None:
                continue
            tripped += 1
            for attr in ("machine", "needed", "limit", "phase"):
                assert getattr(exn, attr) == getattr(exv, attr), \
                    (headroom, attr)
            assert str(exn) == str(exv)
            assert cn._superstep_counter == cv._superstep_counter, headroom
            assert [m.resident for m in cn.machines] == \
                [m.resident for m in cv.machines], headroom
            assert [m.peak for m in cn.machines] == \
                [m.peak for m in cv.machines], headroom
        assert tripped >= 3  # the squeeze exercised several phases

    def test_run_entry_point_resolves_vectorized(self):
        g = gnp(300, 0.02, rng=random.Random(4))
        fast = repro.run("mpc_maximal", g, alpha=0.6, seed=1)
        slow = repro.run("mpc_maximal", g, alpha=0.6, seed=1,
                         execution="node")
        assert sorted(fast.matching.edges()) == sorted(slow.matching.edges())
        assert fast.certificate.valid


class TestLadderResolution:
    """unavailable_reason gates and the explain_execution() chain."""

    def test_auto_prefers_vectorized_when_available(self):
        cluster = MPCCluster(path_graph(280), alpha=0.7)
        decision = cluster.explain_execution()
        if _np is not None:
            assert decision.tier == "mpc_kernel"
            assert any("tier 'mpc_kernel': selected" in r
                       for r in decision.reasons)
        else:
            assert decision.tier == "node"
            assert any("numpy is not importable" in r
                       for r in decision.reasons)

    def test_chain_names_only_mpc_rungs(self):
        decision = MPCCluster(path_graph(280), alpha=0.7).explain_execution()
        joined = " ".join(decision.reasons)
        assert "model 'mpc'" in joined
        assert "mpc_kernel > node" in joined
        for foreign in ("compiled", "sharded", "legacy", "numba",
                        "RoundKernel", "shard worker"):
            assert foreign not in joined

    def test_node_pin_skips_the_vector_rung(self):
        cluster = MPCCluster(path_graph(280), alpha=0.7, execution="node")
        decision = cluster.explain_execution()
        assert decision.tier == "node"
        assert not any("mpc_kernel" in r for r in decision.reasons
                       if "ladder" not in r)

    def test_kernels_false_reason(self):
        plan = ExecutionPlan(kernels=False)
        assert unavailable_reason(plan) == \
            "the plan excludes kernels (kernels=False)"
        cluster = MPCCluster(path_graph(280), alpha=0.7, execution=plan)
        decision = cluster.explain_execution()
        assert decision.tier == "node"
        assert any("kernels=False" in r for r in decision.reasons)
        assert mpc_maximal(cluster).tier == "node"

    def test_kill_switch_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_KERNELS", "1")
        cluster = MPCCluster(path_graph(280), alpha=0.7)
        decision = cluster.explain_execution()
        assert decision.tier == "node"
        assert any("REPRO_NO_KERNELS" in r for r in decision.reasons)
        # env_overrides=False plans ignore the environment
        pinned = MPCCluster(path_graph(280), alpha=0.7,
                            execution=ExecutionPlan(env_overrides=False))
        if _np is not None:
            assert pinned.explain_execution().tier == "mpc_kernel"

    @numpy_only
    def test_non_integer_node_ids_fall_through(self):
        class Stub:
            nodes = ("a", "b")

        why = unavailable_reason(ExecutionPlan(), Stub())
        assert why is not None and "node ids" in why

    @numpy_only
    def test_fallthrough_is_golden(self, monkeypatch):
        # the kill switch only changes the rung, never the outputs
        g = gnp(300, 0.02, rng=random.Random(6))
        fast = mpc_maximal(MPCCluster(g, alpha=0.7, seed=2))
        monkeypatch.setenv("REPRO_NO_KERNELS", "1")
        slow = mpc_maximal(MPCCluster(g, alpha=0.7, seed=2))
        assert fast.tier == "mpc_kernel" and slow.tier == "node"
        assert sorted(fast.matching.edges()) == sorted(slow.matching.edges())
        assert fast.supersteps == slow.supersteps
        assert fast.peak_words == slow.peak_words


class TestPeelingCounters:
    """The per-iteration delta_est / edge-decay counters (both tiers)."""

    @pytest.mark.parametrize("tier", ["node", "auto"])
    def test_result_series(self, tier):
        g = gnp(300, 0.02, rng=random.Random(8))
        res = mpc_maximal(MPCCluster(g, alpha=0.7, seed=0, execution=tier))
        assert len(res.delta_est) == res.iterations
        assert len(res.edge_decay) == res.iterations
        assert all(d >= 1 for d in res.delta_est)
        # every alive edge is eventually decayed away, exactly once
        assert sum(res.edge_decay) == g.num_edges

    def test_phase_details_carry_counters(self):
        g = gnp(300, 0.02, rng=random.Random(8))
        _, _, events = _run(g, 0.7, 0, "auto")
        sparsify = [p["detail"] for k, p in events
                    if k == "PhaseEnd" and p["phase"].startswith("sparsify")]
        integrate = [p["detail"] for k, p in events
                     if k == "PhaseEnd" and p["phase"].startswith("integrate")]
        assert sparsify and integrate
        assert all("delta_est" in d for d in sparsify)
        assert all("decay_ratio" in d and "dropped_edges" in d
                   for d in integrate)
        assert all(0.0 < d["decay_ratio"] <= 1.0 for d in integrate)

    def test_profiler_surfaces_counters(self):
        g = gnp(300, 0.02, rng=random.Random(8))
        result = repro.run("mpc_maximal", g, alpha=0.7, profile=True)
        by_phase = {ph.phase: ph for ph in result.profile.phases}
        first_sparsify = by_phase["sparsify[1]"]
        assert "delta_est" in first_sparsify.counters
        assert "sampled" in first_sparsify.counters
        first_integrate = by_phase["integrate[1]"]
        assert "decay_ratio" in first_integrate.counters
        # counters render in the table
        assert "delta_est=" in result.profile.table()


class TestLedgerProperties:
    """Hypothesis invariants for the MPCMachine word ledger."""

    @given(limit=st.integers(min_value=1, max_value=10_000),
           ops=st.lists(st.tuples(st.booleans(),
                                  st.integers(min_value=0,
                                              max_value=2_000)),
                        max_size=60))
    @settings(deadline=None, max_examples=120)
    def test_charge_release_invariants(self, limit, ops):
        mach = MPCMachine(0, limit=limit)
        shadow_resident = 0
        shadow_peak = 0
        for is_charge, words in ops:
            if is_charge:
                if shadow_resident + words > limit:
                    with pytest.raises(MemoryExceeded) as err:
                        mach.charge(words, "prop")
                    assert err.value.needed == shadow_resident + words
                    assert err.value.limit == limit
                    # a refused charge mutates nothing
                    assert mach.resident == shadow_resident
                    assert mach.peak == shadow_peak
                else:
                    mach.charge(words, "prop")
                    shadow_resident += words
                    shadow_peak = max(shadow_peak, shadow_resident)
            else:
                mach.release(words)
                shadow_resident = max(0, shadow_resident - words)
            assert mach.resident == shadow_resident
            assert mach.peak == shadow_peak
            # the standing invariants
            assert 0 <= mach.resident <= mach.peak <= limit

    @given(n=st.integers(min_value=2, max_value=5_000),
           alpha=st.floats(min_value=0.05, max_value=1.0,
                           allow_nan=False))
    @settings(deadline=None, max_examples=80)
    def test_floor_trips_at_construction(self, n, alpha):
        words = machine_words(n, alpha)
        g = path_graph(n)
        if words < 16:  # MIN_MACHINE_WORDS
            with pytest.raises(MemoryExceeded) as err:
                MPCCluster(g, alpha=alpha)
            assert err.value.phase == "input distribution"
            assert err.value.limit == words
        else:
            cluster = MPCCluster(g, alpha=alpha)
            assert all(m.resident <= m.limit for m in cluster.machines)

    @numpy_only
    @given(st.lists(st.integers(min_value=0, max_value=_MASK64),
                    min_size=1, max_size=40))
    @settings(deadline=None, max_examples=100)
    def test_vec_splitmix64_matches_scalar(self, values):
        from repro.dist.random_tools import _splitmix64

        arr = _np.array(values, dtype=_np.uint64)
        out = vec_splitmix64(arr)
        assert out.tolist() == [_splitmix64(v) for v in values]

    @numpy_only
    def test_vectorized_priorities_match_spawn_seed(self):
        # the full chain: spawn_seed(seed, "mpc", it, a, b) replayed as
        # two vectorized folds over a python-scalar prefix
        from repro.dist.random_tools import _fold, _splitmix64

        seed, iteration = 12345, 7
        pairs = [(0, 1), (3, 9), (17, 2000), (2**40, 2**40 + 1)]
        prefix = _fold(_fold(_splitmix64(seed & _MASK64), "mpc"), iteration)
        pa = _np.array([min(p) for p in pairs], dtype=_np.uint64)
        pb = _np.array([max(p) for p in pairs], dtype=_np.uint64)
        got = vec_splitmix64(
            vec_splitmix64(_np.uint64(prefix) ^ pa) ^ pb).tolist()
        want = [spawn_seed(seed, "mpc", iteration, min(p), max(p))
                for p in pairs]
        assert got == want
