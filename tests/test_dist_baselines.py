"""Tests for the distributed baselines: Israeli-Itai and Luby MIS."""

import pytest

from repro.congest import CONGEST, Network, log2n
from repro.dist import israeli_itai, luby_mis
from repro.graphs import (
    Graph,
    augmenting_chain,
    complete_graph,
    cycle_graph,
    gnp,
    path_graph,
    star_graph,
)
from repro.matching import Matching, is_maximal, verify_matching
from repro.matching.sequential import max_cardinality


def assert_mis(graph, mis):
    for u, v, _ in graph.edges():
        assert not (u in mis and v in mis), f"edge ({u},{v}) inside MIS"
    for v in graph.nodes:
        assert v in mis or any(u in mis for u in graph.neighbors(v)), (
            f"node {v} undominated"
        )


class TestIsraeliItai:
    @pytest.mark.parametrize("seed", range(4))
    def test_maximal_on_random_graphs(self, seed):
        g = gnp(60, 0.08, rng=seed)
        net = Network(g, policy=CONGEST, seed=seed)
        m = israeli_itai(net)
        verify_matching(g, m)
        assert is_maximal(g, m)

    def test_half_approximation(self):
        for seed in range(4):
            g = gnp(40, 0.1, rng=seed + 50)
            m = israeli_itai(Network(g, seed=seed))
            opt = max_cardinality(g).size
            assert m.size >= opt / 2

    def test_empty_graph(self):
        g = Graph()
        g.add_nodes(range(5))
        m = israeli_itai(Network(g, seed=0))
        assert m.size == 0

    def test_single_edge(self):
        m = israeli_itai(Network(path_graph(2), seed=0))
        assert m.size == 1

    def test_star(self):
        m = israeli_itai(Network(star_graph(5), seed=1))
        assert m.size == 1
        assert m.is_matched(0)

    def test_complete_graph_perfect(self):
        g = complete_graph(8)
        m = israeli_itai(Network(g, seed=2))
        assert m.size == 4

    def test_respects_initial_matching(self):
        g = path_graph(4)
        initial = Matching([(1, 2)])
        m = israeli_itai(Network(g, seed=0), initial=initial)
        assert m.contains_edge(1, 2)
        assert m.size == 1  # 0 and 3 have no free partner

    def test_allowed_edges_restriction(self):
        g = path_graph(4)
        m = israeli_itai(Network(g, seed=0), allowed_edges=[(0, 1)])
        assert m.edge_set() == frozenset({(0, 1)})

    def test_rounds_logarithmic(self):
        # rounds should grow far slower than n
        rounds = []
        for n in (50, 200, 800):
            g = gnp(n, min(1.0, 8.0 / n), rng=1)
            net = Network(g, seed=3)
            israeli_itai(net)
            rounds.append(net.metrics.rounds)
        assert rounds[-1] <= 12 * log2n(800)

    def test_messages_fit_congest(self):
        g = gnp(50, 0.1, rng=0)
        net = Network(g, policy=CONGEST, seed=0)
        israeli_itai(net)  # strict policy would raise on violation
        assert net.metrics.max_message_bits <= CONGEST.budget_bits(50)

    def test_deterministic_given_seed(self):
        g = gnp(30, 0.15, rng=2)
        m1 = israeli_itai(Network(g, seed=9))
        m2 = israeli_itai(Network(g, seed=9))
        assert m1 == m2


class TestLubyMIS:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_mis_on_random(self, seed):
        g = gnp(50, 0.1, rng=seed)
        mis = luby_mis(Network(g, seed=seed))
        assert_mis(g, mis)

    def test_cycle(self):
        g = cycle_graph(9)
        mis = luby_mis(Network(g, seed=1))
        assert_mis(g, mis)
        assert 3 <= len(mis) <= 4

    def test_star_center_or_leaves(self):
        g = star_graph(6)
        mis = luby_mis(Network(g, seed=2))
        assert_mis(g, mis)
        assert mis == {0} or 0 not in mis

    def test_isolated_nodes_always_join(self):
        g = Graph()
        g.add_nodes([0, 1, 2])
        g.add_edge(3, 4)
        mis = luby_mis(Network(g, seed=0))
        assert {0, 1, 2} <= mis

    def test_complete_graph_singleton(self):
        mis = luby_mis(Network(complete_graph(10), seed=3))
        assert len(mis) == 1

    def test_deterministic_given_seed(self):
        g = gnp(40, 0.1, rng=3)
        assert luby_mis(Network(g, seed=5)) == luby_mis(Network(g, seed=5))

    def test_congest_compliant(self):
        g = gnp(60, 0.08, rng=1)
        net = Network(g, policy=CONGEST, seed=1)
        luby_mis(net)
        assert net.metrics.max_message_bits <= CONGEST.budget_bits(60)
