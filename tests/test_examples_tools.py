"""Smoke tests: examples import cleanly; tools regenerate their outputs."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
TOOLS = sorted((Path(__file__).parent.parent / "tools").glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"_smoke_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load_module(path)
    assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"
    assert module.__doc__, f"{path.stem} lacks a module docstring"


def test_six_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "switch_scheduling",
        "job_assignment",
        "lca_queries",
        "ring_worst_case",
        "cellular_coverage",
    } <= names


@pytest.mark.parametrize("path", TOOLS, ids=lambda p: p.stem)
def test_tools_import(path):
    load_module(path)


class TestLQFScheduler:
    def test_lqf_greedy_order(self):
        from repro.switchsim.schedulers import LQFScheduler

        occ = [[5, 4], [4, 1]]
        match = LQFScheduler().schedule(occ, 0)
        # longest queue (0,0) first, then (1,1) is all that remains
        assert (0, 0) in match and (1, 1) in match

    def test_lqf_valid(self):
        from repro.switchsim.schedulers import LQFScheduler

        occ = [[2, 0, 1], [0, 3, 0], [1, 0, 0]]
        match = LQFScheduler().schedule(occ, 0)
        ins = [i for i, _ in match]
        outs = [j for _, j in match]
        assert len(set(ins)) == len(ins) and len(set(outs)) == len(outs)
        for i, j in match:
            assert occ[i][j] > 0


class TestAsyncHaltedBufferRegression:
    def test_late_message_to_halted_node_does_not_hang(self):
        """Regression: messages buffered for a node that halts used to keep
        the async quiescence condition from ever firing (the auction hit
        max_rounds).  The run must terminate promptly."""
        from repro.congest.asynchrony import SynchronizedNetwork, UniformDelay
        from repro.dist import auction_mwm
        from repro.graphs import random_bipartite, uniform_weights
        from repro.matching.sequential import max_weight_bipartite

        g = random_bipartite(10, 10, 0.4, rng=3, weight_fn=uniform_weights())
        sync, _ = auction_mwm(g, eps=0.1, seed=5)
        asy, _ = auction_mwm(
            g, eps=0.1, seed=5,
            network=SynchronizedNetwork(g, UniformDelay(0.2, 3.0), seed=5))
        assert asy == sync
        opt = max_weight_bipartite(g).weight(g)
        assert asy.weight(g) >= 0.9 * opt - 1e-9
