"""Golden equivalence of the batched CSR engine against the legacy engine.

The CSR engine must be *bit-identical* to the dict reference: same matching,
same round counts, same message/bit accounting, same per-node rng streams.
The matrix below runs each paper algorithm under both engines and both
bandwidth models and compares everything observable.
"""

import os

import pytest

from repro.congest import (
    BROADCAST,
    CONGEST,
    LOCAL,
    PIPELINE,
    LEGACY_ENGINE_ENV,
    Network,
    NodeAlgorithm,
    Tracer,
    default_engine,
)
from repro.congest.faults import LossyNetwork
from repro.dist.bipartite_mcm import bipartite_mcm
from repro.dist.general_mcm import general_mcm
from repro.dist.israeli_itai import israeli_itai
from repro.dist.weighted.algorithm5 import approximate_mwm
from repro.graphs import exponential_weights, gnp, path_graph, random_bipartite


def _metrics_tuple(m):
    return (m.total_rounds, m.messages, m.total_bits, m.max_message_bits)


def _run_bipartite(engine, policy):
    g = random_bipartite(14, 14, 0.2, rng=7)
    net = Network(g, policy=policy, seed=3, engine=engine)
    res = bipartite_mcm(g, k=2, seed=3, network=net)
    return set(res.matching.edges()), _metrics_tuple(net.metrics)


def _run_general(engine, policy):
    g = gnp(22, 0.15, rng=5)
    net = Network(g, policy=policy, seed=1, engine=engine)
    res = general_mcm(g, k=2, seed=1, network=net)
    return set(res.matching.edges()), _metrics_tuple(net.metrics)


def _run_algorithm5(engine, policy):
    g = gnp(20, 0.2, rng=2, weight_fn=exponential_weights(8))
    net = Network(g, policy=policy, seed=4, engine=engine)
    res = approximate_mwm(g, eps=0.1, seed=4, network=net)
    return set(res.matching.edges()), _metrics_tuple(net.metrics)


RUNNERS = {
    "bipartite_mcm": (_run_bipartite, [PIPELINE, LOCAL]),
    "general_mcm": (_run_general, [PIPELINE, LOCAL]),
    "algorithm5": (_run_algorithm5, [CONGEST, LOCAL]),
}

MATRIX = [(name, policy)
          for name, (_, policies) in sorted(RUNNERS.items())
          for policy in policies]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name,policy", MATRIX,
                             ids=[f"{n}-{p.mode.name}" for n, p in MATRIX])
    def test_legacy_and_csr_agree(self, name, policy):
        runner, _ = RUNNERS[name]
        edges_legacy, metrics_legacy = runner("legacy", policy)
        edges_csr, metrics_csr = runner("csr", policy)
        assert edges_csr == edges_legacy
        assert metrics_csr == metrics_legacy

    def test_env_var_selects_legacy(self, monkeypatch):
        monkeypatch.setenv(LEGACY_ENGINE_ENV, "1")
        assert default_engine() == "legacy"
        net = Network(path_graph(4))
        assert net.engine == "legacy"
        monkeypatch.setenv(LEGACY_ENGINE_ENV, "0")
        assert default_engine() == "csr"
        monkeypatch.delenv(LEGACY_ENGINE_ENV)
        assert default_engine() == "csr"

    def test_env_var_run_matches_csr(self, monkeypatch):
        edges_csr, metrics_csr = _run_bipartite(None, PIPELINE)
        monkeypatch.setenv(LEGACY_ENGINE_ENV, "true")
        edges_env, metrics_env = _run_bipartite(None, PIPELINE)
        assert edges_env == edges_csr
        assert metrics_env == metrics_csr

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv(LEGACY_ENGINE_ENV, "1")
        assert Network(path_graph(3), engine="csr").engine == "csr"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Network(path_graph(3), engine="simd")


class EchoNode(NodeAlgorithm):
    """Broadcasts its id once and records the inbox it saw."""

    def start(self):
        return {BROADCAST: self.node_id}

    def on_round(self, inbox):
        return self.halt(list(inbox.items()))


class MixedNode(NodeAlgorithm):
    """Broadcast overridden by a unicast to the smallest neighbor."""

    def start(self):
        out = {BROADCAST: self.node_id}
        if self.neighbors:
            out[min(self.neighbors)] = -self.node_id
        return out

    def on_round(self, inbox):
        return self.halt(list(inbox.items()))


class TestArrivalOrder:
    """Satellite 3: message-arrival order is a stable, documented invariant."""

    @pytest.mark.parametrize("engine", ["legacy", "csr"])
    def test_inbox_keys_ascend(self, engine):
        g = gnp(12, 0.4, rng=9)
        net = Network(g, policy=LOCAL, engine=engine)
        res = net.run(EchoNode)
        for node, seen in res.outputs.items():
            senders = [u for u, _ in seen]
            assert senders == sorted(senders)
            assert set(senders) == set(g.neighbors(node))

    def test_traced_run_matches_untraced(self):
        g = gnp(10, 0.35, rng=3)
        plain = Network(g, policy=LOCAL, engine="csr").run(EchoNode)
        tracer = Tracer()
        traced_net = Network(g, policy=LOCAL, engine="csr", tracer=tracer)
        traced = traced_net.run(EchoNode)
        assert traced.outputs == plain.outputs
        assert traced.rounds == plain.rounds
        assert len(tracer.events) > 0
        # within each round, trace events list senders in ascending order
        by_round = {}
        for ev in tracer.events:
            by_round.setdefault(ev.round, []).append(ev.sender)
        for senders in by_round.values():
            assert senders == sorted(senders)

    @pytest.mark.parametrize("engine", ["legacy", "csr"])
    def test_mixed_outbox_unicast_overrides_broadcast(self, engine):
        g = path_graph(4)  # 0-1-2-3
        net = Network(g, policy=LOCAL, engine=engine)
        res = net.run(MixedNode)
        # node 1's unicast to 0 replaces its broadcast there
        assert dict(res.outputs[0])[1] == -1
        # node 2 still gets node 1's broadcast
        assert dict(res.outputs[2])[1] == 1

    @pytest.mark.parametrize("engine", ["legacy", "csr"])
    def test_non_neighbor_unicast_rejected(self, engine):
        from repro.congest import ProtocolError

        class Stray(NodeAlgorithm):
            def start(self):
                return {99: "hello"}

            def on_round(self, inbox):
                return self.halt(None)

        with pytest.raises(ProtocolError):
            Network(path_graph(3), policy=LOCAL, engine=engine).run(Stray)


class TestRunResultAndHooks:
    def test_run_result_metrics_are_per_run(self):
        g = gnp(10, 0.3, rng=1)
        net = Network(g, policy=CONGEST, seed=0)
        israeli_itai(net)
        first_total = net.metrics.total_rounds
        res = net.run(EchoNode)
        assert res.metrics.rounds == res.rounds
        assert res.metrics.messages > 0
        # the per-run delta excludes the israeli_itai run before it
        assert net.metrics.total_rounds == first_total + res.rounds

    @pytest.mark.parametrize("engine", ["legacy", "csr"])
    def test_on_round_end_fires_each_round(self, engine):
        g = gnp(8, 0.4, rng=4)
        net = Network(g, policy=LOCAL, engine=engine)
        seen = []
        res = net.run(EchoNode,
                      on_round_end=lambda r, n: seen.append(
                          (r, n.metrics.messages)))
        assert [r for r, _ in seen] == list(range(1, res.rounds + 1))
        # message counts are non-decreasing over rounds
        counts = [c for _, c in seen]
        assert counts == sorted(counts)

    def test_lossy_network_runs_on_csr(self):
        g = gnp(12, 0.4, rng=6)
        lossy = LossyNetwork(g, loss=0.3, policy=LOCAL, seed=0)
        assert lossy.engine == "csr"
        res = lossy.run(EchoNode)
        assert res.all_finished
        assert lossy.dropped > 0  # at 30% loss something must have been lost
