"""Tests for the CONGEST simulator: messages, policies, metrics, engine."""

import pytest

from repro.congest import (
    BROADCAST,
    BandwidthExceeded,
    BandwidthPolicy,
    CONGEST,
    LOCAL,
    Metrics,
    MessageError,
    Mode,
    Network,
    NodeAlgorithm,
    PIPELINE,
    ProtocolError,
    congest,
    exchange_tokens,
    flood_max,
    int_bits,
    log2n,
    payload_bits,
    pipeline,
)
from repro.graphs import cycle_graph, gnp, path_graph, star_graph


class TestPayloadBits:
    def test_none_and_bool(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_int_scaling(self):
        assert payload_bits(0) == int_bits(0)
        assert payload_bits(1) < payload_bits(10 ** 9)
        assert payload_bits(-5) == payload_bits(5)

    def test_float(self):
        assert payload_bits(3.14) == 64

    def test_str(self):
        assert payload_bits("ab") > payload_bits("a")

    def test_containers(self):
        assert payload_bits((1, 2)) > payload_bits(1) + payload_bits(2)
        assert payload_bits({"a": 1}) > payload_bits("a") + payload_bits(1)
        assert payload_bits([1]) == payload_bits((1,))

    def test_unknown_type_raises(self):
        with pytest.raises(MessageError):
            payload_bits(object())

    def test_log2n(self):
        assert log2n(2) == 1
        assert log2n(1024) == 10
        assert log2n(1) == 1  # clamped


class TestPolicies:
    def test_local_never_charges(self):
        assert LOCAL.charge(10 ** 6, 16, 0, 1) == 0

    def test_congest_raises_over_budget(self):
        policy = congest(multiplier=1)
        with pytest.raises(BandwidthExceeded):
            policy.charge(policy.budget_bits(16) + 1, 16, 0, 1)

    def test_congest_allows_within_budget(self):
        assert CONGEST.charge(8, 16, 0, 1) == 0

    def test_pipeline_charges_chunks(self):
        policy = pipeline(multiplier=1)
        budget = policy.budget_bits(16)
        assert policy.charge(budget, 16, 0, 1) == 0
        assert policy.charge(budget + 1, 16, 0, 1) == 1
        assert policy.charge(3 * budget, 16, 0, 1) == 2

    def test_budget_scales_with_n(self):
        assert CONGEST.budget_bits(1 << 20) == 16 * 20


class TestMetrics:
    def test_round_and_message_recording(self):
        m = Metrics()
        m.record_round("p")
        m.record_message(10)
        m.record_message(30)
        assert m.rounds == 1
        assert m.messages == 2
        assert m.total_bits == 40
        assert m.max_message_bits == 30
        assert m.protocol_rounds == {"p": 1}

    def test_pipelined_rounds(self):
        m = Metrics()
        m.record_round("p", extra_pipeline_rounds=3)
        assert m.total_rounds == 4

    def test_snapshot_delta(self):
        m = Metrics()
        m.record_round("a")
        snap = m.snapshot()
        m.record_round("a")
        m.record_message(5)
        delta = m.delta_since(snap)
        assert delta.rounds == 1
        assert delta.messages == 1

    def test_absorb(self):
        a = Metrics()
        a.record_round("x")
        b = Metrics()
        b.record_round("y", 1)
        b.record_message(99)
        a.absorb(b)
        assert a.total_rounds == 3
        assert a.max_message_bits == 99
        assert a.protocol_rounds == {"x": 1, "y": 2}

    def test_charge_rounds(self):
        m = Metrics()
        m.charge_rounds("wrap", 2)
        assert m.rounds == 2
        assert m.protocol_rounds["wrap"] == 2

    def test_str(self):
        assert "rounds=" in str(Metrics())


class _PingNode(NodeAlgorithm):
    """Sends its id once; records what it hears; halts."""

    def start(self):
        return {BROADCAST: self.node_id}

    def on_round(self, inbox):
        return self.halt(sorted(inbox.values()))


class _ChattyNode(NodeAlgorithm):
    """Passive node that never halts or resends — must quiesce."""

    passive = True

    def start(self):
        return {BROADCAST: 1}

    def on_round(self, inbox):
        return {}


class _LivelockNode(NodeAlgorithm):
    def start(self):
        return {BROADCAST: 0}

    def on_round(self, inbox):
        return {BROADCAST: 0}


class _BadTargetNode(NodeAlgorithm):
    def start(self):
        return {999: 1}

    def on_round(self, inbox):
        return {}


class TestNetwork:
    def test_broadcast_delivery(self):
        g = star_graph(3)
        net = Network(g, seed=0)
        result = net.run(_PingNode, protocol="ping")
        assert result.output_of(0) == [1, 2, 3]
        assert result.output_of(1) == [0]
        assert result.all_finished

    def test_metrics_accumulate_across_runs(self):
        g = path_graph(3)
        net = Network(g, seed=0)
        net.run(_PingNode)
        r1 = net.metrics.rounds
        net.run(_PingNode)
        assert net.metrics.rounds > r1

    def test_quiescence_detection(self):
        g = path_graph(3)
        net = Network(g, seed=0)
        result = net.run(_ChattyNode, protocol="chatty")
        assert not result.all_finished
        assert result.rounds <= 3

    def test_livelock_guard(self):
        g = path_graph(2)
        net = Network(g, seed=0)
        with pytest.raises(ProtocolError):
            net.run(_LivelockNode, max_rounds=10)

    def test_bad_target_rejected(self):
        g = path_graph(2)
        net = Network(g, seed=0)
        with pytest.raises(ProtocolError):
            net.run(_BadTargetNode)

    def test_node_rng_deterministic(self):
        g = path_graph(2)
        a = Network(g, seed=42).node_rng(0).random()
        b = Network(g, seed=42).node_rng(0).random()
        assert a == b
        c = Network(g, seed=43).node_rng(0).random()
        assert a != c

    def test_node_rng_differs_per_node(self):
        net = Network(path_graph(2), seed=1)
        assert net.node_rng(0).random() != net.node_rng(1).random()

    def test_congest_enforcement_in_engine(self):
        class BigTalker(NodeAlgorithm):
            def start(self):
                return {BROADCAST: tuple(range(500))}

            def on_round(self, inbox):
                return self.halt()

        net = Network(path_graph(2), policy=CONGEST, seed=0)
        with pytest.raises(BandwidthExceeded):
            net.run(BigTalker)

    def test_pipeline_charges_in_engine(self):
        class BigTalker(NodeAlgorithm):
            def start(self):
                return {BROADCAST: tuple(range(500))}

            def on_round(self, inbox):
                return self.halt()

        net = Network(path_graph(2), policy=PIPELINE, seed=0)
        net.run(BigTalker)
        assert net.metrics.pipelined_extra_rounds > 0

    def test_global_check_counter(self):
        net = Network(path_graph(2), seed=0)
        net.global_check()
        assert net.metrics.global_checks == 1


class TestUtilities:
    def test_flood_max_reaches_everyone(self):
        g = path_graph(6)
        net = Network(g, seed=0)
        values = {v: v * 10 for v in g.nodes}
        result = flood_max(net, values, rounds=g.diameter())
        assert all(v == 50 for v in result.values())

    def test_flood_max_partial_with_few_rounds(self):
        g = path_graph(6)
        net = Network(g, seed=0)
        values = {v: v for v in g.nodes}
        result = flood_max(net, values, rounds=1)
        assert result[0] == 1  # only the neighbor's value arrived

    def test_exchange_tokens(self):
        g = cycle_graph(4)
        net = Network(g, seed=0)
        outputs = exchange_tokens(net, {v: v + 100 for v in g.nodes})
        own, nbrs = outputs[0]
        assert own == 100
        assert nbrs == {1: 101, 3: 103}

    def test_exchange_isolated_node(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_node(0)
        g.add_edge(1, 2)
        net = Network(g, seed=0)
        outputs = exchange_tokens(net, {0: 5, 1: 6, 2: 7})
        assert outputs[0] == (5, {})
