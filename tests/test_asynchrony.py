"""Tests for asynchronous execution with the alpha synchronizer."""

import pytest

from repro.congest import (
    AsyncNetwork,
    FixedDelay,
    HeavyTailDelay,
    Network,
    ProtocolError,
    SlowEdgeDelay,
    UniformDelay,
)
from repro.dist.israeli_itai import IsraeliItaiNode
from repro.dist.luby_mis import LubyMISNode
from repro.graphs import cycle_graph, gnp, path_graph, star_graph
from repro.matching import Matching, is_maximal, verify_matching


def ii_shared(graph):
    return {"initial_mate": {v: None for v in graph.nodes}}


class TestDelayModels:
    def test_fixed(self):
        import random

        assert FixedDelay(2.0).delay(0, 1, random.Random(0)) == 2.0
        with pytest.raises(ValueError):
            FixedDelay(0)

    def test_uniform_range(self):
        import random

        rng = random.Random(1)
        model = UniformDelay(0.5, 2.0)
        for _ in range(100):
            assert 0.5 <= model.delay(0, 1, rng) <= 2.0
        with pytest.raises(ValueError):
            UniformDelay(2.0, 1.0)

    def test_heavy_tail_positive(self):
        import random

        rng = random.Random(2)
        model = HeavyTailDelay()
        assert all(model.delay(0, 1, rng) > 0 for _ in range(200))
        with pytest.raises(ValueError):
            HeavyTailDelay(tail_probability=2.0)

    def test_slow_edge(self):
        import random

        model = SlowEdgeDelay((3, 1), slow=50.0, fast=1.0)
        rng = random.Random(0)
        assert model.delay(1, 3, rng) == 50.0
        assert model.delay(3, 1, rng) == 50.0
        assert model.delay(0, 1, rng) == 1.0


class TestSynchronizerEquivalence:
    """Footnote 2: synchrony is WLOG — same outputs under any delays."""

    @pytest.mark.parametrize("seed", range(3))
    def test_israeli_itai_identical_outputs(self, seed):
        g = gnp(30, 0.15, rng=seed)
        shared = ii_shared(g)
        sync = Network(g, seed=seed).run(IsraeliItaiNode, shared=shared)
        rep = AsyncNetwork(g, UniformDelay(0.1, 5.0), seed=seed).run(
            IsraeliItaiNode, shared=shared)
        assert rep.outputs == sync.outputs

    @pytest.mark.parametrize("model", [
        FixedDelay(1.0),
        UniformDelay(0.5, 3.0),
        HeavyTailDelay(),
    ])
    def test_luby_identical_under_any_delays(self, model):
        g = gnp(25, 0.2, rng=4)
        sync = Network(g, seed=4).run(LubyMISNode)
        rep = AsyncNetwork(g, model, seed=4).run(LubyMISNode)
        assert rep.outputs == sync.outputs

    def test_result_still_maximal(self):
        g = cycle_graph(21)
        rep = AsyncNetwork(g, HeavyTailDelay(), seed=9).run(
            IsraeliItaiNode, shared=ii_shared(g))
        m = Matching.from_mate_map(
            {v: o["mate"] if o else None for v, o in rep.outputs.items()})
        verify_matching(g, m)
        assert is_maximal(g, m)


class TestSynchronizerCosts:
    def test_pulse_overhead_reported(self):
        g = gnp(20, 0.2, rng=1)
        rep = AsyncNetwork(g, FixedDelay(1.0), seed=1).run(
            IsraeliItaiNode, shared=ii_shared(g))
        assert rep.envelopes >= rep.payload_messages
        assert 0.0 <= rep.pulse_overhead < 1.0
        assert rep.payload_bits > 0

    def test_slow_edge_dominates_virtual_time(self):
        g = cycle_graph(8)
        fast = AsyncNetwork(g, FixedDelay(1.0), seed=2).run(
            IsraeliItaiNode, shared=ii_shared(g))
        slow = AsyncNetwork(g, SlowEdgeDelay((0, 1), slow=40.0), seed=2).run(
            IsraeliItaiNode, shared=ii_shared(g))
        assert slow.virtual_time > fast.virtual_time
        assert slow.rounds == fast.rounds  # same logical execution

    def test_rounds_match_synchronous(self):
        g = gnp(18, 0.25, rng=3)
        shared = ii_shared(g)
        sync_net = Network(g, seed=3)
        sync_net.run(IsraeliItaiNode, shared=shared)
        rep = AsyncNetwork(g, UniformDelay(), seed=3).run(
            IsraeliItaiNode, shared=shared)
        # the synchronizer executes the same logical rounds (+-1 for the tail)
        assert abs(rep.rounds - sync_net.metrics.rounds) <= 1


class TestAsyncEngineGuards:
    def test_bad_target_rejected(self):
        from repro.congest import NodeAlgorithm

        class Bad(NodeAlgorithm):
            def start(self):
                return {42: 1}

            def on_round(self, inbox):
                return {}

        with pytest.raises(ProtocolError):
            AsyncNetwork(path_graph(2), FixedDelay(1.0), seed=0).run(Bad)

    def test_nonpositive_delay_rejected(self):
        class Zero(FixedDelay):
            def __init__(self):
                self.latency = 1.0

            def delay(self, s, r, rng):
                return 0.0

        g = path_graph(2)
        with pytest.raises(ProtocolError):
            AsyncNetwork(g, Zero(), seed=0).run(
                IsraeliItaiNode, shared=ii_shared(g))

    def test_round_limit(self):
        from repro.congest import BROADCAST, NodeAlgorithm

        class Forever(NodeAlgorithm):
            def start(self):
                return {BROADCAST: 0}

            def on_round(self, inbox):
                return {BROADCAST: 0}

        with pytest.raises(ProtocolError):
            AsyncNetwork(path_graph(2), FixedDelay(1.0), seed=0).run(
                Forever, max_rounds=20)

    def test_star_topology(self):
        g = star_graph(6)
        rep = AsyncNetwork(g, UniformDelay(), seed=5).run(
            IsraeliItaiNode, shared=ii_shared(g))
        assert rep.all_finished
        matched = [o["mate"] for o in rep.outputs.values()
                   if o and o["mate"] is not None]
        assert len(matched) == 2  # exactly one edge in a star


class TestSynchronizedNetworkDrivers:
    """Full drivers run unchanged (and identically) over the async engine."""

    def test_bipartite_mcm_end_to_end(self):
        from repro.congest import SynchronizedNetwork
        from repro.dist import bipartite_mcm
        from repro.graphs import random_bipartite

        g = random_bipartite(14, 14, 0.2, rng=2)
        sync = bipartite_mcm(g, k=2, seed=5)
        net = SynchronizedNetwork(g, UniformDelay(0.2, 4.0), seed=5)
        asy = bipartite_mcm(g, k=2, seed=5, network=net)
        assert asy.matching == sync.matching
        assert net.virtual_time > 0
        assert net.envelopes > net.metrics.messages

    def test_general_mcm_end_to_end(self):
        from repro.congest import SynchronizedNetwork
        from repro.dist import general_mcm
        from repro.graphs import gnp

        g = gnp(16, 0.2, rng=3)
        sync = general_mcm(g, k=2, seed=7, stopping="exact")
        asy = general_mcm(g, k=2, seed=7, stopping="exact",
                          network=SynchronizedNetwork(g, HeavyTailDelay(),
                                                      seed=7))
        assert asy.matching == sync.matching

    def test_tree_mwm_end_to_end(self):
        from repro.congest import SynchronizedNetwork
        from repro.dist import tree_mwm
        from repro.graphs import random_tree, uniform_weights

        g = random_tree(20, rng=4, weight_fn=uniform_weights())
        sync, _ = tree_mwm(g, seed=2)
        asy, net = tree_mwm(g, seed=2,
                            network=SynchronizedNetwork(g, UniformDelay(),
                                                        seed=2))
        assert asy == sync

    def test_metrics_accumulate_across_protocols(self):
        from repro.congest import SynchronizedNetwork
        from repro.dist import bipartite_mcm
        from repro.graphs import random_bipartite

        g = random_bipartite(10, 10, 0.3, rng=5)
        net = SynchronizedNetwork(g, FixedDelay(1.0), seed=1)
        bipartite_mcm(g, k=2, seed=1, network=net)
        assert "counting" in net.metrics.protocol_rounds
        assert "token_selection" in net.metrics.protocol_rounds
        assert net.metrics.messages > 0
