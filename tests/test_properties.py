"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.message import int_bits, payload_bits
from repro.dist.random_tools import sample_max_uniform, weighted_choice
from repro.dist.weighted.gain import apply_wraps, residual_graph, residual_weights
from repro.graphs import Graph, edge_key, gnp
from repro.matching import (
    Matching,
    build_conflict_graph,
    enumerate_augmenting_paths,
    is_maximal,
    maximal_disjoint_paths,
    verify_matching,
)
from repro.matching.sequential import (
    brute_force_mcm,
    brute_force_mwm,
    greedy_mwm,
    max_cardinality_general,
    max_weight_bipartite,
)

# -- strategies ---------------------------------------------------------

settings.register_profile(
    "repro", deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@st.composite
def small_graphs(draw, max_nodes=9, weighted=False):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    included = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=16))
    g = Graph()
    g.add_nodes(range(n))
    for u, v in included:
        w = draw(st.floats(min_value=0.5, max_value=50.0,
                           allow_nan=False)) if weighted else 1.0
        g.add_edge(u, v, w)
    return g


@st.composite
def graphs_with_matchings(draw, weighted=False):
    g = draw(small_graphs(weighted=weighted))
    m = Matching()
    order = draw(st.permutations(sorted(g.edge_set())))
    for u, v in order:
        if m.is_free(u) and m.is_free(v) and draw(st.booleans()):
            m.add(u, v)
    return g, m


# -- matching invariants -------------------------------------------------

@given(graphs_with_matchings())
def test_matching_always_valid(gm):
    g, m = gm
    verify_matching(g, m)
    assert 2 * m.size == len(m.matched_nodes())


@given(graphs_with_matchings())
def test_augmenting_all_enumerated_paths_individually(gm):
    g, m = gm
    for p in enumerate_augmenting_paths(g, m, 5):
        m2 = m.copy()
        m2.augment(p)
        verify_matching(g, m2)
        assert m2.size == m.size + 1


@given(graphs_with_matchings())
def test_maximal_disjoint_selection_is_disjoint_and_maximal(gm):
    g, m = gm
    paths = enumerate_augmenting_paths(g, m, 3)
    chosen = maximal_disjoint_paths(paths)
    used = set()
    for p in chosen:
        assert used.isdisjoint(p)
        used.update(p)
    for p in paths:
        assert not used.isdisjoint(p) or p in chosen


@given(graphs_with_matchings())
def test_symmetric_difference_of_disjoint_paths(gm):
    g, m = gm
    paths = enumerate_augmenting_paths(g, m, 3)
    chosen = maximal_disjoint_paths(paths)
    flip = [e for p in chosen for e in zip(p, p[1:])]
    m2 = m.symmetric_difference(flip)
    verify_matching(g, m2)
    assert m2.size == m.size + len(chosen)


@given(graphs_with_matchings())
def test_conflict_graph_edges_iff_shared_node(gm):
    g, m = gm
    cg = build_conflict_graph(g, m, 3)
    for i, p in enumerate(cg.paths):
        for j, q in enumerate(cg.paths):
            if i == j:
                continue
            conflict = not set(p).isdisjoint(q)
            assert (j in cg.adjacency[i]) == conflict


# -- exactness cross-checks ----------------------------------------------

@given(small_graphs())
def test_blossom_matches_brute_force(g):
    if g.num_edges > 20:
        return
    assert max_cardinality_general(g).size == brute_force_mcm(g).size


@given(small_graphs(weighted=True))
def test_greedy_is_half_of_brute_force(g):
    if g.num_edges == 0 or g.num_edges > 20:
        return
    greedy = greedy_mwm(g).weight(g)
    opt = brute_force_mwm(g).weight(g)
    assert greedy >= 0.5 * opt - 1e-6


@given(small_graphs(weighted=True))
def test_hungarian_matches_brute_force_on_bipartite(g):
    if g.num_edges == 0 or g.num_edges > 18:
        return
    if g.bipartition() is None:
        return
    ours = max_weight_bipartite(g).weight(g)
    opt = brute_force_mwm(g).weight(g)
    assert abs(ours - opt) < 1e-6


# -- weighted gain machinery ----------------------------------------------

@given(graphs_with_matchings(weighted=True))
def test_residual_weights_are_gains(gm):
    g, m = gm
    for (u, v), w in residual_weights(g, m).items():
        m2 = apply_wraps(g, m, [(u, v)])
        assert abs((m2.weight(g) - m.weight(g)) - w) < 1e-6


@given(graphs_with_matchings(weighted=True))
def test_apply_wraps_never_loses_weight(gm):
    g, m = gm
    gp = residual_graph(g, m)
    if gp.num_edges == 0:
        return
    mp = greedy_mwm(gp)
    m2 = apply_wraps(g, m, mp.edges())
    verify_matching(g, m2)
    assert m2.weight(g) >= m.weight(g) + mp.weight(gp) - 1e-6


# -- message pricing -------------------------------------------------------

@given(st.integers(min_value=-10 ** 12, max_value=10 ** 12))
def test_int_bits_monotone_in_magnitude(x):
    assert int_bits(x) == int_bits(-x)
    assert int_bits(x) >= int_bits(0) or x == 0


@given(st.recursive(
    st.none() | st.booleans() | st.integers(-1000, 1000)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=5),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=10,
))
def test_payload_bits_positive_and_superadditive(payload):
    bits = payload_bits(payload)
    assert bits >= 1
    if isinstance(payload, tuple):
        assert bits >= sum(payload_bits(x) for x in payload)


# -- randomness helpers -----------------------------------------------------

@given(st.integers(0, 2 ** 32), st.integers(1, 10 ** 6), st.integers(1, 10 ** 9))
def test_sample_max_uniform_in_range(seed, count, cap):
    rng = random.Random(seed)
    v = sample_max_uniform(rng, count, cap)
    assert 1 <= v <= cap


@given(st.integers(0, 2 ** 32),
       st.dictionaries(st.integers(0, 20), st.integers(1, 50),
                       min_size=1, max_size=6))
def test_weighted_choice_returns_a_key(seed, weights):
    rng = random.Random(seed)
    assert weighted_choice(rng, weights) in weights


# -- end-to-end on tiny random instances -----------------------------------

@given(st.integers(0, 1000))
def test_israeli_itai_maximal_property(seed):
    from repro.congest import Network
    from repro.dist import israeli_itai

    g = gnp(12, 0.3, rng=seed)
    m = israeli_itai(Network(g, seed=seed))
    verify_matching(g, m)
    assert is_maximal(g, m)


@given(st.integers(0, 300))
def test_bipartite_mcm_never_below_two_thirds(seed):
    from repro.dist import bipartite_mcm
    from repro.graphs import random_bipartite
    from repro.matching.sequential import max_cardinality_bipartite

    g = random_bipartite(8, 8, 0.3, rng=seed)
    opt = max_cardinality_bipartite(g).size
    res = bipartite_mcm(g, k=2, seed=seed)
    verify_matching(g, res.matching)
    assert res.matching.size >= (2 / 3) * opt - 1e-9


# -- extensions: auction, b-matching, covers -------------------------------

@given(st.integers(0, 200))
def test_auction_one_minus_eps_property(seed):
    from repro.dist import auction_mwm
    from repro.graphs import random_bipartite, uniform_weights
    from repro.matching.sequential import max_weight_bipartite

    g = random_bipartite(7, 7, 0.4, rng=seed, weight_fn=uniform_weights())
    m, _ = auction_mwm(g, eps=0.1, seed=seed)
    verify_matching(g, m)
    opt = max_weight_bipartite(g).weight(g)
    assert m.weight(g) >= 0.9 * opt - 1e-9


@given(st.integers(0, 200), st.integers(1, 3))
def test_b_matching_half_property(seed, cap):
    from repro.dist.b_matching import b_matching_weight, distributed_b_matching
    from repro.graphs import gnp, uniform_weights
    from repro.matching.sequential.brute import brute_force_mwbm

    g = gnp(8, 0.4, rng=seed, weight_fn=uniform_weights())
    if g.num_edges == 0 or g.num_edges > 20:
        return
    caps = {v: cap for v in g.nodes}
    edges, _ = distributed_b_matching(g, caps, seed=seed)
    opt = b_matching_weight(g, brute_force_mwbm(g, caps))
    assert b_matching_weight(g, edges) >= 0.5 * opt - 1e-9


@given(st.integers(0, 300))
def test_koenig_certifies_hopcroft_karp(seed):
    from repro.graphs import random_bipartite
    from repro.matching import duality_certificate
    from repro.matching.sequential import max_cardinality_bipartite

    g = random_bipartite(7, 8, 0.3, rng=seed)
    m = max_cardinality_bipartite(g)
    assert duality_certificate(g, m).proves_optimal


@given(st.integers(0, 100))
def test_async_equivalence_property(seed):
    from repro.congest import AsyncNetwork, Network, UniformDelay
    from repro.dist.israeli_itai import IsraeliItaiNode

    g = gnp(10, 0.35, rng=seed)
    shared = {"initial_mate": {v: None for v in g.nodes}}
    sync = Network(g, seed=seed).run(IsraeliItaiNode, shared=shared)
    rep = AsyncNetwork(g, UniformDelay(0.2, 2.5), seed=seed).run(
        IsraeliItaiNode, shared=shared)
    assert rep.outputs == sync.outputs


@given(st.integers(0, 100), st.integers(1, 3))
def test_local_search_meets_guarantee_property(seed, k):
    from repro.graphs import uniform_weights
    from repro.matching.sequential import guarantee_of, local_search_mwm
    from repro.matching.sequential.brute import brute_force_mwm

    g = gnp(8, 0.4, rng=seed, weight_fn=uniform_weights())
    if g.num_edges == 0 or g.num_edges > 20:
        return
    m, _ = local_search_mwm(g, k=k)
    opt = brute_force_mwm(g).weight(g)
    assert m.weight(g) >= guarantee_of(k) * opt - 1e-9
