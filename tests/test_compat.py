"""Golden pins for the consolidated deprecation shims (repro._compat).

Every ``DeprecationWarning`` the package emits is registered in
``repro._compat.SHIM_MESSAGES``.  This module is the single place the
shim surface is pinned: each shim's *exact* warning text (asserted
verbatim, not by substring) and its delegation target — what the
deprecated spelling actually runs.  The legacy ``engine=``/``shards=``
pair is a silent shim normalized by ``ExecutionPlan.from_legacy``; its
golden mapping is pinned here alongside the warning shims.
"""

import random
import re
import warnings

import pytest

from repro._compat import SHIM_MESSAGES, warn_deprecated
from repro.congest import (
    LOCAL,
    FaultSpec,
    LossyNetwork,
    Network,
    Tracer,
    nested_network,
)
from repro.core import approx_mcm
from repro.dist.weighted import approximate_mwm, class_greedy_mwm
from repro.dist.weighted.hv_local import hv_mwm
from repro.dist.generic_mcm import generic_mcm
from repro.dynamic import DynamicMatcher
from repro.graphs import gnp, path_graph, uniform_weights
from repro.models.execution import ExecutionPlan


def _warns_exactly(shim, **fmt):
    """pytest.warns matcher for the registered text, matched verbatim."""
    return pytest.warns(DeprecationWarning,
                        match=re.escape(SHIM_MESSAGES[shim].format(**fmt)))


class TestRegistry:
    def test_every_shim_is_registered(self):
        assert set(SHIM_MESSAGES) == {
            "network_tracer", "lossy_network", "nested_network",
            "positional_args", "dynamic_matcher", "black_box_detached",
            "hv_detached", "generic_detached",
        }

    def test_no_stray_warn_calls_outside_compat(self):
        # the consolidation is total: repro._compat owns every
        # DeprecationWarning the package raises
        import pathlib

        import repro
        pkg = pathlib.Path(repro.__file__).parent
        offenders = [
            str(path.relative_to(pkg))
            for path in pkg.rglob("*.py")
            if path.name != "_compat.py"
            and "DeprecationWarning" in path.read_text()
            and "warnings.warn" in path.read_text()
        ]
        # stream/replay.py *filters* the warning (baseline measurement),
        # it does not raise one
        assert offenders == []

    def test_helper_formats_and_warns(self):
        with pytest.warns(DeprecationWarning) as rec:
            warn_deprecated("positional_args", func="f", shown="eps=...")
        assert str(rec[0].message) == SHIM_MESSAGES[
            "positional_args"].format(func="f", shown="eps=...")


class TestWarningTextAndDelegation:
    """Each shim: exact text, and the deprecated spelling's target."""

    def test_network_tracer(self):
        tracer = Tracer()
        with _warns_exactly("network_tracer"):
            net = Network(path_graph(4), seed=0, tracer=tracer)
        # delegation: the tracer rides the event bus as a subscriber now
        assert net.bus is not None
        from repro.dist.israeli_itai import israeli_itai
        israeli_itai(net)
        assert len(tracer) > 0

    def test_lossy_network(self):
        with _warns_exactly("lossy_network"):
            net = LossyNetwork(path_graph(4), loss=0.25, seed=1)
        # delegation: a plain Network carrying FaultSpec(loss=...)
        assert isinstance(net, Network)
        assert net.faults == FaultSpec(loss=0.25)

    def test_nested_network(self):
        parent = Network(path_graph(5), policy=LOCAL, seed=7)
        with _warns_exactly("nested_network"):
            child = nested_network(parent, path_graph(3))
        # delegation: a detached Network inheriting seed and policy
        assert isinstance(child, Network)
        assert child.seed == 7 and child.policy is LOCAL

    def test_positional_args(self):
        g = gnp(12, 0.3, rng=random.Random(0))
        with _warns_exactly("positional_args", func="approx_mcm",
                            shown="eps=..."):
            old = approx_mcm(g, 0.25)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            new = approx_mcm(g, eps=0.25)
        # delegation: positional forms merge into the keyword call
        assert sorted(old.matching.edges()) == sorted(new.matching.edges())

    def test_dynamic_matcher(self):
        with _warns_exactly("dynamic_matcher"):
            matcher = DynamicMatcher(k=2)
        # the replacement named by the warning exists and is importable
        from repro.stream import MatchingService
        assert matcher.k == 2 and MatchingService is not None

    def test_black_box_detached(self):
        g = gnp(14, 0.3, rng=random.Random(3), weight_fn=uniform_weights())

        def legacy_box(graph, seed):  # historical 2-arg contract
            return class_greedy_mwm(graph, seed=seed)

        with _warns_exactly("black_box_detached"):
            old = approximate_mwm(g, eps=0.2, seed=3, black_box=legacy_box)
        # delegation: same matching as the composable subnetwork path
        new = approximate_mwm(g, eps=0.2, seed=3, black_box="class_greedy")
        assert sorted(old.matching.edges()) == sorted(new.matching.edges())

    def test_hv_detached(self):
        g = gnp(10, 0.35, rng=random.Random(1), weight_fn=uniform_weights())
        with _warns_exactly("hv_detached"):
            result = hv_mwm(g, eps=0.25, seed=1, subnetworks="detached")
        assert result.matching.size > 0

    def test_generic_detached(self):
        g = gnp(12, 0.3, rng=random.Random(0))
        with _warns_exactly("generic_detached"):
            result = generic_mcm(g, k=2, seed=0, subnetworks="detached")
        assert result.matching.size > 0


class TestLegacyEnginePlan:
    """The silent shim: engine=/shards= normalize via from_legacy."""

    @pytest.mark.parametrize("engine,shards,tier,plan_shards", [
        ("legacy", None, "legacy", None),
        ("node", None, "node", None),
        ("csr", None, "auto", None),
        ("csr", 4, "auto", 4),
        ("sharded", None, "sharded-kernel", None),
        ("sharded", 2, "sharded-kernel", 2),
    ])
    def test_golden_mapping(self, engine, shards, tier, plan_shards):
        plan = ExecutionPlan.from_legacy(engine, shards)
        assert plan.tier == tier
        assert plan.shards == plan_shards

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExecutionPlan.from_legacy("gpu", None)

    def test_rejects_shards_on_per_node_engines(self):
        with pytest.raises(ValueError, match="shards="):
            ExecutionPlan.from_legacy("legacy", 2)
