"""Integration zoo: every algorithm family across every graph family.

A cross-product safety net: whatever special structure a generator produces
(odd cycles, crowns, grids, power-law hubs, forests), each public algorithm
must return a verified matching meeting its guarantee.
"""

import pytest

from repro import approx_mcm, approx_mwm, maximal_matching
from repro.graphs import (
    blossom_gadget,
    complete_graph,
    crown_graph,
    cycle_graph,
    gnp,
    grid_graph,
    power_law_graph,
    random_bipartite,
    random_regular,
    random_tree,
    uniform_weights,
)
from repro.matching.sequential import max_cardinality

FAMILIES = [
    ("gnp_sparse", lambda: gnp(26, 0.08, rng=11)),
    ("gnp_dense", lambda: gnp(18, 0.4, rng=12)),
    ("bipartite", lambda: random_bipartite(12, 14, 0.2, rng=13)),
    ("crown", lambda: crown_graph(6)),
    ("even_cycle", lambda: cycle_graph(18)),
    ("odd_cycle", lambda: cycle_graph(17)),
    ("grid", lambda: grid_graph(4, 5)),
    ("tree", lambda: random_tree(22, rng=14)),
    ("regular", lambda: random_regular(20, 3, rng=15)),
    ("power_law", lambda: power_law_graph(40, rng=16)),
    ("blossoms", lambda: blossom_gadget(3)),
    ("complete", lambda: complete_graph(9)),
]

WEIGHTED_FAMILIES = [
    ("w_gnp", lambda: gnp(20, 0.25, rng=21, weight_fn=uniform_weights())),
    ("w_bipartite", lambda: random_bipartite(10, 10, 0.3, rng=22,
                                             weight_fn=uniform_weights())),
    ("w_tree", lambda: random_tree(18, rng=23,
                                   weight_fn=uniform_weights())),
    ("w_regular", lambda: random_regular(16, 3, rng=24,
                                         weight_fn=uniform_weights())),
]


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
class TestCardinalityZoo:
    def test_congest_mcm_meets_guarantee(self, name, make):
        g = make()
        eps = 1 / 3
        res = approx_mcm(g, eps=eps, seed=42)
        assert res.certificate.valid
        ratio = res.certificate.cardinality_ratio
        assert ratio is None or ratio >= 1 - eps - 1e-9

    def test_maximal_matching_half(self, name, make):
        g = make()
        res = maximal_matching(g, seed=42)
        assert res.certificate.maximal
        ratio = res.certificate.cardinality_ratio
        assert ratio is None or ratio >= 0.5 - 1e-9


@pytest.mark.parametrize("name,make", WEIGHTED_FAMILIES,
                         ids=[f[0] for f in WEIGHTED_FAMILIES])
class TestWeightedZoo:
    def test_algorithm5_meets_guarantee(self, name, make):
        from repro.experiments.suite import exact_mwm_weight

        g = make()
        eps = 0.1
        opt = exact_mwm_weight(g)
        res = approx_mwm(g, eps=eps, seed=42, reference=opt)
        assert res.certificate.valid
        assert res.weight >= (0.5 - eps) * opt - 1e-9

    def test_local_model_meets_guarantee(self, name, make):
        from repro.experiments.suite import exact_mwm_weight

        g = make()
        opt = exact_mwm_weight(g)
        res = approx_mwm(g, eps=0.25, seed=42, model="local", reference=opt)
        assert res.weight >= 0.75 * opt - 1e-9


class TestLocalModelZoo:
    @pytest.mark.parametrize("name,make", FAMILIES[:8],
                             ids=[f[0] for f in FAMILIES[:8]])
    def test_generic_local_mcm(self, name, make):
        g = make()
        res = approx_mcm(g, eps=0.5, seed=7, model="local")
        opt = max_cardinality(g).size
        assert res.size >= 0.5 * opt - 1e-9
