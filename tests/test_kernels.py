"""Golden equivalence of the vectorized kernel fast path.

A registered :class:`~repro.congest.kernels.RoundKernel` must be
*bit-identical* to per-node dispatch: same outputs, same round counts, same
:class:`~repro.congest.metrics.Metrics`, same per-node random streams, same
structural event stream.  The matrix below runs every kernelized protocol
under both paths (``engine="csr"`` selects the kernel, ``engine="node"``
forces per-node dispatch on the same batched delivery engine) and compares
everything observable — with numpy and on the pure-python fallback.

The second half pins the *selection* rules: every condition that must force
the slow path actually does, and the fast path engages when nothing does.
"""

import pathlib
import random
import subprocess
import sys

import pytest

from repro.congest import (
    CONGEST,
    LOCAL,
    PIPELINE,
    BandwidthExceeded,
    BandwidthPolicy,
    FaultSpec,
    MessageDelivered,
    Network,
    ProtocolError,
    RoundEnd,
    RoundStart,
    Subnetwork,
    congest,
    kernel_for,
    kernels_enabled,
)
from repro.congest import kernels
from repro.dist.bipartite_counting import (
    X_SIDE,
    Y_SIDE,
    CountingNode,
    run_counting,
)
from repro.dist.israeli_itai import IsraeliItaiNode, israeli_itai
from repro.dist.luby_mis import LubyMISNode, luby_mis
from repro.dist.random_tools import (
    node_seed_from_prefix,
    node_stream_prefix,
    node_stream_seed,
    spawn_seed,
)
from repro.matching import Matching
from repro.graphs import gnp, path_graph, random_bipartite


def _metrics_tuple(m):
    return (m.rounds, m.pipelined_extra_rounds, m.messages, m.total_bits,
            m.max_message_bits, tuple(sorted(m.protocol_rounds.items())))


class Collect:
    """Minimal observer: records every event it is routed."""

    def __init__(self, kinds=None):
        if kinds is not None:
            self.interest = kinds
        self.events = []

    def on_event(self, event):
        self.events.append(event)


# --- workloads (engine is the only degree of freedom) -------------------

def _run_israeli(engine, policy, seed, observe=None):
    g = gnp(48, 0.12, rng=seed)
    net = Network(g, policy=policy, seed=seed, engine=engine,
                  observe=observe)
    matching = israeli_itai(net)
    return set(matching.edges()), _metrics_tuple(net.metrics)


def _run_israeli_constrained(engine, policy, seed, observe=None):
    """Israeli-Itai with a seed matching and an allowed-edge subgraph."""
    g = gnp(48, 0.12, rng=seed)
    edges = sorted((u, v) for u in g.nodes for v in g.neighbors(u) if u < v)
    initial = Matching()
    used = set()
    for u, v in edges[:6]:
        if u not in used and v not in used:
            initial.add(u, v)
            used.update((u, v))
    allowed = set(edges[::2]) | set(edges[:6])
    net = Network(g, policy=policy, seed=seed, engine=engine,
                  observe=observe)
    matching = israeli_itai(net, initial=initial, allowed_edges=allowed)
    assert all(matching.mate(u) == v for u, v in initial.edges())
    return set(matching.edges()), _metrics_tuple(net.metrics)


def _run_luby(engine, policy, seed, observe=None):
    g = gnp(56, 0.1, rng=seed)
    net = Network(g, policy=policy, seed=seed, engine=engine,
                  observe=observe)
    mis = luby_mis(net)
    return frozenset(mis), _metrics_tuple(net.metrics)


def _counting_instance(seed):
    half = 22
    g = random_bipartite(half, half, 0.14, rng=seed)
    side = {v: (X_SIDE if v < half else Y_SIDE) for v in sorted(g.nodes)}
    mate = {v: None for v in g.nodes}
    for u in sorted(g.nodes):  # deterministic greedy seed matching
        if side[u] != X_SIDE or mate[u] is not None:
            continue
        for v in sorted(g.neighbors(u)):
            if mate[v] is None:
                mate[u] = v
                mate[v] = u
                break
    return g, side, mate


def _run_counting(engine, policy, seed, observe=None, ell=4):
    g, side, mate = _counting_instance(seed)
    net = Network(g, policy=policy, seed=seed, engine=engine,
                  observe=observe)
    outputs = run_counting(net, side, mate, ell)
    frozen = tuple(
        (v, None if s is None else (s.t, tuple(sorted(s.counts.items())),
                                    s.total, s.early_free_y))
        for v, s in sorted(outputs.items())
    )
    return frozen, _metrics_tuple(net.metrics)


WORKLOADS = {
    "israeli_itai": (_run_israeli, [CONGEST, LOCAL]),
    "israeli_itai_constrained": (_run_israeli_constrained, [CONGEST]),
    "luby_mis": (_run_luby, [CONGEST, LOCAL]),
    "counting": (_run_counting, [PIPELINE, LOCAL]),
}

MATRIX = [
    pytest.param(name, policy, seed, id=f"{name}-{policy.mode.value}-s{seed}")
    for name, (_, policies) in WORKLOADS.items()
    for policy in policies
    for seed in (0, 3, 11)
]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name,policy,seed", MATRIX)
    def test_kernel_matches_per_node_path(self, name, policy, seed):
        runner = WORKLOADS[name][0]
        assert runner("csr", policy, seed) == runner("node", policy, seed)

    @pytest.mark.parametrize("name,policy,seed", MATRIX)
    def test_pure_python_fallback_matches(self, name, policy, seed,
                                          monkeypatch):
        runner = WORKLOADS[name][0]
        golden = runner("node", policy, seed)
        monkeypatch.setattr(kernels, "_np", None)
        assert runner("csr", policy, seed) == golden

    def test_structural_event_streams_identical(self):
        streams = {}
        for engine in ("csr", "node"):
            collect = Collect(kinds=(RoundStart, RoundEnd))
            _run_luby(engine, CONGEST, 5, observe=collect)
            streams[engine] = [
                (type(e).__name__, e.protocol, e.round,
                 getattr(e, "messages", None), getattr(e, "bits", None),
                 getattr(e, "dropped", None))
                for e in collect.events
            ]
        assert streams["csr"] == streams["node"]
        assert any(kind == "RoundStart" for kind, *_ in streams["csr"])

    def test_round_limit_error_identical(self):
        errors = {}
        for engine in ("csr", "node"):
            g = gnp(40, 0.15, rng=2)
            net = Network(g, policy=CONGEST, seed=2, engine=engine)
            with pytest.raises(ProtocolError) as exc:
                net.run(LubyMISNode, protocol="luby_mis", max_rounds=3)
            errors[engine] = (str(exc.value), _metrics_tuple(net.metrics))
        assert errors["csr"] == errors["node"]
        assert "exceeded 3 rounds" in errors["csr"][0]

    def test_bandwidth_exceeded_identical(self):
        # a 1x-log budget (5 bits on toy graphs) that the counting pass's
        # growing path counts must blow — on both paths at the same point,
        # with the same accounting; congest() returns a plain
        # BandwidthPolicy, so the kernel still engages
        outcomes = {}
        for engine in ("csr", "node"):
            g = random_bipartite(14, 14, 0.5, rng=9)
            side = {v: (X_SIDE if v < 14 else Y_SIDE)
                    for v in sorted(g.nodes)}
            mate = {v: None for v in g.nodes}
            for u in sorted(g.nodes):  # near-perfect greedy matching
                if side[u] != X_SIDE or mate[u] is not None:
                    continue
                for v in sorted(g.neighbors(u)):
                    if mate[v] is None:
                        mate[u] = v
                        mate[v] = u
                        break
            net = Network(g, policy=congest(multiplier=1), seed=9,
                          engine=engine)
            assert (net._select_kernel(CountingNode)
                    is not None) == (engine == "csr")
            with pytest.raises(BandwidthExceeded):
                run_counting(net, side, mate, ell=6)
            outcomes[engine] = _metrics_tuple(net.metrics)
        assert outcomes["csr"] == outcomes["node"]

    def test_isolated_nodes_and_empty_graph(self):
        g = path_graph(5)
        g.add_node(99)  # isolated: joins the MIS in round 0, no rng draw
        for engine in ("csr", "node"):
            net = Network(g, policy=CONGEST, seed=1, engine=engine)
            mis = luby_mis(net)
            assert 99 in mis
        results = {
            engine: _run_luby_on(path_graph(1), engine)
            for engine in ("csr", "node")
        }
        assert results["csr"] == results["node"]


def _run_luby_on(g, engine):
    net = Network(g, policy=CONGEST, seed=0, engine=engine)
    return frozenset(luby_mis(net)), _metrics_tuple(net.metrics)


class TestSelectionRules:
    def _net(self, **kwargs):
        kwargs.setdefault("policy", CONGEST)
        kwargs.setdefault("seed", 0)
        return Network(gnp(20, 0.2, rng=0), **kwargs)

    def test_fast_path_engages_by_default(self):
        net = self._net(engine="csr")
        for cls in (IsraeliItaiNode, LubyMISNode):
            assert net._select_kernel(cls) is not None

    def test_registry_lookup(self):
        assert kernel_for(IsraeliItaiNode) is not None
        assert kernel_for(LubyMISNode) is not None
        assert kernel_for(CountingNode) is not None

    def test_node_engine_forces_slow_path(self):
        assert self._net(engine="node")._select_kernel(LubyMISNode) is None

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(kernels.NO_KERNELS_ENV, "1")
        assert not kernels_enabled()
        assert self._net(engine="csr")._select_kernel(LubyMISNode) is None
        # and the per-node run it falls back to stays golden
        golden = _run_luby("node", CONGEST, 4)
        assert _run_luby("csr", CONGEST, 4) == golden

    def test_subclass_falls_back(self):
        class Tweaked(LubyMISNode):
            pass

        assert kernel_for(Tweaked) is None
        assert self._net(engine="csr")._select_kernel(Tweaked) is None

    def test_faults_force_slow_path(self):
        net = self._net(engine="csr", faults=FaultSpec(loss=0.1))
        assert net._select_kernel(LubyMISNode) is None

    def test_policy_subclass_forces_slow_path(self):
        class EdgePriced(BandwidthPolicy):
            pass

        net = self._net(engine="csr", policy=EdgePriced(mode=CONGEST.mode))
        assert net._select_kernel(LubyMISNode) is None

    def test_per_message_observer_forces_slow_path(self):
        watcher = Collect(kinds=(MessageDelivered,))
        net = self._net(engine="csr", observe=watcher)
        assert net._select_kernel(LubyMISNode) is None
        # structural observers do not force it
        structural = Collect(kinds=(RoundStart, RoundEnd))
        net2 = self._net(engine="csr", observe=structural)
        assert net2._select_kernel(LubyMISNode) is not None

    def test_kernel_engages_inside_subnetwork(self):
        parent = Network(gnp(30, 0.15, rng=6), policy=CONGEST, seed=6)
        results = {}
        for engine in ("csr", "node"):
            with Subnetwork(parent, parent.graph, label="mis",
                            engine=engine) as sub:
                assert (sub.network._select_kernel(LubyMISNode)
                        is not None) == (engine == "csr")
                results[engine] = frozenset(luby_mis(sub.network))
        assert results["csr"] == results["node"]


class TestRngDerivation:
    def test_prefix_cache_matches_spawn_seed(self):
        for seed in (0, 7, 123456789):
            for run in (0, 1, 9):
                for salt in (0, 2):
                    prefix = node_stream_prefix(seed, run, salt)
                    for node in (0, 1, 17, 10 ** 9):
                        assert (node_seed_from_prefix(prefix, node)
                                == node_stream_seed(seed, run, node, salt)
                                == spawn_seed(seed, "node", run, salt, node))

    def test_network_node_rng_uses_collision_safe_streams(self):
        net = Network(path_graph(4), seed=5)
        net._run_counter = 3
        expected = node_stream_seed(5, 3, 2, salt=0)
        assert net.node_rng(2).random() == random.Random(expected).random()


NUMPY_ABSENT_SCRIPT = """
import sys

class _BlockNumpy:
    def find_module(self, name, path=None):
        if name == "numpy" or name.startswith("numpy."):
            return self
    def load_module(self, name):
        raise ImportError("numpy blocked for this test")

sys.meta_path.insert(0, _BlockNumpy())
sys.path.insert(0, {src!r})

from repro.congest import CONGEST, Network, kernels
from repro.dist.luby_mis import LubyMISNode, luby_mis
from repro.graphs import gnp

assert kernels._np is None, "numpy import should have been blocked"

results = {{}}
for engine in ("csr", "node"):
    net = Network(gnp(40, 0.12, rng=3), policy=CONGEST, seed=3,
                  engine=engine)
    results[engine] = (frozenset(luby_mis(net)), net.metrics.rounds,
                      net.metrics.messages, net.metrics.total_bits)
    assert (net._select_kernel(LubyMISNode) is not None) == (engine == "csr")
assert results["csr"] == results["node"], results
print("NUMPY_ABSENT_OK")
"""


class TestNumpyAbsent:
    def test_import_and_run_without_numpy(self):
        """The kernels module must import and stay golden with numpy gone."""
        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        proc = subprocess.run(
            [sys.executable, "-c", NUMPY_ABSENT_SCRIPT.format(src=src)],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "NUMPY_ABSENT_OK" in proc.stdout
