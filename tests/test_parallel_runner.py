"""Tests for the parallel experiment runner and its on-disk result cache."""

import pickle

import pytest

from repro.experiments.parallel import (
    ParallelReport,
    ResultCache,
    WorkItem,
    cache_key,
    parallel_map,
    run_parallel,
)
from repro.experiments.suite import run_all
from repro.experiments.report import build_report
from repro.experiments.tables import Table

# tiny overrides keep every tier invocation sub-second
T01 = {"n_side": 10, "ks": (1,), "seeds": (0,)}
T04 = {"ns": (16, 32), "seeds": (0,)}
OVERRIDES = {"t01": T01, "t04": T04}


def _square(x):
    return x * x


class TestCacheKey:
    def test_stable_for_same_item(self):
        a = WorkItem.make("t01", dict(T01))
        b = WorkItem.make("t01", dict(T01))
        assert cache_key(a) == cache_key(b)

    def test_override_order_irrelevant(self):
        fwd = WorkItem.make("t04", {"ns": (16,), "seeds": (0,)})
        rev = WorkItem.make("t04", {"seeds": (0,), "ns": (16,)})
        assert cache_key(fwd) == cache_key(rev)

    def test_distinct_overrides_distinct_keys(self):
        assert (cache_key(WorkItem.make("t01", {"n_side": 10}))
                != cache_key(WorkItem.make("t01", {"n_side": 11})))

    def test_distinct_tiers_distinct_keys(self):
        assert cache_key(WorkItem.make("t01")) != cache_key(WorkItem.make("t04"))


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        item = WorkItem.make("t04", dict(T04))
        assert cache.load(item) is None
        table = item.execute()
        path = cache.store(item, table)
        assert path.exists() and path.name.startswith("t04-")
        loaded = cache.load(item)
        assert loaded is not None
        assert loaded.title == table.title
        assert loaded.rows == table.rows

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        item = WorkItem.make("t04", dict(T04))
        cache.path_for(item).write_bytes(b"not a pickle")
        assert cache.load(item) is None

    def test_wrong_type_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        item = WorkItem.make("t04", dict(T04))
        cache.path_for(item).write_bytes(pickle.dumps({"not": "a table"}))
        assert cache.load(item) is None


class TestRunParallel:
    def test_serial_and_parallel_agree(self, tmp_path):
        serial = run_parallel(["t01", "t04"], jobs=1, overrides=OVERRIDES)
        forked = run_parallel(["t01", "t04"], jobs=2, overrides=OVERRIDES)
        assert [t.rows for t in serial.tables] == [t.rows for t in forked.tables]
        assert serial.computed == ["t01", "t04"]
        assert sorted(forked.computed) == ["t01", "t04"]

    def test_cache_round_trip(self, tmp_path):
        first = run_parallel(["t01", "t04"], jobs=2, cache_dir=tmp_path,
                             overrides=OVERRIDES)
        assert not first.hits and sorted(first.computed) == ["t01", "t04"]
        second = run_parallel(["t01", "t04"], jobs=2, cache_dir=tmp_path,
                              overrides=OVERRIDES)
        assert second.hits == ["t01", "t04"] and not second.computed
        assert [t.rows for t in first.tables] == [t.rows for t in second.tables]

    def test_tables_follow_requested_order(self, tmp_path):
        report = run_parallel(["t04", "t01"], jobs=2, overrides=OVERRIDES)
        assert isinstance(report, ParallelReport)
        assert [t.title[:3].strip() for t in report.tables] == ["T4", "T1"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_parallel(["t99"])

    def test_run_all_delegates(self, tmp_path):
        # run_all(jobs=, cache_dir=) hits the parallel path and the cache
        tables = run_all(["t04"], jobs=1, cache_dir=tmp_path)
        assert len(tables) == 1 and isinstance(tables[0], Table)
        assert list(tmp_path.glob("t04-*.pkl"))


class TestParallelMap:
    def test_matches_serial_map(self):
        items = list(range(12))
        assert parallel_map(_square, items, jobs=3) == [x * x for x in items]

    def test_jobs_one_inline(self):
        assert parallel_map(_square, [3], jobs=1) == [9]


class TestReportIntegration:
    def test_precomputed_tables(self, tmp_path):
        report = run_parallel(["t04"], jobs=1, overrides=OVERRIDES)
        doc = build_report(["t04"], tables=report.tables)
        assert report.tables[0].title in doc

    def test_tables_names_mismatch(self):
        with pytest.raises(ValueError):
            build_report(["t01", "t04"], tables=[])
