"""Tests for augmenting-path enumeration and the conflict graph."""

import pytest

from repro.graphs import Graph, cycle_graph, gnp, path_graph, uniform_weights
from repro.matching import (
    Matching,
    build_conflict_graph,
    canonical_path,
    enumerate_alternating_cycles,
    enumerate_augmenting_paths,
    maximal_disjoint_paths,
    paths_conflict,
    shortest_augmenting_path_length,
)
from repro.matching.paths import (
    augmentation_edge_set,
    augmentation_gain,
    enumerate_weighted_augmentations,
)


class TestCanonicalPath:
    def test_orientation(self):
        assert canonical_path([3, 2, 1]) == (1, 2, 3)
        assert canonical_path([1, 2, 3]) == (1, 2, 3)


class TestEnumerateAugmentingPaths:
    def test_single_edge(self):
        g = path_graph(2)
        paths = enumerate_augmenting_paths(g, Matching(), 1)
        assert paths == [(0, 1)]

    def test_path_graph_with_middle_matched(self):
        g = path_graph(4)  # 0-1-2-3
        m = Matching([(1, 2)])
        assert enumerate_augmenting_paths(g, m, 1) == []
        assert enumerate_augmenting_paths(g, m, 3) == [(0, 1, 2, 3)]

    def test_max_len_respected(self):
        g = path_graph(6)
        m = Matching([(1, 2), (3, 4)])
        assert enumerate_augmenting_paths(g, m, 3) == []
        assert enumerate_augmenting_paths(g, m, 5) == [(0, 1, 2, 3, 4, 5)]

    def test_each_path_reported_once(self):
        g = path_graph(2)
        paths = enumerate_augmenting_paths(g, Matching(), 5)
        assert len(paths) == 1

    def test_restricted_nodes(self):
        g = path_graph(4)
        m = Matching([(1, 2)])
        assert enumerate_augmenting_paths(g, m, 3, nodes=[0, 1, 2]) == []
        assert enumerate_augmenting_paths(g, m, 3, nodes=[0, 1, 2, 3]) == [
            (0, 1, 2, 3)
        ]

    def test_odd_cycle_paths(self):
        g = cycle_graph(5)
        m = Matching([(0, 1), (2, 3)])
        # node 4 is free; no other free node: no augmenting path at all
        assert enumerate_augmenting_paths(g, m, 5) == []

    def test_all_results_are_augmenting(self):
        g = gnp(14, 0.3, rng=3)
        m = Matching()
        # build some matching greedily
        for u, v, _ in g.edges():
            if m.is_free(u) and m.is_free(v):
                m.add(u, v)
        for p in enumerate_augmenting_paths(g, m, 5):
            assert m.is_augmenting_path(p)


class TestShortestAugmentingPath:
    def test_none_when_maximum(self):
        g = path_graph(2)
        m = Matching([(0, 1)])
        assert shortest_augmenting_path_length(g, m) is None

    def test_length_one(self):
        g = path_graph(2)
        assert shortest_augmenting_path_length(g, Matching()) == 1

    def test_length_three(self):
        g = path_graph(4)
        m = Matching([(1, 2)])
        assert shortest_augmenting_path_length(g, m) == 3

    def test_max_len_cutoff(self):
        g = path_graph(6)
        m = Matching([(1, 2), (3, 4)])
        assert shortest_augmenting_path_length(g, m, max_len=3) is None
        assert shortest_augmenting_path_length(g, m, max_len=5) == 5


class TestConflictGraph:
    def test_paths_conflict(self):
        assert paths_conflict((0, 1), (1, 2))
        assert not paths_conflict((0, 1), (2, 3))

    def test_definition_on_small_graph(self):
        # star: all edges meet at the center -> conflict graph is a clique
        g = Graph()
        for leaf in (1, 2, 3):
            g.add_edge(0, leaf)
        cg = build_conflict_graph(g, Matching(), 1)
        assert cg.num_nodes == 3
        for i in range(3):
            assert len(cg.adjacency[i]) == 2

    def test_leader_is_smaller_endpoint(self):
        g = path_graph(2)
        cg = build_conflict_graph(g, Matching(), 1)
        assert cg.leader == [0]

    def test_paths_through(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        cg = build_conflict_graph(g, Matching(), 1)
        assert cg.paths_through(0) != []
        assert cg.paths_through(9) == []

    def test_independent_check(self):
        g = Graph()
        for leaf in (1, 2):
            g.add_edge(0, leaf)
        cg = build_conflict_graph(g, Matching(), 1)
        assert cg.independent([0])
        assert not cg.independent([0, 1])

    def test_as_graph(self):
        g = Graph()
        for leaf in (1, 2):
            g.add_edge(0, leaf)
        cg = build_conflict_graph(g, Matching(), 1)
        cgraph = cg.as_graph()
        assert cgraph.num_nodes == 2
        assert cgraph.num_edges == 1


class TestMaximalDisjointPaths:
    def test_greedy_maximality(self):
        paths = [(0, 1), (1, 2), (3, 4)]
        chosen = maximal_disjoint_paths(paths)
        assert (0, 1) in chosen and (3, 4) in chosen
        assert (1, 2) not in chosen

    def test_custom_order(self):
        paths = [(0, 1), (1, 2)]
        chosen = maximal_disjoint_paths(paths, order=[1, 0])
        assert chosen == [(1, 2)]


class TestAlternatingCycles:
    def test_even_cycle_found(self):
        g = cycle_graph(4)
        m = Matching([(0, 1), (2, 3)])
        cycles = enumerate_alternating_cycles(g, m, 4)
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1, 2, 3}

    def test_no_cycles_without_matching(self):
        g = cycle_graph(4)
        assert enumerate_alternating_cycles(g, Matching(), 4) == []

    def test_max_len(self):
        g = cycle_graph(6)
        m = Matching([(0, 1), (2, 3), (4, 5)])
        assert enumerate_alternating_cycles(g, m, 4) == []
        assert len(enumerate_alternating_cycles(g, m, 6)) == 1


class TestWeightedAugmentations:
    def test_gain_computation(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 5.0)
        m = Matching([(0, 1)])
        # swapping (0,1) for (1,2): path 0-1-2 starting with matched edge
        assert augmentation_gain(g, m, [(0, 1), (1, 2)]) == 4.0

    def test_enumeration_finds_profitable_swap(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 5.0)
        m = Matching([(0, 1)])
        augs = enumerate_weighted_augmentations(g, m, 3)
        assert augs, "profitable swap must be found"
        nodes, kind, gain = augs[0]
        assert gain == 4.0
        m2 = m.symmetric_difference(augmentation_edge_set(nodes, kind))
        assert m2.weight(g) == 5.0

    def test_all_enumerated_augmentations_apply_cleanly(self):
        g = gnp(10, 0.4, rng=5, weight_fn=uniform_weights())
        m = Matching()
        for u, v, _ in g.edges():
            if m.is_free(u) and m.is_free(v):
                m.add(u, v)
        for nodes, kind, gain in enumerate_weighted_augmentations(g, m, 4):
            m2 = m.symmetric_difference(augmentation_edge_set(nodes, kind))
            assert abs((m2.weight(g) - m.weight(g)) - gain) < 1e-9
            assert gain > 0

    def test_cycle_augmentation(self):
        g = cycle_graph(4)
        # heavier opposite pair: make (1,2),(3,0) much heavier
        g2 = Graph()
        g2.add_edge(0, 1, 1.0)
        g2.add_edge(1, 2, 10.0)
        g2.add_edge(2, 3, 1.0)
        g2.add_edge(3, 0, 10.0)
        m = Matching([(0, 1), (2, 3)])
        augs = enumerate_weighted_augmentations(g2, m, 4)
        kinds = {kind for _, kind, _ in augs}
        assert "cycle" in kinds
        best = max(augs, key=lambda a: a[2])
        assert best[2] == 18.0
