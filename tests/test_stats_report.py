"""Tests for experiment statistics and report generation."""

import pytest

from repro.experiments import (
    Summary,
    build_report,
    ratio_of_means,
    significantly_greater,
    summarize,
    table_to_markdown,
    write_report,
)
from repro.experiments.tables import Table


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.ci_low < s.mean < s.ci_high

    def test_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_shrinks_with_n(self):
        wide = summarize([0, 10] * 2)
        narrow = summarize([0, 10] * 20)
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)

    def test_str(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestSignificance:
    def test_clear_separation(self):
        a = [10.0, 10.1, 9.9, 10.2, 9.8]
        b = [1.0, 1.1, 0.9, 1.2, 0.8]
        assert significantly_greater(a, b)
        assert not significantly_greater(b, a)

    def test_identical_not_significant(self):
        a = [5.0, 5.1, 4.9, 5.0]
        assert not significantly_greater(a, list(a))

    def test_tiny_samples_fall_back(self):
        assert significantly_greater([2.0], [1.0])


class TestRatioOfMeans:
    def test_basic(self):
        assert ratio_of_means([2, 4], [1, 1]) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ratio_of_means([1], [1, 2])
        with pytest.raises(ValueError):
            ratio_of_means([1], [0])


class TestReport:
    def test_table_to_markdown(self):
        t = Table("Title", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_note("hello")
        md = table_to_markdown(t)
        assert "### Title" in md
        assert "| a | b |" in md
        assert "| 1 | 2.5 |" in md
        assert "*Note: hello*" in md

    def test_build_report_subset(self):
        md = build_report(["t04"])
        assert "Israeli-Itai" in md
        assert "# repro experiment report" in md

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            build_report(["t99"])

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "r.md", ["t04"])
        assert path.exists()
        assert "Israeli-Itai" in path.read_text()

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "cli_report.md"
        assert main(["experiments", "t04", "--report", str(out)]) == 0
        assert out.exists()
