"""Experiment harness: tables T1-T18 validating every claim of the paper."""

from .parallel import (
    ParallelReport,
    ResultCache,
    WorkItem,
    cache_key,
    parallel_map,
    run_parallel,
)
from .report import build_report, table_to_markdown, write_report
from .stats import Summary, ratio_of_means, significantly_greater, summarize
from .suite import ALL_EXPERIMENTS, run_all
from .tables import Table

__all__ = [
    "ALL_EXPERIMENTS",
    "run_all",
    "run_parallel",
    "parallel_map",
    "ParallelReport",
    "ResultCache",
    "WorkItem",
    "cache_key",
    "Table",
    "build_report",
    "table_to_markdown",
    "write_report",
    "Summary",
    "ratio_of_means",
    "significantly_greater",
    "summarize",
]
