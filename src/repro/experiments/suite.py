"""The experiment suite: one function per table in EXPERIMENTS.md.

The paper is theory-only, so each experiment measures one of its claims
(approximation ratio, round complexity, message size) or reproduces a
comparison its text makes (vs. Israeli-Itai, vs. greedy, switch scheduling).
Every function returns a :class:`Table`; the benchmark targets under
``benchmarks/`` run them and print the tables.
"""

from __future__ import annotations

import math
import statistics
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..congest.message import log2n
from ..congest.network import Network
from ..congest.policies import CONGEST, PIPELINE
from ..dist.bipartite_mcm import bipartite_mcm
from ..dist.general_mcm import general_mcm
from ..dist.generic_mcm import generic_mcm
from ..dist.israeli_itai import israeli_itai
from ..dist.weighted.algorithm5 import approximate_mwm, default_iterations
from ..dist.weighted.class_greedy import class_greedy_mwm
from ..dist.weighted.local_greedy import local_greedy_mwm
from ..graphs.generators import gnp, random_bipartite, random_regular
from ..graphs.graph import Graph
from ..graphs.weights import exponential_weights, uniform_weights
from ..matching.sequential.blossom import max_cardinality
from ..matching.sequential.greedy import greedy_mwm
from ..matching.sequential.hopcroft_karp import hopcroft_karp
from ..matching.sequential.hungarian import max_weight_bipartite
from ..matching.verify import verify_matching
from ..switchsim.schedulers import (
    DistributedMCMScheduler,
    DistributedMWMScheduler,
    ISLIP,
    MaxSizeScheduler,
    MaxWeightScheduler,
    PIM,
)
from ..switchsim.simulator import simulate
from ..switchsim.traffic import BernoulliDiagonal, BernoulliUniform, Hotspot
from .tables import Table


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return statistics.fmean(values) if values else 0.0


def exact_mwm_weight(graph: Graph) -> float:
    """Optimum weight: Hungarian on bipartite graphs, networkx otherwise."""
    if graph.bipartition() is not None:
        return max_weight_bipartite(graph).weight(graph)
    import networkx as nx

    from ..graphs.interop import to_networkx

    matching = nx.max_weight_matching(to_networkx(graph))
    return sum(graph.weight(u, v) for u, v in matching)


# ----------------------------------------------------------------------
# T1: Theorem 3.10 — bipartite (1 - 1/(k+1))-MCM approximation ratio
# ----------------------------------------------------------------------
def t01_bipartite_ratio(n_side: int = 48, p: float = 0.08,
                        ks: Sequence[int] = (1, 2, 3, 4),
                        seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Theorem 3.10: bipartite (1-1/(k+1))-MCM ratios vs the certified bound."""
    table = Table(
        title=f"T1  Theorem 3.10: bipartite MCM ratio, G({n_side},{n_side},{p})",
        columns=["k", "guarantee 1-1/(k+1)", "mean ratio", "min ratio",
                 "mean rounds", "all above bound"],
    )
    for k in ks:
        ratios, rounds = [], []
        ok = True
        for seed in seeds:
            g = random_bipartite(n_side, n_side, p, rng=seed)
            opt = hopcroft_karp(g).matching.size
            res = bipartite_mcm(g, k=k, seed=seed)
            verify_matching(g, res.matching)
            ratio = res.matching.size / opt if opt else 1.0
            ratios.append(ratio)
            rounds.append(res.metrics.total_rounds)
            if ratio < (1 - 1 / (k + 1)) - 1e-9:
                ok = False
        table.add_row(k, 1 - 1 / (k + 1), _mean(ratios), min(ratios),
                      _mean(rounds), ok)
    table.add_note("guarantee is the certified Lemma 3.3 bound; the paper "
                   "quotes (1 - 1/k) with k shifted by one")
    return table


# ----------------------------------------------------------------------
# T2: Theorem 3.10 — round scaling in n (fixed k)
# ----------------------------------------------------------------------
def t02_bipartite_rounds(ns: Sequence[int] = (32, 64, 128, 256), k: int = 2,
                         avg_degree: float = 4.0,
                         seeds: Sequence[int] = (0, 1)) -> Table:
    """Theorem 3.10: CONGEST rounds scale as O(log n) at fixed k."""
    table = Table(
        title=f"T2  Theorem 3.10: rounds vs n (k={k}, avg degree {avg_degree})",
        columns=["n per side", "mean rounds", "rounds / log2(n)",
                 "max msg bits", "budget-chunked"],
    )
    for n in ns:
        p = min(1.0, avg_degree / n)
        rounds, max_bits = [], 0
        for seed in seeds:
            g = random_bipartite(n, n, p, rng=seed)
            res = bipartite_mcm(g, k=k, seed=seed)
            rounds.append(res.metrics.total_rounds)
            max_bits = max(max_bits, res.metrics.max_message_bits)
        table.add_row(n, _mean(rounds), _mean(rounds) / log2n(2 * n), max_bits,
                      True)
        table.add_note(
            f"n={n}: oversized counting/token messages are pipelined in "
            f"O(log n)-bit chunks (Lemma 3.9); charged rounds included"
        )
    return table


# ----------------------------------------------------------------------
# T3: Theorem 3.15 — general-graph (1 - 1/(k+1))-MCM ratio
# ----------------------------------------------------------------------
def t03_general_ratio(n: int = 40, p: float = 0.08,
                      ks: Sequence[int] = (2, 3),
                      seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Theorem 3.15: general-graph ratios with certified stopping."""
    table = Table(
        title=f"T3  Theorem 3.15: general MCM ratio, G({n},{p}) + 3-regular",
        columns=["graph", "k", "guarantee", "mean ratio", "min ratio",
                 "mean iterations", "mean rounds"],
    )
    families: List[Tuple[str, Callable[[int], Graph]]] = [
        (f"gnp({n},{p})", lambda s: gnp(n, p, rng=s)),
        (f"3-regular({n})", lambda s: random_regular(n, 3, rng=s)),
    ]
    for name, make in families:
        for k in ks:
            ratios, iters, rounds = [], [], []
            for seed in seeds:
                g = make(seed)
                opt = max_cardinality(g).size
                res = general_mcm(g, k=k, seed=seed, stopping="exact")
                verify_matching(g, res.matching)
                ratios.append(res.matching.size / opt if opt else 1.0)
                iters.append(res.iterations_used)
                rounds.append(res.metrics.total_rounds)
            table.add_row(name, k, 1 - 1 / (k + 1), _mean(ratios), min(ratios),
                          _mean(iters), _mean(rounds))
    return table


# ----------------------------------------------------------------------
# T4: Israeli-Itai baseline — ratio >= 1/2 and O(log n) rounds
# ----------------------------------------------------------------------
def t04_ii_baseline(ns: Sequence[int] = (50, 100, 200, 400),
                    avg_degree: float = 6.0,
                    seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Israeli-Itai baseline: maximal matching ratio and O(log n) rounds."""
    table = Table(
        title="T4  Israeli-Itai baseline: maximal matching (the paper's bar)",
        columns=["n", "mean ratio", "min ratio", "mean rounds",
                 "rounds / log2 n"],
    )
    for n in ns:
        p = min(1.0, avg_degree / n)
        ratios, rounds = [], []
        for seed in seeds:
            g = gnp(n, p, rng=seed)
            net = Network(g, policy=CONGEST, seed=seed)
            m = israeli_itai(net)
            verify_matching(g, m)
            opt = max_cardinality(g).size
            ratios.append(m.size / opt if opt else 1.0)
            rounds.append(net.metrics.total_rounds)
        table.add_row(n, _mean(ratios), min(ratios), _mean(rounds),
                      _mean(rounds) / log2n(n))
    table.add_note("maximality guarantees ratio >= 1/2; observed ratios sit "
                   "well above it on random graphs")
    return table


# ----------------------------------------------------------------------
# T5: Theorem 4.5 — (1/2 - eps)-MWM ratio vs baselines
# ----------------------------------------------------------------------
def t05_mwm_ratio(n: int = 48, p: float = 0.12,
                  eps_values: Sequence[float] = (0.3, 0.1, 0.05),
                  seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Theorem 4.5: (1/2-eps)-MWM vs greedy and the raw black box."""
    table = Table(
        title=f"T5  Theorem 4.5: weighted matching ratio, G({n},{p}), "
              f"exponential weights",
        columns=["algorithm", "eps", "guarantee", "mean ratio", "min ratio",
                 "mean rounds"],
    )
    graphs = [gnp(n, p, rng=s, weight_fn=exponential_weights()) for s in seeds]
    opts = [exact_mwm_weight(g) for g in graphs]

    # baselines first
    ratios = [greedy_mwm(g).weight(g) / o for g, o in zip(graphs, opts)]
    table.add_row("sequential greedy", "-", 0.5, _mean(ratios), min(ratios), "-")
    cg_ratios, cg_rounds = [], []
    for seed, (g, o) in enumerate(zip(graphs, opts)):
        m, net = class_greedy_mwm(g, seed=seed)
        cg_ratios.append(m.weight(g) / o)
        cg_rounds.append(net.metrics.total_rounds)
    table.add_row("class-greedy black box", "-", 1 / 5, _mean(cg_ratios),
                  min(cg_ratios), _mean(cg_rounds))

    for eps in eps_values:
        r5, rounds5 = [], []
        for seed, (g, o) in enumerate(zip(graphs, opts)):
            res = approximate_mwm(g, eps=eps, seed=seed)
            verify_matching(g, res.matching)
            r5.append(res.matching.weight(g) / o)
            rounds5.append(res.metrics.total_rounds)
        table.add_row("Algorithm 5 (class-greedy)", eps, 0.5 - eps,
                      _mean(r5), min(r5), _mean(rounds5))
    table.add_note("Algorithm 5 must beat its own black box and approach 1/2 "
                   "as eps shrinks; on random graphs it typically exceeds it")
    return table


# ----------------------------------------------------------------------
# T6: Lemma 4.3 — convergence trace of Algorithm 5
# ----------------------------------------------------------------------
def t06_mwm_convergence(n: int = 40, p: float = 0.15, eps: float = 0.02,
                        seed: int = 0) -> Table:
    """Lemma 4.3: Algorithm 5's weight trace vs the convergence bound."""
    g = gnp(n, p, rng=seed, weight_fn=exponential_weights())
    opt = exact_mwm_weight(g)
    res = approximate_mwm(g, eps=eps, seed=seed)
    delta = res.delta
    table = Table(
        title=f"T6  Lemma 4.3: w(M_i) >= 1/2 (1 - e^(-2 delta i / 3)) w(M*), "
              f"delta={delta:.2f}",
        columns=["iteration", "w(M_i)/w(M*)", "lemma bound", "above bound"],
    )
    for it in res.iterations:
        bound = 0.5 * (1 - math.exp(-2 * delta * it.iteration / 3))
        ratio = it.matching_weight / opt
        table.add_row(it.iteration, ratio, bound, ratio >= bound - 1e-9)
    return table


# ----------------------------------------------------------------------
# T7: Lemmas 3.2/3.3 — phase structure of the bipartite algorithm
# ----------------------------------------------------------------------
def t07_phase_structure(n_side: int = 48, p: float = 0.06, k: int = 4,
                        seed: int = 0) -> Table:
    """Lemmas 3.2/3.3: per-phase matching sizes vs the staircase bound."""
    g = random_bipartite(n_side, n_side, p, rng=seed)
    opt = hopcroft_karp(g).matching.size
    res = bipartite_mcm(g, k=k, seed=seed)
    table = Table(
        title=f"T7  Lemma 3.3: matching size after phase ell vs "
              f"(1 - 1/(ell+3)/2...) bound, G({n_side},{n_side},{p})",
        columns=["ell", "iterations", "paths applied", "|M| after phase",
                 "bound (1-2/(ell+3))*|M*|", "above bound"],
    )
    for phase in res.stats.phases:
        # after eliminating paths <= ell, shortest >= ell + 2 = 2k'-1
        k_prime = (phase.ell + 3) // 2
        bound = (1 - 1 / k_prime) * opt
        table.add_row(phase.ell, phase.iterations, phase.paths_applied,
                      phase.matching_size, bound,
                      phase.matching_size >= bound - 1e-9)
    table.add_note(f"|M*| = {opt}; Hopcroft-Karp sequential phases: "
                   f"{[(ph.path_length, ph.matching_size) for ph in hopcroft_karp(g).phases]}")
    return table


# ----------------------------------------------------------------------
# T8: CONGEST compliance — max message bits vs log2 n
# ----------------------------------------------------------------------
def t08_message_size(ns: Sequence[int] = (32, 64, 128, 256),
                     seed: int = 0) -> Table:
    """CONGEST compliance: max message bits stay O(log n)."""
    table = Table(
        title="T8  CONGEST compliance: max message bits across algorithms",
        columns=["algorithm", "n", "max msg bits", "bits / log2 n",
                 "chunks / round", "compliant"],
    )
    budget = CONGEST.budget_bits

    def chunks(bits: int, n: int) -> int:
        return max(1, -(-bits // budget(n)))

    for n in ns:
        g = gnp(n, min(1.0, 6.0 / n), rng=seed)
        net = Network(g, policy=CONGEST, seed=seed)
        israeli_itai(net)
        bits = net.metrics.max_message_bits
        table.add_row("israeli_itai", n, bits, bits / log2n(n),
                      chunks(bits, n), bits <= budget(n))

        gw = gnp(n, min(1.0, 6.0 / n), rng=seed,
                 weight_fn=uniform_weights())
        m, netw = class_greedy_mwm(gw, seed=seed)
        bits = netw.metrics.max_message_bits
        table.add_row("class_greedy_mwm", n, bits, bits / log2n(n),
                      chunks(bits, n), bits <= budget(n))

        b = random_bipartite(n // 2, n // 2, min(1.0, 6.0 / n), rng=seed)
        res = bipartite_mcm(b, k=2, seed=seed)
        bits = res.metrics.max_message_bits
        # pipelined: a message of b bits costs ceil(b / budget) rounds; it is
        # compliant as long as each chunk fits, which holds by construction
        table.add_row("bipartite_mcm (pipelined)", n, bits, bits / log2n(n),
                      chunks(bits, n), True)
    table.add_note("israeli_itai / class_greedy fit whole messages in one "
                   "O(log n)-bit round; bipartite_mcm ships its O(ell log n)"
                   "-bit counts/draws in O(log n)-bit chunks (Lemma 3.9) and "
                   "its round totals already include that charge — note "
                   "bits/log2 n stays bounded as n grows")
    return table


# ----------------------------------------------------------------------
# T9: switch scheduling (Figure 1 motivation)
# ----------------------------------------------------------------------
def t09_switch(ports: int = 8, cycles: int = 400, load: float = 0.9,
               seed: int = 0) -> Table:
    """Figure 1 motivation: crossbar scheduling quality comparison."""
    table = Table(
        title=f"T9  Switch scheduling: {ports} ports, load {load}, "
              f"{cycles} cycles",
        columns=["traffic", "scheduler", "throughput", "mean delay",
                 "backlog"],
    )
    traffics = [
        ("uniform", lambda: BernoulliUniform(ports, load, seed=seed)),
        ("diagonal", lambda: BernoulliDiagonal(ports, load, seed=seed)),
        ("hotspot", lambda: Hotspot(ports, min(0.6, load), seed=seed)),
    ]
    for tname, make_traffic in traffics:
        schedulers = [
            PIM(seed=seed),
            ISLIP(ports),
            MaxSizeScheduler(),
            MaxWeightScheduler(),
            DistributedMCMScheduler(k=2, seed=seed),
            DistributedMWMScheduler(eps=0.2, seed=seed),
        ]
        for sched in schedulers:
            stats = simulate(sched, make_traffic(), cycles)
            table.add_row(tname, stats.scheduler, stats.throughput,
                          stats.mean_delay, stats.backlog)
    return table


# ----------------------------------------------------------------------
# T10: ablation — Algorithm 4 color-sampling bias
# ----------------------------------------------------------------------
def t10_sampling_ablation(n: int = 36, p: float = 0.1, k: int = 2,
                          biases: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8),
                          seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Ablation: Algorithm 4's red/blue coloring bias."""
    table = Table(
        title=f"T10 Ablation: Algorithm 4 red-coloring bias, G({n},{p}), k={k}",
        columns=["bias p(red)", "mean iterations", "mean rounds",
                 "mean ratio"],
    )
    for bias in biases:
        iters, rounds, ratios = [], [], []
        for seed in seeds:
            g = gnp(n, p, rng=seed)
            opt = max_cardinality(g).size
            res = general_mcm(g, k=k, seed=seed, stopping="exact",
                              color_bias=bias)
            iters.append(res.iterations_used)
            rounds.append(res.metrics.total_rounds)
            ratios.append(res.matching.size / opt if opt else 1.0)
        table.add_row(bias, _mean(iters), _mean(rounds), _mean(ratios))
    table.add_note("the paper's 1/2 maximizes the per-path survival "
                   "probability 2^-ell; skewed biases need more iterations")
    return table


# ----------------------------------------------------------------------
# T11: ablation — token MIS vs explicit Luby on the conflict graph
# ----------------------------------------------------------------------
def t11_mis_ablation(n_side: int = 20, p: float = 0.12, k: int = 2,
                     seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Ablation: token MIS (CONGEST) vs explicit Luby on C_M(ell)."""
    table = Table(
        title=f"T11 Ablation: token MIS (CONGEST) vs conflict-graph Luby "
              f"(LOCAL), bipartite G({n_side},{n_side},{p}), k={k}",
        columns=["algorithm", "mean ratio", "mean rounds", "max msg bits"],
    )
    ratios_t, rounds_t, bits_t = [], [], 0
    ratios_g, rounds_g, bits_g = [], [], 0
    for seed in seeds:
        g = random_bipartite(n_side, n_side, p, rng=seed)
        opt = hopcroft_karp(g).matching.size or 1
        res = bipartite_mcm(g, k=k, seed=seed)
        ratios_t.append(res.matching.size / opt)
        rounds_t.append(res.metrics.total_rounds)
        bits_t = max(bits_t, res.metrics.max_message_bits)
        gen = generic_mcm(g, k=k, seed=seed)
        ratios_g.append(gen.matching.size / opt)
        rounds_g.append(gen.metrics.total_rounds)
        bits_g = max(bits_g, gen.metrics.max_message_bits)
    table.add_row("token MIS (Section 3.2)", _mean(ratios_t), _mean(rounds_t),
                  bits_t)
    table.add_row("explicit Luby on C_M(ell)", _mean(ratios_g),
                  _mean(rounds_g), bits_g)
    table.add_note("same guarantee; the token emulation keeps messages near "
                   "O(log n) bits while the generic algorithm floods views")
    return table


# ----------------------------------------------------------------------
# T12: ablation — black-box choice inside Algorithm 5
# ----------------------------------------------------------------------
def t12_blackbox_ablation(n: int = 40, p: float = 0.15, eps: float = 0.1,
                          seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Ablation: Algorithm 5's delta-MWM black box choice."""
    table = Table(
        title=f"T12 Ablation: Algorithm 5 black box, G({n},{p}), eps={eps}",
        columns=["black box", "delta", "iterations", "mean ratio",
                 "mean rounds"],
    )
    graphs = [gnp(n, p, rng=s, weight_fn=exponential_weights()) for s in seeds]
    opts = [exact_mwm_weight(g) for g in graphs]
    for box, delta in (("class_greedy", 1 / 5), ("local_greedy", 1 / 2)):
        ratios, rounds = [], []
        for seed, (g, o) in enumerate(zip(graphs, opts)):
            res = approximate_mwm(g, eps=eps, seed=seed, black_box=box)
            ratios.append(res.matching.weight(g) / o)
            rounds.append(res.metrics.total_rounds)
        table.add_row(box, delta, default_iterations(delta, eps),
                      _mean(ratios), _mean(rounds))
    return table


# ----------------------------------------------------------------------
# T13: footnote 2 — the alpha synchronizer makes synchrony WLOG
# ----------------------------------------------------------------------
def t13_synchronizer(n: int = 40, p: float = 0.12,
                     seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Footnote 2: alpha synchronizer equivalence and overhead."""
    from ..congest.asynchrony import (
        AsyncNetwork,
        FixedDelay,
        HeavyTailDelay,
        UniformDelay,
    )
    from ..dist.israeli_itai import IsraeliItaiNode

    table = Table(
        title=f"T13 Footnote 2: Israeli-Itai under the alpha synchronizer, "
              f"G({n},{p})",
        columns=["delay model", "identical to sync", "rounds", "virtual time",
                 "pulse overhead"],
    )
    models = [
        ("fixed(1.0)", lambda: FixedDelay(1.0)),
        ("uniform(0.5,2)", lambda: UniformDelay(0.5, 2.0)),
        ("heavy-tail", lambda: HeavyTailDelay()),
    ]
    for name, make in models:
        identical = True
        rounds, vtime, overhead = [], [], []
        for seed in seeds:
            g = gnp(n, p, rng=seed)
            shared = {"initial_mate": {v: None for v in g.nodes}}
            sync = Network(g, seed=seed).run(IsraeliItaiNode, shared=shared)
            rep = AsyncNetwork(g, make(), seed=seed).run(
                IsraeliItaiNode, shared=shared)
            identical = identical and rep.outputs == sync.outputs
            rounds.append(rep.rounds)
            vtime.append(rep.virtual_time)
            overhead.append(rep.pulse_overhead)
        table.add_row(name, identical, _mean(rounds), _mean(vtime),
                      _mean(overhead))
    table.add_note("identical outputs under every delay model: the paper's "
                   "synchrony assumption is WLOG; the cost is the pulse "
                   "traffic (O(|E|) envelopes per round) and the slowest "
                   "link's latency")
    return table


# ----------------------------------------------------------------------
# T14: trees — exact distributed DP vs the approximation algorithms
# ----------------------------------------------------------------------
def t14_trees(ns: Sequence[int] = (50, 100, 200),
              seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Trees: exact distributed DP vs Algorithm 5 (quality/rounds trade)."""
    from ..dist.tree_mwm import tree_mwm
    from ..graphs.generators import random_tree
    from ..matching.sequential.tree_dp import max_weight_forest

    table = Table(
        title="T14 Trees: exact distributed DP vs Algorithm 5 "
              "(random weighted trees)",
        columns=["n", "algorithm", "mean ratio", "mean rounds"],
    )
    for n in ns:
        exact_rounds, alg5_ratios, alg5_rounds = [], [], []
        for seed in seeds:
            g = random_tree(n, rng=seed, weight_fn=uniform_weights())
            opt = max_weight_forest(g).weight(g)
            m, net = tree_mwm(g, seed=seed)
            assert abs(m.weight(g) - opt) < 1e-6
            exact_rounds.append(net.metrics.total_rounds)
            res = approximate_mwm(g, eps=0.1, seed=seed,
                                  black_box="local_greedy")
            alg5_ratios.append(res.matching.weight(g) / opt)
            alg5_rounds.append(res.metrics.total_rounds)
        table.add_row(n, "tree DP (exact)", 1.0, _mean(exact_rounds))
        table.add_row(n, "Algorithm 5 (eps=0.1)", _mean(alg5_ratios),
                      _mean(alg5_rounds))
    table.add_note("the DP pays O(diameter) rounds for ratio 1.0; "
                   "Algorithm 5 pays O(log) rounds for its (1/2-eps) "
                   "guarantee — the locality/quality trade-off on the one "
                   "graph class where both are cheap")
    return table


# ----------------------------------------------------------------------
# T15: dynamic maintenance — invariant under edge churn, local work
# ----------------------------------------------------------------------
def t15_dynamic(n: int = 24, updates: int = 40,
                seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Dynamic maintenance: Lemma 3.3 invariant under edge churn."""
    import random as _random

    from ..dynamic.maintainer import DynamicMatcher

    table = Table(
        title=f"T15 Dynamic maintenance: k=2 invariant under {updates} "
              f"random edge updates, n={n}",
        columns=["seed", "final ratio", "guarantee", "invariant held",
                 "mean augmentations/update", "mean nodes explored/update"],
    )
    for seed in seeds:
        rng = _random.Random(seed)
        dm = DynamicMatcher(k=2, graph=gnp(n, 0.15, rng=seed))
        for _ in range(updates):
            u, v = rng.sample(range(n), 2)
            if dm.graph.has_edge(u, v):
                dm.delete_edge(u, v)
            else:
                dm.insert_edge(u, v)
        ops = [h for h in dm.history if h.operation != "init"]
        table.add_row(
            seed,
            dm.current_ratio(),
            dm.guarantee,
            dm.verify_invariant(),
            _mean(h.augmentations for h in ops),
            _mean(h.nodes_explored for h in ops),
        )
    table.add_note("repair work stays local (a few dozen nodes per update) "
                   "while the Lemma 3.3 invariant — hence the ratio — holds "
                   "after every update")
    return table



# ----------------------------------------------------------------------
# T16: switch delay vs load (the classic input-queued switch figure)
# ----------------------------------------------------------------------
def t16_switch_load_sweep(ports: int = 8, cycles: int = 300,
                          loads: Sequence[float] = (0.5, 0.7, 0.85, 0.95),
                          seed: int = 0) -> Table:
    """Switch delay-vs-load curves: maximal (PIM/iSLIP/LQF) vs the paper."""
    from ..switchsim.schedulers import LQFScheduler

    table = Table(
        title=f"T16 Switch mean delay vs offered load ({ports} ports, "
              f"uniform traffic, {cycles} cycles)",
        columns=["load", "pim", "islip", "lqf", "dist_mcm", "max_weight"],
    )
    for load in loads:
        delays = {}
        for make in (lambda: PIM(seed=seed), lambda: ISLIP(ports),
                     lambda: LQFScheduler(),
                     lambda: DistributedMCMScheduler(k=2, seed=seed),
                     lambda: MaxWeightScheduler()):
            sched = make()
            stats = simulate(sched, BernoulliUniform(ports, load, seed=seed),
                             cycles)
            delays[stats.scheduler] = stats.mean_delay
        table.add_row(load, delays["pim"], delays["islip"], delays["lqf"],
                      delays["dist_mcm"], delays["max_weight"])
    table.add_note("the better the per-cycle matching, the later the delay "
                   "knee: the (1-eps)-MCM scheduler tracks max-weight while "
                   "PIM/iSLIP lift off first — the gap the paper's "
                   "introduction predicts")
    return table



# ----------------------------------------------------------------------
# T17: cellular coverage (the Patt-Shamir-Rawitz-Scalosub application)
# ----------------------------------------------------------------------
def t17_cellular(num_stations: int = 8, capacity: int = 4,
                 client_counts: Sequence[int] = (20, 40, 80),
                 seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Cellular assignment: distributed b-matching vs the naive SNR greedy."""
    from ..cellular import (
        CellularScenario,
        assign_distributed,
        assign_greedy_snr,
        assign_sequential_greedy,
    )

    table = Table(
        title=f"T17 Cellular coverage: {num_stations} stations x capacity "
              f"{capacity}, clustered clients",
        columns=["clients", "strategy", "mean total rate", "mean coverage",
                 "mean fairness", "mean rounds"],
    )
    for count in client_counts:
        rows = {"distributed": [], "greedy_snr": [], "sequential_greedy": []}
        rounds = []
        for seed in seeds:
            sc = CellularScenario.random(num_stations, count,
                                         capacity=capacity, rng=seed,
                                         clustered=True)
            d = assign_distributed(sc, seed=seed)
            rows["distributed"].append(d)
            rounds.append(d.rounds or 0)
            rows["greedy_snr"].append(assign_greedy_snr(sc))
            rows["sequential_greedy"].append(assign_sequential_greedy(sc))
        for name in ("distributed", "sequential_greedy", "greedy_snr"):
            rs = rows[name]
            table.add_row(
                count, name,
                _mean(r.total_rate for r in rs),
                _mean(r.coverage for r in rs),
                _mean(r.fairness for r in rs),
                _mean(rounds) if name == "distributed" else "-",
            )
    table.add_note("the distributed mutual-proposal b-matching tracks the "
                   "sequential greedy exactly and dominates the naive "
                   "best-SNR association, which overloads popular stations")
    return table



# ----------------------------------------------------------------------
# T18: auction vs Algorithm 5 on weighted bipartite graphs
# ----------------------------------------------------------------------
def t18_auction(n_side: int = 24, p: float = 0.2,
                eps_values: Sequence[float] = (0.2, 0.05),
                seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """Auction (1-eps)-MWM vs Algorithm 5's (1/2-eps) on bipartite inputs."""
    from ..dist.auction import auction_mwm

    table = Table(
        title=f"T18 Bipartite weighted: auction vs Algorithm 5, "
              f"G({n_side},{n_side},{p}), uniform weights",
        columns=["algorithm", "eps", "guarantee", "mean ratio", "min ratio",
                 "mean rounds"],
    )
    graphs = [random_bipartite(n_side, n_side, p, rng=s,
                               weight_fn=uniform_weights()) for s in seeds]
    opts = [max_weight_bipartite(g).weight(g) for g in graphs]
    for eps in eps_values:
        ratios, rounds = [], []
        for seed, (g, opt) in enumerate(zip(graphs, opts)):
            m, net = auction_mwm(g, eps=eps, seed=seed)
            ratios.append(m.weight(g) / opt)
            rounds.append(net.metrics.total_rounds)
        table.add_row("auction", eps, 1 - eps, _mean(ratios), min(ratios),
                      _mean(rounds))
    for eps in eps_values:
        ratios, rounds = [], []
        for seed, (g, opt) in enumerate(zip(graphs, opts)):
            res = approximate_mwm(g, eps=eps, seed=seed,
                                  black_box="local_greedy")
            ratios.append(res.matching.weight(g) / opt)
            rounds.append(res.metrics.total_rounds)
        table.add_row("Algorithm 5 (local_greedy)", eps, 0.5 - eps,
                      _mean(ratios), min(ratios), _mean(rounds))
    table.add_note("on bipartite inputs the auction buys a (1-eps) "
                   "guarantee; its round count grows as prices climb in "
                   "epsilon steps, while Algorithm 5 stays at O(log(1/eps)) "
                   "black-box calls with the weaker 1/2-eps guarantee")
    return table


def t19_mpc_alpha(n: int = 600, p: float = 0.012,
                  alphas: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
                  seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """MPC maximal matching: supersteps and peak memory vs alpha."""
    from ..matching.verify import is_maximal
    from ..mpc import MPCCluster, mpc_maximal

    table = Table(
        title=f"T19 MPC alpha scaling: maximal matching on G({n},{p}), "
              f"S = ceil(n^alpha) words/machine",
        columns=["alpha", "S (words)", "machines", "mean supersteps",
                 "mean iterations", "mean peak words", "peak/S", "maximal"],
    )
    graphs = [gnp(n, p, rng=s) for s in seeds]
    for alpha in alphas:
        steps, iters, peaks, maximal = [], [], [], True
        limit = machines = 0
        for seed, g in enumerate(graphs):
            cluster = MPCCluster(g, alpha=alpha, seed=seed)
            res = mpc_maximal(cluster)
            assert res.peak_words <= cluster.machine_words
            steps.append(res.supersteps)
            iters.append(res.iterations)
            peaks.append(res.peak_words)
            maximal = maximal and is_maximal(g, res.matching)
            limit, machines = cluster.machine_words, cluster.num_machines
        table.add_row(alpha, limit, machines, _mean(steps), _mean(iters),
                      _mean(peaks), round(_mean(peaks) / limit, 3),
                      "yes" if maximal else "NO")
    table.add_note("smaller alpha means less memory per machine, hence "
                   "more machines, deeper combiner trees (stall padding) "
                   "and smaller per-iteration samples — supersteps grow as "
                   "alpha shrinks while the guard peak/S stays under 1; "
                   "below the floor S < 16 the cluster refuses to start "
                   "(MemoryExceeded)")
    return table


ALL_EXPERIMENTS: Dict[str, Callable[[], Table]] = {
    "t01": t01_bipartite_ratio,
    "t02": t02_bipartite_rounds,
    "t03": t03_general_ratio,
    "t04": t04_ii_baseline,
    "t05": t05_mwm_ratio,
    "t06": t06_mwm_convergence,
    "t07": t07_phase_structure,
    "t08": t08_message_size,
    "t09": t09_switch,
    "t10": t10_sampling_ablation,
    "t11": t11_mis_ablation,
    "t12": t12_blackbox_ablation,
    "t13": t13_synchronizer,
    "t14": t14_trees,
    "t15": t15_dynamic,
    "t16": t16_switch_load_sweep,
    "t17": t17_cellular,
    "t18": t18_auction,
    "t19": t19_mpc_alpha,
}


def run_all(names: Optional[Sequence[str]] = None,
            jobs: Optional[int] = None,
            cache_dir: Optional[str] = None,
            trace_dir: Optional[str] = None,
            profile: bool = False) -> List[Table]:
    """Run (a subset of) the suite and return the tables.

    ``jobs`` > 1 maps the tiers over a multiprocessing pool and
    ``cache_dir`` memoizes finished tables on disk (content-keyed, so
    edited experiments recompute); see :mod:`repro.experiments.parallel`.
    The default stays serial and cache-free.

    ``trace_dir`` streams every network the experiments build to one JSONL
    trace per experiment (``<trace_dir>/<name>.jsonl``), via the ambient
    :func:`~repro.congest.events.observing` context; ``profile=True``
    attaches a :class:`~repro.congest.profiling.Profiler` per experiment
    and stores its report as ``table.profile``.  Both are serial-only
    (worker processes do not inherit the ambient observer) and therefore
    incompatible with ``jobs``/``cache_dir``.
    """
    observed = trace_dir is not None or profile
    if jobs is not None or cache_dir is not None:
        if observed:
            raise ValueError(
                "trace_dir/profile are serial-only; drop --jobs/--cache")
        from .parallel import run_parallel  # deferred: parallel imports us

        return run_parallel(names, jobs=jobs, cache_dir=cache_dir).tables
    chosen = names if names is not None else sorted(ALL_EXPERIMENTS)
    if not observed:
        return [ALL_EXPERIMENTS[name]() for name in chosen]

    from pathlib import Path

    from ..observe.events import JsonlTraceWriter, observing
    from ..observe.profiling import Profiler

    tables = []
    for name in chosen:
        observers: List[object] = []
        writer = None
        if trace_dir is not None:
            Path(trace_dir).mkdir(parents=True, exist_ok=True)
            writer = JsonlTraceWriter(Path(trace_dir) / f"{name}.jsonl")
            observers.append(writer)
        profiler = Profiler() if profile else None
        if profiler is not None:
            observers.append(profiler)
        try:
            with observing(*observers):
                table = ALL_EXPERIMENTS[name]()
        finally:
            if writer is not None:
                writer.close()
        if profiler is not None:
            table.profile = profiler.report()
        tables.append(table)
    return tables
