"""Markdown report generation for the experiment suite.

``python -m repro experiments --all --report out.md`` renders every table
into one document, with environment and reproduction metadata — the file a
reader diffs against EXPERIMENTS.md to confirm the repository reproduces
its own numbers.
"""

from __future__ import annotations

import platform
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .suite import ALL_EXPERIMENTS
from .tables import Table


def table_to_markdown(table: Table) -> str:
    """Render a :class:`Table` as GitHub-flavored markdown."""
    lines = [f"### {table.title}", ""]
    header = "| " + " | ".join(str(c) for c in table.columns) + " |"
    sep = "|" + "|".join("---" for _ in table.columns) + "|"
    lines.append(header)
    lines.append(sep)
    for row in table.rows:
        lines.append("| " + " | ".join(Table._fmt(v) for v in row) + " |")
    for note in table.notes:
        lines.append("")
        lines.append(f"*Note: {note}*")
    profile = getattr(table, "profile", None)
    if profile is not None:
        lines.append("")
        lines.append("#### Profile")
        lines.append("")
        lines.append("```")
        lines.append(str(profile))
        lines.append("```")
    return "\n".join(lines)


def build_report(names: Optional[Sequence[str]] = None,
                 title: str = "repro experiment report",
                 tables: Optional[Sequence[Table]] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 trace_dir: Optional[str] = None,
                 profile: bool = False) -> str:
    """Run experiments and return the full markdown document.

    ``tables`` short-circuits execution with precomputed results (must
    align with ``names``); otherwise ``jobs``/``cache_dir`` forward to
    :func:`repro.experiments.suite.run_all` for parallel/cached runs, and
    ``trace_dir``/``profile`` attach observability (serial-only; profiled
    tables gain a ``#### Profile`` section).
    """
    chosen = list(names) if names is not None else sorted(ALL_EXPERIMENTS)
    unknown = [n for n in chosen if n not in ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {', '.join(unknown)}")
    if tables is None:
        from .suite import run_all

        tables = run_all(chosen, jobs=jobs, cache_dir=cache_dir,
                         trace_dir=trace_dir, profile=profile)
    elif len(tables) != len(chosen):
        raise ValueError("tables and names must align one-to-one")
    parts: List[str] = [
        f"# {title}",
        "",
        f"- python: `{sys.version.split()[0]}`",
        f"- platform: `{platform.platform()}`",
        f"- experiments: {', '.join(chosen)}",
        "",
        "All numbers are reproducible: the suite derives every random",
        "stream from fixed seeds.  See EXPERIMENTS.md for the claim-vs-",
        "measured discussion of each table.",
        "",
    ]
    for table in tables:
        parts.append(table_to_markdown(table))
        parts.append("")
    return "\n".join(parts)


def write_report(path: Union[str, Path],
                 names: Optional[Sequence[str]] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 trace_dir: Optional[str] = None,
                 profile: bool = False) -> Path:
    """Build and write the report; returns the path."""
    path = Path(path)
    path.write_text(build_report(names, jobs=jobs, cache_dir=cache_dir,
                                 trace_dir=trace_dir, profile=profile))
    return path
