"""Plain-text tables for the benchmark harness.

The paper has no evaluation section; the experiment suite prints its results
as tables in the style a systems paper would, and EXPERIMENTS.md records
claim-vs-measured for each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class Table:
    """A titled table with typed-ish formatting of floats.

    ``profile`` optionally carries a
    :class:`~repro.congest.profiling.ProfileReport` of the experiment's
    distributed runs (attached by ``run_all(..., profile=True)``); it is
    rendered below the table when present.
    """

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    profile: Any = None

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} "
                f"columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def format(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(col)), *(len(r[i]) for r in cells)) if cells else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * len(self.title), header, sep]
        for row in cells:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        profile = getattr(self, "profile", None)
        if profile is not None:
            lines.append("")
            lines.append("profile:")
            lines.extend("  " + line for line in str(profile).splitlines())
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.format())
        print()
