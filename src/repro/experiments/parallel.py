"""Parallel experiment execution with a content-keyed on-disk cache.

The 18-tier suite is embarrassingly parallel: every tier sweeps its own
(graph, seed) grid and produces one independent :class:`Table`.  This module
maps tier work items over a :mod:`multiprocessing` pool and memoizes each
finished table on disk, so ``python -m repro experiments --all --jobs 8``
uses every core and re-runs are incremental.

Cache keys are *content* keys, not timestamps: the key hashes the library
version, the tier name, the tier function's source code, and the exact
parameter overrides of the work item.  Editing an experiment (or bumping the
library) therefore invalidates exactly the affected entries; re-running an
unchanged suite is a pure cache read.  Entries are pickled tables named
``<tier>-<key16>.pkl`` under the cache directory.

Workers execute in forked subprocesses when the platform allows (the repo's
deterministic seeding makes results independent of process placement); on
platforms without ``fork`` the default start method is used, which requires
``repro`` to be importable from the workers — true for any installed or
``PYTHONPATH``-ed checkout.
"""

from __future__ import annotations

import hashlib
import inspect
import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .. import __version__
from .suite import ALL_EXPERIMENTS
from .tables import Table

Overrides = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: a tier plus its parameter overrides.

    Tier functions internally sweep their (graph, seed) grids; ``overrides``
    parameterizes that sweep (e.g. ``(("seeds", (0, 1)), ("ks", (1, 2)))``)
    and is part of the cache identity.
    """

    tier: str
    overrides: Overrides = ()

    @staticmethod
    def make(tier: str,
             overrides: Optional[Dict[str, Any]] = None) -> "WorkItem":
        items = tuple(sorted((overrides or {}).items()))
        return WorkItem(tier=tier, overrides=items)

    def execute(self) -> Table:
        fn = ALL_EXPERIMENTS[self.tier]
        return fn(**dict(self.overrides))


def cache_key(item: WorkItem) -> str:
    """Content key: version + tier + function source + overrides."""
    fn = ALL_EXPERIMENTS[item.tier]
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):  # builtins / REPL-defined experiments
        source = repr(fn)
    payload = "\x1e".join(
        [__version__, item.tier, source, repr(item.overrides)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickled :class:`Table` results keyed by :func:`cache_key`."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, item: WorkItem) -> Path:
        return self.root / f"{item.tier}-{cache_key(item)[:16]}.pkl"

    def load(self, item: WorkItem) -> Optional[Table]:
        path = self.path_for(item)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                table = pickle.load(fh)
        except Exception:
            # corrupt entry: treat as a miss, recompute.  Unpickling
            # arbitrary bytes can raise nearly anything (ValueError,
            # UnicodeDecodeError, AttributeError...), not just
            # PickleError/EOFError, and a stale cache must never crash
            return None
        return table if isinstance(table, Table) else None

    def store(self, item: WorkItem, table: Table) -> Path:
        path = self.path_for(item)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(table, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)  # atomic publish: concurrent runs never see partials
        return path


@dataclass
class ParallelReport:
    """What :func:`run_parallel` did: per-tier tables plus cache accounting."""

    tables: List[Table]
    hits: List[str] = field(default_factory=list)
    computed: List[str] = field(default_factory=list)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else None
    return multiprocessing.get_context(method)


def _resolve_jobs(jobs: Optional[int], pending: int) -> int:
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, pending))


def _execute_item(item: WorkItem) -> Tuple[str, Table]:
    return item.tier, item.execute()


def parallel_map(fn: Callable[[Any], Any], items: Sequence[Any],
                 jobs: Optional[int] = None) -> List[Any]:
    """Order-preserving multiprocessing map for experiment helpers.

    ``fn`` and every item must be picklable (module-level functions).  With
    ``jobs=1`` (or a single item) the map runs inline, which keeps
    tracebacks readable and avoids pool overhead for trivial loads.
    """
    jobs = _resolve_jobs(jobs, len(items))
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with _pool_context().Pool(processes=jobs) as pool:
        return pool.map(fn, items)


def run_parallel(names: Optional[Sequence[str]] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 overrides: Optional[Dict[str, Dict[str, Any]]] = None
                 ) -> ParallelReport:
    """Run (a subset of) the suite on a worker pool, consulting the cache.

    ``names`` defaults to every tier; ``jobs`` to the CPU count;
    ``overrides`` optionally maps tier name -> keyword overrides for that
    tier function.  Returns a :class:`ParallelReport` whose ``tables``
    follow the order of ``names``.
    """
    chosen = list(names) if names is not None else sorted(ALL_EXPERIMENTS)
    unknown = [n for n in chosen if n not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {', '.join(unknown)}")
    items = [WorkItem.make(n, (overrides or {}).get(n)) for n in chosen]

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    report = ParallelReport(tables=[])
    tables: Dict[str, Table] = {}
    pending: List[WorkItem] = []
    for item in items:
        cached = cache.load(item) if cache is not None else None
        if cached is not None:
            tables[item.tier] = cached
            report.hits.append(item.tier)
        else:
            pending.append(item)

    if pending:
        jobs = _resolve_jobs(jobs, len(pending))
        if jobs == 1 or len(pending) == 1:
            results: Iterable[Tuple[str, Table]] = map(_execute_item, pending)
        else:
            pool = _pool_context().Pool(processes=jobs)
            try:
                # unordered: slow tiers (t03, t09) don't gate fast ones
                results = pool.imap_unordered(_execute_item, pending)
                results = list(results)
            finally:
                pool.close()
                pool.join()
        by_tier = {item.tier: item for item in pending}
        for tier, table in results:
            tables[tier] = table
            report.computed.append(tier)
            if cache is not None:
                cache.store(by_tier[tier], table)

    report.tables = [tables[n] for n in chosen]
    return report
