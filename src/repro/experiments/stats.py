"""Summary statistics for experiment measurements.

Experiments in the suite report means over a handful of seeds; when more
rigor is wanted (e.g. comparing two schedulers whose means are close),
:func:`summarize` provides mean / standard deviation / a Student-t
confidence interval, and :func:`significantly_greater` a one-sided Welch
test.  scipy is used when available; without it, a normal-approximation
fallback keeps the library dependency-free.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

# 97.5% quantiles of the t distribution for small df (fallback table)
_T_975 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
          7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
          30: 2.042, 60: 2.000}


def _t_quantile(df: int, confidence: float = 0.95) -> float:
    try:
        from scipy import stats as sps

        return float(sps.t.ppf(0.5 + confidence / 2.0, df))
    except ImportError:  # pragma: no cover - scipy is present in this env
        keys = sorted(_T_975)
        for key in keys:
            if df <= key:
                return _T_975[key]
        return 1.96


@dataclass(frozen=True)
class Summary:
    """Mean / spread / confidence interval of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (f"{self.mean:.4g} ± {self.ci_high - self.mean:.2g} "
                f"(n={self.n}, range [{self.minimum:.4g}, "
                f"{self.maximum:.4g}])")


def summarize(values: Iterable[float], confidence: float = 0.95) -> Summary:
    """Mean, sample std, and a Student-t confidence interval."""
    data: List[float] = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    mean = statistics.fmean(data)
    if len(data) == 1:
        return Summary(1, mean, 0.0, mean, mean, mean, mean)
    std = statistics.stdev(data)
    half = _t_quantile(len(data) - 1, confidence) * std / math.sqrt(len(data))
    return Summary(
        n=len(data), mean=mean, std=std,
        minimum=min(data), maximum=max(data),
        ci_low=mean - half, ci_high=mean + half,
    )


def significantly_greater(a: Sequence[float], b: Sequence[float],
                          alpha: float = 0.05) -> bool:
    """One-sided Welch t-test: is mean(a) > mean(b) at level ``alpha``?

    With fewer than two observations on either side, falls back to a plain
    mean comparison (no significance claim possible).
    """
    if len(a) < 2 or len(b) < 2:
        return statistics.fmean(a) > statistics.fmean(b)
    try:
        from scipy import stats as sps

        stat, pvalue = sps.ttest_ind(list(a), list(b), equal_var=False,
                                     alternative="greater")
        return bool(pvalue < alpha)
    except ImportError:  # pragma: no cover
        sa = summarize(a)
        sb = summarize(b)
        se = math.sqrt(sa.std ** 2 / sa.n + sb.std ** 2 / sb.n)
        if se == 0:
            return sa.mean > sb.mean
        return (sa.mean - sb.mean) / se > 1.66


def ratio_of_means(numerators: Sequence[float],
                   denominators: Sequence[float]) -> float:
    """Paired ratio aggregate used by speedup-style columns."""
    if len(numerators) != len(denominators) or not numerators:
        raise ValueError("need equal-length non-empty samples")
    total_d = sum(denominators)
    if total_d == 0:
        raise ValueError("denominator sum is zero")
    return sum(numerators) / total_d
