"""Reading and writing graphs (edge lists and JSON).

The formats are deliberately simple and line-oriented so that instances can
be shared with other tools:

* **edge list**: one ``u v [weight]`` triple per line; ``#`` comments and
  blank lines ignored; isolated nodes can be declared as a bare ``u``.
* **JSON**: ``{"nodes": [...], "edges": [[u, v, w], ...], "left": [...]}``
  where the optional ``left`` key marks a bipartition and round-trips
  :class:`BipartiteGraph`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from .graph import BipartiteGraph, Graph, GraphError

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``u v weight`` lines (plus bare lines for isolated nodes)."""
    lines = ["# repro edge list"]
    touched = set()
    for u, v, w in graph.edges():
        touched.add(u)
        touched.add(v)
        if w == 1.0:
            lines.append(f"{u} {v}")
        else:
            lines.append(f"{u} {v} {w!r}")
    for v in graph.nodes:
        if v not in touched:
            lines.append(str(v))
    Path(path).write_text("\n".join(lines) + "\n")


def read_edge_list(path: PathLike) -> Graph:
    """Parse a file written by :func:`write_edge_list` (or compatible)."""
    g = Graph()
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            if len(parts) == 1:
                g.add_node(int(parts[0]))
            elif len(parts) == 2:
                g.add_edge(int(parts[0]), int(parts[1]))
            elif len(parts) == 3:
                g.add_edge(int(parts[0]), int(parts[1]), float(parts[2]))
            else:
                raise ValueError("too many fields")
        except ValueError as exc:
            raise GraphError(f"{path}:{lineno}: cannot parse {raw!r}: {exc}")
    return g


def write_json(graph: Graph, path: PathLike) -> None:
    """Write the JSON format (preserves bipartite structure)."""
    payload = {
        "nodes": graph.nodes,
        "edges": [[u, v, w] for u, v, w in graph.edges()],
    }
    if isinstance(graph, BipartiteGraph):
        payload["left"] = graph.left
    Path(path).write_text(json.dumps(payload, indent=1))


def read_json(path: PathLike) -> Graph:
    """Read the JSON format; returns BipartiteGraph when ``left`` present."""
    payload = json.loads(Path(path).read_text())
    nodes = payload.get("nodes", [])
    if "left" in payload:
        left = set(payload["left"])
        right = [v for v in nodes if v not in left]
        g: Graph = BipartiteGraph(sorted(left), sorted(right))
    else:
        g = Graph()
        g.add_nodes(nodes)
    for u, v, w in payload.get("edges", []):
        g.add_edge(int(u), int(v), float(w))
    return g
