"""Graph generators used by tests, examples, and the benchmark harness.

All generators take an explicit :class:`random.Random` instance (or a seed)
so that every experiment in the library is reproducible.  Node ids are dense
integers starting at 0; for bipartite generators, the left side occupies
``0 .. n_left-1`` and the right side ``n_left .. n_left+n_right-1``.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from .graph import BipartiteGraph, Graph, GraphError

RngLike = Union[int, random.Random, None]
WeightFn = Callable[[random.Random], float]


def _rng(rng: RngLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def _weight(rng: random.Random, weight_fn: Optional[WeightFn]) -> float:
    return 1.0 if weight_fn is None else weight_fn(rng)


# ----------------------------------------------------------------------
# deterministic topologies
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """A simple path on ``n`` nodes, ``0 - 1 - ... - n-1``."""
    g = Graph()
    g.add_nodes(range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """The ring C_n (the paper's diameter lower-bound instance for n even)."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 nodes")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def complete_graph(n: int, weight_fn: Optional[WeightFn] = None, rng: RngLike = None) -> Graph:
    r = _rng(rng)
    g = Graph()
    g.add_nodes(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, _weight(r, weight_fn))
    return g


def star_graph(n_leaves: int) -> Graph:
    """A star: center 0 joined to leaves ``1 .. n_leaves``."""
    g = Graph()
    g.add_node(0)
    for v in range(1, n_leaves + 1):
        g.add_edge(0, v)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols grid; node ``(r, c)`` has id ``r * cols + c``."""
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_node(v)
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def complete_bipartite(n_left: int, n_right: int,
                       weight_fn: Optional[WeightFn] = None,
                       rng: RngLike = None) -> BipartiteGraph:
    r = _rng(rng)
    g = BipartiteGraph(range(n_left), range(n_left, n_left + n_right))
    for u in range(n_left):
        for v in range(n_left, n_left + n_right):
            g.add_edge(u, v, _weight(r, weight_fn))
    return g


# ----------------------------------------------------------------------
# random graphs
# ----------------------------------------------------------------------
def gnp(n: int, p: float, rng: RngLike = None,
        weight_fn: Optional[WeightFn] = None) -> Graph:
    """Erdos-Renyi G(n, p)."""
    r = _rng(rng)
    g = Graph()
    g.add_nodes(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if r.random() < p:
                g.add_edge(u, v, _weight(r, weight_fn))
    return g


def random_bipartite(n_left: int, n_right: int, p: float, rng: RngLike = None,
                     weight_fn: Optional[WeightFn] = None) -> BipartiteGraph:
    """Bipartite G(n_left, n_right, p): each cross edge present independently."""
    r = _rng(rng)
    g = BipartiteGraph(range(n_left), range(n_left, n_left + n_right))
    for u in range(n_left):
        for v in range(n_left, n_left + n_right):
            if r.random() < p:
                g.add_edge(u, v, _weight(r, weight_fn))
    return g


def random_tree(n: int, rng: RngLike = None,
                weight_fn: Optional[WeightFn] = None) -> Graph:
    """A uniformly random recursive tree on ``n`` nodes."""
    r = _rng(rng)
    g = Graph()
    g.add_node(0)
    for v in range(1, n):
        g.add_edge(v, r.randrange(v), _weight(r, weight_fn))
    return g


def random_regular(n: int, d: int, rng: RngLike = None,
                   weight_fn: Optional[WeightFn] = None,
                   max_tries: int = 200) -> Graph:
    """A random ``d``-regular simple graph via the configuration model.

    Retries the pairing until it is simple (no loops / parallel edges), which
    succeeds quickly for the moderate degrees used in experiments.
    """
    if n * d % 2 != 0:
        raise GraphError("n * d must be even for a d-regular graph")
    if d >= n:
        raise GraphError("degree must be smaller than n")
    r = _rng(rng)
    for _ in range(max_tries):
        stubs = [v for v in range(n) for _ in range(d)]
        r.shuffle(stubs)
        pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]
        seen = set()
        ok = True
        for u, v in pairs:
            if u == v or (min(u, v), max(u, v)) in seen:
                ok = False
                break
            seen.add((min(u, v), max(u, v)))
        if ok:
            g = Graph()
            g.add_nodes(range(n))
            for u, v in pairs:
                g.add_edge(u, v, _weight(r, weight_fn))
            return g
    raise GraphError(
        f"failed to sample a simple {d}-regular graph on {n} nodes "
        f"after {max_tries} tries"
    )


def power_law_graph(n: int, exponent: float = 2.5, min_degree: int = 1,
                    rng: RngLike = None,
                    weight_fn: Optional[WeightFn] = None) -> Graph:
    """A heavy-tailed graph via the configuration model.

    Degrees are sampled from a discrete power law with the given exponent,
    then stubs are paired; self-loops and parallel edges produced by the
    pairing are dropped (the standard erased configuration model).
    """
    if exponent <= 1.0:
        raise GraphError("power-law exponent must exceed 1")
    r = _rng(rng)
    max_degree = max(min_degree + 1, int(round(n ** 0.5)))
    weights = [k ** (-exponent) for k in range(min_degree, max_degree + 1)]
    degrees = r.choices(range(min_degree, max_degree + 1), weights=weights, k=n)
    if sum(degrees) % 2 == 1:
        degrees[0] += 1
    stubs = [v for v, deg in enumerate(degrees) for _ in range(deg)]
    r.shuffle(stubs)
    g = Graph()
    g.add_nodes(range(n))
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, _weight(r, weight_fn))
    return g


# ----------------------------------------------------------------------
# structured matching instances
# ----------------------------------------------------------------------
def augmenting_chain(num_links: int, link_length: int = 3) -> Graph:
    """A disjoint union of paths, each an augmenting-path gadget.

    Each link is a path of ``link_length`` edges whose maximum matching uses
    ``ceil(link_length / 2)`` edges; greedy/maximal algorithms that pick the
    middle edges get stuck at roughly half.  Useful as a worst case for
    half-approximations.
    """
    if link_length < 1:
        raise GraphError("links need at least one edge")
    g = Graph()
    next_id = 0
    for _ in range(num_links):
        ids = list(range(next_id, next_id + link_length + 1))
        next_id += link_length + 1
        g.add_nodes(ids)
        for a, b in zip(ids, ids[1:]):
            g.add_edge(a, b)
    return g


def crown_graph(k: int) -> BipartiteGraph:
    """The crown S_k^0: complete bipartite K_{k,k} minus a perfect matching.

    A classic instance where short-sighted choices are costly; has a perfect
    matching for k >= 2.
    """
    if k < 2:
        raise GraphError("crown graphs need k >= 2")
    g = BipartiteGraph(range(k), range(k, 2 * k))
    for u in range(k):
        for v in range(k, 2 * k):
            if v - k != u:
                g.add_edge(u, v)
    return g


def blossom_gadget(num_blossoms: int = 1) -> Graph:
    """Disjoint odd 5-cycles each with a pendant edge.

    The smallest structures where bipartite-style augmentation fails and
    general-graph reasoning (or the paper's random bipartition trick) is
    needed.  Maximum matching: 3 edges per gadget.
    """
    g = Graph()
    base = 0
    for _ in range(num_blossoms):
        c = [base + i for i in range(5)]
        pendant = base + 5
        base += 6
        g.add_nodes(c + [pendant])
        for i in range(5):
            g.add_edge(c[i], c[(i + 1) % 5])
        g.add_edge(c[0], pendant)
    return g


def switch_request_graph(num_ports: int, occupancy: Sequence[Sequence[int]],
                         weighted: bool = True) -> BipartiteGraph:
    """The per-cycle request graph of an input-queued switch (paper Figure 1).

    ``occupancy[i][j]`` is the number of cells queued at input ``i`` destined
    to output ``j``.  Inputs are the left side (ids ``0..P-1``), outputs the
    right side (ids ``P..2P-1``).  If ``weighted``, edge weights are the queue
    occupancies (longest-queue-first scheduling); otherwise all requests
    weigh 1.
    """
    g = BipartiteGraph(range(num_ports), range(num_ports, 2 * num_ports))
    for i in range(num_ports):
        for j in range(num_ports):
            cells = occupancy[i][j]
            if cells > 0:
                g.add_edge(i, num_ports + j, float(cells) if weighted else 1.0)
    return g
