"""Conversions between :class:`repro.graphs.Graph` and ``networkx`` graphs.

networkx is an optional dependency of the library proper (the core has none);
the test and benchmark harness uses it as an independent reference
implementation for exact matchings.
"""

from __future__ import annotations

from typing import Optional

from .graph import BipartiteGraph, Graph


def to_networkx(graph: Graph):
    """Convert to ``networkx.Graph`` (weights on the ``weight`` attribute)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(graph.nodes)
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return g


def from_networkx(nx_graph, bipartite_left: Optional[set] = None) -> Graph:
    """Convert from ``networkx.Graph``.

    If ``bipartite_left`` is given, a :class:`BipartiteGraph` is built with
    that node set on the left; otherwise a plain :class:`Graph` results.
    Missing ``weight`` attributes default to 1.0.
    """
    if bipartite_left is not None:
        right = [v for v in nx_graph.nodes if v not in bipartite_left]
        g: Graph = BipartiteGraph(sorted(bipartite_left), sorted(right))
    else:
        g = Graph()
        g.add_nodes(nx_graph.nodes)
    for u, v, data in nx_graph.edges(data=True):
        g.add_edge(u, v, float(data.get("weight", 1.0)))
    return g
