"""Edge-weight distributions for weighted-matching experiments.

Each factory returns a ``weight_fn(rng) -> float`` suitable for the
``weight_fn`` parameter of the generators in :mod:`repro.graphs.generators`,
plus helpers to (re)weight an existing graph deterministically.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Union

from .graph import Graph

WeightFn = Callable[[random.Random], float]
RngLike = Union[int, random.Random, None]


def uniform_weights(low: float = 1.0, high: float = 100.0) -> WeightFn:
    """Weights uniform on ``[low, high]``."""
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")

    def fn(rng: random.Random) -> float:
        return rng.uniform(low, high)

    return fn


def integer_weights(low: int = 1, high: int = 100) -> WeightFn:
    """Integer weights uniform on ``{low, ..., high}``."""
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")

    def fn(rng: random.Random) -> float:
        return float(rng.randint(low, high))

    return fn


def exponential_weights(mean: float = 10.0) -> WeightFn:
    """Exponentially distributed weights (heavy spread across scales)."""
    if mean <= 0:
        raise ValueError("mean must be positive")

    def fn(rng: random.Random) -> float:
        return rng.expovariate(1.0 / mean) + 1e-9

    return fn


def power_of_two_weights(max_class: int = 10) -> WeightFn:
    """Weights of the form 2^i, i uniform in ``{0..max_class}``.

    Exercises the weight-class machinery of the delta-MWM black box with no
    rounding slack at all.
    """
    if max_class < 0:
        raise ValueError("max_class must be nonnegative")

    def fn(rng: random.Random) -> float:
        return float(2 ** rng.randint(0, max_class))

    return fn


def polarized_weights(heavy_fraction: float = 0.05, heavy: float = 1000.0,
                      light: float = 1.0) -> WeightFn:
    """A few very heavy edges among many light ones.

    Adversarial for cardinality-style algorithms: grabbing many light edges
    loses to a handful of heavy ones.
    """
    if not 0 <= heavy_fraction <= 1:
        raise ValueError("heavy_fraction must be in [0, 1]")

    def fn(rng: random.Random) -> float:
        return heavy if rng.random() < heavy_fraction else light

    return fn


def reweight(graph: Graph, weight_fn: WeightFn, rng: RngLike = None) -> Graph:
    """A copy of ``graph`` with every edge weight redrawn from ``weight_fn``."""
    r = rng if isinstance(rng, random.Random) else random.Random(rng)
    out = graph.copy()
    for u, v, _ in list(out.edges()):
        out.remove_edge(u, v)
        out.add_edge(u, v, weight_fn(r))
    return out


def weight_spread(graph: Graph) -> float:
    """log2(w_max / w_min) over the graph's edges (0 for <=1 distinct weight)."""
    weights = [w for _, _, w in graph.edges()]
    if len(weights) < 2:
        return 0.0
    return math.log2(max(weights) / min(weights)) if min(weights) > 0 else math.inf
