"""Core graph data structures for the matching library.

The simulator and every algorithm in :mod:`repro` operate on the
:class:`Graph` and :class:`BipartiteGraph` types defined here.  Nodes are
integers (the paper assumes ``O(log n)``-bit unique identifiers); edges are
undirected and may carry positive weights.  Graphs are simple: parallel edges
are collapsed (keeping the heavier weight) and self-loops are rejected, which
is without loss of generality for matching problems.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]


@dataclass(frozen=True)
class CSRAdjacency:
    """A flat compressed-sparse-row view of a graph's adjacency.

    Node *indices* are positions in ``order`` (the sorted node-id list);
    directed edge *slots* are positions in ``indices``.  Row ``i`` of the
    structure — the out-edges of ``order[i]`` — occupies the slot range
    ``indptr[i]:indptr[i+1]``, sorted by neighbor id.  ``weights[e]`` is the
    weight of slot ``e`` and ``rev[e]`` is the slot of the reverse edge, so
    engines can address both directions of an edge in O(1) without dict
    lookups.  The view is a snapshot: mutating the graph afterwards does not
    update it.
    """

    order: Tuple[int, ...]          # index -> node id (sorted)
    index: Dict[int, int]           # node id -> index
    indptr: array                   # len n+1; row i is indptr[i]:indptr[i+1]
    indices: array                  # neighbor *index* per slot
    weights: array                  # edge weight per slot
    rev: array                      # slot of the reverse directed edge

    @property
    def num_slots(self) -> int:
        return len(self.indices)

    def degree_of(self, i: int) -> int:
        return self.indptr[i + 1] - self.indptr[i]


def edge_key(u: int, v: int) -> Edge:
    """Return the canonical (sorted) representation of the edge ``{u, v}``."""
    return (u, v) if u <= v else (v, u)


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


class Graph:
    """A simple undirected graph with optional positive edge weights.

    The adjacency structure is a dict-of-dicts mapping each node to a mapping
    from neighbor to edge weight.  Unweighted graphs simply carry the implicit
    weight ``1.0`` on every edge, matching the paper's convention.
    """

    def __init__(self) -> None:
        self._adj: Dict[int, Dict[int, float]] = {}
        # CSR snapshot cache, keyed by the mutation version: every mutator
        # bumps ``_version``, so a cached snapshot is valid exactly while
        # the adjacency content is unchanged (repeated ``Network``
        # constructions over one graph stop rebuilding the packed arrays)
        self._version = 0
        self._csr_cache: Optional[CSRAdjacency] = None
        self._csr_cache_version = -1
        self.csr_cache_hits = 0
        self.csr_cache_misses = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: int) -> None:
        """Add an isolated node (no-op if already present)."""
        if not isinstance(v, int):
            raise GraphError(f"node ids must be integers, got {v!r}")
        if v not in self._adj:
            self._version += 1
            self._adj[v] = {}

    def add_nodes(self, nodes: Iterable[int]) -> None:
        for v in nodes:
            self.add_node(v)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with the given positive weight.

        Adding an edge that already exists keeps the larger weight (the
        library treats graphs as simple; the heavier parallel edge dominates
        any matching).
        """
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        self.add_node(u)
        self.add_node(v)
        existing = self._adj[u].get(v)
        if existing is None or weight > existing:
            self._version += 1
            self._adj[u][v] = weight
            self._adj[v][u] = weight

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite the weight of an existing edge (may also decrease it).

        Unlike :meth:`add_edge` — which keeps the heavier of two parallel
        edges — this sets the weight exactly; the streaming update path
        (queue lengths shrinking as cells drain) needs true decreases.
        """
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) not in graph")
        if self._adj[u][v] != weight:
            self._version += 1
            self._adj[u][v] = weight
            self._adj[v][u] = weight

    def remove_edge(self, u: int, v: int) -> None:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) not in graph")
        self._version += 1
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_node(self, v: int) -> None:
        if v not in self._adj:
            raise GraphError(f"node {v} not in graph")
        self._version += 1
        for u in list(self._adj[v]):
            del self._adj[u][v]
        del self._adj[v]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[int]:
        """All node ids in sorted order (determinism matters downstream)."""
        return sorted(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_node(self, v: int) -> bool:
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: int) -> List[int]:
        """Neighbors of ``v`` in sorted order."""
        if v not in self._adj:
            raise GraphError(f"node {v} not in graph")
        return sorted(self._adj[v])

    def degree(self, v: int) -> int:
        if v not in self._adj:
            raise GraphError(f"node {v} not in graph")
        return len(self._adj[v])

    @property
    def max_degree(self) -> int:
        """The maximum degree Delta (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def weight(self, u: int, v: int) -> float:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) not in graph")
        return self._adj[u][v]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(u, v, weight)`` with ``u < v``, sorted."""
        for u in sorted(self._adj):
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v, self._adj[u][v])

    def edge_set(self) -> Set[Edge]:
        return {edge_key(u, v) for u, v, _ in self.edges()}

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    def is_unweighted(self) -> bool:
        return all(w == 1.0 for _, _, w in self.edges())

    def to_csr(self) -> CSRAdjacency:
        """Build a :class:`CSRAdjacency` snapshot of the adjacency.

        Rows follow :attr:`nodes` order (sorted ids) and each row lists
        neighbors in sorted-id order, so iteration over the CSR reproduces
        exactly the deterministic order the rest of the library relies on.

        Snapshots are cached per mutation version: repeated calls on an
        unmodified graph (every ``Network`` construction, each shard worker
        of a sharded run) return the same immutable snapshot instead of
        rebuilding the packed arrays.  ``csr_cache_hits``/``csr_cache_misses``
        count reuse; :class:`~repro.congest.network.Network` folds them
        into its :class:`~repro.congest.metrics.Metrics`.
        """
        if (self._csr_cache is not None
                and self._csr_cache_version == self._version):
            self.csr_cache_hits += 1
            return self._csr_cache
        self.csr_cache_misses += 1
        order = tuple(self.nodes)
        index = {v: i for i, v in enumerate(order)}
        indptr = array("q", [0] * (len(order) + 1))
        indices = array("q")
        weights = array("d")
        for i, v in enumerate(order):
            nbrs = self._adj[v]
            for u in sorted(nbrs):
                indices.append(index[u])
                weights.append(nbrs[u])
            indptr[i + 1] = len(indices)
        # reverse-edge slots: slot e carries i -> j; rev[e] carries j -> i
        rev = array("q", [0] * len(indices))
        slot_of: List[Dict[int, int]] = [{} for _ in order]
        for i in range(len(order)):
            for e in range(indptr[i], indptr[i + 1]):
                slot_of[indices[e]][i] = e
        for i in range(len(order)):
            row = slot_of[i]
            for e in range(indptr[i], indptr[i + 1]):
                rev[row[indices[e]]] = e
        csr = CSRAdjacency(order=order, index=index, indptr=indptr,
                           indices=indices, weights=weights, rev=rev)
        self._csr_cache = csr
        self._csr_cache_version = self._version
        return csr

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph()
        g.add_nodes(self._adj)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def subgraph(self, nodes: Iterable[int]) -> "Graph":
        """The induced subgraph on ``nodes`` (missing ids are ignored)."""
        keep = {v for v in nodes if v in self._adj}
        g = Graph()
        g.add_nodes(keep)
        for u in keep:
            for v, w in self._adj[u].items():
                if v in keep and u < v:
                    g.add_edge(u, v, w)
        return g

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """The subgraph with exactly the given edges (and their endpoints)."""
        g = Graph()
        for u, v in edges:
            g.add_edge(u, v, self.weight(u, v))
        return g

    def connected_components(self) -> List[Set[int]]:
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for root in self.nodes:
            if root in seen:
                continue
            comp = {root}
            frontier = [root]
            while frontier:
                u = frontier.pop()
                for v in self._adj[u]:
                    if v not in comp:
                        comp.add(v)
                        frontier.append(v)
            seen |= comp
            components.append(comp)
        return components

    def bfs_distances(self, source: int, limit: Optional[int] = None) -> Dict[int, int]:
        """Hop distances from ``source``; optionally truncated at ``limit``."""
        if source not in self._adj:
            raise GraphError(f"node {source} not in graph")
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier and (limit is None or d < limit):
            d += 1
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in dist:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        return dist

    def diameter(self) -> int:
        """Exact diameter of the (connected) graph; raises if disconnected."""
        worst = 0
        for v in self.nodes:
            dist = self.bfs_distances(v)
            if len(dist) != self.num_nodes:
                raise GraphError("diameter undefined: graph is disconnected")
            worst = max(worst, max(dist.values()))
        return worst

    def ball(self, center: int, radius: int) -> Set[int]:
        """All nodes within ``radius`` hops of ``center`` (inclusive)."""
        return set(self.bfs_distances(center, limit=radius))

    def bipartition(self) -> Optional[Tuple[Set[int], Set[int]]]:
        """Return a 2-coloring ``(left, right)`` if bipartite, else ``None``.

        Isolated nodes are placed on the left side.
        """
        color: Dict[int, int] = {}
        for root in self.nodes:
            if root in color:
                continue
            color[root] = 0
            frontier = [root]
            while frontier:
                u = frontier.pop()
                for v in self._adj[u]:
                    if v not in color:
                        color[v] = 1 - color[u]
                        frontier.append(v)
                    elif color[v] == color[u]:
                        return None
        left = {v for v, c in color.items() if c == 0}
        right = {v for v, c in color.items() if c == 1}
        return left, right

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __repr__(self) -> str:
        return f"<Graph n={self.num_nodes} m={self.num_edges}>"


class BipartiteGraph(Graph):
    """An undirected bipartite graph with an explicit ``(left, right)`` split.

    Edges must cross the bipartition; the split is fixed at construction and
    new nodes must be registered on a side before edges touch them.
    """

    def __init__(self, left: Iterable[int] = (), right: Iterable[int] = ()) -> None:
        super().__init__()
        self._left: Set[int] = set()
        self._right: Set[int] = set()
        for v in left:
            self.add_left(v)
        for v in right:
            self.add_right(v)

    def add_left(self, v: int) -> None:
        if v in self._right:
            raise GraphError(f"node {v} is already on the right side")
        self._left.add(v)
        self.add_node(v)

    def add_right(self, v: int) -> None:
        if v in self._left:
            raise GraphError(f"node {v} is already on the left side")
        self._right.add(v)
        self.add_node(v)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        if u in self._left and v in self._left:
            raise GraphError(f"edge ({u}, {v}) has both endpoints on the left")
        if u in self._right and v in self._right:
            raise GraphError(f"edge ({u}, {v}) has both endpoints on the right")
        # auto-register unseen endpoints on the side forced by the other one
        if u not in self._left and u not in self._right:
            if v in self._left:
                self.add_right(u)
            elif v in self._right:
                self.add_left(u)
            else:
                raise GraphError(
                    f"cannot orient edge ({u}, {v}): neither endpoint has a side"
                )
        if v not in self._left and v not in self._right:
            if u in self._left:
                self.add_right(v)
            else:
                self.add_left(v)
        super().add_edge(u, v, weight)

    @property
    def left(self) -> List[int]:
        return sorted(self._left)

    @property
    def right(self) -> List[int]:
        return sorted(self._right)

    def side(self, v: int) -> str:
        if v in self._left:
            return "left"
        if v in self._right:
            return "right"
        raise GraphError(f"node {v} not in graph")

    def is_left(self, v: int) -> bool:
        return v in self._left

    def copy(self) -> "BipartiteGraph":
        g = BipartiteGraph(self._left, self._right)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def __repr__(self) -> str:
        return (
            f"<BipartiteGraph |L|={len(self._left)} |R|={len(self._right)} "
            f"m={self.num_edges}>"
        )
