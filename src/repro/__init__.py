"""repro: distributed approximate matching in the CONGEST model.

A full reproduction of "Improved Distributed Approximate Matching"
(Lotker, Patt-Shamir, Pettie; SPAA 2008 / J. ACM 2015), built on the
PODC 2007 line of work it extends.  The package provides:

* a synchronous CONGEST/LOCAL network simulator with bit-level message
  accounting (:mod:`repro.congest`);
* a second computation model on the shared runtime seam
  (:mod:`repro.models`): simulated MPC with a hard sublinear
  ``S = ceil(n**alpha)``-word memory cap per machine and a maximal
  matching driver (:mod:`repro.mpc`);
* the paper's algorithms — generic (1-eps)-MCM, bipartite CONGEST
  (1-1/k)-MCM, the general-graph reduction, and the weighted
  (1/2-eps)-MWM — plus the Israeli-Itai and Luby building blocks
  (:mod:`repro.dist`);
* sequential exact/approximate baselines (:mod:`repro.matching`);
* an input-queued switch simulator for the paper's motivating
  application (:mod:`repro.switchsim`);
* a streaming matching service maintaining the paper's invariant under
  batched edge/node updates (:mod:`repro.stream`);
* a local-computation-algorithm matching oracle (:mod:`repro.lca`);
* the experiment harness regenerating every claim (:mod:`repro.experiments`).

Quick start::

    from repro import approx_mcm, run
    from repro.graphs import random_bipartite

    graph = random_bipartite(100, 100, 0.05, rng=0)
    result = approx_mcm(graph, eps=0.25, seed=0)
    print(result.size, result.certificate.cardinality_ratio, result.rounds)

    # or via the single facade, by registry name:
    result = run("mcm", graph, eps=0.25, seed=0)
    print(result.network_metrics.total_bits)

    # observe a run without leaving the fast engine: JSONL trace + profile
    result = run("bipartite_mcm", graph, eps=0.25, trace="run.jsonl",
                 profile=True)
    print(result.trace_path, result.profile)

    # pick how protocols execute with one knob: a tier name or a full plan
    result = run("mcm", graph, eps=0.25, execution="sharded-kernel")
    result = run("mcm", graph, eps=0.25,
                 execution=ExecutionPlan(tier="auto", shards=4))

    # dynamic graphs: stream updates through the same facade...
    result = run("stream", graph, updates=[("insert", 0, 105),
                                           ("delete", 3, 101)], eps=0.25)
    # ...or hold a long-lived service and commit batches interactively
    from repro import MatchingService
    with MatchingService(graph, eps=0.25) as svc:
        svc.insert_edge(0, 105).delete_edge(3, 101)
        svc.commit()
        print(svc.snapshot().size, svc.verify_invariant())

    # the MPC model: maximal matching under a hard per-machine memory cap
    result = run("mpc_maximal", graph, alpha=0.6, seed=0)
    print(result.rounds,  # supersteps
          result.network_metrics.memory_peak_words)

Every entry point shares the keyword surface ``(graph, *, eps/k, seed,
policy, max_rounds, observe, trace, profile, execution)`` and returns a
:class:`MatchingResult` (``tracer=`` still works, deprecated; so do the
lower-level ``engine=``/``shards=`` Network keywords, which normalize
into an :class:`~repro.congest.execution.ExecutionPlan`).
"""

from .core import (
    ALGORITHMS,
    MatchingResult,
    approx_mcm,
    approx_mwm,
    eps_to_k,
    exact_mcm,
    exact_mwm,
    maximal_matching,
    mpc_maximal_matching,
    run,
    stream_matching,
)
from .congest import (
    EventBus,
    ExecutionPlan,
    FaultSpec,
    JsonlTraceWriter,
    Profiler,
    load_trace,
    observing,
)
from .graphs import BipartiteGraph, Graph
from .matching import Matching
from .stream import EdgeUpdate, MatchingService, StreamResult

__version__ = "1.10.0"

__all__ = [
    "ALGORITHMS",
    "MatchingResult",
    "approx_mcm",
    "approx_mwm",
    "eps_to_k",
    "exact_mcm",
    "exact_mwm",
    "maximal_matching",
    "mpc_maximal_matching",
    "run",
    "stream_matching",
    "EdgeUpdate",
    "MatchingService",
    "StreamResult",
    "EventBus",
    "ExecutionPlan",
    "FaultSpec",
    "JsonlTraceWriter",
    "Profiler",
    "load_trace",
    "observing",
    "BipartiteGraph",
    "Graph",
    "Matching",
    "__version__",
]
