"""Verification and certification of matchings.

Every algorithm result in the library can be checked against these
verifiers; the high-level API runs them automatically and attaches a
:class:`Certificate` to each result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..graphs.graph import Graph
from .core import Matching, MatchingError
from .paths import shortest_augmenting_path_length


@dataclass(frozen=True)
class Certificate:
    """What was verified about a matching, and the measured quality."""

    valid: bool
    maximal: bool
    size: int
    weight: float
    optimum_size: Optional[int] = None
    optimum_weight: Optional[float] = None

    @property
    def cardinality_ratio(self) -> Optional[float]:
        if self.optimum_size in (None, 0):
            return None if self.optimum_size is None else 1.0
        return self.size / self.optimum_size

    @property
    def weight_ratio(self) -> Optional[float]:
        if self.optimum_weight is None:
            return None
        if self.optimum_weight == 0:
            return 1.0
        return self.weight / self.optimum_weight


def verify_matching(graph: Graph, matching: Matching) -> None:
    """Raise :class:`MatchingError` unless ``matching`` is valid in ``graph``.

    Validity: every matched edge exists in the graph and no node is used
    twice (the latter is structural in :class:`Matching`, but we re-check
    defensively since distributed runs assemble matchings from node-local
    registers).
    """
    seen = set()
    for u, v in matching.edges():
        if not graph.has_edge(u, v):
            raise MatchingError(f"matched edge ({u}, {v}) is not a graph edge")
        if u in seen or v in seen:
            raise MatchingError(f"node reused by matched edge ({u}, {v})")
        seen.add(u)
        seen.add(v)


def is_maximal(graph: Graph, matching: Matching) -> bool:
    """True iff no graph edge has both endpoints free."""
    for u, v, _ in graph.edges():
        if matching.is_free(u) and matching.is_free(v):
            return False
    return True


def has_augmenting_path_shorter_than(graph: Graph, matching: Matching,
                                     ell: int) -> bool:
    """True iff an augmenting path of length < ``ell`` exists."""
    shortest = shortest_augmenting_path_length(graph, matching, max_len=ell - 1)
    return shortest is not None


def certify(graph: Graph, matching: Matching,
            optimum_size: Optional[int] = None,
            optimum_weight: Optional[float] = None) -> Certificate:
    """Verify and measure a matching; raises if it is invalid."""
    verify_matching(graph, matching)
    return Certificate(
        valid=True,
        maximal=is_maximal(graph, matching),
        size=matching.size,
        weight=matching.weight(graph),
        optimum_size=optimum_size,
        optimum_weight=optimum_weight,
    )
