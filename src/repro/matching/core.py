"""The :class:`Matching` data type and augmentation primitives.

A matching is stored as a symmetric mate map ``{u: v, v: u}``.  Augmenting
paths are node sequences whose first and last nodes are free and whose edges
alternate non-matching / matching / ... / non-matching; :meth:`Matching.augment`
applies the symmetric difference along such a path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..graphs.graph import Edge, Graph, edge_key


class MatchingError(ValueError):
    """Raised when a matching invariant would be violated."""


class Matching:
    """A matching over integer node ids.

    The matching is independent of any particular graph; validity against a
    graph (edges exist, endpoints exist) is checked by
    :func:`repro.matching.verify.verify_matching`.
    """

    def __init__(self, edges: Iterable[Edge] = ()) -> None:
        self._mate: Dict[int, int] = {}
        for u, v in edges:
            self.add(u, v)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    @classmethod
    def from_mate_map(cls, mate: Dict[int, Optional[int]]) -> "Matching":
        """Build from a (possibly one-sided) mate map, validating symmetry."""
        m = cls()
        for u, v in mate.items():
            if v is None:
                continue
            if mate.get(v, u) != u:
                raise MatchingError(f"mate map is not symmetric at ({u}, {v})")
            if not m.contains_edge(u, v):
                m.add(u, v)
        return m

    def add(self, u: int, v: int) -> None:
        """Add edge ``{u, v}``; both endpoints must currently be free."""
        if u == v:
            raise MatchingError(f"cannot match node {u} to itself")
        if u in self._mate:
            raise MatchingError(f"node {u} is already matched to {self._mate[u]}")
        if v in self._mate:
            raise MatchingError(f"node {v} is already matched to {self._mate[v]}")
        self._mate[u] = v
        self._mate[v] = u

    def remove(self, u: int, v: int) -> None:
        if self._mate.get(u) != v:
            raise MatchingError(f"edge ({u}, {v}) is not in the matching")
        del self._mate[u]
        del self._mate[v]

    def copy(self) -> "Matching":
        m = Matching()
        m._mate = dict(self._mate)
        return m

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def mate(self, v: int) -> Optional[int]:
        """The node matched to ``v``, or ``None`` if ``v`` is free."""
        return self._mate.get(v)

    def is_matched(self, v: int) -> bool:
        return v in self._mate

    def is_free(self, v: int) -> bool:
        return v not in self._mate

    def contains_edge(self, u: int, v: int) -> bool:
        return self._mate.get(u) == v

    def edges(self) -> Iterator[Edge]:
        """Iterate over matched edges in canonical sorted order."""
        for u in sorted(self._mate):
            v = self._mate[u]
            if u < v:
                yield (u, v)

    def edge_set(self) -> FrozenSet[Edge]:
        return frozenset(self.edges())

    def matched_nodes(self) -> Set[int]:
        return set(self._mate)

    @property
    def size(self) -> int:
        """Number of edges in the matching."""
        return len(self._mate) // 2

    def weight(self, graph: Graph) -> float:
        """Total weight of the matching under ``graph``'s weight function."""
        return sum(graph.weight(u, v) for u, v in self.edges())

    def as_mate_map(self, nodes: Iterable[int]) -> Dict[int, Optional[int]]:
        """The output-register view of the paper: node -> mate or None."""
        return {v: self._mate.get(v) for v in nodes}

    # ------------------------------------------------------------------
    # augmentation
    # ------------------------------------------------------------------
    def is_augmenting_path(self, path: Sequence[int]) -> bool:
        """Check that ``path`` (a node sequence) augments this matching.

        Requires: odd number of edges, simple, free endpoints, edges
        alternating unmatched/matched starting and ending with unmatched.
        Edge *existence in a graph* is not checked here.
        """
        if len(path) < 2 or len(path) % 2 != 0:
            return False
        if len(set(path)) != len(path):
            return False
        if self.is_matched(path[0]) or self.is_matched(path[-1]):
            return False
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            if i % 2 == 0:
                if self.contains_edge(u, v):
                    return False
            else:
                if not self.contains_edge(u, v):
                    return False
        return True

    def augment(self, path: Sequence[int]) -> None:
        """Flip matched/unmatched status along an augmenting path in place."""
        if not self.is_augmenting_path(path):
            raise MatchingError(f"not an augmenting path: {list(path)}")
        for i in range(1, len(path) - 1, 2):
            self.remove(path[i], path[i + 1])
        for i in range(0, len(path) - 1, 2):
            self.add(path[i], path[i + 1])

    def symmetric_difference(self, edges: Iterable[Edge]) -> "Matching":
        """Return ``self (+) edges`` as a new matching.

        Raises :class:`MatchingError` if the result is not a matching — the
        paper's ``M <- M (+) P`` steps are only applied to non-conflicting
        augmenting sets, and this method enforces that.
        """
        flip = {edge_key(u, v) for u, v in edges}
        result = self.edge_set() ^ flip
        return Matching(result)

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._mate == other._mate

    def __hash__(self) -> int:
        return hash(self.edge_set())

    def __repr__(self) -> str:
        return f"<Matching size={self.size}>"


def matching_from_edges(graph: Graph, edges: Iterable[Edge]) -> Matching:
    """Build a matching and check that every edge exists in ``graph``."""
    m = Matching()
    for u, v in edges:
        if not graph.has_edge(u, v):
            raise MatchingError(f"edge ({u}, {v}) not present in the graph")
        m.add(u, v)
    return m
