"""Sequential greedy baselines for weighted and unweighted matching.

The paper's Section 1 observes that the global greedy (repeatedly take the
heaviest remaining edge) is a 1/2-MWM; Drake-Hougardy's path growing and the
Preis-style locally-heaviest rule achieve the same factor in linear time.
These are the sequential comparison points for the weighted experiments.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple, Union

from ...graphs.graph import Graph
from ..core import Matching

RngLike = Union[int, random.Random, None]


def greedy_mwm(graph: Graph) -> Matching:
    """Global greedy: scan edges by decreasing weight (ties by edge id).

    Classic 1/2-approximation to the maximum-weight matching.
    """
    m = Matching()
    edges = sorted(graph.edges(), key=lambda e: (-e[2], e[0], e[1]))
    for u, v, _ in edges:
        if m.is_free(u) and m.is_free(v):
            m.add(u, v)
    return m


def greedy_mcm(graph: Graph, rng: RngLike = None) -> Matching:
    """Greedy maximal matching in (optionally shuffled) edge order.

    Maximality gives the classic 1/2-approximation to maximum cardinality.
    """
    r = rng if isinstance(rng, random.Random) else random.Random(rng)
    edges = list(graph.edges())
    if rng is not None:
        r.shuffle(edges)
    m = Matching()
    for u, v, _ in edges:
        if m.is_free(u) and m.is_free(v):
            m.add(u, v)
    return m


def path_growing_mwm(graph: Graph) -> Matching:
    """Drake-Hougardy path growing: a linear-time 1/2-MWM.

    Grows heaviest-edge paths, alternately assigning edges to two candidate
    matchings, and returns the heavier of the two.
    """
    remaining = graph.copy()
    m1 = Matching()
    m2 = Matching()
    current = 0
    for start in graph.nodes:
        v = start
        while remaining.has_node(v) and remaining.degree(v) > 0:
            best: Optional[Tuple[float, int]] = None
            for u in remaining.neighbors(v):
                w = remaining.weight(v, u)
                if best is None or (w, -u) > (best[0], -best[1]):
                    best = (w, u)
            assert best is not None
            u = best[1]
            target = m1 if current == 0 else m2
            if target.is_free(v) and target.is_free(u):
                target.add(v, u)
            current = 1 - current
            remaining.remove_node(v)
            v = u
    return m1 if m1.weight(graph) >= m2.weight(graph) else m2


def locally_heaviest_mwm(graph: Graph) -> Matching:
    """Preis-style greedy: repeatedly add any locally heaviest edge.

    An edge is locally heaviest if no strictly heavier edge shares an
    endpoint (ties broken by edge id, making the rule total).  1/2-MWM.
    """
    m = Matching()
    remaining = graph.copy()

    def key(u: int, v: int) -> Tuple[float, int, int]:
        a, b = (u, v) if u < v else (v, u)
        return (remaining.weight(a, b), -a, -b)

    active = set(remaining.edge_set())
    while active:
        # find any locally heaviest edge: the global heaviest certainly is
        u, v = max(active, key=lambda e: key(*e))
        m.add(u, v)
        for x in (u, v):
            for y in list(remaining.neighbors(x)):
                active.discard((min(x, y), max(x, y)))
            remaining.remove_node(x)
    return m
