"""Sequential (1 - eps)-approximate MWM via bounded augmentations.

The engine behind the paper's Lemma 4.2 [Pettie & Sanders 2004]: if no
alternating path or cycle with at most ``k`` unmatched edges has positive
gain, the matching weighs at least ``k/(k+1)`` of the optimum.  Iterating
positive-gain augmentations of bounded size therefore converges to a
(1 - 1/(k+1))-MWM — the sequential counterpart of the Section 4 Remark, and
the reference implementation the weighted tests compare against.

Each augmentation is found by bounded enumeration (cost exponential in k,
fine for the k <= 4 regime where the guarantee already beats 4/5); the
total number of augmentations is bounded because every one strictly
increases the weight and gains are bounded below by the minimal nonzero
gain of the instance (floating point: we stop when the best gain drops
below a relative tolerance).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...graphs.graph import Graph
from ..core import Matching
from ..paths import (
    augmentation_edge_set,
    enumerate_weighted_augmentations,
)


def local_search_mwm(graph: Graph, k: int = 2,
                     initial: Optional[Matching] = None,
                     max_augmentations: Optional[int] = None,
                     relative_tolerance: float = 1e-12) -> Tuple[Matching, int]:
    """Augment until no bounded-size positive-gain augmentation remains.

    ``k`` bounds the number of *unmatched* edges per augmentation (the
    Lemma 4.2 parameter); internally paths/cycles of up to ``2k + 1`` edges
    are enumerated.  Returns ``(matching, augmentations_applied)``; the
    result is a ``k/(k+1)``-approximate MWM.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    matching = initial.copy() if initial is not None else Matching()
    max_edges = 2 * k + 1
    limit = max_augmentations if max_augmentations is not None else (
        4 * graph.num_nodes * max(1, graph.num_edges)
    )
    scale = max((w for _, _, w in graph.edges()), default=1.0)
    applied = 0
    while applied < limit:
        augs = enumerate_weighted_augmentations(graph, matching, max_edges)
        if not augs:
            break
        nodes, kind, gain = augs[0]  # enumeration returns best-gain first
        if gain <= relative_tolerance * scale:
            break
        matching = matching.symmetric_difference(
            augmentation_edge_set(nodes, kind))
        applied += 1
    return matching, applied


def guarantee_of(k: int) -> float:
    """The Lemma 4.2 corollary: local optimality at size k gives k/(k+1)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return k / (k + 1)
