"""Hopcroft-Karp exact maximum-cardinality matching for bipartite graphs.

This is the sequential algorithm whose phase structure (Lemmas 3.2/3.3 of the
paper) underlies the distributed algorithms: each phase finds a maximal set
of vertex-disjoint *shortest* augmenting paths, and after phase ``k`` the
matching is a ``(1 - 1/(k+1))``-approximation.  The implementation exposes a
per-phase trace so experiments T7 can compare the distributed phase behaviour
against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...graphs.graph import BipartiteGraph, Graph, GraphError
from ..core import Matching

_INF = float("inf")


@dataclass
class PhaseTrace:
    """Size of the matching and shortest-path length after each HK phase."""

    path_length: int
    paths_found: int
    matching_size: int


@dataclass
class HopcroftKarpResult:
    matching: Matching
    phases: List[PhaseTrace] = field(default_factory=list)


def _sides(graph: Graph) -> Tuple[List[int], List[int]]:
    if isinstance(graph, BipartiteGraph):
        return graph.left, graph.right
    split = graph.bipartition()
    if split is None:
        raise GraphError("Hopcroft-Karp requires a bipartite graph")
    left, right = split
    return sorted(left), sorted(right)


def hopcroft_karp(graph: Graph) -> HopcroftKarpResult:
    """Maximum-cardinality matching via Hopcroft-Karp, with a phase trace."""
    left, right = _sides(graph)
    mate: Dict[int, Optional[int]] = {v: None for v in left + right}
    phases: List[PhaseTrace] = []
    size = 0

    dist: Dict[int, float] = {}

    def bfs() -> bool:
        """Layer free-left nodes; returns True iff an augmenting path exists."""
        queue: List[int] = []
        for u in left:
            if mate[u] is None:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found = _INF
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            if dist[u] >= found:
                continue
            for v in graph.neighbors(u):
                w = mate[v]
                if w is None:
                    found = min(found, dist[u] + 1)
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        dist["_target"] = found
        return found != _INF

    def dfs(u: int) -> bool:
        for v in graph.neighbors(u):
            w = mate[v]
            if w is None:
                if dist[u] + 1 == dist["_target"]:
                    mate[u] = v
                    mate[v] = u
                    return True
            elif dist[w] == dist[u] + 1:
                if dfs(w):
                    mate[u] = v
                    mate[v] = u
                    return True
        dist[u] = _INF
        return False

    while bfs():
        found_this_phase = 0
        for u in left:
            if mate[u] is None and dfs(u):
                found_this_phase += 1
        size += found_this_phase
        # the shortest augmenting path this phase has 2*target - 1 edges,
        # where target is the BFS depth at which a free right node appeared
        # (left nodes at depth 0, so target = matched-hops + 1).
        phases.append(PhaseTrace(
            path_length=int(2 * dist["_target"] - 1),
            paths_found=found_this_phase,
            matching_size=size,
        ))

    m = Matching()
    for u in left:
        if mate[u] is not None:
            m.add(u, mate[u])
    return HopcroftKarpResult(matching=m, phases=phases)


def max_cardinality_bipartite(graph: Graph) -> Matching:
    """Convenience wrapper returning only the matching."""
    return hopcroft_karp(graph).matching
