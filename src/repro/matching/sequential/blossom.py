"""Exact maximum-cardinality matching in general graphs (blossom algorithm).

Edmonds' blossom-contraction algorithm in its classic O(V^3) array form.
Used as the exact reference for all general-graph cardinality experiments
(T3, T4, T10) and by the verifier to certify approximation ratios.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...graphs.graph import Graph
from ..core import Matching


def max_cardinality_general(graph: Graph) -> Matching:
    """Maximum-cardinality matching of an arbitrary undirected graph."""
    nodes = graph.nodes
    n = len(nodes)
    index = {v: i for i, v in enumerate(nodes)}
    adj: List[List[int]] = [[index[u] for u in graph.neighbors(v)] for v in nodes]

    match: List[int] = [-1] * n
    parent: List[int] = [-1] * n
    base: List[int] = list(range(n))
    queue: List[int] = []
    used: List[bool] = [False] * n
    blossom: List[bool] = [False] * n

    def lca(a: int, b: int) -> int:
        """Lowest common ancestor of a and b in the alternating forest."""
        visited = [False] * n
        x = a
        while True:
            x = base[x]
            visited[x] = True
            if match[x] == -1:
                break
            x = parent[match[x]]
        y = b
        while True:
            y = base[y]
            if visited[y]:
                return y
            y = parent[match[y]]

    def mark_path(v: int, b: int, child: int) -> None:
        while base[v] != b:
            blossom[base[v]] = True
            blossom[base[match[v]]] = True
            parent[v] = child
            child = match[v]
            v = parent[match[v]]

    def find_path(root: int) -> int:
        """Grow an alternating tree from ``root``; return a free endpoint."""
        nonlocal queue
        for i in range(n):
            used[i] = False
            parent[i] = -1
            base[i] = i
        used[root] = True
        queue = [root]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            for to in adj[v]:
                if base[v] == base[to] or match[v] == to:
                    continue
                if to == root or (match[to] != -1 and parent[match[to]] != -1):
                    # found a blossom: contract it
                    cur_base = lca(v, to)
                    for i in range(n):
                        blossom[i] = False
                    mark_path(v, cur_base, to)
                    mark_path(to, cur_base, v)
                    for i in range(n):
                        if blossom[base[i]]:
                            base[i] = cur_base
                            if not used[i]:
                                used[i] = True
                                queue.append(i)
                elif parent[to] == -1:
                    parent[to] = v
                    if match[to] == -1:
                        return to  # augmenting path found
                    used[match[to]] = True
                    queue.append(match[to])
        return -1

    def augment(v: int) -> None:
        """Flip the alternating path ending at free node ``v``."""
        while v != -1:
            pv = parent[v]
            ppv = match[pv]
            match[v] = pv
            match[pv] = v
            v = ppv

    # greedy warm start halves the number of phases in practice
    for v in range(n):
        if match[v] == -1:
            for to in adj[v]:
                if match[to] == -1:
                    match[v] = to
                    match[to] = v
                    break

    for v in range(n):
        if match[v] == -1:
            endpoint = find_path(v)
            if endpoint != -1:
                augment(endpoint)

    result = Matching()
    for i in range(n):
        if match[i] > i:
            result.add(nodes[i], nodes[match[i]])
    return result


def max_cardinality(graph: Graph) -> Matching:
    """Exact MCM dispatch: bipartite graphs route to Hopcroft-Karp."""
    split = graph.bipartition()
    if split is not None:
        from .hopcroft_karp import max_cardinality_bipartite

        return max_cardinality_bipartite(graph)
    return max_cardinality_general(graph)
