"""Sequential exact and approximate matching baselines."""

from .blossom import max_cardinality, max_cardinality_general
from .brute import BruteForceLimitError, brute_force_mcm, brute_force_mwm
from .greedy import greedy_mcm, greedy_mwm, locally_heaviest_mwm, path_growing_mwm
from .hopcroft_karp import (
    HopcroftKarpResult,
    PhaseTrace,
    hopcroft_karp,
    max_cardinality_bipartite,
)
from .hungarian import max_weight_bipartite
from .local_search import guarantee_of, local_search_mwm
from .tree_dp import is_forest, max_weight_forest

__all__ = [
    "max_cardinality",
    "max_cardinality_general",
    "BruteForceLimitError",
    "brute_force_mcm",
    "brute_force_mwm",
    "greedy_mcm",
    "greedy_mwm",
    "locally_heaviest_mwm",
    "path_growing_mwm",
    "HopcroftKarpResult",
    "PhaseTrace",
    "hopcroft_karp",
    "max_cardinality_bipartite",
    "max_weight_bipartite",
    "guarantee_of",
    "local_search_mwm",
    "is_forest",
    "max_weight_forest",
]
