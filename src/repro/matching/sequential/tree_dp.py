"""Exact maximum-weight matching on forests via dynamic programming.

Trees are the one special case the distributed-matching literature treats
separately (Hoepman, Kutten & Lotker 2006, cited in the paper's history
section, match trees in expected constant time).  The exact tree optimum is
computable in linear time with the classic two-state DP:

* ``best[v][FREE]``    — best weight in v's subtree with v unmatched;
* ``best[v][MATCHED]`` — best weight with v matched to one of its children.

Used as the exact reference for tree/forest experiments, where the blossom
algorithm would be overkill.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...graphs.graph import Graph, GraphError
from ..core import Matching

_FREE, _MATCHED = 0, 1


def is_forest(graph: Graph) -> bool:
    """True iff the graph has no cycles."""
    seen: set = set()
    for root in graph.nodes:
        if root in seen:
            continue
        stack: List[Tuple[int, Optional[int]]] = [(root, None)]
        seen.add(root)
        while stack:
            v, parent = stack.pop()
            for u in graph.neighbors(v):
                if u == parent:
                    parent = None  # consume the single allowed back-step
                    continue
                if u in seen:
                    return False
                seen.add(u)
                stack.append((u, v))
    return True


def max_weight_forest(graph: Graph) -> Matching:
    """Exact maximum-weight matching of a forest (linear time)."""
    if not is_forest(graph):
        raise GraphError("max_weight_forest requires an acyclic graph")

    matching = Matching()
    visited: set = set()
    for root in graph.nodes:
        if root in visited:
            continue
        order = _post_order(graph, root)
        visited.update(order)
        best: Dict[int, List[float]] = {}
        choice: Dict[int, Optional[int]] = {}  # matched child when MATCHED
        parent = {root: None}
        for v in reversed(order):
            for u in graph.neighbors(v):
                if u != parent.get(v):
                    parent[u] = v
        for v in order:  # order is post-order: children first
            children = [u for u in graph.neighbors(v) if parent.get(u) == v]
            base = sum(max(best[c]) for c in children)
            best[v] = [base, float("-inf")]
            choice[v] = None
            for c in children:
                candidate = (graph.weight(v, c) + best[c][_FREE]
                             + base - max(best[c]))
                if candidate > best[v][_MATCHED]:
                    best[v][_MATCHED] = candidate
                    choice[v] = c
        _reconstruct(graph, root, parent, best, choice, matching)
    return matching


def _post_order(graph: Graph, root: int) -> List[int]:
    order: List[int] = []
    stack: List[Tuple[int, Optional[int]]] = [(root, None)]
    while stack:
        v, parent = stack.pop()
        order.append(v)
        for u in graph.neighbors(v):
            if u != parent:
                stack.append((u, v))
    order.reverse()  # children before parents
    return order


def _reconstruct(graph: Graph, root: int, parent, best, choice,
                 matching: Matching) -> None:
    """Walk the DP table top-down, committing matched edges."""
    stack: List[Tuple[int, int]] = [
        (root, _MATCHED if best[root][_MATCHED] > best[root][_FREE] else _FREE)
    ]
    while stack:
        v, state = stack.pop()
        children = [u for u in graph.neighbors(v) if parent.get(u) == v]
        matched_child = choice[v] if state == _MATCHED else None
        if matched_child is not None:
            matching.add(v, matched_child)
        for c in children:
            if c == matched_child:
                stack.append((c, _FREE))
            else:
                stack.append(
                    (c, _MATCHED if best[c][_MATCHED] > best[c][_FREE]
                     else _FREE)
                )
