"""Brute-force exact matchers for small graphs.

Exponential-time reference implementations used only to cross-validate the
polynomial exact algorithms (and the networkx oracle) in tests.  Guarded by
a size limit so accidental misuse fails loudly instead of hanging.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...graphs.graph import Graph
from ..core import Matching

MAX_BRUTE_EDGES = 24


class BruteForceLimitError(ValueError):
    """Raised when a graph is too large for exhaustive search."""


def _check(graph: Graph) -> List[Tuple[int, int, float]]:
    edges = list(graph.edges())
    if len(edges) > MAX_BRUTE_EDGES:
        raise BruteForceLimitError(
            f"brute force limited to {MAX_BRUTE_EDGES} edges, got {len(edges)}"
        )
    return edges


def brute_force_mcm(graph: Graph) -> Matching:
    """Exhaustive maximum-cardinality matching (small graphs only)."""
    return _search(graph, weighted=False)


def brute_force_mwm(graph: Graph) -> Matching:
    """Exhaustive maximum-weight matching (small graphs only)."""
    return _search(graph, weighted=True)


def brute_force_mwbm(graph: Graph, capacity) -> "set":
    """Exhaustive maximum-weight b-matching (small graphs only).

    ``capacity`` maps node -> degree budget (missing nodes default to 1).
    Returns the optimal edge set (canonical tuples).
    """
    edges = _check(graph)
    best_value = -1.0
    best: list = []
    load: dict = {}
    chosen: list = []

    def recurse(i: int, value: float) -> None:
        nonlocal best_value, best
        remaining = sum(w for _, _, w in edges[i:])
        if value + remaining <= best_value:
            return
        if i == len(edges):
            if value > best_value:
                best_value = value
                best = list(chosen)
            return
        u, v, w = edges[i]
        if (load.get(u, 0) < capacity.get(u, 1)
                and load.get(v, 0) < capacity.get(v, 1)):
            load[u] = load.get(u, 0) + 1
            load[v] = load.get(v, 0) + 1
            chosen.append((u, v))
            recurse(i + 1, value + w)
            chosen.pop()
            load[u] -= 1
            load[v] -= 1
        recurse(i + 1, value)

    recurse(0, 0.0)
    return {(min(u, v), max(u, v)) for u, v in best}


def greedy_mwbm(graph: Graph, capacity) -> "set":
    """Sequential greedy b-matching (heaviest edge first): 1/2-approximate."""
    load: dict = {}
    chosen = set()
    for u, v, w in sorted(graph.edges(), key=lambda e: (-e[2], e[0], e[1])):
        if (load.get(u, 0) < capacity.get(u, 1)
                and load.get(v, 0) < capacity.get(v, 1)):
            chosen.add((u, v))
            load[u] = load.get(u, 0) + 1
            load[v] = load.get(v, 0) + 1
    return chosen


def _search(graph: Graph, weighted: bool) -> Matching:
    edges = _check(graph)
    best_value = -1.0
    best_edges: List[Tuple[int, int]] = []

    used: set = set()
    chosen: List[Tuple[int, int]] = []

    def recurse(i: int, value: float) -> None:
        nonlocal best_value, best_edges
        # optimistic bound: every remaining edge could still be added
        remaining = edges[i:]
        bound = value + (sum(w for _, _, w in remaining) if weighted
                         else len(remaining))
        if bound <= best_value:
            return
        if i == len(edges):
            if value > best_value:
                best_value = value
                best_edges = list(chosen)
            return
        u, v, w = edges[i]
        if u not in used and v not in used:
            used.add(u)
            used.add(v)
            chosen.append((u, v))
            recurse(i + 1, value + (w if weighted else 1.0))
            chosen.pop()
            used.discard(u)
            used.discard(v)
        recurse(i + 1, value)

    recurse(0, 0.0)
    return Matching(best_edges)
