"""Exact maximum-weight bipartite matching (Hungarian algorithm).

The Kuhn-Munkres algorithm with potentials, O(n^3).  Non-edges are padded
with weight 0, so the result is the maximum-weight (not necessarily perfect)
matching: zero-weight assignments are dropped from the output.  Used as the
exact reference for weighted experiments on bipartite instances (T5, T9).
"""

from __future__ import annotations

from typing import List, Tuple

from ...graphs.graph import BipartiteGraph, Graph, GraphError
from ..core import Matching

_INF = float("inf")


def _sides(graph: Graph) -> Tuple[List[int], List[int]]:
    if isinstance(graph, BipartiteGraph):
        return graph.left, graph.right
    split = graph.bipartition()
    if split is None:
        raise GraphError("the Hungarian algorithm requires a bipartite graph")
    left, right = split
    return sorted(left), sorted(right)


def max_weight_bipartite(graph: Graph) -> Matching:
    """Maximum-weight matching of a bipartite graph via Kuhn-Munkres.

    Minimizes ``-(weight)`` over perfect matchings of a zero-padded square
    matrix; because pads cost 0 and true weights are positive, this is
    exactly the maximum-weight matching with unmatched nodes allowed.
    """
    left, right = _sides(graph)
    n = max(len(left), len(right))
    if n == 0 or graph.num_edges == 0:
        return Matching()

    right_index = {v: j for j, v in enumerate(right)}
    cost = [[0.0] * n for _ in range(n)]
    for i, u in enumerate(left):
        for v in graph.neighbors(u):
            cost[i][right_index[v]] = -graph.weight(u, v)

    # classic 1-indexed formulation with row/column potentials
    u_pot = [0.0] * (n + 1)
    v_pot = [0.0] * (n + 1)
    p = [0] * (n + 1)    # p[j] = row matched to column j (0 = free)
    way = [0] * (n + 1)  # way[j] = previous column on the alternating path

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [_INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = _INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u_pot[i0] - v_pot[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u_pot[p[j]] += delta
                    v_pot[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    result = Matching()
    for j in range(1, n + 1):
        i = p[j]
        if i == 0 or i - 1 >= len(left) or j - 1 >= len(right):
            continue
        u, v = left[i - 1], right[j - 1]
        if graph.has_edge(u, v):
            result.add(u, v)
    return result
