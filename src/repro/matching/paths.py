"""Augmenting-path utilities shared by algorithms, tests, and verifiers.

These routines enumerate alternating/augmenting paths explicitly.  Their cost
grows with ``Delta^ell`` — exactly the price the paper's generic (LOCAL-model)
algorithm pays — so they are used for the LOCAL algorithms, for small
reference computations, and for test oracles, while the CONGEST algorithms
use the counting/token machinery instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..graphs.graph import Graph
from .core import Matching

Path = Tuple[int, ...]


def canonical_path(path: Sequence[int]) -> Path:
    """Canonical orientation: the endpoint with smaller id comes first."""
    p = tuple(path)
    return p if p[0] <= p[-1] else tuple(reversed(p))


def enumerate_augmenting_paths(graph: Graph, matching: Matching,
                               max_len: int,
                               nodes: Optional[Iterable[int]] = None) -> List[Path]:
    """All simple augmenting paths with at most ``max_len`` edges.

    Each path is reported once, in canonical orientation.  ``nodes``
    restricts the search to paths fully contained in the given node set
    (used for local views); by default the whole graph is searched.
    """
    if max_len < 1:
        return []
    allowed: Optional[Set[int]] = set(nodes) if nodes is not None else None

    def ok(v: int) -> bool:
        return allowed is None or v in allowed

    found: Set[Path] = set()
    free = [v for v in graph.nodes if matching.is_free(v) and ok(v)]

    def extend(path: List[int], need_matched: bool) -> None:
        """DFS over alternating continuations of ``path``."""
        tail = path[-1]
        if need_matched:
            nxt = matching.mate(tail)
            if nxt is None or nxt in path or not ok(nxt):
                return
            if not graph.has_edge(tail, nxt):
                return
            path.append(nxt)
            extend(path, need_matched=False)
            path.pop()
        else:
            if len(path) + 1 > max_len + 1:
                return
            for nxt in graph.neighbors(tail):
                if nxt in path or not ok(nxt) or matching.contains_edge(tail, nxt):
                    continue
                path.append(nxt)
                if matching.is_free(nxt):
                    found.add(canonical_path(path))
                    # a free endpoint terminates the path; do not extend past it
                else:
                    if len(path) <= max_len:
                        extend(path, need_matched=True)
                path.pop()

    for s in free:
        extend([s], need_matched=False)
    return sorted(found)


def shortest_augmenting_path_length(graph: Graph, matching: Matching,
                                    max_len: Optional[int] = None) -> Optional[int]:
    """Length (in edges) of the shortest augmenting path, or ``None``.

    Uses iterative deepening over :func:`enumerate_augmenting_paths`; sound
    for general graphs (unlike naive alternating BFS, which blossoms break).
    """
    limit = max_len if max_len is not None else max(graph.num_nodes - 1, 1)
    for ell in range(1, limit + 1, 2):
        if enumerate_augmenting_paths(graph, matching, ell):
            return ell
    return None


def paths_conflict(p: Sequence[int], q: Sequence[int]) -> bool:
    """Two augmenting paths conflict iff they share a node (Definition 3.1)."""
    return not set(p).isdisjoint(q)


def maximal_disjoint_paths(paths: Sequence[Path],
                           order: Optional[Sequence[int]] = None) -> List[Path]:
    """A maximal set of pairwise node-disjoint paths, greedily.

    ``order`` optionally permutes the scan order (used to emulate random
    MIS choices in reference computations); by default paths are scanned in
    sorted order, which is deterministic.
    """
    indices = list(order) if order is not None else list(range(len(paths)))
    used: Set[int] = set()
    chosen: List[Path] = []
    for i in indices:
        p = paths[i]
        if used.isdisjoint(p):
            chosen.append(p)
            used.update(p)
    return chosen


def augment_all(matching: Matching, paths: Iterable[Sequence[int]]) -> int:
    """Augment ``matching`` along each (disjoint) path; returns how many."""
    count = 0
    for p in paths:
        matching.augment(p)
        count += 1
    return count


def enumerate_alternating_cycles(graph: Graph, matching: Matching,
                                 max_len: int) -> List[Path]:
    """All simple alternating cycles with at most ``max_len`` edges.

    A cycle is reported as a node tuple whose first node is its minimum and
    whose second node is the smaller of its two neighbors on the cycle
    (canonical form).  Cycles alternate matched / unmatched edges, so their
    length is even.  Used by the Hougardy-Vinkemeier weighted augmentation
    (Remark in Section 4), where swapping along a cycle can raise the weight.
    """
    cycles: Set[Path] = set()
    for start in graph.nodes:
        mate = matching.mate(start)
        if mate is None:
            continue

        # walk: start -[matched]- mate - ... - back to start via unmatched edge
        def walk(path: List[int], need_matched: bool) -> None:
            tail = path[-1]
            if need_matched:
                nxt = matching.mate(tail)
                if nxt is None or not graph.has_edge(tail, nxt):
                    return
                if nxt == path[0]:
                    return  # would close on a matched edge: not alternating
                if nxt in path:
                    return
                path.append(nxt)
                walk(path, need_matched=False)
                path.pop()
            else:
                for nxt in graph.neighbors(tail):
                    if matching.contains_edge(tail, nxt):
                        continue
                    if nxt == path[0] and len(path) >= 4 and len(path) <= max_len:
                        cyc = _canonical_cycle(path)
                        cycles.add(cyc)
                        continue
                    if nxt in path:
                        continue
                    if len(path) + 1 > max_len:
                        continue
                    path.append(nxt)
                    walk(path, need_matched=True)
                    path.pop()

        walk([start, mate], need_matched=False)
    return sorted(cycles)


def augmentation_gain(graph: Graph, matching: Matching,
                      edges: Iterable[Tuple[int, int]]) -> float:
    """w(M (+) S) - w(M) for an edge set S: unmatched weights in, matched out."""
    total = 0.0
    for u, v in edges:
        w = graph.weight(u, v)
        total += -w if matching.contains_edge(u, v) else w
    return total


def _path_edges(path: Sequence[int]) -> List[Tuple[int, int]]:
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def _valid_weighted_path(matching: Matching, path: Sequence[int]) -> bool:
    """Flipping an alternating path yields a matching iff each *unmatched*
    end edge has a free outer endpoint (matched end edges may simply drop)."""
    if len(path) < 2:
        return False
    first_matched = matching.contains_edge(path[0], path[1])
    last_matched = matching.contains_edge(path[-2], path[-1])
    if not first_matched and matching.is_matched(path[0]):
        return False
    if not last_matched and matching.is_matched(path[-1]):
        return False
    return True


def enumerate_weighted_augmentations(graph: Graph, matching: Matching,
                                     max_edges: int) -> List[Tuple[Path, str, float]]:
    """All positive-gain alternating paths and cycles with <= ``max_edges``.

    Returns ``(nodes, kind, gain)`` triples, ``kind`` in {"path", "cycle"},
    deduplicated in canonical form.  This is the augmentation family of the
    Hougardy-Vinkemeier (1-eps)-MWM adaptation sketched in the paper's
    Section 4 Remark; like the generic algorithm, its enumeration cost is
    exponential in ``max_edges`` (a LOCAL-model construct).
    """
    results: Dict[Tuple[Path, str], float] = {}

    # --- alternating paths -------------------------------------------------
    def extend(path: List[int], next_matched: bool) -> None:
        tail = path[-1]
        if next_matched:
            candidates = []
            mate = matching.mate(tail)
            if mate is not None and mate not in path and graph.has_edge(tail, mate):
                candidates = [mate]
        else:
            candidates = [u for u in graph.neighbors(tail)
                          if u not in path and not matching.contains_edge(tail, u)]
        for nxt in candidates:
            path.append(nxt)
            if _valid_weighted_path(matching, path):
                g = augmentation_gain(graph, matching, _path_edges(path))
                if g > 1e-12:
                    results.setdefault((canonical_path(path), "path"), g)
            if len(path) <= max_edges:
                extend(path, not next_matched)
            path.pop()

    for start in graph.nodes:
        # paths may begin with an unmatched or a matched edge
        extend([start], next_matched=False)
        mate = matching.mate(start)
        if mate is not None:
            extend([start], next_matched=True)

    # --- alternating cycles -------------------------------------------------
    for cyc in enumerate_alternating_cycles(graph, matching, max_edges):
        edges = list(zip(cyc, cyc[1:])) + [(cyc[-1], cyc[0])]
        g = augmentation_gain(graph, matching, edges)
        if g > 1e-12:
            results.setdefault((cyc, "cycle"), g)

    return sorted(
        ((nodes, kind, g) for (nodes, kind), g in results.items()),
        key=lambda item: (-item[2], item[0]),
    )


def augmentation_edge_set(nodes: Path, kind: str) -> List[Tuple[int, int]]:
    """The edge set of an enumerated weighted augmentation."""
    edges = [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]
    if kind == "cycle":
        edges.append((nodes[-1], nodes[0]))
    return edges


def _canonical_cycle(nodes: Sequence[int]) -> Path:
    """Rotate/reflect a cycle's node list into a canonical tuple."""
    n = len(nodes)
    best: Optional[Tuple[int, ...]] = None
    doubled = list(nodes) + list(nodes)
    for i in range(n):
        fwd = tuple(doubled[i:i + n])
        rev = tuple(reversed(fwd))
        for cand in (fwd, rev):
            if best is None or cand < best:
                best = cand
    assert best is not None
    return best
