"""The conflict graph of augmenting paths (Definition 3.1).

Nodes of ``C_M(ell)`` are the augmenting paths w.r.t. ``M`` of length at most
``ell``; two nodes are adjacent iff their paths share a physical node.  The
paper's generic algorithm (Algorithm 1) computes an MIS of this graph; its
Algorithm 2 builds it by flooding local views and assigning each path to the
endpoint with the smaller identifier as *leader*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..graphs.graph import Graph
from .core import Matching
from .paths import Path, enumerate_augmenting_paths


@dataclass
class ConflictGraph:
    """An explicit conflict graph ``C_M(ell)``.

    ``paths[i]`` is the augmenting path represented by conflict-graph node
    ``i``; ``adjacency[i]`` lists the conflict-graph neighbors of ``i``;
    ``leader[i]`` is the physical node that owns path ``i`` (its endpoint of
    smaller id, per Algorithm 2 step 3).
    """

    ell: int
    paths: List[Path]
    adjacency: List[List[int]]
    leader: List[int]
    _by_phys_node: Dict[int, List[int]] = field(default_factory=dict, repr=False)

    @property
    def num_nodes(self) -> int:
        return len(self.paths)

    def paths_through(self, phys_node: int) -> List[int]:
        """Conflict-graph nodes whose paths traverse the physical node."""
        return self._by_phys_node.get(phys_node, [])

    def as_graph(self) -> Graph:
        """The conflict graph as a plain :class:`Graph` (for running MIS)."""
        g = Graph()
        g.add_nodes(range(self.num_nodes))
        for i, nbrs in enumerate(self.adjacency):
            for j in nbrs:
                if i < j:
                    g.add_edge(i, j)
        return g

    def independent(self, selection: Sequence[int]) -> bool:
        """Check that the selected conflict-graph nodes are independent."""
        chosen = set(selection)
        return all(chosen.isdisjoint(self.adjacency[i]) for i in chosen)


def build_conflict_graph(graph: Graph, matching: Matching, ell: int) -> ConflictGraph:
    """Construct ``C_M(ell)`` explicitly (Definition 3.1).

    This is the reference construction used by the LOCAL-model algorithms and
    by tests; it is exponential in ``ell`` in the worst case, exactly like
    the local views the paper's Algorithm 2 floods.
    """
    paths = enumerate_augmenting_paths(graph, matching, ell)
    by_phys: Dict[int, List[int]] = {}
    for i, p in enumerate(paths):
        for v in p:
            by_phys.setdefault(v, []).append(i)
    adjacency: List[Set[int]] = [set() for _ in paths]
    for members in by_phys.values():
        for a in members:
            for b in members:
                if a != b:
                    adjacency[a].add(b)
    leaders = [min(p[0], p[-1]) for p in paths]
    return ConflictGraph(
        ell=ell,
        paths=paths,
        adjacency=[sorted(s) for s in adjacency],
        leader=leaders,
        _by_phys_node=by_phys,
    )
