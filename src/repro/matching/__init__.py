"""Matching core: the Matching type, paths, conflict graphs, verification."""

from .conflict import ConflictGraph, build_conflict_graph
from .core import Matching, MatchingError, matching_from_edges
from .cover import (
    DualityCertificate,
    duality_certificate,
    greedy_vertex_cover,
    is_vertex_cover,
    koenig_cover,
)
from .paths import (
    augment_all,
    canonical_path,
    enumerate_alternating_cycles,
    enumerate_augmenting_paths,
    maximal_disjoint_paths,
    paths_conflict,
    shortest_augmenting_path_length,
)
from .verify import (
    Certificate,
    certify,
    has_augmenting_path_shorter_than,
    is_maximal,
    verify_matching,
)

__all__ = [
    "ConflictGraph",
    "build_conflict_graph",
    "Matching",
    "MatchingError",
    "DualityCertificate",
    "duality_certificate",
    "greedy_vertex_cover",
    "is_vertex_cover",
    "koenig_cover",
    "matching_from_edges",
    "augment_all",
    "canonical_path",
    "enumerate_alternating_cycles",
    "enumerate_augmenting_paths",
    "maximal_disjoint_paths",
    "paths_conflict",
    "shortest_augmenting_path_length",
    "Certificate",
    "certify",
    "has_augmenting_path_shorter_than",
    "is_maximal",
    "verify_matching",
]
