"""Vertex covers and LP-duality certificates for matchings.

König's theorem makes bipartite optimality *checkable*: a vertex cover of
size |M| proves M is maximum without trusting the matcher that produced it.
:func:`koenig_cover` constructs the minimum cover from a maximum matching
(the alternating-reachability construction), and :func:`duality_certificate`
packages the check.  For general graphs a vertex cover still gives the
weak-duality bound |M*| <= |C|, so any cover certifies a ratio floor
``|M| / |C|`` — a verification tool the test suite uses to double-check the
exact matchers against an independent witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..graphs.graph import BipartiteGraph, Graph, GraphError
from .core import Matching


def is_vertex_cover(graph: Graph, cover: Set[int]) -> bool:
    """True iff every edge has at least one endpoint in ``cover``."""
    return all(u in cover or v in cover for u, v, _ in graph.edges())


def _sides(graph: Graph) -> Tuple[Set[int], Set[int]]:
    if isinstance(graph, BipartiteGraph):
        return set(graph.left), set(graph.right)
    split = graph.bipartition()
    if split is None:
        raise GraphError("König covers require a bipartite graph")
    return split


def koenig_cover(graph: Graph, matching: Matching) -> Set[int]:
    """The König vertex cover derived from a *maximum* bipartite matching.

    Construction: let Z be the nodes reachable from free left nodes by
    alternating paths (unmatched edges left-to-right, matched edges
    right-to-left); the cover is (L \\ Z) ∪ (R ∩ Z).  If ``matching`` is
    maximum, the result is a vertex cover with exactly ``matching.size``
    nodes; if not, the construction may fail to cover (callers can use that
    as a maximality test).
    """
    left, right = _sides(graph)
    reachable: Set[int] = {v for v in left if matching.is_free(v)}
    frontier: List[int] = sorted(reachable)
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            if u in left:
                for v in graph.neighbors(u):
                    if v not in reachable and not matching.contains_edge(u, v):
                        reachable.add(v)
                        nxt.append(v)
            else:
                mate = matching.mate(u)
                if mate is not None and mate not in reachable:
                    reachable.add(mate)
                    nxt.append(mate)
        frontier = nxt
    return (left - reachable) | (right & reachable)


@dataclass(frozen=True)
class DualityCertificate:
    """A matching/cover pair witnessing optimality or a ratio floor."""

    matching_size: int
    cover_size: int
    cover_valid: bool

    @property
    def proves_optimal(self) -> bool:
        """|M| = |C| with a valid cover: M is maximum, C is minimum."""
        return self.cover_valid and self.matching_size == self.cover_size

    @property
    def ratio_floor(self) -> Optional[float]:
        """|M| / |C| <= |M| / |M*|: a certified approximation floor."""
        if not self.cover_valid or self.cover_size == 0:
            return 1.0 if self.cover_valid else None
        return self.matching_size / self.cover_size


def duality_certificate(graph: Graph, matching: Matching,
                        cover: Optional[Set[int]] = None) -> DualityCertificate:
    """Certify a matching against a vertex cover (König's by default).

    With the default König cover this proves bipartite maximum matchings
    optimal; with any externally supplied cover it still certifies the
    ``|M| / |C|`` ratio floor by weak duality.
    """
    if cover is None:
        cover = koenig_cover(graph, matching)
    return DualityCertificate(
        matching_size=matching.size,
        cover_size=len(cover),
        cover_valid=is_vertex_cover(graph, cover),
    )


def greedy_vertex_cover(graph: Graph) -> Set[int]:
    """2-approximate cover (take both endpoints of a maximal matching).

    Works on general graphs; used to bound ratios where König does not
    apply.
    """
    cover: Set[int] = set()
    for u, v, _ in graph.edges():
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return cover
