"""A local computation algorithm (LCA) for maximal matching.

The paper's "More Related Work" section points out that distributed
algorithms transform into sublinear-time local algorithms [Parnas & Ron
2007], and that the matching LCAs of Mansour-Vardi and Even et al. build on
its techniques.  This module implements the transformation for the
Israeli-Itai baseline:

* a query ``edge_in_matching(u, v)`` is answered by *locally* simulating
  ``k`` Israeli-Itai iterations on the ball of radius ``3k + 1`` around the
  edge (each iteration consumes three communication rounds, so information
  travels at most three hops per iteration);
* all randomness is derived deterministically from ``(seed, node,
  iteration)``, so every query sees the same global execution — answers
  across queries are mutually consistent and jointly form the matching the
  full distributed run would output.

Probe complexity (adjacency-list accesses) is ``O(Delta^{3k+1})`` per query
— independent of n, the defining property of an LCA.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph


def _mix(seed: int, node: int, iteration: int) -> random.Random:
    """A deterministic, process-independent per-(node, iteration) stream."""
    value = (seed * 0x9E3779B97F4A7C15
             + node * 0x100000001B3
             + iteration * 0x1003F) & ((1 << 64) - 1)
    return random.Random(value)


def _simulate_ii(neighbors_of: Callable[[int], List[int]],
                 nodes: Set[int], iterations: int,
                 seed: int) -> Dict[int, Optional[int]]:
    """Deterministic-given-seed Israeli-Itai on an explicit node set.

    The decision of a node at iteration t depends only on its radius-3t
    ball, so running this on a large-enough ball reproduces the global
    execution exactly for the central nodes.
    """
    mate: Dict[int, Optional[int]] = {v: None for v in nodes}
    for t in range(1, iterations + 1):
        # propose: males pick a uniformly random free neighbor
        proposals: Dict[int, List[int]] = {}
        for v in sorted(nodes):
            if mate[v] is not None:
                continue
            rng = _mix(seed, v, t)
            male = rng.random() < 0.5
            free_nbrs = [u for u in neighbors_of(v)
                         if u in nodes and mate.get(u) is None]
            if male and free_nbrs:
                target = rng.choice(sorted(free_nbrs))
                proposals.setdefault(target, []).append(v)
        # accept: females pick one proposal (females = nodes that did not
        # propose this iteration; their rng stream replays identically)
        for v in sorted(nodes):
            if mate[v] is not None or v not in proposals:
                continue
            rng = _mix(seed, v, t)
            male = rng.random() < 0.5
            free_nbrs = [u for u in neighbors_of(v)
                         if u in nodes and mate.get(u) is None]
            if male and free_nbrs:
                rng.choice(sorted(free_nbrs))  # replay the male's own pick
                continue  # males do not accept
            senders = [s for s in sorted(proposals[v]) if mate.get(s) is None]
            if senders:
                chosen = rng.choice(senders)
                mate[v] = chosen
                mate[chosen] = v
    return mate


class MatchingOracle:
    """Consistent per-edge membership queries against a fixed matching.

    ``graph_access`` is the only way the oracle touches the graph; probes
    (adjacency-list accesses) are counted per query and in total.
    """

    def __init__(self, graph: Graph, seed: int = 0,
                 iterations: Optional[int] = None) -> None:
        self.graph = graph
        self.seed = seed
        if iterations is None:
            # O(log n) iterations suffice w.h.p. for II to become maximal
            n = max(2, graph.num_nodes)
            iterations = max(4, 2 * n.bit_length())
        self.iterations = iterations
        self.total_probes = 0
        self.last_query_probes = 0

    # -- graph access with probe counting -------------------------------
    def _neighbors(self, v: int) -> List[int]:
        self.total_probes += 1
        self.last_query_probes += 1
        return self.graph.neighbors(v)

    def _ball(self, u: int, v: int, radius: int) -> Set[int]:
        ball: Set[int] = {u, v}
        frontier = [u, v]
        for _ in range(radius):
            nxt = []
            for x in frontier:
                for y in self._neighbors(x):
                    if y not in ball:
                        ball.add(y)
                        nxt.append(y)
            frontier = nxt
            if not frontier:
                break
        return ball

    # -- queries ---------------------------------------------------------
    def edge_in_matching(self, u: int, v: int) -> bool:
        """Is edge (u, v) in the (fixed, implicitly defined) matching?"""
        if not self.graph.has_edge(u, v):
            raise ValueError(f"({u}, {v}) is not an edge of the graph")
        self.last_query_probes = 0
        radius = 3 * self.iterations + 1
        ball = self._ball(u, v, radius)
        mate = _simulate_ii(self._neighbors, ball, self.iterations, self.seed)
        return mate.get(u) == v

    def node_mate(self, v: int) -> Optional[int]:
        """The mate of ``v`` in the implicit matching (None if free)."""
        self.last_query_probes = 0
        radius = 3 * self.iterations + 1
        ball = self._ball(v, v, radius)
        mate = _simulate_ii(self._neighbors, ball, self.iterations, self.seed)
        return mate.get(v)

    def global_matching(self) -> Dict[int, Optional[int]]:
        """The full matching (reference: what all queries jointly describe)."""
        nodes = set(self.graph.nodes)
        return _simulate_ii(self.graph.neighbors, nodes, self.iterations,
                            self.seed)
