"""Local computation algorithm (LCA) extension: a matching oracle."""

from .oracle import MatchingOracle

__all__ = ["MatchingOracle"]
