"""Execution plans: one inspectable config for how a Network runs.

The engine grew four performance tiers (vectorized kernels inside shard
workers, in-process kernels, per-node shard workers, per-node dispatch)
plus a legacy reference engine, and historically five knobs steered them:
``engine=``, ``shards=``, ``REPRO_NO_KERNELS``, ``REPRO_SHARDS`` and
``REPRO_LEGACY_ENGINE``, with implicit precedence between them.  This
module replaces that ladder's *interface* with a single frozen config
object, :class:`ExecutionPlan`, accepted as ``Network(execution=...)``
and ``repro.run(execution=...)``:

>>> net = Network(g, execution=ExecutionPlan(tier="sharded-kernel", shards=4))
>>> net = Network(g, execution="node")            # tier name shorthand

``tier`` names the highest rung the run may use; resolution walks *down*
the ladder when a rung is ineligible (exactly like the historical silent
fallbacks).  The rungs, fastest first::

    compiled         numba-jitted RoundKernel hot path, single process
    sharded-kernel   RoundKernel array fast path inside shard workers
    kernel           RoundKernel fast path, single process
    sharded          per-node dispatch inside shard workers
    node             per-node dispatch, single process (the reference)
    legacy           the original per-message dict engine

The ``compiled`` rung engages only when numba is importable (the
``repro[compiled]`` extra), the selected kernel declares itself
``compiled_audited`` and ``REPRO_NO_COMPILED`` is unset; otherwise it
falls through silently, exactly like every rung before it.

``tier="auto"`` (the default) applies the auto rules: kernels whenever a
protocol registers one, sharding on top when requested or when the
network is large and the machine multi-core.  ``shards=None`` follows
the auto rules, ``shards=0`` is the kill switch (never shard — same
semantics as ``REPRO_SHARDS=0``), ``shards=k`` forces ``k`` workers.
``kernels=False`` excludes both kernel tiers.  ``env_overrides=False``
makes the plan ignore ``REPRO_NO_KERNELS``/``REPRO_SHARDS`` at run time
(``REPRO_LEGACY_ENGINE`` is a construction-time default and only affects
networks built without an explicit plan or engine).

The legacy ``engine=``/``shards=`` keywords still work as deprecation
shims: they normalize into a plan (:meth:`ExecutionPlan.from_legacy`)
and resolve to the same observable behavior, golden-pinned by
``tests/test_execution.py``.

:func:`resolve_execution` is the single resolution routine used by both
``Network.run`` and ``Network.explain_execution``; the latter collects a
human-readable reason chain explaining why each faster tier was or was
not selected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..observe.events import MESSAGE_DELIVERED

#: CONGEST's resolved tier names, fastest first (``"auto"`` is a plan
#: input, never a resolution result).  Kept as the historical name —
#: shims and goldens pin it — but plans are validated against
#: :data:`ALL_TIERS`, which also covers the per-model rungs of other
#: computation models.
TIERS = ("compiled", "sharded-kernel", "kernel", "sharded", "node", "legacy")

#: The MPC model's ladder, fastest first: whole-cluster array passes
#: over packed machine ledgers, then the per-machine reference path.
#: (``"node"`` is shared vocabulary: on every model it names the
#: single-process pure-python reference rung.)
MPC_TIERS = ("mpc_kernel", "node")

#: Every tier name any registered computation model can resolve to.  A
#: plan may name any of these; *which* of them a concrete run accepts is
#: the model's call (:meth:`~repro.models.base.ComputationModel.check_plan`).
ALL_TIERS = ("compiled", "sharded-kernel", "kernel", "sharded",
             "mpc_kernel", "node", "legacy")

#: The rungs each plan tier may resolve to, in preference order.  A tier
#: is a *ceiling with a sensible floor*: explicitly asking for a kernel
#: tier never silently spawns worker processes, and explicitly asking
#: for a sharded tier without kernels never re-enables them.
_LADDER: Dict[str, Tuple[str, ...]] = {
    "auto": ("compiled", "sharded-kernel", "kernel", "sharded", "node"),
    "compiled": ("compiled", "kernel", "node"),
    "sharded-kernel": ("sharded-kernel", "kernel", "sharded", "node"),
    "kernel": ("kernel", "node"),
    "sharded": ("sharded", "node"),
    "node": ("node",),
    "legacy": ("legacy",),
}

#: The per-model ladder walked by :meth:`MPCModel.resolve` (the MPC
#: analogue of :data:`_LADDER`; ``"auto"`` prefers the vectorized rung).
MPC_LADDER: Dict[str, Tuple[str, ...]] = {
    "auto": ("mpc_kernel", "node"),
    "mpc_kernel": ("mpc_kernel", "node"),
    "node": ("node",),
}


@dataclass(frozen=True)
class ExecutionPlan:
    """Frozen description of how protocols on a network should execute.

    ``tier`` — ``"auto"`` or one of :data:`TIERS`: the highest rung this
    plan allows (resolution falls down the ladder when a rung is
    ineligible for a given run).  ``shards`` — None follows the auto
    rules, ``0`` disables sharding entirely (the kwarg kill switch,
    mirroring ``REPRO_SHARDS=0``), ``k >= 1`` forces ``k`` workers.
    ``kernels`` — False excludes the kernel tiers.  ``env_overrides`` —
    False makes the plan ignore ``REPRO_NO_KERNELS`` and
    ``REPRO_SHARDS`` when the run resolves.
    """

    tier: str = "auto"
    shards: Optional[int] = None
    kernels: bool = True
    env_overrides: bool = True

    def __post_init__(self) -> None:
        if self.tier != "auto" and self.tier not in ALL_TIERS:
            raise ValueError(
                f"unknown execution tier {self.tier!r}; use 'auto' or one "
                f"of {', '.join(ALL_TIERS)}")
        if self.shards is not None and self.shards < 0:
            raise ValueError("shards must be >= 0 (0 disables sharding)")
        if self.shards and self.tier in ("compiled", "kernel", "mpc_kernel",
                                         "node", "legacy"):
            raise ValueError(
                f"tier {self.tier!r} never shards; drop shards= or pick "
                f"'auto', 'sharded-kernel' or 'sharded'")
        if not self.kernels and self.tier in ("compiled", "kernel",
                                              "sharded-kernel", "mpc_kernel"):
            raise ValueError(
                f"kernels=False contradicts tier {self.tier!r}")

    @classmethod
    def from_legacy(cls, engine: str,
                    shards: Optional[int]) -> "ExecutionPlan":
        """Normalize the deprecated ``engine=``/``shards=`` pair.

        ``engine`` must already be resolved (``default_engine()`` applies
        the ``REPRO_LEGACY_ENGINE`` construction-time default).  The
        mapping is golden-pinned: every legacy combination resolves to
        the same observable behavior it had before plans existed.
        """
        if engine not in ("csr", "legacy", "node", "sharded"):
            raise ValueError(f"unknown engine {engine!r}; "
                             f"use 'csr', 'legacy', 'node' or 'sharded'")
        if shards is not None and shards < 0:
            raise ValueError("shards must be >= 0 (0 disables sharding)")
        if shards is not None and engine in ("legacy", "node"):
            raise ValueError(f"shards= requires the 'csr' or 'sharded' "
                             f"engine, not {engine!r}")
        if engine == "legacy":
            return cls(tier="legacy")
        if engine == "node":
            return cls(tier="node")
        if engine == "sharded":
            return cls(tier="sharded-kernel", shards=shards)
        return cls(tier="auto", shards=shards)

    def engine_name(self) -> str:
        """The legacy engine vocabulary for this plan (delivery branch,
        ``Subnetwork`` inheritance and old callers read ``net.engine``)."""
        if self.tier == "legacy":
            return "legacy"
        if self.tier == "node":
            return "node"
        if self.tier in ("sharded", "sharded-kernel"):
            return "sharded"
        return "csr"


@dataclass
class ExecutionDecision:
    """The outcome of resolving a plan for one concrete run.

    ``tier`` is the selected rung (one of :data:`TIERS`); ``shards`` is
    the worker count for the sharded tiers (None otherwise);
    ``reasons`` is the human-readable chain (populated by
    ``Network.explain_execution``, empty on hot-path resolutions).
    ``kernel``/``kernel_cls`` carry the selected kernel for the kernel
    tiers (consumed by ``Network.run``).
    """

    tier: str
    shards: Optional[int] = None
    reasons: Tuple[str, ...] = ()
    kernel: Any = field(default=None, repr=False, compare=False)
    kernel_cls: Any = field(default=None, repr=False, compare=False)

    def explain(self) -> str:
        """The reason chain as one printable block."""
        lines = [f"resolved tier: {self.tier}"
                 + (f" ({self.shards} shard(s))" if self.shards else "")]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


def resolve_execution(net: Any, factory: Any = None,
                      shared: Optional[Dict[str, Any]] = None,
                      collect: bool = False,
                      skip_sharding: bool = False) -> ExecutionDecision:
    """Resolve ``net``'s plan for one run of ``factory``.

    The single source of truth behind ``Network.run``'s dispatch and
    ``Network.explain_execution``'s report.  ``collect=True`` records a
    reason per considered rung; ``skip_sharding=True`` restricts the
    ladder to single-process rungs (the ``_select_kernel`` compat shim).
    """
    plan: ExecutionPlan = net.execution_plan
    reasons: List[str] = []

    def say(msg: str) -> None:
        if collect:
            reasons.append(msg)

    model_name = getattr(getattr(net, "model", None), "name", "congest")
    say(f"model '{model_name}': resolving plan tier '{plan.tier}' on the "
        f"CONGEST execution ladder ({' > '.join(TIERS)})")

    def done(tier: str, shards: Optional[int] = None,
             kernel: Any = None, kernel_cls: Any = None,
             ) -> ExecutionDecision:
        return ExecutionDecision(tier=tier, shards=shards,
                                 reasons=tuple(reasons), kernel=kernel,
                                 kernel_cls=kernel_cls)

    if plan.tier == "legacy" or net.engine == "legacy":
        say("tier 'legacy': selected — "
            + ("pinned by the plan" if plan.tier == "legacy"
               else "REPRO_LEGACY_ENGINE was set when the network was "
                    "built (engine='legacy')"))
        return done("legacy")
    if plan.tier == "node":
        say("tier 'node': selected — pinned by the plan (engine='node' "
            "keeps batched delivery but forces per-node dispatch)")
        return done("node")

    ladder = _LADDER[plan.tier]
    if skip_sharding:
        ladder = tuple(t for t in ladder
                       if t not in ("sharded", "sharded-kernel"))

    from ..congest import compiled as _compiled
    from ..congest import kernels as _kernels
    from ..congest.policies import BandwidthPolicy

    # The numpy probe decides which branch every kernel tier runs; report
    # it up front so a fallthrough is diagnosable without running.
    if _kernels._np is not None:
        say("numpy probe: available — eligible kernels run their "
            "vectorized branch")
    else:
        say("numpy probe: unavailable — eligible kernels run the "
            "pure-python fallback")

    # -- kernel availability (both kernel tiers) ------------------------
    kernels_on = plan.kernels
    kernels_off_why = None
    if not kernels_on:
        kernels_off_why = "the plan excludes kernels (kernels=False)"
    elif plan.env_overrides and not _kernels.kernels_enabled():
        kernels_on = False
        kernels_off_why = f"{_kernels.NO_KERNELS_ENV} disables kernels"

    kernel_cls = _kernels.kernel_for(factory) if factory is not None else None

    # -- gates shared by every fast tier --------------------------------
    base_why = None
    if net._fault_rng is not None:
        base_why = "fault injection needs real per-node inboxes"
    elif type(net.policy) is not BandwidthPolicy:
        base_why = ("the bandwidth policy is a subclass and may price "
                    "per edge")
    elif net.bus is not None and net.bus.wants(MESSAGE_DELIVERED):
        base_why = "a per-message observer is subscribed"

    kernel = None
    kernel_why = kernels_off_why or base_why
    if kernel_why is None:
        if factory is None:
            kernel_why = "no node factory was given to look up a kernel for"
        elif kernel_cls is None:
            name = getattr(factory, "__name__", None) or repr(factory)
            kernel_why = (f"no RoundKernel is registered for {name} "
                          f"(exact class match required)")
        else:
            kernel = kernel_cls(net)
            if not kernel.accepts():
                kernel = None
                kernel_why = (f"{kernel_cls.__name__}.accepts() vetoed "
                              f"this run")

    # -- compiled eligibility (sits on top of the kernel gates) ---------
    compiled_why = kernel_why
    if compiled_why is None:
        if plan.env_overrides and not _compiled.compiled_enabled():
            compiled_why = (f"{_compiled.NO_COMPILED_ENV} disables the "
                            f"compiled tier")
        else:
            compiled_why = _compiled.unavailable_reason()
    if compiled_why is None:
        if getattr(net, "_rng_additive", False):
            compiled_why = ("REPRO_ADDITIVE_NODE_RNG pins the legacy "
                            "additive rng streams")
        elif not getattr(kernel_cls, "compiled_audited", False):
            compiled_why = (f"{kernel_cls.__name__} is not compiled-audited")
        else:
            compiled_why = kernel.compiled_why(dict(shared) if shared else {})

    # -- shard eligibility (both sharded tiers) -------------------------
    k = None
    shard_why = base_why
    if shard_why is None and not skip_sharding:
        from ..congest import sharding as _sharding

        k = _sharding.resolve_shards(net)
        n = net.graph.num_nodes
        if k is None:
            shard_why = ("no shard count resolved (not requested, and "
                         "the auto rules did not fire — they need "
                         f">= {_sharding.AUTO_SHARD_MIN_NODES} nodes and "
                         f">= 2 cores, with no kill switch set)")
        elif kernel_cls is None:
            name = (getattr(factory, "__name__", None) or repr(factory)
                    if factory is not None else "this run")
            shard_why = (f"shard safety is declared on a registered "
                         f"RoundKernel, and {name} has none")
        elif not getattr(kernel_cls, "shardable", False):
            shard_why = (f"{kernel_cls.__name__} does not declare "
                         f"shardable=True (its node program is not "
                         f"audited for multi-process execution)")
        elif shared and any(callable(v) for v in shared.values()):
            shard_why = ("shared values include callables, which cannot "
                         "cross process boundaries")
        elif n == 0:
            shard_why = "the graph is empty"
        if shard_why is not None:
            k = None
        else:
            k = min(k, n)

    # -- walk the ladder ------------------------------------------------
    for rung in ladder:
        if rung == "compiled":
            if compiled_why is None:
                say(f"tier 'compiled': selected — {kernel_cls.__name__} "
                    f"runs numba-jitted over packed state")
                return done("compiled", kernel=kernel, kernel_cls=kernel_cls)
            say(f"tier 'compiled': skipped — {compiled_why}")
        elif rung == "sharded-kernel":
            if k is not None and kernel is not None \
                    and getattr(kernel_cls, "shard_words", 0) > 0:
                say(f"tier 'sharded-kernel': selected — "
                    f"{kernel_cls.__name__} runs inside {k} shard "
                    f"worker(s)")
                return done("sharded-kernel", shards=k, kernel=kernel,
                            kernel_cls=kernel_cls)
            why = shard_why or kernel_why
            if why is None:
                why = (f"{kernel_cls.__name__} has no shard hooks "
                       f"(shard_words == 0)")
            say(f"tier 'sharded-kernel': skipped — {why}")
        elif rung == "kernel":
            if kernel is not None:
                say(f"tier 'kernel': selected — {kernel_cls.__name__} "
                    f"runs in-process")
                return done("kernel", kernel=kernel, kernel_cls=kernel_cls)
            say(f"tier 'kernel': skipped — {kernel_why}")
        elif rung == "sharded":
            if k is not None:
                say(f"tier 'sharded': selected — per-node dispatch "
                    f"inside {k} shard worker(s)")
                return done("sharded", shards=k, kernel_cls=kernel_cls)
            say(f"tier 'sharded': skipped — {shard_why}")
        else:  # node
            say("tier 'node': selected — the per-node reference path")
            return done("node")
    # unreachable for well-formed plans ("node" ends every fast ladder),
    # but the skip_sharding shim can exhaust a sharded-only ladder
    say("tier 'node': selected — every faster rung was skipped")
    return done("node")
