"""The computation-model seam: what a model contributes to the runtime.

The shared runtime (:mod:`repro.runtime`, :mod:`repro.observe`) is
model-agnostic: :class:`~repro.runtime.driver.PhaseDriver` only needs an
executor with ``.wants`` / ``.emit`` / ``.metrics``, and
:class:`~repro.runtime.metrics.Metrics` ledgers costs without caring
whether a "round" is a CONGEST message round or an MPC superstep.  What
*does* differ between models is captured here, per
:class:`ComputationModel`:

* the **loop unit** the model charges per iteration (CONGEST rounds vs
  MPC supersteps — both land in ``Metrics.rounds`` so cross-model tables
  stay comparable, but the unit is named in explanations),
* which **execution tiers** of :mod:`repro.models.execution` the model
  can run on — each model owns its *own* ladder (CONGEST the full
  six-rung one, MPC the two-rung ``mpc_kernel`` > ``node``) and rejects
  foreign rungs outright instead of silently demoting them, and
* how a plan **resolves** for one run (:meth:`ComputationModel.resolve`),
  which is what ``explain_execution()`` reports — reason chains always
  open by naming the model.

Models register themselves in :data:`MODELS`; ``get_model("mpc")`` is
how the CLI and API look them up.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .execution import (
    ExecutionDecision,
    ExecutionPlan,
    MPC_LADDER,
    MPC_TIERS,
    TIERS,
    resolve_execution,
)

__all__ = [
    "MODELS",
    "ComputationModel",
    "CongestModel",
    "MPCModel",
    "ModelExecutionError",
    "CONGEST_MODEL",
    "MPC_MODEL",
    "get_model",
]


class ModelExecutionError(ValueError):
    """A plan asked a computation model for a tier it cannot execute."""


class ComputationModel:
    """One computation model's contract with the shared runtime.

    ``name`` identifies the model in reason chains and registries;
    ``loop_unit`` names what one ``Metrics.record_round`` charge means
    under this model; ``tiers`` lists the execution rungs the model can
    resolve to (``"auto"`` is always accepted as a plan input).
    """

    name: str = "abstract"
    loop_unit: str = "round"
    tiers: Tuple[str, ...] = ()

    def check_plan(self, plan: ExecutionPlan) -> None:
        """Raise :class:`ModelExecutionError` if ``plan`` names a tier
        this model cannot execute.  ``tier="auto"`` always passes."""
        if plan.tier != "auto" and plan.tier not in self.tiers:
            raise ModelExecutionError(
                f"model '{self.name}' cannot execute tier '{plan.tier}': "
                f"{self._reject_reason(plan.tier)}")

    def _reject_reason(self, tier: str) -> str:
        return f"this model only runs on {', '.join(self.tiers)}"

    def resolve(self, executor: Any, factory: Any = None,
                shared: Optional[Dict[str, Any]] = None,
                collect: bool = False) -> ExecutionDecision:
        """Resolve ``executor``'s plan for one run (model-specific)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComputationModel {self.name!r}>"


class CongestModel(ComputationModel):
    """Synchronous CONGEST message passing on the six-rung ladder."""

    name = "congest"
    loop_unit = "round"
    tiers = TIERS  # every rung, "compiled" down to "legacy"

    def resolve(self, executor: Any, factory: Any = None,
                shared: Optional[Dict[str, Any]] = None,
                collect: bool = False) -> ExecutionDecision:
        return resolve_execution(executor, factory, shared, collect=collect)


class MPCModel(ComputationModel):
    """Simulated Massively Parallel Computation: supersteps over machines
    with ``S = ceil(n**alpha)`` words each.

    MPC owns a two-rung ladder of its own: ``mpc_kernel`` (whole-cluster
    array passes over packed machine ledgers, numpy-backed) falling
    through to ``node`` (the per-machine pure-python reference).  The
    compiled/kernel/shard rungs are CONGEST engine internals (vectorized
    round kernels, forked per-node workers); asking an MPC run for one of
    those raises :class:`ModelExecutionError` instead of silently falling
    down a foreign ladder.
    """

    name = "mpc"
    loop_unit = "superstep"
    tiers = MPC_TIERS

    def _reject_reason(self, tier: str) -> str:
        return ("the compiled, kernel and shard tiers are CONGEST engine "
                "rungs (jitted/vectorized round kernels, forked per-node "
                "workers); MPC supersteps execute on simulated machines "
                "with per-machine memory caps — use execution='auto', "
                "'mpc_kernel' or 'node'")

    def resolve(self, executor: Any, factory: Any = None,
                shared: Optional[Dict[str, Any]] = None,
                collect: bool = False) -> ExecutionDecision:
        plan: ExecutionPlan = executor.execution_plan
        self.check_plan(plan)
        from ..mpc import kernel as _mpc_kernel

        reasons: list = []

        def say(msg: str) -> None:
            if collect:
                reasons.append(msg)

        say(f"model 'mpc': resolving plan tier '{plan.tier}' on the MPC "
            f"execution ladder ({' > '.join(MPC_TIERS)})")
        vector_why = _mpc_kernel.unavailable_reason(
            plan, getattr(executor, "graph", None))
        for rung in MPC_LADDER[plan.tier]:
            if rung == "mpc_kernel":
                if vector_why is None:
                    say("tier 'mpc_kernel': selected — supersteps run as "
                        "whole-cluster array passes over packed machine "
                        "ledgers (numpy), budget-exact against the node "
                        "tier")
                    return ExecutionDecision(tier="mpc_kernel",
                                             reasons=tuple(reasons))
                say(f"tier 'mpc_kernel': skipped — {vector_why}")
            else:  # node ends every MPC ladder
                say("tier 'node': selected — supersteps execute in-process "
                    "on simulated machines (per-machine memory guard "
                    f"S = {getattr(executor, 'machine_words', '?')} words, "
                    f"{getattr(executor, 'num_machines', '?')} machine(s))")
                return ExecutionDecision(tier="node", reasons=tuple(reasons))
        raise AssertionError("unreachable: 'node' ends every MPC ladder")


CONGEST_MODEL = CongestModel()
MPC_MODEL = MPCModel()

#: Registry of computation models by name.
MODELS: Dict[str, ComputationModel] = {
    CONGEST_MODEL.name: CONGEST_MODEL,
    MPC_MODEL.name: MPC_MODEL,
}


def get_model(name: str) -> ComputationModel:
    """Look up a registered computation model by name."""
    try:
        return MODELS[name]
    except KeyError:
        raise ValueError(f"unknown computation model {name!r}; "
                         f"registered: {', '.join(sorted(MODELS))}") from None
