"""Computation models and execution-plan resolution.

:mod:`repro.models.execution` holds the model-agnostic plan objects
(:class:`ExecutionPlan`, :class:`ExecutionDecision`, the tier ladder)
hoisted out of ``repro.congest.execution`` (which remains a
golden-pinned shim).  :mod:`repro.models.base` defines the
:class:`ComputationModel` seam and the two registered models:
``congest`` (synchronous message passing on the six-rung engine
ladder) and ``mpc`` (simulated machines with per-machine memory caps).
"""

from .base import (
    CONGEST_MODEL,
    MODELS,
    MPC_MODEL,
    ComputationModel,
    CongestModel,
    ModelExecutionError,
    MPCModel,
    get_model,
)
from .execution import (
    ALL_TIERS,
    MPC_TIERS,
    TIERS,
    ExecutionDecision,
    ExecutionPlan,
    resolve_execution,
)

__all__ = [
    "ALL_TIERS",
    "CONGEST_MODEL",
    "MODELS",
    "MPC_MODEL",
    "MPC_TIERS",
    "ComputationModel",
    "CongestModel",
    "ExecutionDecision",
    "ExecutionPlan",
    "MPCModel",
    "ModelExecutionError",
    "TIERS",
    "get_model",
    "resolve_execution",
]
