"""Simulated MPC computation model: sublinear memory per machine.

The second computation model on the :mod:`repro.models` seam (ROADMAP
item 1): machines with a hard ``S = ceil(n**alpha)``-word budget
(:class:`MPCCluster`, :class:`MemoryExceeded`) and a Ghaffari–Uitto-
style maximal matching driver (:func:`mpc_maximal`) built on the shared
:class:`~repro.runtime.driver.PhaseDriver`, so ``observe=``/``trace=``/
``profile=`` work exactly as they do for CONGEST runs.  Entry points:
``repro.run("mpc_maximal", g, alpha=0.5)`` and ``python -m repro mpc``.

The model owns a two-rung execution ladder: :mod:`repro.mpc.kernel`
(the ``mpc_kernel`` tier — whole-cluster numpy array passes with a
budget-exact array ledger) falling through to the per-machine python
loops (the ``node`` tier).  Both rungs are golden-equivalent.
"""

from . import kernel
from .cluster import (
    BASE_WORDS,
    MIN_MACHINE_WORDS,
    MemoryExceeded,
    MPCCluster,
    MPCMachine,
    machine_words,
)
from .matching import MPCMatchingResult, mpc_maximal

__all__ = [
    "BASE_WORDS",
    "MIN_MACHINE_WORDS",
    "kernel",
    "MPCCluster",
    "MPCMachine",
    "MPCMatchingResult",
    "MemoryExceeded",
    "machine_words",
    "mpc_maximal",
]
