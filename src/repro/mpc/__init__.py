"""Simulated MPC computation model: sublinear memory per machine.

The second computation model on the :mod:`repro.models` seam (ROADMAP
item 1): machines with a hard ``S = ceil(n**alpha)``-word budget
(:class:`MPCCluster`, :class:`MemoryExceeded`) and a Ghaffari–Uitto-
style maximal matching driver (:func:`mpc_maximal`) built on the shared
:class:`~repro.runtime.driver.PhaseDriver`, so ``observe=``/``trace=``/
``profile=`` work exactly as they do for CONGEST runs.  Entry points:
``repro.run("mpc_maximal", g, alpha=0.5)`` and ``python -m repro mpc``.
"""

from .cluster import (
    BASE_WORDS,
    MIN_MACHINE_WORDS,
    MemoryExceeded,
    MPCCluster,
    MPCMachine,
    machine_words,
)
from .matching import MPCMatchingResult, mpc_maximal

__all__ = [
    "BASE_WORDS",
    "MIN_MACHINE_WORDS",
    "MPCCluster",
    "MPCMachine",
    "MPCMatchingResult",
    "MemoryExceeded",
    "machine_words",
    "mpc_maximal",
]
