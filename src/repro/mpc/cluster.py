"""Simulated MPC cluster: machines as word ledgers with a hard cap.

The Massively Parallel Computation model gives each of ``M`` machines
``S = ceil(n**alpha)`` words of memory; per superstep every machine does
unbounded local computation and then exchanges messages, subject to its
words-in and words-out both fitting in ``S``.  This module simulates
exactly the *resource envelope* of that model — which machine holds
which words, and how many — while the algorithm's logic runs in-process
(the same way :class:`~repro.congest.network.Network` simulates CONGEST
rounds without real sockets).

:class:`MPCMachine` is a resident/peak word ledger.  Every allocation
goes through :meth:`MPCMachine.charge`, which raises
:class:`MemoryExceeded` the moment resident words would pass ``S`` — a
hard guard, not an after-the-fact report.  The cluster-wide high-water
mark lands in the :class:`~repro.runtime.metrics.Metrics` memory account
(``memory_peak_words`` / ``memory_limit_words`` / ``memory_machines``)
so ``repro.run("mpc_maximal", ...)`` surfaces it like any other cost.

:class:`MPCCluster` exposes the same executor surface
(``wants``/``emit``/``metrics``/``explain_execution``) the shared
:class:`~repro.runtime.driver.PhaseDriver` needs, so MPC drivers reuse
the phase/trace/profile machinery unchanged.  Supersteps are charged
through :meth:`MPCCluster.superstep` and land in ``Metrics.rounds`` (the
model's :attr:`~repro.models.base.MPCModel.loop_unit` is "superstep").
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..models.base import MPC_MODEL, ModelExecutionError
from ..models.execution import ExecutionDecision, ExecutionPlan
from ..observe.events import (
    ROUND_END,
    ROUND_START,
    Event,
    EventBus,
    RoundEnd,
    RoundStart,
    ambient_bus,
)
from ..runtime.metrics import Metrics

__all__ = [
    "BASE_WORDS",
    "MIN_MACHINE_WORDS",
    "MemoryExceeded",
    "MPCCluster",
    "MPCMachine",
    "machine_words",
]

#: Per-machine bookkeeping state (program counter, superstep counter):
#: resident on every machine before any graph data arrives.
BASE_WORDS = 2

#: The smallest cap any cluster can run with.  The resident half needs
#: base state plus one edge record and one vertex record (2 words each);
#: the working half needs one sampled edge (2 words), its two
#: ball-growing label slots (4 words), and its acceptance word — 7 words,
#: rounded to 8.  A plan with ``S = ceil(n**alpha) < MIN_MACHINE_WORDS``
#: *provably* trips the guard: the construction-time distribution of
#: input words cannot fit even at one record per machine.
MIN_MACHINE_WORDS = 16


def machine_words(n: int, alpha: float) -> int:
    """The per-machine budget ``S = ceil(n**alpha)`` words."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
    return max(1, math.ceil(max(n, 1) ** alpha))


class MemoryExceeded(RuntimeError):
    """A simulated machine needed more than its ``S``-word budget.

    Carries the offending machine, the words it would have held, the cap,
    and the phase that allocated — so the failure is diagnosable and the
    α-floor is testable.
    """

    def __init__(self, machine: int, needed: int, limit: int,
                 phase: str) -> None:
        self.machine = machine
        self.needed = needed
        self.limit = limit
        self.phase = phase
        super().__init__(
            f"machine {machine} needs {needed} words during '{phase}' but "
            f"the MPC cap is S={limit} words/machine; raise alpha (or use "
            f"a model without sublinear memory)")


class MPCMachine:
    """One simulated machine: a resident-word ledger with a hard cap."""

    __slots__ = ("index", "limit", "resident", "peak")

    def __init__(self, index: int, limit: int) -> None:
        self.index = index
        self.limit = limit
        self.resident = 0
        self.peak = 0

    def charge(self, words: int, phase: str) -> None:
        """Allocate ``words`` on this machine; raise when over budget."""
        new = self.resident + words
        if new > self.limit:
            raise MemoryExceeded(self.index, new, self.limit, phase)
        self.resident = new
        if new > self.peak:
            self.peak = new

    def release(self, words: int) -> None:
        """Free ``words`` (peaks are sticky; resident never goes negative)."""
        self.resident = max(0, self.resident - words)


class MPCCluster:
    """A fleet of :class:`MPCMachine` ledgers plus the executor surface
    (``wants``/``emit``/``metrics``) the shared runtime drivers need.

    ``alpha`` sets the per-machine budget ``S = ceil(n**alpha)`` words;
    the constructor distributes the input (2 words per edge record,
    2 words per vertex record, round-robin) across the fewest machines
    that keep every resident ledger within its *resident half* of ``S``
    — the other half stays free as working headroom for the driver's
    per-superstep allocations.  Distribution itself goes through
    :meth:`MPCMachine.charge`, so an ``alpha`` below the floor trips
    :class:`MemoryExceeded` at construction, provably.

    ``observe=`` takes the same shapes as ``Network(observe=...)`` (a
    bus, one observer, or a list) and falls back to the ambient
    ``observing(...)`` bus.  ``execution=`` accepts an
    :class:`~repro.models.execution.ExecutionPlan` or tier name and is
    validated against the MPC model's own ladder (``mpc_kernel`` >
    ``node``); the compiled/kernel/shard tiers are CONGEST engine rungs
    and raise :class:`~repro.models.base.ModelExecutionError`.
    """

    def __init__(self, graph: Any, alpha: float = 0.5, seed: int = 0,
                 observe: Any = None, execution: Any = None) -> None:
        self.graph = graph
        self.alpha = alpha
        self.seed = seed
        self.model = MPC_MODEL
        self.metrics = Metrics()

        if execution is None:
            plan = ExecutionPlan()
        elif isinstance(execution, str):
            plan = ExecutionPlan(tier=execution)
        elif isinstance(execution, ExecutionPlan):
            plan = execution
        else:
            raise TypeError(
                f"execution= wants an ExecutionPlan or a tier name, "
                f"got {type(execution).__name__}")
        self.model.check_plan(plan)  # fail fast on foreign (CONGEST) rungs
        self.execution_plan = plan

        # observability mirrors Network: explicit observe= wins, else the
        # ambient bus of an enclosing `observing(...)` context
        self.bus: Optional[EventBus] = None
        if observe is not None:
            if isinstance(observe, EventBus):
                self.bus = observe
            else:
                self.bus = EventBus()
                observers = (observe if isinstance(observe, (list, tuple))
                             else (observe,))
                for observer in observers:
                    self.bus.subscribe(observer)
        else:
            self.bus = ambient_bus()

        n = graph.num_nodes
        self.machine_words = machine_words(n, alpha)
        if self.machine_words < MIN_MACHINE_WORDS:
            # the floor is not an arbitrary cutoff: distributing even one
            # edge + one vertex record with working headroom needs this
            # many words, so report it as the guard violation it is
            raise MemoryExceeded(0, MIN_MACHINE_WORDS, self.machine_words,
                                 "input distribution")
        #: working headroom reserved on every machine for per-superstep
        #: allocations (samples, ball-growing labels, acceptance words);
        #: the driver budgets its per-iteration working sets against this
        self.working_budget = max(8, self.machine_words // 4)
        resident_budget = self.machine_words - self.working_budget

        # fewest machines whose round-robin input shares fit the resident
        # budget (2 words per edge record, 2 per vertex record, half the
        # post-base budget for each kind)
        m = graph.num_edges
        per = max(6, resident_budget - BASE_WORDS)
        self.num_machines = max(
            2,
            math.ceil(2 * m / (per / 2)) if m else 2,
            math.ceil(2 * n / (per / 2)) if n else 2,
        )
        cap = 4 * (n + m) + 8
        while (BASE_WORDS + 2 * math.ceil(m / self.num_machines)
               + 2 * math.ceil(n / self.num_machines)) > resident_budget:
            self.num_machines *= 2  # pragma: no cover - sizing slack
            if self.num_machines > cap:  # pragma: no cover - unreachable
                raise MemoryExceeded(0, BASE_WORDS + 4,
                                     self.machine_words,
                                     "input distribution")

        self.machines: List[MPCMachine] = [
            MPCMachine(i, self.machine_words)
            for i in range(self.num_machines)
        ]
        for mach in self.machines:
            mach.charge(BASE_WORDS, "base state")

        #: bits per machine word in message accounting: enough for one
        #: vertex id (ids are the only payload the drivers ship)
        self.word_bits = max(1, (max(n, 2) - 1).bit_length())
        self._superstep_counter = 0

    # -- executor surface shared with Network ---------------------------
    def wants(self, kind: Any) -> bool:
        """True iff an observer is interested in ``kind``."""
        bus = self.bus
        return bus is not None and bus.wants(kind)

    def emit(self, event: Event) -> None:
        """Publish a driver-level event on the bus (no-op unobserved)."""
        bus = self.bus
        if bus is not None:
            bus.emit(event)

    def observer_for(self, kind: Any):
        """``bus.emit`` when someone listens for ``kind``, else None."""
        bus = self.bus
        if bus is not None and bus.wants(kind):
            return bus.emit
        return None

    def explain_execution(self, factory: Any = None,
                          shared: Optional[Dict[str, Any]] = None,
                          ) -> ExecutionDecision:
        """How this cluster's plan resolves on the MPC ladder
        (``mpc_kernel`` > ``node``); the reason chain names the model
        and only MPC rungs, mirroring ``Network.explain_execution``."""
        return self.model.resolve(self, factory, shared, collect=True)

    # -- superstep/memory accounting ------------------------------------
    def superstep(self, protocol: str, count: int = 1,
                  messages: int = 0, words: int = 0) -> None:
        """Charge ``count`` supersteps (and the traffic they carried).

        Supersteps land in ``Metrics.rounds`` — the MPC model's loop
        unit — so cross-model round/superstep tables line up; traffic is
        priced at :attr:`word_bits` bits per word.
        """
        observed = self.wants(ROUND_START) or self.wants(ROUND_END)
        total_bits = words * self.word_bits
        if messages:
            self.metrics.record_message_batch(messages, total_bits,
                                              self.word_bits)
        for step in range(count):
            self._superstep_counter += 1
            if observed:
                self.emit(RoundStart(protocol=protocol,
                                     round=self._superstep_counter))
            self.metrics.record_round(protocol)
            if observed:
                # traffic rides the first step; padded steps are quiet
                self.emit(RoundEnd(protocol=protocol,
                                   round=self._superstep_counter,
                                   messages=messages if step == 0 else 0,
                                   bits=total_bits if step == 0 else 0))

    def record_peaks(self) -> None:
        """Fold the cluster-wide peak into the Metrics memory account."""
        peak = max((mach.peak for mach in self.machines), default=0)
        self.metrics.record_memory(peak, self.machine_words,
                                   self.num_machines)

    @property
    def peak_words(self) -> int:
        """Cluster-wide high-water mark of resident words on any machine."""
        return max((mach.peak for mach in self.machines), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MPCCluster n={self.graph.num_nodes} "
                f"alpha={self.alpha:g} S={self.machine_words}w "
                f"machines={self.num_machines}>")
