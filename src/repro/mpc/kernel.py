"""Vectorized MPC execution tier: whole-cluster array supersteps.

The ``mpc_kernel`` rung of the MPC model's ladder packs the cluster's
per-machine state — the resident/working word ledgers, the alive-edge
set, the sampled-edge working sets and the ball-growing pointer arrays —
into flat numpy arrays and executes each phase of the Ghaffari–Uitto
driver (:mod:`repro.mpc.matching`) as whole-cluster array operations:

* **priorities** — the deterministic splitmix64 chain of
  :func:`repro.dist.random_tools.spawn_seed` replayed bit-for-bit over
  ``uint64`` arrays (:func:`vec_splitmix64`), so the vectorized sample
  is the *same* sample the per-machine python loops pick;
* **sparsify** — per-machine lowest-``q`` selection via one lexsort and
  a grouped rank, instead of a python sort per machine;
* **ball growing** — pointer jumping as repeated fancy indexing over a
  compacted parent array;
* **local MIS** — the mutual-minima test as two array lookups;
* **integrate** — dead-edge elimination as a boolean mask reduction.

The memory guard stays **budget-exact**: :class:`VectorLedger` charges
and releases the *identical* word counts per machine per superstep that
the node tier's per-record :meth:`~repro.mpc.cluster.MPCMachine.charge`
calls make.  Because every charge within one phase is monotone (releases
only happen in ``integrate``), per-phase aggregation preserves both the
cluster peak and the guard condition; when an aggregate charge would
cross the cap, the ledger replays that phase's charges in node order so
:class:`~repro.mpc.cluster.MemoryExceeded` carries the bit-identical
``(machine, needed, limit, phase)`` at the same superstep.

numpy is optional at the package level: :func:`unavailable_reason`
reports why the tier cannot run (no numpy, ``kernels=False`` plans, the
``REPRO_NO_KERNELS`` kill switch, non-integer node ids) and
:meth:`~repro.models.base.MPCModel.resolve` surfaces that reason before
falling through to the ``node`` rung.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from ..dist.random_tools import _MASK64, _fold, _splitmix64
from .cluster import MemoryExceeded, MPCCluster

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-free host
    _np = None

__all__ = [
    "NO_KERNELS_ENV",
    "VectorLedger",
    "VectorPasses",
    "unavailable_reason",
    "vec_splitmix64",
]

#: The same kill switch the CONGEST kernels honor: setting it disables
#: every vectorized fast path in the package, this tier included.
NO_KERNELS_ENV = "REPRO_NO_KERNELS"


def _kernels_enabled() -> bool:
    return os.environ.get(NO_KERNELS_ENV, "").strip() not in ("1", "true",
                                                              "yes", "on")


def unavailable_reason(plan: Any, graph: Any = None) -> Optional[str]:
    """Why the ``mpc_kernel`` rung cannot run (None when it can).

    Mirrors the CONGEST resolution gates: plan-level exclusions first,
    then the environment kill switch, then the numpy probe, then the
    input-shape gate (vectorized priorities hash machine integers; exotic
    node ids fall through to the python loops, which hash anything).
    """
    if not plan.kernels:
        return "the plan excludes kernels (kernels=False)"
    if plan.env_overrides and not _kernels_enabled():
        return f"{NO_KERNELS_ENV} disables kernels"
    if _np is None:
        return ("numpy is not importable — the packed-array cluster "
                "passes need it; supersteps fall through to the "
                "per-machine python loops")
    if graph is not None:
        for v in graph.nodes:
            if not isinstance(v, int):
                return (f"node ids are not all machine integers (found "
                        f"{type(v).__name__}); vectorized splitmix64 "
                        f"priorities need uint64-packable ids")
    return None


def vec_splitmix64(x: "Any") -> "Any":
    """One splitmix64 finalization step over a ``uint64`` array.

    Bit-identical to :func:`repro.dist.random_tools._splitmix64` (uint64
    wraparound is the point of the arithmetic; overflow warnings are
    suppressed for hosts running under ``-W error``).
    """
    np = _np
    with np.errstate(over="ignore"):
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))


class VectorLedger:
    """The cluster's machine ledgers as flat arrays, budget-exact.

    ``resident``/``peak``/``limit`` mirror the
    :class:`~repro.mpc.cluster.MPCMachine` fields one row per machine.
    :meth:`charge_grouped` applies one phase's aggregated charges; when
    any machine would cross its cap it replays the phase's individual
    charge events in node order (``events`` — lazily generated, the
    error path only) so the raised :class:`MemoryExceeded` is
    bit-identical to the node tier's.  :meth:`sync` writes the arrays
    back into the cluster's machine objects, so ``peak_words`` /
    ``record_peaks`` and post-mortem inspection see one truth.
    """

    __slots__ = ("cluster", "resident", "peak", "limit")

    def __init__(self, cluster: MPCCluster) -> None:
        np = _np
        self.cluster = cluster
        self.resident = np.array([m.resident for m in cluster.machines],
                                 dtype=np.int64)
        self.peak = np.array([m.peak for m in cluster.machines],
                             dtype=np.int64)
        self.limit = np.array([m.limit for m in cluster.machines],
                              dtype=np.int64)

    def charge_grouped(self, counts: "Any", phase: str,
                       events: Callable[[], Iterable[Tuple[int, int]]],
                       ) -> None:
        """Charge ``counts`` (words per machine, len ``M``) for one phase.

        Within a phase every node-tier charge is an allocation (monotone
        resident), so the aggregate preserves the guard and the peak; on
        overflow the node-order ``events`` replay pinpoints the exact
        failing charge.
        """
        np = _np
        idx = np.nonzero(counts)[0]
        if idx.size == 0:
            return
        new = self.resident[idx] + counts[idx]
        if bool((new > self.limit[idx]).any()):
            for mach, words in events():
                cur = int(self.resident[mach]) + int(words)
                limit = int(self.limit[mach])
                if cur > limit:
                    self.sync()
                    raise MemoryExceeded(mach, cur, limit, phase)
                self.resident[mach] = cur
                if cur > self.peak[mach]:
                    self.peak[mach] = cur
            raise AssertionError(  # pragma: no cover - defensive
                "aggregate overflow not reproduced by the event replay")
        self.resident[idx] = new
        self.peak[idx] = np.maximum(self.peak[idx], new)

    def release_grouped(self, counts: "Any") -> None:
        """Free ``counts`` words per machine (clamped at zero, like
        :meth:`MPCMachine.release`; clamping commutes with aggregation
        because releases are non-negative)."""
        np = _np
        self.resident = np.maximum(self.resident - counts, 0)

    def sync(self) -> None:
        """Write the array ledgers back into the cluster's machines."""
        resident = self.resident.tolist()
        peak = self.peak.tolist()
        for machine, res, pk in zip(self.cluster.machines, resident, peak):
            machine.resident = res
            machine.peak = pk


class VectorPasses:
    """Array-native implementations of the driver's five phase passes.

    One instance per run; the interface (and every count it returns) is
    identical to ``repro.mpc.matching._NodePasses`` — the shared driver
    in :func:`repro.mpc.matching.mpc_maximal` consumes either
    implementation and emits the same supersteps, events, details and
    metrics.  All returned values are python ints (details are JSON
    traced; numpy scalars must not leak into the event stream).
    """

    def __init__(self, cluster: MPCCluster, graph: Any) -> None:
        np = _np
        self.cluster = cluster
        self.ledger = VectorLedger(cluster)
        M = cluster.num_machines
        self.M = M
        self.q = max(1, cluster.working_budget // 8)

        nodes = list(graph.nodes)  # sorted ids; determinism matters
        node_index = {v: i for i, v in enumerate(nodes)}
        self.num_nodes = len(nodes)
        #: original-orientation edge list (``matching.add`` order source)
        self.edges: List[Tuple[Any, Any]] = [(u, v)
                                             for u, v, _ in graph.edges()]
        m = len(self.edges)
        self.num_edges = m
        self.alive_count = m

        # packed topology: endpoint *indices* for structure, sorted
        # endpoint *ids* (uint64) for the splitmix64 priority chain
        self.eu = np.fromiter((node_index[u] for u, _ in self.edges),
                              dtype=np.int64, count=m)
        self.ev = np.fromiter((node_index[v] for _, v in self.edges),
                              dtype=np.int64, count=m)
        self.pa = np.fromiter(
            ((u if u <= v else v) & _MASK64 for u, v in self.edges),
            dtype=np.uint64, count=m)
        self.pb = np.fromiter(
            ((v if u <= v else u) & _MASK64 for u, v in self.edges),
            dtype=np.uint64, count=m)
        self.home = np.arange(m, dtype=np.int64) % M
        self.owner = np.arange(self.num_nodes, dtype=np.int64) % M
        self.alive = np.ones(m, dtype=bool)
        self.dead_node = np.zeros(self.num_nodes, dtype=bool)

        #: seed chain prefix: splitmix64(seed) folded with "mpc" — the
        #: per-iteration fold and the two id folds happen vectorized
        self._prefix = _fold(_splitmix64(cluster.seed & _MASK64), "mpc")

        # per-iteration working sets (reset by sparsify)
        self.working = np.zeros(M, dtype=np.int64)
        self.sample_idx = self.sample_home = None
        self.su = self.sv = None
        self.verts = self.best_s = None
        self._accepted_s = None

    # -- shared charge plumbing -----------------------------------------
    def _charge_working(self, counts: "Any", phase: str,
                        events: Callable[[], Iterable[Tuple[int, int]]],
                        ) -> None:
        self.ledger.charge_grouped(counts, phase, events)
        self.working += counts

    # -- input distribution ---------------------------------------------
    def distribute(self) -> None:
        """Charge the round-robin input shares (2 words per record)."""
        np = _np
        counts = (np.bincount(self.home, minlength=self.M)
                  + np.bincount(self.owner, minlength=self.M)) * 2

        def events() -> Iterator[Tuple[int, int]]:
            for idx in range(self.num_edges):
                yield int(self.home[idx]), 2
            for i in range(self.num_nodes):
                yield int(self.owner[i]), 2

        self.ledger.charge_grouped(counts, "input distribution", events)

    # -- sparsify --------------------------------------------------------
    def sparsify(self, iteration: int) -> Tuple[int, int]:
        """Per-machine lowest-``q`` working sample; returns
        ``(sample_size, delta_est)``."""
        np = _np
        self.working[:] = 0
        alive_idx = np.nonzero(self.alive)[0]
        it_state = np.uint64(_fold(self._prefix, iteration))
        pri = vec_splitmix64(
            vec_splitmix64(it_state ^ self.pa[alive_idx]) ^ self.pb[alive_idx])
        home = self.home[alive_idx]
        # sort by (home, pri, idx): within each machine the first q rows
        # are exactly the node tier's `cand.sort(); cand[:q]` selection
        order = np.lexsort((alive_idx, pri, home))
        sorted_home = home[order]
        boundary = np.empty(order.size, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_home[1:], sorted_home[:-1], out=boundary[1:])
        starts = np.nonzero(boundary)[0]
        rank = np.arange(order.size) - np.repeat(
            starts, np.diff(np.r_[starts, order.size]))
        sel = order[rank < self.q]
        sidx, spri = alive_idx[sel], pri[sel]
        final = np.lexsort((sidx, spri))  # global (pri, idx) sample order
        self.sample_idx = sidx[final]
        self.sample_home = self.home[self.sample_idx]
        self.su = self.eu[self.sample_idx]
        self.sv = self.ev[self.sample_idx]

        counts = 2 * np.bincount(self.sample_home, minlength=self.M)

        def events() -> Iterator[Tuple[int, int]]:
            # node order: machines by first alive edge index, one grouped
            # charge of 2 * take words each
            first = {}
            for idx in alive_idx.tolist():
                first.setdefault(idx % self.M, None)
            for mach in first:
                yield mach, int(counts[mach])

        self._charge_working(counts, "sparsify", events)

        # Δ_est peeling counter: residual-degree estimate from the
        # working sample (max sampled edges at any endpoint)
        if self.sample_idx.size:
            delta_est = int(np.bincount(
                np.concatenate((self.su, self.sv))).max())
        else:
            delta_est = 0
        return int(self.sample_idx.size), delta_est

    # -- ball growing ----------------------------------------------------
    def ball_growing(self) -> Tuple[int, int, int]:
        """Pointer-jump the sampled forest; returns
        ``(sampled_vertices, jumps, components)``."""
        np = _np
        k = int(self.sample_idx.size)
        counts = 4 * np.bincount(self.sample_home, minlength=self.M)
        sample_home = self.sample_home

        def events() -> Iterator[Tuple[int, int]]:
            for h in sample_home.tolist():
                yield h, 4

        self._charge_working(counts, "ball_growing", events)

        # best sample per endpoint: the sample is in (pri, idx) order, so
        # "minimum (pri, idx)" is "minimum sample position s"
        ends = np.column_stack((self.su, self.sv)).ravel()
        s2 = np.repeat(np.arange(k, dtype=np.int64), 2)
        order = np.argsort(ends, kind="stable")
        se, ss = ends[order], s2[order]
        first = np.empty(se.size, dtype=bool)
        if se.size:
            first[0] = True
            np.not_equal(se[1:], se[:-1], out=first[1:])
        verts = se[first]       # sampled vertices, ascending node index
        best_s = ss[first]      # their minimum-priority incident sample
        self.verts, self.best_s = verts, best_s

        # parent pointer: the other endpoint of the best edge
        bu, bv = self.su[best_s], self.sv[best_s]
        parent = np.searchsorted(verts, np.where(bu == verts, bv, bu))
        jumps = max(1, math.ceil(math.log2(max(2, int(verts.size)))))
        for _ in range(jumps):
            parent = parent[parent]
        self_idx = np.arange(verts.size, dtype=np.int64)
        # leaders are 2-cycles of the jumped forest (mutual minima)
        label = np.where(parent[parent] == self_idx,
                         np.minimum(self_idx, parent), parent)
        components = int(np.unique(label).size)
        return int(verts.size), jumps, components

    # -- local MIS -------------------------------------------------------
    def local_mis(self) -> List[int]:
        """Mutual minima of the sample, as global edge indices in the
        node tier's acceptance order (ascending sample position)."""
        np = _np
        best_at = np.full(self.num_nodes, -1, dtype=np.int64)
        best_at[self.verts] = self.best_s
        s = np.arange(self.sample_idx.size, dtype=np.int64)
        accepted_s = np.nonzero((best_at[self.su] == s)
                                & (best_at[self.sv] == s))[0]
        self._accepted_s = accepted_s
        acc_home = self.sample_home[accepted_s]
        counts = np.bincount(acc_home, minlength=self.M)

        def events() -> Iterator[Tuple[int, int]]:
            for h in acc_home.tolist():
                yield h, 1

        self._charge_working(counts, "local_mis", events)
        return [int(i) for i in self.sample_idx[accepted_s]]

    # -- integrate -------------------------------------------------------
    def integrate(self, accepted: List[int]) -> int:
        """Kill every edge with a matched endpoint; free the working
        sets; returns the dropped-edge count."""
        np = _np
        acc = np.asarray(accepted, dtype=np.int64)
        self.dead_node[self.eu[acc]] = True
        self.dead_node[self.ev[acc]] = True
        kill = self.alive & (self.dead_node[self.eu]
                             | self.dead_node[self.ev])
        dropped = int(np.count_nonzero(kill))
        self.ledger.release_grouped(
            2 * np.bincount(self.home[kill], minlength=self.M))
        self.alive[kill] = False
        self.alive_count -= dropped
        self.ledger.release_grouped(self.working)
        self.working[:] = 0
        return dropped

    # -- lifecycle -------------------------------------------------------
    def finish(self) -> None:
        """Write the array ledgers back into the cluster's machines."""
        self.ledger.sync()
