"""Strongly sublinear maximal matching on the simulated MPC cluster.

The driver follows the Ghaffari–Uitto recipe for maximal matching with
``S = n**alpha`` words per machine, phrased as five phases per
iteration (each a :class:`~repro.runtime.driver.PhaseDriver` phase, so
traces and profiles show the textbook structure):

``sparsify``
    Every machine narrows its resident alive edges to a working sample
    of at most ``q = working_budget // 8`` edges — the ones with the
    lowest deterministic priorities ``h(iteration, u, v)`` (a
    :func:`~repro.dist.random_tools.spawn_seed` splitmix64 hash, so runs
    are reproducible and machine-order independent).  Sampling is what
    keeps every later working set within the per-machine cap.

``stall``
    All machines pad to the combiner-tree depth ``ceil(log2 M)``: every
    aggregation below rides an M-leaf binary tree, and the schedule is
    padded up front so it is oblivious to data skew (machines with few
    sampled edges wait, they do not race ahead).

``ball_growing``
    Graph exponentiation on the sampled subgraph: each sampled vertex
    points along its minimum-priority incident sample edge, and pointer
    jumping (``parent <- parent[parent]``, doubling the known radius
    each superstep) runs for ``ceil(log2 |V_sample|)`` supersteps until
    every vertex knows its component's leader.  The leader edge of each
    component is a *mutual minimum*, which is the progress certificate
    the next phase consumes.

``local_mis``
    An independent set in the line graph of the sample: edge ``(u, v)``
    joins iff it is the minimum-priority sample edge at **both**
    endpoints.  Mutual minima are pairwise non-adjacent by construction,
    and every nonempty component contributes at least its leader edge —
    so every iteration matches at least one edge and the loop
    terminates.

``integrate``
    Accepted edges become matched: endpoint owners mark both vertices
    dead, every machine drops its now-dead resident edges (releasing
    their words), and the working sets are freed.

Every allocation along the way goes through
:meth:`~repro.mpc.cluster.MPCMachine.charge`, so the hard memory guard
is enforced *during* the run, not audited after it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..dist.random_tools import spawn_seed
from ..matching.core import Matching
from ..runtime.driver import PhaseDriver, ProtocolResult
from .cluster import MPCCluster

__all__ = ["MPCMatchingResult", "mpc_maximal"]


@dataclass
class MPCMatchingResult(ProtocolResult):
    """Result of :func:`mpc_maximal`.

    ``network`` carries the :class:`~repro.mpc.cluster.MPCCluster` (it
    satisfies the same ``.metrics`` surface), so the inherited
    ``metrics``/``rounds_total`` properties report supersteps and the
    memory account.
    """

    alpha: float = 0.0
    iterations: int = 0
    supersteps: int = 0
    peak_words: int = 0
    machine_words: int = 0
    num_machines: int = 0
    #: per-iteration (sampled edges, components, matched edges) triples
    iteration_stats: List[Tuple[int, int, int]] = field(default_factory=list)


def _priority(seed: int, iteration: int, u: int, v: int) -> int:
    """Deterministic per-iteration edge priority (splitmix64 stream)."""
    a, b = (u, v) if u <= v else (v, u)
    return spawn_seed(seed, "mpc", iteration, a, b)


def mpc_maximal(cluster: MPCCluster,
                max_iterations: Optional[int] = None) -> MPCMatchingResult:
    """Compute a maximal matching on ``cluster``'s graph.

    Runs sparsify → stall → ball-growing → local-MIS → integrate
    iterations until no alive edge remains; since every removed edge has
    a matched endpoint, the result is maximal by construction (and
    :func:`repro.matching.verify.certify` re-checks it independently).
    """
    graph = cluster.graph
    protocol = "mpc_maximal"
    driver = PhaseDriver(cluster, protocol)
    matching = Matching()

    nodes = list(graph.nodes)  # sorted ids; determinism matters
    node_index = {v: i for i, v in enumerate(nodes)}
    M = cluster.num_machines
    # per-machine sample cap: each sampled edge costs its home machine
    # 2 (record) + 4 (ball-growing label slots) + 1 (acceptance word)
    # working words, so q samples stay within the working budget
    q = max(1, cluster.working_budget // 8)

    def edge_home(idx: int) -> int:
        return idx % M

    def owner(v: Any) -> int:
        return node_index[v] % M

    # -- distribute the input (charges resident ledgers; guard is live) --
    edges: List[Tuple[Any, Any]] = [(u, v) for u, v, _ in graph.edges()]
    alive = [True] * len(edges)
    incident: Dict[Any, List[int]] = {}
    for idx, (u, v) in enumerate(edges):
        cluster.machines[edge_home(idx)].charge(2, "input distribution")
        incident.setdefault(u, []).append(idx)
        incident.setdefault(v, []).append(idx)
    for v in nodes:
        cluster.machines[owner(v)].charge(2, "input distribution")
    cluster.superstep(protocol, count=1,
                      messages=len(edges) + len(nodes),
                      words=2 * len(edges) + 2 * len(nodes))

    matched: Dict[Any, Any] = {}
    alive_count = len(edges)
    if max_iterations is None:
        max_iterations = 4 * max(1, len(edges)).bit_length() + len(nodes) + 8
    stall_depth = max(1, math.ceil(math.log2(max(2, M))))

    iteration = 0
    stats: List[Tuple[int, int, int]] = []
    while alive_count > 0:
        iteration += 1
        if iteration > max_iterations:  # pragma: no cover - safety net
            raise RuntimeError(
                f"mpc_maximal exceeded {max_iterations} iterations with "
                f"{alive_count} alive edge(s); progress invariant broken")

        # -- sparsify: per-machine lowest-priority working sample -------
        # working[home] tracks this iteration's transient words so
        # integrate can release exactly what the phases charged
        working: Dict[int, int] = {}

        def charge_working(home: int, words: int, phase: str) -> None:
            cluster.machines[home].charge(words, phase)
            working[home] = working.get(home, 0) + words

        with driver.phase(f"sparsify[{iteration}]") as ph:
            per_machine: Dict[int, List[Tuple[int, int]]] = {}
            for idx in range(len(edges)):
                if alive[idx]:
                    u, v = edges[idx]
                    pri = _priority(cluster.seed, iteration, u, v)
                    per_machine.setdefault(edge_home(idx), []).append(
                        (pri, idx))
            sample: List[Tuple[int, int]] = []
            for home, cand in per_machine.items():
                cand.sort()
                take = cand[:q]
                charge_working(home, 2 * len(take), "sparsify")
                sample.extend(take)
            sample.sort()
            cluster.superstep(protocol, count=1, messages=len(sample),
                              words=2 * len(sample))
            ph.set_detail(alive=alive_count, sampled=len(sample),
                          per_machine_cap=q)

        # -- stall: pad to the oblivious combiner-tree schedule ---------
        with driver.phase(f"stall[{iteration}]") as ph:
            cluster.superstep(protocol, count=stall_depth)
            ph.set_detail(padded_supersteps=stall_depth)

        # -- ball growing: pointer-jump to component leaders ------------
        with driver.phase(f"ball_growing[{iteration}]") as ph:
            best: Dict[Any, Tuple[int, int]] = {}
            for pri, idx in sample:
                u, v = edges[idx]
                if u not in best or (pri, idx) < best[u]:
                    best[u] = (pri, idx)
                if v not in best or (pri, idx) < best[v]:
                    best[v] = (pri, idx)
            # label state rides the sample's edge replicas (2 slots per
            # endpoint on the edge's home machine), the standard
            # edge-list layout for MPC pointer jumping — so the charge
            # stays bounded by the per-machine sample cap
            for _pri, idx in sample:
                charge_working(edge_home(idx), 4, "ball_growing")
            parent: Dict[Any, Any] = {}
            for v, (pri, idx) in best.items():
                a, b = edges[idx]
                parent[v] = b if v == a else a
            jumps = max(1, math.ceil(math.log2(max(2, len(best)))))
            for _ in range(jumps):
                parent = {v: parent.get(parent[v], parent[v])
                          for v in parent}
            cluster.superstep(protocol, count=jumps,
                              messages=len(best), words=len(best))
            # leaders: vertices on a mutual-minimum edge (2-cycles of the
            # parent forest); count components via jump-stable labels
            components = len({min(v, parent[v], key=lambda x: node_index[x])
                              if parent.get(parent[v]) == v else parent[v]
                              for v in parent})
            ph.set_detail(sampled_vertices=len(best), jumps=jumps,
                          components=components)

        # -- local MIS on the line graph: mutual minima -----------------
        with driver.phase(f"local_mis[{iteration}]") as ph:
            accepted: List[int] = []
            for pri, idx in sample:
                u, v = edges[idx]
                if best[u] == (pri, idx) and best[v] == (pri, idx):
                    accepted.append(idx)
            # one word of mutual-minimum agreement per accepted edge,
            # recorded on the edge's home machine
            for idx in accepted:
                charge_working(edge_home(idx), 1, "local_mis")
            cluster.superstep(protocol, count=1,
                              messages=2 * len(accepted),
                              words=2 * len(accepted))
            ph.set_detail(accepted=len(accepted))
        assert accepted, "a nonempty sample always has a mutual minimum"

        # -- integrate: apply the matching, drop dead edges -------------
        with driver.phase(f"integrate[{iteration}]") as ph:
            dropped = 0
            for idx in accepted:
                u, v = edges[idx]
                matching.add(u, v)
                matched[u] = v
                matched[v] = u
                for w in (u, v):
                    for inc in incident[w]:
                        if alive[inc]:
                            alive[inc] = False
                            alive_count -= 1
                            dropped += 1
                            cluster.machines[edge_home(inc)].release(2)
            # free the working sets (samples, labels, agreement words)
            for home, words in working.items():
                cluster.machines[home].release(words)
            cluster.superstep(protocol, count=2,
                              messages=2 * len(accepted),
                              words=2 * len(accepted))
            ph.set_detail(matched=len(accepted), dropped_edges=dropped,
                          alive=alive_count)

        stats.append((len(sample), components, len(accepted)))
        driver.emit_augmentation(f"integrate[{iteration}]",
                                 paths=len(accepted),
                                 size=float(matching.size))

    cluster.record_peaks()
    return MPCMatchingResult(
        matching=matching,
        network=cluster,
        alpha=cluster.alpha,
        iterations=iteration,
        supersteps=cluster.metrics.rounds,
        peak_words=cluster.peak_words,
        machine_words=cluster.machine_words,
        num_machines=cluster.num_machines,
        iteration_stats=stats,
    )
