"""Strongly sublinear maximal matching on the simulated MPC cluster.

The driver follows the Ghaffari–Uitto recipe for maximal matching with
``S = n**alpha`` words per machine, phrased as five phases per
iteration (each a :class:`~repro.runtime.driver.PhaseDriver` phase, so
traces and profiles show the textbook structure):

``sparsify``
    Every machine narrows its resident alive edges to a working sample
    of at most ``q = working_budget // 8`` edges — the ones with the
    lowest deterministic priorities ``h(iteration, u, v)`` (a
    :func:`~repro.dist.random_tools.spawn_seed` splitmix64 hash, so runs
    are reproducible and machine-order independent).  Sampling is what
    keeps every later working set within the per-machine cap.

``stall``
    All machines pad to the combiner-tree depth ``ceil(log2 M)``: every
    aggregation below rides an M-leaf binary tree, and the schedule is
    padded up front so it is oblivious to data skew (machines with few
    sampled edges wait, they do not race ahead).

``ball_growing``
    Graph exponentiation on the sampled subgraph: each sampled vertex
    points along its minimum-priority incident sample edge, and pointer
    jumping (``parent <- parent[parent]``, doubling the known radius
    each superstep) runs for ``ceil(log2 |V_sample|)`` supersteps until
    every vertex knows its component's leader.  The leader edge of each
    component is a *mutual minimum*, which is the progress certificate
    the next phase consumes.

``local_mis``
    An independent set in the line graph of the sample: edge ``(u, v)``
    joins iff it is the minimum-priority sample edge at **both**
    endpoints.  Mutual minima are pairwise non-adjacent by construction,
    and every nonempty component contributes at least its leader edge —
    so every iteration matches at least one edge and the loop
    terminates.

``integrate``
    Accepted edges become matched: endpoint owners mark both vertices
    dead, every machine drops its now-dead resident edges (releasing
    their words), and the working sets are freed.

The phase *bodies* come in two golden-equivalent implementations behind
one interface: :class:`_NodePasses` (the per-machine python loops — the
``node`` tier and the reference semantics) and
:class:`~repro.mpc.kernel.VectorPasses` (whole-cluster numpy array
passes — the ``mpc_kernel`` tier).  The driver resolves the cluster's
:class:`~repro.models.execution.ExecutionPlan` through the MPC model's
ladder and everything observable — matching, supersteps, Metrics, the
memory account, phase details and structural events — is identical on
both rungs (pinned by ``tests/test_mpc_kernel.py``).

Every allocation along the way goes through
:meth:`~repro.mpc.cluster.MPCMachine.charge` (or its budget-exact array
ledger mirror), so the hard memory guard is enforced *during* the run,
not audited after it.

Per iteration the phases also emit the roadmap's peeling counters, cheap
on both tiers: ``delta_est`` (the residual-degree estimate read off the
working sample) on ``sparsify`` and ``decay_ratio`` (the fraction of
alive edges eliminated) on ``integrate`` — visible in traces, Profiler
counter rows and :attr:`MPCMatchingResult.delta_est` /
:attr:`MPCMatchingResult.edge_decay`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..dist.random_tools import spawn_seed
from ..matching.core import Matching
from ..runtime.driver import PhaseDriver, ProtocolResult
from .cluster import MPCCluster

__all__ = ["MPCMatchingResult", "mpc_maximal"]


@dataclass
class MPCMatchingResult(ProtocolResult):
    """Result of :func:`mpc_maximal`.

    ``network`` carries the :class:`~repro.mpc.cluster.MPCCluster` (it
    satisfies the same ``.metrics`` surface), so the inherited
    ``metrics``/``rounds_total`` properties report supersteps and the
    memory account.  ``tier`` records which rung of the MPC ladder the
    run resolved to (``"mpc_kernel"`` or ``"node"``); the two are
    golden-equivalent in everything else this result carries.
    """

    alpha: float = 0.0
    iterations: int = 0
    supersteps: int = 0
    peak_words: int = 0
    machine_words: int = 0
    num_machines: int = 0
    #: the resolved execution rung this run used
    tier: str = "node"
    #: per-iteration (sampled edges, components, matched edges) triples
    iteration_stats: List[Tuple[int, int, int]] = field(default_factory=list)
    #: per-iteration residual-degree estimates from the working sample
    delta_est: List[int] = field(default_factory=list)
    #: per-iteration alive-edge decay (edges eliminated by integrate)
    edge_decay: List[int] = field(default_factory=list)


def _priority(seed: int, iteration: int, u: int, v: int) -> int:
    """Deterministic per-iteration edge priority (splitmix64 stream)."""
    a, b = (u, v) if u <= v else (v, u)
    return spawn_seed(seed, "mpc", iteration, a, b)


class _NodePasses:
    """The per-machine python phase passes (the ``node`` tier).

    This is the reference semantics: every record charged one
    :meth:`~repro.mpc.cluster.MPCMachine.charge` at a time, dictionaries
    and python sorts throughout.  The vectorized
    :class:`~repro.mpc.kernel.VectorPasses` implements the identical
    interface and must return the identical counts.
    """

    def __init__(self, cluster: MPCCluster, graph: Any) -> None:
        self.cluster = cluster
        self.M = cluster.num_machines
        # per-machine sample cap: each sampled edge costs its home
        # machine 2 (record) + 4 (ball-growing label slots) + 1
        # (acceptance word) working words, so q samples stay within the
        # working budget
        self.q = max(1, cluster.working_budget // 8)
        self.nodes = list(graph.nodes)  # sorted ids; determinism matters
        self.node_index = {v: i for i, v in enumerate(self.nodes)}
        self.num_nodes = len(self.nodes)
        self.edges: List[Tuple[Any, Any]] = [(u, v)
                                             for u, v, _ in graph.edges()]
        self.num_edges = len(self.edges)
        self.alive = [True] * self.num_edges
        self.alive_count = self.num_edges
        self.incident: Dict[Any, List[int]] = {}
        self.matched: Dict[Any, Any] = {}
        # working[home] tracks one iteration's transient words so
        # integrate can release exactly what the phases charged
        self.working: Dict[int, int] = {}
        self.sample: List[Tuple[int, int]] = []
        self.best: Dict[Any, Tuple[int, int]] = {}

    def _edge_home(self, idx: int) -> int:
        return idx % self.M

    def _owner(self, v: Any) -> int:
        return self.node_index[v] % self.M

    def _charge_working(self, home: int, words: int, phase: str) -> None:
        self.cluster.machines[home].charge(words, phase)
        self.working[home] = self.working.get(home, 0) + words

    def distribute(self) -> None:
        """Distribute the input (charges resident ledgers; guard live)."""
        for idx, (u, v) in enumerate(self.edges):
            self.cluster.machines[self._edge_home(idx)].charge(
                2, "input distribution")
            self.incident.setdefault(u, []).append(idx)
            self.incident.setdefault(v, []).append(idx)
        for v in self.nodes:
            self.cluster.machines[self._owner(v)].charge(
                2, "input distribution")

    def sparsify(self, iteration: int) -> Tuple[int, int]:
        """Per-machine lowest-priority working sample; returns
        ``(sample_size, delta_est)``."""
        self.working = {}
        per_machine: Dict[int, List[Tuple[int, int]]] = {}
        for idx in range(self.num_edges):
            if self.alive[idx]:
                u, v = self.edges[idx]
                pri = _priority(self.cluster.seed, iteration, u, v)
                per_machine.setdefault(self._edge_home(idx), []).append(
                    (pri, idx))
        sample: List[Tuple[int, int]] = []
        for home, cand in per_machine.items():
            cand.sort()
            take = cand[:self.q]
            self._charge_working(home, 2 * len(take), "sparsify")
            sample.extend(take)
        sample.sort()
        self.sample = sample
        # Δ_est peeling counter: residual-degree estimate from the
        # working sample (max sampled edges at any endpoint)
        degree: Dict[Any, int] = {}
        for _pri, idx in sample:
            for w in self.edges[idx]:
                degree[w] = degree.get(w, 0) + 1
        return len(sample), max(degree.values(), default=0)

    def ball_growing(self) -> Tuple[int, int, int]:
        """Pointer-jump to component leaders; returns
        ``(sampled_vertices, jumps, components)``."""
        best: Dict[Any, Tuple[int, int]] = {}
        for pri, idx in self.sample:
            u, v = self.edges[idx]
            if u not in best or (pri, idx) < best[u]:
                best[u] = (pri, idx)
            if v not in best or (pri, idx) < best[v]:
                best[v] = (pri, idx)
        # label state rides the sample's edge replicas (2 slots per
        # endpoint on the edge's home machine), the standard edge-list
        # layout for MPC pointer jumping — so the charge stays bounded
        # by the per-machine sample cap
        for _pri, idx in self.sample:
            self._charge_working(self._edge_home(idx), 4, "ball_growing")
        parent: Dict[Any, Any] = {}
        for v, (pri, idx) in best.items():
            a, b = self.edges[idx]
            parent[v] = b if v == a else a
        jumps = max(1, math.ceil(math.log2(max(2, len(best)))))
        for _ in range(jumps):
            parent = {v: parent.get(parent[v], parent[v])
                      for v in parent}
        # leaders: vertices on a mutual-minimum edge (2-cycles of the
        # parent forest); count components via jump-stable labels
        components = len({min(v, parent[v],
                              key=lambda x: self.node_index[x])
                          if parent.get(parent[v]) == v else parent[v]
                          for v in parent})
        self.best = best
        return len(best), jumps, components

    def local_mis(self) -> List[int]:
        """Mutual minima of the sample (accepted global edge indices)."""
        accepted: List[int] = []
        for pri, idx in self.sample:
            u, v = self.edges[idx]
            if self.best[u] == (pri, idx) and self.best[v] == (pri, idx):
                accepted.append(idx)
        # one word of mutual-minimum agreement per accepted edge,
        # recorded on the edge's home machine
        for idx in accepted:
            self._charge_working(self._edge_home(idx), 1, "local_mis")
        return accepted

    def integrate(self, accepted: List[int]) -> int:
        """Apply the matching, drop dead edges, free the working sets."""
        dropped = 0
        for idx in accepted:
            u, v = self.edges[idx]
            self.matched[u] = v
            self.matched[v] = u
            for w in (u, v):
                for inc in self.incident[w]:
                    if self.alive[inc]:
                        self.alive[inc] = False
                        self.alive_count -= 1
                        dropped += 1
                        self.cluster.machines[self._edge_home(inc)].release(2)
        # free the working sets (samples, labels, agreement words)
        for home, words in self.working.items():
            self.cluster.machines[home].release(words)
        return dropped

    def finish(self) -> None:
        """Nothing to sync: the node tier charges machines directly."""


def mpc_maximal(cluster: MPCCluster,
                max_iterations: Optional[int] = None) -> MPCMatchingResult:
    """Compute a maximal matching on ``cluster``'s graph.

    Runs sparsify → stall → ball-growing → local-MIS → integrate
    iterations until no alive edge remains; since every removed edge has
    a matched endpoint, the result is maximal by construction (and
    :func:`repro.matching.verify.certify` re-checks it independently).
    The cluster's execution plan resolves through the MPC ladder
    (``mpc_kernel`` → ``node``); both rungs are golden-equivalent, so
    the choice only affects wall-clock.
    """
    graph = cluster.graph
    protocol = "mpc_maximal"
    driver = PhaseDriver(cluster, protocol)
    matching = Matching()

    decision = cluster.model.resolve(cluster)
    if decision.tier == "mpc_kernel":
        from .kernel import VectorPasses

        passes: Any = VectorPasses(cluster, graph)
    else:
        passes = _NodePasses(cluster, graph)

    m, n = passes.num_edges, passes.num_nodes
    M = cluster.num_machines

    passes.distribute()
    cluster.superstep(protocol, count=1, messages=m + n,
                      words=2 * m + 2 * n)

    if max_iterations is None:
        max_iterations = 4 * max(1, m).bit_length() + n + 8
    stall_depth = max(1, math.ceil(math.log2(max(2, M))))

    iteration = 0
    stats: List[Tuple[int, int, int]] = []
    delta_series: List[int] = []
    decay_series: List[int] = []
    while passes.alive_count > 0:
        iteration += 1
        if iteration > max_iterations:  # pragma: no cover - safety net
            raise RuntimeError(
                f"mpc_maximal exceeded {max_iterations} iterations with "
                f"{passes.alive_count} alive edge(s); progress invariant "
                f"broken")
        alive_before = passes.alive_count

        # -- sparsify: per-machine lowest-priority working sample -------
        with driver.phase(f"sparsify[{iteration}]") as ph:
            sampled, delta_est = passes.sparsify(iteration)
            cluster.superstep(protocol, count=1, messages=sampled,
                              words=2 * sampled)
            ph.set_detail(alive=alive_before, sampled=sampled,
                          per_machine_cap=passes.q, delta_est=delta_est)

        # -- stall: pad to the oblivious combiner-tree schedule ---------
        with driver.phase(f"stall[{iteration}]") as ph:
            cluster.superstep(protocol, count=stall_depth)
            ph.set_detail(padded_supersteps=stall_depth)

        # -- ball growing: pointer-jump to component leaders ------------
        with driver.phase(f"ball_growing[{iteration}]") as ph:
            sampled_vertices, jumps, components = passes.ball_growing()
            cluster.superstep(protocol, count=jumps,
                              messages=sampled_vertices,
                              words=sampled_vertices)
            ph.set_detail(sampled_vertices=sampled_vertices, jumps=jumps,
                          components=components)

        # -- local MIS on the line graph: mutual minima -----------------
        with driver.phase(f"local_mis[{iteration}]") as ph:
            accepted = passes.local_mis()
            cluster.superstep(protocol, count=1,
                              messages=2 * len(accepted),
                              words=2 * len(accepted))
            ph.set_detail(accepted=len(accepted))
        assert accepted, "a nonempty sample always has a mutual minimum"

        # -- integrate: apply the matching, drop dead edges -------------
        with driver.phase(f"integrate[{iteration}]") as ph:
            for idx in accepted:
                u, v = passes.edges[idx]
                matching.add(u, v)
            dropped = passes.integrate(accepted)
            cluster.superstep(protocol, count=2,
                              messages=2 * len(accepted),
                              words=2 * len(accepted))
            ph.set_detail(matched=len(accepted), dropped_edges=dropped,
                          alive=passes.alive_count,
                          decay_ratio=round(dropped / alive_before, 4))

        stats.append((sampled, components, len(accepted)))
        delta_series.append(delta_est)
        decay_series.append(dropped)
        driver.emit_augmentation(f"integrate[{iteration}]",
                                 paths=len(accepted),
                                 size=float(matching.size))

    passes.finish()
    cluster.record_peaks()
    return MPCMatchingResult(
        matching=matching,
        network=cluster,
        alpha=cluster.alpha,
        iterations=iteration,
        supersteps=cluster.metrics.rounds,
        peak_words=cluster.peak_words,
        machine_words=cluster.machine_words,
        num_machines=cluster.num_machines,
        tier=decision.tier,
        iteration_stats=stats,
        delta_est=delta_series,
        edge_decay=decay_series,
    )
