"""Dynamic maintenance of a (1 - 1/(k+1))-approximate matching (shim).

.. deprecated:: 1.7
   :class:`DynamicMatcher` is now a thin compatibility shim over
   :class:`repro.stream.service.MatchingService` — the streaming service
   that batches updates, coalesces them, and escalates huge repairs onto
   the execution-plan ladder.  The shim drives the service in its
   ``repair="legacy"`` mode with one single-update batch per call, which
   reproduces the historical per-update behavior *bit for bit*: the same
   graphs, the same matchings, the same ``UpdateStats`` history (pinned by
   golden tests).  New code should construct a ``MatchingService`` (or use
   ``repro.run("stream", ...)``) directly.

The maintained property is the paper's invariant — no augmenting path of
length <= 2k-1 — so by Lemma 3.3 the matching is a (1 - 1/(k+1))-
approximation after every update.  Locality (why repair stays near the
update): a new short augmenting path must pass through a touched node, and
augmenting along a path P only creates short paths intersecting P, so a
worklist seeded at the update site restores the invariant.  See the
service's module docstring for the batched generalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .._compat import warn_deprecated
from ..graphs.graph import Graph, GraphError
from ..matching.core import Matching


@dataclass
class UpdateStats:
    """Cost of one update operation."""

    operation: str
    augmentations: int
    nodes_explored: int


@dataclass
class DynamicMatcher:
    """Maintains a matching with no augmenting path of length <= 2k-1.

    By Lemma 3.3 the matching is a (1 - 1/(k+1))-approximation at every
    point in time.  Updates: :meth:`insert_edge`, :meth:`delete_edge`,
    :meth:`insert_node`, :meth:`delete_node` — each one is applied and
    repaired immediately (a one-update batch of the streaming service).

    Deprecated: use :class:`repro.stream.MatchingService`, which batches
    and coalesces updates instead of repairing per event.
    """

    k: int = 2
    graph: Graph = field(default_factory=Graph)
    matching: Matching = field(default_factory=Matching)
    history: List[UpdateStats] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        from ..stream.service import MatchingService

        warn_deprecated("dynamic_matcher", stacklevel=3)
        if self.k < 1:
            raise ValueError("k must be at least 1")
        self._service = MatchingService(
            self.graph, matching=self.matching, k=self.k, seed=self.seed,
            repair="legacy", name="dynamic_matcher")
        # the service owns private copies; alias them (legacy surface)
        self.graph = self._service.graph
        self.matching = self._service.matching
        init = self._service.history[0]
        self.history.append(UpdateStats(
            operation="init", augmentations=init.augmentations,
            nodes_explored=init.nodes_explored))

    # ------------------------------------------------------------------
    @property
    def max_path_length(self) -> int:
        return 2 * self.k - 1

    @property
    def guarantee(self) -> float:
        return 1 - 1 / (self.k + 1)

    # -- updates -----------------------------------------------------------
    def insert_edge(self, u: int, v: int, weight: float = 1.0) -> UpdateStats:
        self._service.insert_edge(u, v, weight)
        return self._commit("insert_edge")

    def delete_edge(self, u: int, v: int) -> UpdateStats:
        self._service.delete_edge(u, v)
        return self._commit("delete_edge")

    def insert_node(self, v: int) -> UpdateStats:
        self._service.insert_node(v)
        return self._commit("insert_node")

    def delete_node(self, v: int) -> UpdateStats:
        if not self.graph.has_node(v):
            raise GraphError(f"node {v} not in graph")
        self._service.delete_node(v)
        return self._commit("delete_node")

    def _commit(self, operation: str) -> UpdateStats:
        batch = self._service.commit(operation=operation)
        stats = UpdateStats(operation=operation,
                            augmentations=batch.augmentations,
                            nodes_explored=batch.nodes_explored)
        self.history.append(stats)
        return stats

    # -- inspection ------------------------------------------------------------
    def verify_invariant(self) -> bool:
        """Exhaustively check that no short augmenting path survives."""
        return self._service.verify_invariant()

    def current_ratio(self) -> float:
        """Measured ratio against the exact optimum (test/diagnostic aid)."""
        return self._service.current_ratio()
