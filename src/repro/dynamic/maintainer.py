"""Dynamic maintenance of a (1 - 1/(k+1))-approximate matching.

A natural follow-up to the paper (and the bridge to its LCA discussion):
keep the invariant "no augmenting path of length <= 2k-1" — the exact
property the static algorithms establish — under edge and node updates,
with *local* repair work only.

Locality argument (why repair can stay near the update): if M satisfies the
invariant and an update changes the graph at edge (u, v), then any new
augmenting path of length <= 2k-1 must pass through u or v — a path
avoiding both would have been augmenting before the update.  Augmenting
along a path P can only create new short augmenting paths that intersect P
(a disjoint path would have been augmenting already, since augmentation
never frees a node).  So a worklist seeded at the update site and extended
by the nodes of each applied path restores the invariant; each augmentation
grows the matching, so repair terminates.

Per-update work is O(Delta^{2k-1}) enumeration around the seeds — constant
for bounded degree and k, independent of n (the same locality the paper's
LCA descendants exploit).  The maintainer reports probes and augmentations
per update so experiments can check that locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Set, Tuple

from collections import deque

from ..graphs.graph import Edge, Graph, GraphError, edge_key
from ..matching.core import Matching
from ..matching.paths import enumerate_augmenting_paths


@dataclass
class UpdateStats:
    """Cost of one update operation."""

    operation: str
    augmentations: int
    nodes_explored: int


@dataclass
class DynamicMatcher:
    """Maintains a matching with no augmenting path of length <= 2k-1.

    By Lemma 3.3 the matching is a (1 - 1/(k+1))-approximation at every
    point in time.  Updates: :meth:`insert_edge`, :meth:`delete_edge`,
    :meth:`insert_node`, :meth:`delete_node`.
    """

    k: int = 2
    graph: Graph = field(default_factory=Graph)
    matching: Matching = field(default_factory=Matching)
    history: List[UpdateStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        self.graph = self.graph.copy()
        self.matching = self.matching.copy()
        # establish the invariant on whatever graph we were given
        self._repair(set(self.graph.nodes), operation="init")

    # ------------------------------------------------------------------
    @property
    def max_path_length(self) -> int:
        return 2 * self.k - 1

    @property
    def guarantee(self) -> float:
        return 1 - 1 / (self.k + 1)

    # -- updates -----------------------------------------------------------
    def insert_edge(self, u: int, v: int, weight: float = 1.0) -> UpdateStats:
        self.graph.add_edge(u, v, weight)
        return self._repair({u, v}, operation="insert_edge")

    def delete_edge(self, u: int, v: int) -> UpdateStats:
        self.graph.remove_edge(u, v)
        if self.matching.contains_edge(u, v):
            self.matching.remove(u, v)
        return self._repair({u, v}, operation="delete_edge")

    def insert_node(self, v: int) -> UpdateStats:
        self.graph.add_node(v)
        return self._record("insert_node", 0, 0)

    def delete_node(self, v: int) -> UpdateStats:
        if not self.graph.has_node(v):
            raise GraphError(f"node {v} not in graph")
        seeds = set(self.graph.neighbors(v))
        mate = self.matching.mate(v)
        if mate is not None:
            self.matching.remove(v, mate)
        self.graph.remove_node(v)
        return self._repair(seeds, operation="delete_node")

    # -- repair --------------------------------------------------------------
    def _repair(self, seeds: Set[int], operation: str) -> UpdateStats:
        """Restore the invariant by augmenting near the seeds (worklist)."""
        queue: Deque[int] = deque(sorted(s for s in seeds
                                         if self.graph.has_node(s)))
        queued: Set[int] = set(queue)
        augmentations = 0
        explored = 0
        while queue:
            seed = queue.popleft()
            queued.discard(seed)
            if not self.graph.has_node(seed):
                continue
            applied = True
            while applied:
                applied = False
                ball = self.graph.ball(seed, self.max_path_length)
                explored += len(ball)
                local = self.graph.subgraph(ball)
                for path in enumerate_augmenting_paths(
                        local, self.matching, self.max_path_length):
                    if seed not in path:
                        continue
                    if not self.matching.is_augmenting_path(path):
                        continue
                    self.matching.augment(path)
                    augmentations += 1
                    applied = True
                    for node in path:
                        if node not in queued:
                            queue.append(node)
                            queued.add(node)
                    break  # re-enumerate: the matching changed
        return self._record(operation, augmentations, explored)

    def _record(self, operation: str, augmentations: int,
                explored: int) -> UpdateStats:
        stats = UpdateStats(operation=operation, augmentations=augmentations,
                            nodes_explored=explored)
        self.history.append(stats)
        return stats

    # -- inspection ------------------------------------------------------------
    def verify_invariant(self) -> bool:
        """Exhaustively check that no short augmenting path survives."""
        from ..matching.paths import shortest_augmenting_path_length

        return shortest_augmenting_path_length(
            self.graph, self.matching, max_len=self.max_path_length) is None

    def current_ratio(self) -> float:
        """Measured ratio against the exact optimum (test/diagnostic aid)."""
        from ..matching.sequential.blossom import max_cardinality

        optimum = max_cardinality(self.graph).size
        return self.matching.size / optimum if optimum else 1.0
