"""Dynamic matching maintenance (local repair, LCA-style locality)."""

from .maintainer import DynamicMatcher, UpdateStats

__all__ = ["DynamicMatcher", "UpdateStats"]
