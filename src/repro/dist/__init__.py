"""Distributed algorithms: node programs and drivers.

Baselines: :func:`israeli_itai` (1/2-MCM), :func:`luby_mis`.
Paper algorithms: :func:`generic_mcm` (Algorithm 1, LOCAL),
:func:`bipartite_mcm` (Theorem 3.10), :func:`general_mcm` (Algorithm 4 /
Theorem 3.15), and the weighted suite in :mod:`repro.dist.weighted`.
"""

from .bipartite_counting import CountState, X_SIDE, Y_SIDE, leaders_of, run_counting
from .bipartite_mcm import (
    AugmentationStats,
    BipartiteMCMResult,
    PhaseStats,
    augment_to_level,
    bipartite_mcm,
    side_map_of,
)
from .general_mcm import (
    GeneralMCMResult,
    IterationStats,
    general_mcm,
    theory_iterations,
)
from .generic_mcm import GenericMCMResult, GenericPhase, generic_mcm
from .israeli_itai import IsraeliItaiNode, israeli_itai
from .local_views import LocalViewNode, flood_views, view_to_graph
from .luby_mis import LubyMISNode, luby_mis
from .random_tools import (
    sample_max_uniform,
    spawn_rng,
    spawn_seed,
    weighted_choice,
)
from .auction import AuctionNode, auction_mwm
from .b_matching import (
    BMatchingError,
    b_matching_weight,
    distributed_b_matching,
    validate_b_matching,
)
from .checkers import check_matching, check_maximality
from .token_mis import TokenNode, run_token_selection
from .tree_mwm import TreeMWMNode, tree_mwm

__all__ = [
    "CountState",
    "X_SIDE",
    "Y_SIDE",
    "leaders_of",
    "run_counting",
    "AugmentationStats",
    "BipartiteMCMResult",
    "PhaseStats",
    "augment_to_level",
    "bipartite_mcm",
    "side_map_of",
    "GeneralMCMResult",
    "IterationStats",
    "general_mcm",
    "theory_iterations",
    "GenericMCMResult",
    "GenericPhase",
    "generic_mcm",
    "IsraeliItaiNode",
    "israeli_itai",
    "LocalViewNode",
    "flood_views",
    "view_to_graph",
    "LubyMISNode",
    "luby_mis",
    "sample_max_uniform",
    "spawn_rng",
    "spawn_seed",
    "weighted_choice",
    "AuctionNode",
    "auction_mwm",
    "check_matching",
    "check_maximality",
    "TokenNode",
    "run_token_selection",
    "BMatchingError",
    "b_matching_weight",
    "distributed_b_matching",
    "validate_b_matching",
    "TreeMWMNode",
    "tree_mwm",
]
