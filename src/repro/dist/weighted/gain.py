"""The wrap/gain machinery of Section 4.

For an edge ``(r, s)`` outside the matching, ``wrap(r, s)`` is the path
``(M(r), r), (r, s), (s, M(s))`` — one, two, or three edges depending on
which endpoints are matched.  Its *gain* is the weight change from flipping
the wrap, and the residual weight function ``w_M`` assigns each non-matching
edge exactly that gain (0 for matching edges).  Lemma 4.1: augmenting a
matching by the wraps of a disjoint matching M' yields a matching of weight
at least ``w(M) + w_M(M')``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ...graphs.graph import Edge, Graph, edge_key
from ...matching.core import Matching


def wrap_path(graph: Graph, matching: Matching, r: int, s: int) -> List[Edge]:
    """The edges of wrap(r, s) w.r.t. ``matching`` (r-s must be a non-M edge)."""
    if matching.contains_edge(r, s):
        raise ValueError(f"wrap is defined for non-matching edges, got ({r}, {s})")
    edges: List[Edge] = []
    mr = matching.mate(r)
    if mr is not None:
        edges.append(edge_key(mr, r))
    edges.append(edge_key(r, s))
    ms = matching.mate(s)
    if ms is not None:
        edges.append(edge_key(s, ms))
    return edges


def gain(graph: Graph, matching: Matching, r: int, s: int) -> float:
    """g(wrap(r, s)): the weight gained by augmenting along the wrap."""
    value = graph.weight(r, s)
    mr = matching.mate(r)
    if mr is not None:
        value -= graph.weight(r, mr)
    ms = matching.mate(s)
    if ms is not None:
        value -= graph.weight(s, ms)
    return value


def residual_weights(graph: Graph, matching: Matching) -> Dict[Edge, float]:
    """The full w_M map: positive gains for non-matching edges.

    Edges with non-positive gain are omitted — adding them can never help,
    and the black box must not pick zero-weight edges (Lemma 4.1 requires
    M' disjoint from M).
    """
    result: Dict[Edge, float] = {}
    for u, v, _ in graph.edges():
        if matching.contains_edge(u, v):
            continue
        g = gain(graph, matching, u, v)
        if g > 0:
            result[edge_key(u, v)] = g
    return result


def residual_graph(graph: Graph, matching: Matching) -> Graph:
    """G' = (V, {e : w_M(e) > 0}, w_M) — the black box's input in Algorithm 5."""
    gprime = Graph()
    gprime.add_nodes(graph.nodes)
    for (u, v), w in residual_weights(graph, matching).items():
        gprime.add_edge(u, v, w)
    return gprime


def apply_wraps(graph: Graph, matching: Matching,
                selected: Iterable[Edge]) -> Matching:
    """Line 5 of Algorithm 5: ``M <- M (+) union of wrap(e), e in M'``.

    ``selected`` must be a matching disjoint from ``matching`` (which holds
    whenever it was computed on the residual graph).  Implemented as the
    symmetric difference of Lemma 4.1; the result is validated structurally
    by the Matching constructor.
    """
    flip: Set[Edge] = set()
    for r, s in selected:
        if matching.contains_edge(r, s):
            raise ValueError(
                f"selected edge ({r}, {s}) is already matched; M' must be "
                f"disjoint from M"
            )
        flip.update(wrap_path(graph, matching, r, s))
    return matching.symmetric_difference(flip)
