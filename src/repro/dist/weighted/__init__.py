"""Weighted matching: Section 4 machinery, black boxes, Algorithm 5."""

from .algorithm5 import (
    BLACK_BOX_DELTA,
    MWMResult,
    WeightedIteration,
    approximate_mwm,
    default_iterations,
)
from .class_greedy import class_greedy_mwm, weight_class
from .gain import apply_wraps, gain, residual_graph, residual_weights, wrap_path
from .local_greedy import local_greedy_mwm

__all__ = [
    "BLACK_BOX_DELTA",
    "MWMResult",
    "WeightedIteration",
    "approximate_mwm",
    "default_iterations",
    "class_greedy_mwm",
    "weight_class",
    "apply_wraps",
    "gain",
    "residual_graph",
    "residual_weights",
    "wrap_path",
    "local_greedy_mwm",
]
