"""The Section 4 Remark: (1 - eps)-MWM in the LOCAL model.

The paper sketches an adaptation of the Hougardy-Vinkemeier PRAM algorithm:
enumerate all augmentations of length O(1/eps) via Algorithm 2's flooding,
compute each augmentation's gain, partition augmentations into gain classes
(class i holds gains in [2^{i-1}, 2^i)), and sweep the top O(log n) classes
heaviest-first, running an MIS on the conflict graph restricted to the
current class and discarding selected nodes plus their neighbors.  Repeating
the sweep O(1/eps) times yields a (1 - eps)-MWM in O(eps^-4 log^2 n) time
with linear-size messages.

Augmentations here are positive-gain alternating paths *and cycles*
(weighted matchings need cycle swaps, unlike the cardinality case); the
conflict relation is node-sharing, exactly as in Definition 3.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...congest.network import Network
from ...congest.policies import LOCAL
from ...graphs.graph import Graph
from ...matching.core import Matching
from ...matching.paths import (
    augmentation_edge_set,
    enumerate_weighted_augmentations,
)
from ..local_views import flood_views
from ..luby_mis import luby_mis


@dataclass
class HVSweep:
    iteration: int
    augmentations: int
    classes_swept: int
    applied: int
    matching_weight: float


@dataclass
class HVResult:
    matching: Matching
    sweeps: List[HVSweep] = field(default_factory=list)
    network: Optional[Network] = None

    @property
    def metrics(self):
        """Total distributed cost of this call (the run network's account)."""
        return self.network.metrics if self.network is not None else None


def hv_mwm(graph: Graph, eps: float = 0.25, seed: int = 0,
           sweeps: Optional[int] = None,
           network: Optional[Network] = None) -> HVResult:
    """Run the Remark's (1 - eps)-MWM; LOCAL model, small graphs only.

    ``sweeps`` defaults to ceil(1/eps) repetitions of the class-sweep.
    The enumeration radius is max_edges = 2 * ceil(1/eps) + 1.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    net = network if network is not None else Network(graph, policy=LOCAL, seed=seed)
    max_edges = 2 * math.ceil(1.0 / eps) + 1
    repetitions = sweeps if sweeps is not None else math.ceil(1.0 / eps)
    top_classes = max(1, math.ceil(math.log2(max(2, graph.num_nodes))))

    matching = Matching()
    result = HVResult(matching=matching, network=net)

    for it in range(1, repetitions + 1):
        mate = {v: matching.mate(v) for v in graph.nodes}
        flood_views(net, mate, rounds=2 * max_edges)  # Algorithm 2's cost
        augs = enumerate_weighted_augmentations(graph, matching, max_edges)
        if not augs:
            result.sweeps.append(HVSweep(it, 0, 0, 0, matching.weight(graph)))
            break

        # gain classes: class(g) = floor(log2 g) + 1  (gain in [2^{i-1}, 2^i))
        by_class: Dict[int, List[int]] = {}
        for idx, (_, _, g) in enumerate(augs):
            by_class.setdefault(math.floor(math.log2(g)) + 1, []).append(idx)
        classes = sorted(by_class, reverse=True)[:top_classes]

        # conflict adjacency over all enumerated augmentations
        node_members: Dict[int, List[int]] = {}
        for idx, (nodes, _, _) in enumerate(augs):
            for v in nodes:
                node_members.setdefault(v, []).append(idx)
        adjacency: List[Set[int]] = [set() for _ in augs]
        for members in node_members.values():
            for a in members:
                for b in members:
                    if a != b:
                        adjacency[a].add(b)

        removed: Set[int] = set()
        selected: List[int] = []
        swept = 0
        for c in classes:
            live = [i for i in by_class[c] if i not in removed]
            if not live:
                continue
            swept += 1
            sub = Graph()
            sub.add_nodes(live)
            live_set = set(live)
            for i in live:
                for j in adjacency[i]:
                    if j in live_set and i < j:
                        sub.add_edge(i, j)
            mis_net = Network(sub, policy=LOCAL, seed=seed * 131 + it * 17 + c)
            mis = luby_mis(mis_net)
            # Lemma 3.5 emulation charge: conflict rounds x augmentation radius
            net.metrics.charge_rounds(
                "hv_mis_emulation", mis_net.metrics.rounds * max_edges
            )
            for i in sorted(mis):
                selected.append(i)
                removed.add(i)
                removed.update(adjacency[i])

        applied = 0
        for i in selected:
            nodes, kind, _ = augs[i]
            edges = augmentation_edge_set(nodes, kind)
            matching = matching.symmetric_difference(edges)
            applied += 1
        net.metrics.charge_rounds("hv_apply", max_edges)

        result.sweeps.append(HVSweep(
            iteration=it,
            augmentations=len(augs),
            classes_swept=swept,
            applied=applied,
            matching_weight=matching.weight(graph),
        ))

    result.matching = matching
    return result
