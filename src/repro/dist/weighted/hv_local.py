"""The Section 4 Remark: (1 - eps)-MWM in the LOCAL model.

The paper sketches an adaptation of the Hougardy-Vinkemeier PRAM algorithm:
enumerate all augmentations of length O(1/eps) via Algorithm 2's flooding,
compute each augmentation's gain, partition augmentations into gain classes
(class i holds gains in [2^{i-1}, 2^i)), and sweep the top O(log n) classes
heaviest-first, running an MIS on the conflict graph restricted to the
current class and discarding selected nodes plus their neighbors.  Repeating
the sweep O(1/eps) times yields a (1 - eps)-MWM in O(eps^-4 log^2 n) time
with linear-size messages.

Augmentations here are positive-gain alternating paths *and cycles*
(weighted matchings need cycle swaps, unlike the cardinality case); the
conflict relation is node-sharing, exactly as in Definition 3.1.

The per-class MIS runs as a :class:`~repro.congest.runtime.Subnetwork` of
the physical network, so its rounds/messages land in the parent's
subnetwork account (``rounds_total``), faults reach the MIS nodes, and the
class sweeps show up as nested phases on any attached event bus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..._compat import warn_deprecated
from ...congest.network import Network
from ...congest.policies import LOCAL
from ...runtime import PhaseDriver, ProtocolResult
from ...graphs.graph import Graph
from ...matching.core import Matching
from ...matching.paths import (
    augmentation_edge_set,
    enumerate_weighted_augmentations,
)
from ..local_views import flood_views
from ..luby_mis import luby_mis


@dataclass
class HVSweep:
    iteration: int
    augmentations: int
    classes_swept: int
    applied: int
    matching_weight: float


@dataclass
class HVResult(ProtocolResult):
    """Result of the HV-style sweep: the matching plus per-sweep traces."""

    sweeps: List[HVSweep] = field(default_factory=list)


def _class_mis(net: Network, driver: PhaseDriver, sub: Graph, it: int, c: int,
               max_edges: int, seed: int, subnetworks: str) -> Set[int]:
    """MIS on one gain class's conflict subgraph; Lemma 3.5 charge."""
    if subnetworks == "detached":
        warn_deprecated("hv_detached", stacklevel=3)
        mis_net = Network(sub, policy=LOCAL, seed=seed * 131 + it * 17 + c)
        mis = luby_mis(mis_net)
        net.metrics.charge_rounds(
            "hv_mis_emulation", mis_net.metrics.rounds * max_edges
        )
        return mis
    # Lemma 3.5 emulation charge: conflict rounds x augmentation radius
    with driver.subnetwork(sub, label="class_mis",
                           phase=f"class={c} sweep={it}",
                           policy=LOCAL, seed_path=(it, c),
                           emulation_factor=max_edges,
                           charge_label="hv_mis_emulation") as subnet:
        return luby_mis(subnet, context=f"class={c} sweep={it}")


def hv_mwm(graph: Graph, eps: float = 0.25, seed: int = 0,
           sweeps: Optional[int] = None,
           network: Optional[Network] = None,
           subnetworks: str = "inherit") -> HVResult:
    """Run the Remark's (1 - eps)-MWM; LOCAL model, small graphs only.

    ``sweeps`` defaults to ceil(1/eps) repetitions of the class-sweep.
    The enumeration radius is max_edges = 2 * ceil(1/eps) + 1.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    if subnetworks not in ("inherit", "detached"):
        raise ValueError("subnetworks must be 'inherit' or 'detached'")
    net = network if network is not None else Network(graph, policy=LOCAL, seed=seed)
    max_edges = 2 * math.ceil(1.0 / eps) + 1
    repetitions = sweeps if sweeps is not None else math.ceil(1.0 / eps)
    top_classes = max(1, math.ceil(math.log2(max(2, graph.num_nodes))))

    matching = Matching()
    result = HVResult(matching=matching, network=net)

    driver = PhaseDriver(net, "hv_mwm")
    for it in range(1, repetitions + 1):
        with driver.phase(f"sweep={it}") as ph:
            mate = {v: matching.mate(v) for v in graph.nodes}
            flood_views(net, mate, rounds=2 * max_edges)  # Algorithm 2's cost
            augs = enumerate_weighted_augmentations(graph, matching, max_edges)
            if not augs:
                weight = matching.weight(graph)
                result.sweeps.append(HVSweep(it, 0, 0, 0, weight))
                ph.set_detail(augmentations=0, applied=0,
                              matching_weight=weight)
                break

            # gain classes: class(g) = floor(log2 g) + 1 (gain in [2^{i-1}, 2^i))
            by_class: Dict[int, List[int]] = {}
            for idx, (_, _, g) in enumerate(augs):
                by_class.setdefault(math.floor(math.log2(g)) + 1, []).append(idx)
            classes = sorted(by_class, reverse=True)[:top_classes]

            # conflict adjacency over all enumerated augmentations
            node_members: Dict[int, List[int]] = {}
            for idx, (nodes, _, _) in enumerate(augs):
                for v in nodes:
                    node_members.setdefault(v, []).append(idx)
            adjacency: List[Set[int]] = [set() for _ in augs]
            for members in node_members.values():
                for a in members:
                    for b in members:
                        if a != b:
                            adjacency[a].add(b)

            removed: Set[int] = set()
            selected: List[int] = []
            swept = 0
            for c in classes:
                live = [i for i in by_class[c] if i not in removed]
                if not live:
                    continue
                swept += 1
                sub = Graph()
                sub.add_nodes(live)
                live_set = set(live)
                for i in live:
                    for j in adjacency[i]:
                        if j in live_set and i < j:
                            sub.add_edge(i, j)
                mis = _class_mis(net, driver, sub, it, c, max_edges, seed,
                                 subnetworks)
                for i in sorted(mis):
                    selected.append(i)
                    removed.add(i)
                    removed.update(adjacency[i])

            applied = 0
            gained = matching.weight(graph)
            for i in selected:
                nodes, kind, _ = augs[i]
                edges = augmentation_edge_set(nodes, kind)
                matching = matching.symmetric_difference(edges)
                applied += 1
            net.metrics.charge_rounds("hv_apply", max_edges)
            weight = matching.weight(graph)
            if applied:
                driver.emit_augmentation(phase=f"sweep={it}", paths=applied,
                                         size=weight, gain=weight - gained)

            result.sweeps.append(HVSweep(
                iteration=it,
                augmentations=len(augs),
                classes_swept=swept,
                applied=applied,
                matching_weight=weight,
            ))
            ph.set_detail(augmentations=len(augs), classes_swept=swept,
                          applied=applied, matching_weight=weight)

    result.matching = matching
    return result
