"""Locally-heaviest-edge distributed matching (Preis-style, CONGEST).

An alternative delta-MWM black box: every free node points at its heaviest
free incident edge (deterministic tie-break by edge id); mutual pointers
match.  Every matched edge is locally heaviest among the remaining edges at
the moment it is added, so the result is a 1/2-MWM [Preis 1999; Hoepman
2004].  The globally heaviest remaining edge is always mutual, so at least
one edge is matched per iteration: termination is certain within n/2
iterations (2 rounds each), and in practice the algorithm finishes in a few
rounds — but unlike the paper's black box it has no O(log n) worst-case
bound (a chain of strictly decreasing weights serializes it).  T12 compares
the two black boxes inside Algorithm 5.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ...congest.network import Network
from ...congest.node import Inbox, NodeAlgorithm, NodeContext, Outbox
from ...congest.policies import CONGEST, BandwidthPolicy
from ...runtime import as_network, register_map
from ...graphs.graph import Edge, Graph, edge_key
from ...matching.core import Matching

_FREE = "f"
_POINT = "p"
_MATCHED = "m"


class LocalGreedyNode(NodeAlgorithm):
    """Node program for the mutual-pointer algorithm."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        initial: Dict[int, Optional[int]] = ctx.shared.get("initial_mate", {})
        allowed: Optional[Set[Edge]] = ctx.shared.get("allowed_edges")
        self.mate: Optional[int] = initial.get(ctx.node_id)
        self.eligible: Set[int] = {
            u for u in ctx.neighbors
            if allowed is None or edge_key(ctx.node_id, u) in allowed
        }
        self.free_neighbors: Set[int] = set()
        self.phase = "announce"
        self.target: Optional[int] = None

    def _heaviest_free(self) -> Optional[int]:
        """The free neighbor across the heaviest eligible edge (ties by id)."""
        best: Optional[Tuple[float, int]] = None
        for u in self.free_neighbors:
            cand = (self.ctx.weight(u), -u)
            if best is None or cand > best:
                best = cand
        return -best[1] if best is not None else None

    def _stuck(self) -> Optional[Outbox]:
        if self.mate is not None or not self.free_neighbors:
            return self.halt({"mate": self.mate})
        return None

    def _point(self) -> Outbox:
        self.phase = "point"
        self.target = self._heaviest_free()
        assert self.target is not None
        return {self.target: _POINT}

    def start(self) -> Outbox:
        if not self.eligible:
            return self.halt({"mate": self.mate})
        tag = _FREE if self.mate is None else _MATCHED
        return {u: tag for u in self.eligible}

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.phase == "announce":
            self.free_neighbors = {u for u, t in inbox.items()
                                   if t == _FREE and u in self.eligible}
            stuck = self._stuck()
            if stuck is not None:
                return stuck
            return self._point()
        if self.phase == "point":
            # pointers arrive; mutual pointer = matched edge
            self.phase = "notify"
            pointers = {u for u, t in inbox.items() if t == _POINT}
            if self.target in pointers:
                self.mate = self.target
                return {u: _MATCHED for u in self.eligible}
            return {}
        # phase == "notify": prune matched neighbors and point again
        for u, t in inbox.items():
            if t == _MATCHED:
                self.free_neighbors.discard(u)
        stuck = self._stuck()
        if stuck is not None:
            return stuck
        return self._point()


def local_greedy_mwm(graph: Graph, seed: int = 0,
                     policy: BandwidthPolicy = CONGEST,
                     initial: Optional[Matching] = None,
                     allowed_edges: Optional[Iterable[Edge]] = None,
                     network: Optional[Network] = None) -> Tuple[Matching, Network]:
    """Run the mutual-pointer 1/2-MWM; returns (matching, network)."""
    network = as_network(network) if network is not None else None
    net = network if network is not None else Network(graph, policy=policy, seed=seed)
    initial = initial if initial is not None else Matching()
    shared: Dict[str, object] = {
        "initial_mate": {v: initial.mate(v) for v in graph.nodes},
    }
    if allowed_edges is not None:
        shared["allowed_edges"] = {edge_key(u, v) for u, v in allowed_edges}
    result = net.run(LocalGreedyNode, protocol="local_greedy", shared=shared)
    return Matching.from_mate_map(register_map(result.outputs)), net
