"""The delta-MWM black box: weight-class greedy (substitute for Lemma 4.4).

The paper plugs the PODC 2007 algorithm of Lotker, Patt-Shamir and Rosen
into Algorithm 5 as a (1/4 - eps)-MWM running in O(log n) rounds.  We
implement the standard weight-class reduction with the same approximation
guarantee and an extra logarithmic round factor (see DESIGN.md,
"Substitutions"):

1. round every weight down to a power of two (class(e) = floor(log2 w(e)));
2. drop classes more than ceil(log2(2n / eps)) below the top class — their
   total weight is below (eps/2) * w(M*), because a maximum matching has at
   most n/2 edges each lighter than eps * w_max / n;
3. sweep classes heaviest-first, running Israeli-Itai maximal matching on
   each class's edges among still-free nodes.

Guarantee: every optimal edge not taken is blocked by a matched edge of an
equal-or-heavier class at one of its endpoints, each matched edge is blamed
at most twice, and class rounding costs another factor 2 — a
(1/4)(1 - eps)-MWM, i.e. delta >= 1/5 for eps <= 1/5, matching the delta
Theorem 4.5 uses.

Like the paper, nodes are assumed to know a common bound on the maximum
weight (the analogue of W_max); pass ``known_max=False`` to instead compute
it with a flood (diameter rounds are then charged).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple

from ...runtime.metrics import Metrics
from ...congest.network import Network
from ...congest.policies import CONGEST, BandwidthPolicy
from ...runtime import as_network
from ...congest.utilities import flood_max
from ...graphs.graph import Edge, Graph, edge_key
from ...matching.core import Matching
from ..israeli_itai import israeli_itai


def weight_class(weight: float) -> int:
    """floor(log2 w); weights are positive so this is well defined."""
    if weight <= 0:
        raise ValueError("weights must be positive")
    return math.floor(math.log2(weight))


def class_greedy_mwm(graph: Graph, seed: int = 0, eps: float = 0.2,
                     policy: BandwidthPolicy = CONGEST,
                     known_max: bool = True,
                     network: Optional[Network] = None) -> Tuple[Matching, Network]:
    """(1/4)(1 - eps)-approximate MWM; returns (matching, network).

    The returned network carries the run's metrics (rounds include every
    per-class Israeli-Itai execution, plus the flood when ``known_max`` is
    False).
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    network = as_network(network) if network is not None else None
    net = network if network is not None else Network(graph, policy=policy, seed=seed)
    matching = Matching()
    if graph.num_edges == 0:
        return matching, net

    if known_max:
        w_max = max(w for _, _, w in graph.edges())
    else:
        local_max = {
            v: max((graph.weight(v, u) for u in graph.neighbors(v)), default=0.0)
            for v in graph.nodes
        }
        # flood for diameter rounds so the maximum reaches everyone
        diam = _flood_rounds(graph)
        values = flood_max(net, {v: local_max[v] for v in graph.nodes}, diam)
        w_max = max(values.values())

    top = weight_class(w_max)
    depth = math.ceil(math.log2(2 * graph.num_nodes / eps))
    cutoff = top - depth

    by_class: Dict[int, Set[Edge]] = {}
    for u, v, w in graph.edges():
        c = weight_class(w)
        if c >= cutoff:
            by_class.setdefault(c, set()).add(edge_key(u, v))

    for c in sorted(by_class, reverse=True):
        matching = israeli_itai(net, initial=matching,
                                allowed_edges=by_class[c])
    return matching, net


def _flood_rounds(graph: Graph) -> int:
    """Rounds needed for a flood: the largest component's diameter."""
    worst = 0
    for comp in graph.connected_components():
        if len(comp) < 2:
            continue
        sub = graph.subgraph(comp)
        worst = max(worst, sub.diameter())
    return max(worst, 1)
