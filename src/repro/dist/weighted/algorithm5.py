"""Algorithm 5 / Theorem 4.5: (1/2 - eps)-approximate MWM (CONGEST).

Reduces (1/2 - eps)-MWM to any constant-factor delta-MWM black box: each of
the ceil((3 / 2 delta) ln(2 / eps)) iterations recomputes the residual
weights w_M (one round of mate-weight exchange lets both endpoints of every
edge evaluate their gain locally), runs the black box on the positive-gain
subgraph, and augments along the wraps of the returned matching M'
(Lemma 4.1 guarantees the result is a matching of weight at least
w(M) + w_M(M')).  Lemma 4.3 gives the convergence
w(M_i) >= 1/2 (1 - e^{-2 delta i / 3}) w(M*), which experiment T6 traces.

Black boxes:

* ``class_greedy`` (default) — the Lemma 4.4 substitute, delta = 1/5;
* ``local_greedy`` — Preis-style 1/2-MWM, delta = 1/2 (fewer iterations, no
  worst-case round bound);
* any callable ``(graph, seed) -> (Matching, Network)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ...congest.events import Augmentation, PhaseEnd, PhaseStart
from ...congest.network import Network
from ...congest.policies import CONGEST, BandwidthPolicy
from ...congest.utilities import exchange_tokens
from ...graphs.graph import Graph
from ...matching.core import Matching
from .class_greedy import class_greedy_mwm
from .gain import apply_wraps, residual_graph
from .local_greedy import local_greedy_mwm

BlackBox = Callable[[Graph, int], Tuple[Matching, Network]]

BLACK_BOX_DELTA = {
    "class_greedy": 1.0 / 5.0,
    "local_greedy": 1.0 / 2.0,
}


@dataclass
class WeightedIteration:
    iteration: int
    residual_edges: int
    selected_edges: int
    gain_applied: float
    matching_weight: float


@dataclass
class MWMResult:
    matching: Matching
    iterations: List[WeightedIteration] = field(default_factory=list)
    network: Optional[Network] = None
    delta: float = 0.0

    @property
    def metrics(self):
        """Total distributed cost of this call (the run network's account)."""
        return self.network.metrics if self.network is not None else None

    @property
    def iterations_used(self) -> int:
        return len(self.iterations)


def default_iterations(delta: float, eps: float) -> int:
    """Line 2 of Algorithm 5: ceil((3 / 2 delta) ln(2 / eps))."""
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    return math.ceil((3.0 / (2.0 * delta)) * math.log(2.0 / eps))


def _resolve_black_box(black_box) -> Tuple[BlackBox, float]:
    if callable(black_box):
        return black_box, BLACK_BOX_DELTA["class_greedy"]
    if black_box == "class_greedy":
        return (lambda g, s: class_greedy_mwm(g, seed=s),
                BLACK_BOX_DELTA["class_greedy"])
    if black_box == "local_greedy":
        return (lambda g, s: local_greedy_mwm(g, seed=s),
                BLACK_BOX_DELTA["local_greedy"])
    raise ValueError(f"unknown black box {black_box!r}")


def approximate_mwm(graph: Graph, eps: float = 0.1, seed: int = 0,
                    black_box="class_greedy",
                    policy: BandwidthPolicy = CONGEST,
                    iterations: Optional[int] = None,
                    network: Optional[Network] = None) -> MWMResult:
    """Run Algorithm 5; returns the matching with a per-iteration trace."""
    box, delta = _resolve_black_box(black_box)
    if iterations is None:
        iterations = default_iterations(delta, eps)
    net = network if network is not None else Network(graph, policy=policy, seed=seed)

    matching = Matching()
    result = MWMResult(matching=matching, network=net, delta=delta)

    observed = net.wants(PhaseStart)
    for i in range(1, iterations + 1):
        if observed:
            net.emit(PhaseStart(algorithm="algorithm5",
                                phase=f"iteration={i}"))
        # one round in which every node announces the weight of its matched
        # edge; afterwards both endpoints of each edge can evaluate w_M
        mate_weights = {
            v: (graph.weight(v, matching.mate(v))
                if matching.mate(v) is not None else 0.0)
            for v in graph.nodes
        }
        exchange_tokens(net, mate_weights)

        gprime = residual_graph(graph, matching)
        if gprime.num_edges == 0:
            if observed:
                net.emit(PhaseEnd(algorithm="algorithm5",
                                  phase=f"iteration={i}",
                                  detail={"residual_edges": 0}))
            break
        selected, sub_net = box(gprime, seed * 7919 + i)
        net.metrics.absorb(sub_net.metrics)

        before = matching.weight(graph)
        matching = apply_wraps(graph, matching, selected.edges())
        after = matching.weight(graph)
        # wrap application is a constant-round local step (Theorem 4.5)
        net.metrics.charge_rounds("wrap_apply", 2)

        result.iterations.append(WeightedIteration(
            iteration=i,
            residual_edges=gprime.num_edges,
            selected_edges=selected.size,
            gain_applied=after - before,
            matching_weight=after,
        ))
        if net.wants(Augmentation) and selected.size:
            net.emit(Augmentation(algorithm="algorithm5",
                                  phase=f"iteration={i}",
                                  paths=selected.size,
                                  size=after, gain=after - before))
        if observed:
            net.emit(PhaseEnd(algorithm="algorithm5",
                              phase=f"iteration={i}", detail={
                                  "residual_edges": gprime.num_edges,
                                  "selected_edges": selected.size,
                                  "matching_weight": after,
                              }))

    result.matching = matching
    return result
