"""Algorithm 5 / Theorem 4.5: (1/2 - eps)-approximate MWM (CONGEST).

Reduces (1/2 - eps)-MWM to any constant-factor delta-MWM black box: each of
the ceil((3 / 2 delta) ln(2 / eps)) iterations recomputes the residual
weights w_M (one round of mate-weight exchange lets both endpoints of every
edge evaluate their gain locally), runs the black box on the positive-gain
subgraph, and augments along the wraps of the returned matching M'
(Lemma 4.1 guarantees the result is a matching of weight at least
w(M) + w_M(M')).  Lemma 4.3 gives the convergence
w(M_i) >= 1/2 (1 - e^{-2 delta i / 3}) w(M*), which experiment T6 traces.

Black boxes:

* ``class_greedy`` (default) — the Lemma 4.4 substitute, delta = 1/5;
* ``local_greedy`` — Preis-style 1/2-MWM, delta = 1/2 (fewer iterations, no
  worst-case round bound);
* any callable ``(graph, seed, network) -> (Matching, Network)`` — run on a
  :class:`~repro.congest.runtime.Subnetwork` of the parent (faults, bus and
  accounting inherited).  The historical two-argument form
  ``(graph, seed) -> (Matching, Network)`` still works but is deprecated:
  it builds a detached network that inherits nothing.

The black box runs over the same physical network, so its cost is absorbed
verbatim into the parent metrics (``fold="absorb"``); the per-iteration
sub-seed keeps the historical ``seed * 7919 + i`` derivation (golden-pinned
by the experiment suite) and is passed explicitly to the subnetwork.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..._compat import warn_deprecated
from ...congest.network import Network
from ...congest.policies import CONGEST, BandwidthPolicy
from ...runtime import PhaseDriver, ProtocolResult, Subnetwork
from ...congest.utilities import exchange_tokens
from ...graphs.graph import Graph
from ...matching.core import Matching
from .class_greedy import class_greedy_mwm
from .gain import apply_wraps, residual_graph
from .local_greedy import local_greedy_mwm

BlackBox = Callable[..., Tuple[Matching, Network]]

BLACK_BOX_DELTA = {
    "class_greedy": 1.0 / 5.0,
    "local_greedy": 1.0 / 2.0,
}


@dataclass
class WeightedIteration:
    iteration: int
    residual_edges: int
    selected_edges: int
    gain_applied: float
    matching_weight: float


@dataclass
class MWMResult(ProtocolResult):
    """Result of Algorithm 5: the matching plus the per-iteration trace."""

    iterations: List[WeightedIteration] = field(default_factory=list)
    delta: float = 0.0

    @property
    def iterations_used(self) -> int:
        return len(self.iterations)


def default_iterations(delta: float, eps: float) -> int:
    """Line 2 of Algorithm 5: ceil((3 / 2 delta) ln(2 / eps))."""
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    return math.ceil((3.0 / (2.0 * delta)) * math.log(2.0 / eps))


def _resolve_black_box(black_box) -> Tuple[BlackBox, float, bool]:
    """Returns (runner, delta, composable).

    A *composable* runner accepts ``network=`` and runs on the subnetwork;
    a legacy two-argument callable is detached (deprecated shim).
    """
    if callable(black_box):
        composable = "network" in inspect.signature(black_box).parameters
        return black_box, BLACK_BOX_DELTA["class_greedy"], composable
    if black_box == "class_greedy":
        return (lambda g, s, network: class_greedy_mwm(g, seed=s,
                                                       network=network),
                BLACK_BOX_DELTA["class_greedy"], True)
    if black_box == "local_greedy":
        return (lambda g, s, network: local_greedy_mwm(g, seed=s,
                                                       network=network),
                BLACK_BOX_DELTA["local_greedy"], True)
    raise ValueError(f"unknown black box {black_box!r}")


def _run_black_box(driver: PhaseDriver, box: BlackBox, composable: bool,
                   gprime: Graph, sub_seed: int, i: int) -> Matching:
    """One black-box invocation; cost is absorbed into the parent."""
    net = driver.network
    if not composable:
        warn_deprecated("black_box_detached", stacklevel=3)
        selected, sub_net = box(gprime, sub_seed)
        net.metrics.absorb(sub_net.metrics)
        net.metrics.record_subnetwork("black_box", sub_net.metrics,
                                      physical=True)
        return selected
    with driver.subnetwork(gprime, label="black_box",
                           phase=f"black_box i={i}",
                           seed=sub_seed, fold="absorb") as sub:
        selected, _ = box(gprime, sub_seed, network=sub.network)
    return selected


def approximate_mwm(graph: Graph, eps: float = 0.1, seed: int = 0,
                    black_box="class_greedy",
                    policy: BandwidthPolicy = CONGEST,
                    iterations: Optional[int] = None,
                    network: Optional[Network] = None) -> MWMResult:
    """Run Algorithm 5; returns the matching with a per-iteration trace."""
    box, delta, composable = _resolve_black_box(black_box)
    if iterations is None:
        iterations = default_iterations(delta, eps)
    net = network if network is not None else Network(graph, policy=policy, seed=seed)

    matching = Matching()
    result = MWMResult(matching=matching, network=net, delta=delta)

    driver = PhaseDriver(net, "algorithm5")
    for i in range(1, iterations + 1):
        with driver.phase(f"iteration={i}") as ph:
            # one round in which every node announces the weight of its
            # matched edge; afterwards both endpoints of each edge can
            # evaluate w_M
            mate_weights = {
                v: (graph.weight(v, matching.mate(v))
                    if matching.mate(v) is not None else 0.0)
                for v in graph.nodes
            }
            exchange_tokens(net, mate_weights)

            gprime = residual_graph(graph, matching)
            if gprime.num_edges == 0:
                ph.set_detail(residual_edges=0)
                break
            selected = _run_black_box(driver, box, composable, gprime,
                                      seed * 7919 + i, i)

            before = matching.weight(graph)
            matching = apply_wraps(graph, matching, selected.edges())
            after = matching.weight(graph)
            # wrap application is a constant-round local step (Theorem 4.5)
            net.metrics.charge_rounds("wrap_apply", 2)

            result.iterations.append(WeightedIteration(
                iteration=i,
                residual_edges=gprime.num_edges,
                selected_edges=selected.size,
                gain_applied=after - before,
                matching_weight=after,
            ))
            if selected.size:
                driver.emit_augmentation(phase=f"iteration={i}",
                                         paths=selected.size,
                                         size=after, gain=after - before)
            ph.set_detail(residual_edges=gprime.num_edges,
                          selected_edges=selected.size,
                          matching_weight=after)

    result.matching = matching
    return result
