"""The Israeli-Itai randomized maximal matching algorithm (CONGEST).

The classical baseline the paper improves on: a 1/2-MCM (by maximality) in
O(log n) rounds w.h.p. [Israeli & Itai 1986].  Each iteration costs three
rounds:

1. *propose* — every active node flips a coin; "males" send a proposal to a
   uniformly random free eligible neighbor;
2. *accept*  — "females" accept one received proposal uniformly at random
   (the accepting edge is matched: the male proposed unconditionally);
3. *notify*  — newly matched nodes announce it; everyone prunes their free
   neighbor sets; nodes that are matched or isolated halt.

The protocol supports a pre-existing matching and an edge filter so that the
weighted black box (class-greedy) can run it on weight-class subgraphs among
still-free nodes.  Termination is Las Vegas: nodes halt exactly when no
eligible free-free edge remains, so the result is always maximal on the
eligible subgraph.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..congest import compiled as _compiled
from ..congest.compiled import maybe_njit, rng_randbelow, rng_random
from ..congest.kernels import RoundKernel, register_kernel
from ..congest.network import Network

np = _compiled.np
from ..congest.node import BROADCAST, Inbox, NodeAlgorithm, NodeContext, Outbox
from ..runtime import as_network, register_map
from ..graphs.graph import Edge, edge_key
from ..matching.core import Matching

# wire tags (single characters keep messages at a few bits)
_FREE = "f"
_PROPOSE = "p"
_ACCEPT = "a"
_MATCHED = "m"


class IsraeliItaiNode(NodeAlgorithm):
    """Node program for one Israeli-Itai execution."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        initial_mate: Dict[int, Optional[int]] = ctx.shared.get("initial_mate", {})
        allowed: Optional[Set[Edge]] = ctx.shared.get("allowed_edges")
        self.mate: Optional[int] = initial_mate.get(ctx.node_id)
        self.eligible_neighbors: Set[int] = {
            u for u in ctx.neighbors
            if allowed is None or edge_key(ctx.node_id, u) in allowed
        }
        self.free_neighbors: Set[int] = set()
        self.phase = "announce"
        self.proposed_to: Optional[int] = None

    # -- helpers ---------------------------------------------------------
    def _is_free(self) -> bool:
        return self.mate is None

    def _finish_if_stuck(self) -> Optional[Outbox]:
        """Halt when matched or when no free eligible neighbor remains."""
        if not self._is_free() or not self.free_neighbors:
            return self.halt({"mate": self.mate})
        return None

    # -- protocol ----------------------------------------------------------
    def start(self) -> Outbox:
        if not self.eligible_neighbors:
            return self.halt({"mate": self.mate})
        if self._is_free():
            return {u: _FREE for u in self.eligible_neighbors}
        # matched nodes only announce their status, then leave
        return {u: _MATCHED for u in self.eligible_neighbors}

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.phase == "announce":
            self.free_neighbors = {
                u for u, tag in inbox.items()
                if tag == _FREE and u in self.eligible_neighbors
            }
            self.phase = "propose"
            stuck = self._finish_if_stuck()
            if stuck is not None:
                return stuck
            return self._propose()
        if self.phase == "propose":
            # inbox holds proposals; acceptance decision
            self.phase = "accept"
            proposals = [u for u, tag in inbox.items() if tag == _PROPOSE]
            if self.proposed_to is None and proposals:
                chosen = self.rng.choice(sorted(proposals))
                self.mate = chosen
                return {chosen: _ACCEPT}
            return {}
        if self.phase == "accept":
            # inbox holds acceptances; males learn the outcome
            self.phase = "notify"
            accepted_by = [u for u, tag in inbox.items() if tag == _ACCEPT]
            if self.proposed_to is not None and self.proposed_to in accepted_by:
                self.mate = self.proposed_to
            self.proposed_to = None
            if not self._is_free():
                return {u: _MATCHED for u in self.eligible_neighbors}
            return {}
        # phase == "notify": prune freshly matched neighbors, loop again
        for u, tag in inbox.items():
            if tag == _MATCHED:
                self.free_neighbors.discard(u)
        self.phase = "propose"
        stuck = self._finish_if_stuck()
        if stuck is not None:
            return stuck
        return self._propose()

    def _propose(self) -> Outbox:
        self.phase = "propose"
        if self.rng.random() < 0.5 and self.free_neighbors:
            self.proposed_to = self.rng.choice(sorted(self.free_neighbors))
            return {self.proposed_to: _PROPOSE}
        self.proposed_to = None
        return {}


# ---------------------------------------------------------------------------
# compiled-tier passes (numba-jitted when available, interpreted otherwise)
# ---------------------------------------------------------------------------

@maybe_njit
def _ii_advance(mt, mti, ids, prefix, live, matched, free_deg, finished,
                proposed, elig_flat, elig_indptr, tgt, mask):
    """Jitted :meth:`IsraeliItaiKernel._advance`: halt-or-propose over the
    live list, drawing the node program's exact coin + choice sequence from
    the packed MT19937 pool.  Returns (new_live, proposers, targets)."""
    n_live = live.shape[0]
    new_live = np.empty(n_live, dtype=np.int64)
    props_p = np.empty(n_live, dtype=np.int64)
    props_t = np.empty(n_live, dtype=np.int64)
    nl = 0
    npr = 0
    for idx in range(n_live):
        i = live[idx]
        if matched[i] != 0 or free_deg[i] == 0:
            finished[i] = 1
            continue
        new_live[nl] = i
        nl += 1
        if rng_random(mt, mti, ids, prefix, i) < 0.5:
            # rng.choice over the believed-free targets (ascending order,
            # length == free_deg[i]) consumes exactly one randbelow draw
            k = rng_randbelow(mt, mti, ids, prefix, i, free_deg[i])
            seen = 0
            ti = -1
            for ptr in range(elig_indptr[i], elig_indptr[i + 1]):
                e = elig_flat[ptr]
                if mask[e] != 0:
                    if seen == k:
                        ti = tgt[e]
                        break
                    seen += 1
            proposed[i] = 1
            props_p[npr] = i
            props_t[npr] = ti
            npr += 1
        else:
            proposed[i] = 0
    return new_live[:nl], props_p[:npr], props_t[:npr]


@maybe_njit
def _ii_accept(mt, mti, ids, prefix, props_p, props_t, proposed, n):
    """Jitted accept phase: group proposals by target (ascending target,
    candidates ascending by proposer — the engine's dict insertion order)
    and let each non-proposing target draw one uniformly."""
    m = props_p.shape[0]
    sel = np.argsort(props_t * (n + 1) + props_p)
    acc_t = np.empty(m, dtype=np.int64)
    acc_p = np.empty(m, dtype=np.int64)
    na = 0
    pos = 0
    while pos < m:
        t = props_t[sel[pos]]
        end = pos
        while end < m and props_t[sel[end]] == t:
            end += 1
        if proposed[t] == 0:
            k = rng_randbelow(mt, mti, ids, prefix, t, end - pos)
            acc_t[na] = t
            acc_p[na] = props_p[sel[pos + k]]
            na += 1
        pos = end
    return acc_t[:na], acc_p[:na]


@maybe_njit
def _ii_prune(newly, elig_flat, elig_indptr, rev, tgt, mask, free_deg):
    """Jitted prune scatter: clear the reverse slot of every eligible edge
    of a newly matched node and decrement the targets' free degrees."""
    for j in range(newly.shape[0]):
        v = newly[j]
        for ptr in range(elig_indptr[v], elig_indptr[v + 1]):
            e = elig_flat[ptr]
            mask[rev[e]] = 0
            free_deg[tgt[e]] -= 1


@register_kernel(IsraeliItaiNode)
class IsraeliItaiKernel(RoundKernel):
    """Vectorized superstep executor for :class:`IsraeliItaiNode`.

    State lives in packed per-node-index arrays (mate, free-degree) plus a
    per-edge-slot boolean mask ``free[e]`` meaning "the owner of slot ``e``
    believes its target is free".  One engine round maps to one :meth:`step`
    in a four-phase cycle mirroring the node program exactly:

    * ``announce`` (round 1) — deliver the f/m status tags, halt matched and
      stuck nodes, flip coins and stage proposals;
    * ``accept`` (rounds 2+3t) — deliver proposals; each non-proposing
      target picks one uniformly (same ``rng.choice`` over the same sorted
      candidate list as the node program) and stages an acceptance;
    * ``notify`` (rounds 3+3t) — deliver acceptances; both endpoints of
      every new edge stage an "m" announcement to all eligible neighbors;
    * ``prune`` (rounds 4+3t) — deliver the announcements: clear the
      reverse slot of every eligible edge of a newly matched node (the CSR
      ``rev`` array makes "me in my neighbor's row" O(1)), halt matched and
      stuck nodes, and stage the next proposals.

    All wire tags are single characters (12 bits), so pricing a round is
    one memoized charge plus a message count.  numpy (when importable)
    builds the initial free mask and free-degree counts in bulk scatter
    operations; the round loop itself runs on python lists, whose
    single-slot probes are faster than numpy scalar boxing at CONGEST
    degrees.
    """

    # audited: node-local state, read-only shared, single-char payloads
    shardable = True
    # audited for the compiled tier: every draw goes through :meth:`rng`
    # (coin, proposal choice, accept choice) and the jitted passes below
    # replay the exact per-node draw order over packed state
    compiled_audited = True
    #: sharded fast path: (a, b) index pairs — proposals (proposer,
    #: target) routed to the target's shard, acceptances (accepter,
    #: proposer) broadcast so every worker keeps mate/mask/free-degree
    #: globally consistent (announce and prune need no records at all:
    #: their information content is derivable from the replicated state)
    shard_words = 2

    def setup(self, shared: Dict[str, Any]) -> None:
        A = self.arrays
        np = A.np
        n = A.n
        order = A.order
        tgt = A.tgt
        initial_mate: Dict[int, Optional[int]] = shared.get("initial_mate", {})
        allowed: Optional[Set[Edge]] = shared.get("allowed_edges")

        self.mate: List[Optional[int]] = [initial_mate.get(v) for v in order]
        self.finished = [False] * n
        self.proposed = [False] * n

        # eligible slots per node (CSR rows are sorted by neighbor id, so
        # these lists are ascending by target id — which keeps the
        # rng.choice candidate order identical to the node program's
        # ``sorted(free_neighbors)``)
        if allowed is None:
            elig: List[List[int]] = [list(A.row(i)) for i in range(n)]
        else:
            elig = []
            for i in range(n):
                vid = order[i]
                elig.append([e for e in A.row(i)
                             if edge_key(vid, order[tgt[e]]) in allowed])
        self.elig = elig
        self.elig_count = [len(s) for s in elig]

        live: List[int] = []
        announce = 0
        for i in range(n):
            if elig[i]:
                live.append(i)
                announce += len(elig[i])
            else:
                self.finished[i] = True  # start(): no eligible edge -> halt
        self.live = live
        self._announce_count = announce

        # per-slot "I believe my target is free" mask and its per-node count.
        # numpy builds the initial mask in bulk scatters, then hands off to
        # plain python lists: every later read is a single-slot probe, where
        # list indexing beats numpy scalar boxing (measured; the per-cycle
        # pruning touches only the newly matched nodes' few slots)
        free0 = [m is None for m in self.mate]
        if np is not None and announce:
            all_el = (np.concatenate([np.asarray(elig[i], dtype=np.int64)
                                      for i in live])
                      if allowed is not None else
                      np.arange(A.num_slots, dtype=np.int64))
            np_mask = np.zeros(A.num_slots, dtype=bool)
            np_mask[all_el] = np.asarray(free0, dtype=bool)[A.np_tgt[all_el]]
            free_np = np.zeros(n, dtype=np.int64)
            slot_owner = np.repeat(np.arange(n, dtype=np.int64),
                                   np.diff(A.np_indptr))
            on = all_el[np_mask[all_el]]
            np.add.at(free_np, slot_owner[on], 1)
            mask = np_mask.tolist()
            free_deg = free_np.tolist()
        else:
            mask = [False] * A.num_slots
            free_deg = [0] * n
            for i in live:
                c = 0
                for e in elig[i]:
                    if free0[tgt[e]]:
                        mask[e] = True
                        c += 1
                free_deg[i] = c
        self.mask = mask
        self.free_deg = free_deg

        self.phase = "announce"
        self.proposals: List[Tuple[int, int]] = []  # (proposer, target) idx
        self.accepts: List[Tuple[int, int]] = []    # (accepter, proposer) idx
        self.newly: List[int] = []                  # matched this cycle

    # -- helpers ---------------------------------------------------------
    def _price12(self, count: int, sender: int, receiver: int) -> int:
        """Price one round of uniform 12-bit tag messages."""
        if not count:
            self.record_traffic(0, 0, 0)
            return 0
        extra = self.charge(12, sender, receiver)
        self.record_traffic(count, 12 * count, 12)
        return extra

    def _free_targets(self, i: int) -> List[int]:
        """Node ``i``'s believed-free eligible targets (ascending indices)."""
        mask = self.mask
        tgt = self.arrays.tgt
        return [tgt[e] for e in self.elig[i] if mask[e]]

    def _advance(self) -> None:
        """The shared halt-or-propose pass (announce and prune rounds).

        Halts matched and stuck nodes, then lets every survivor flip the
        node program's coin and (heads) pick a believed-free target —
        ``rng.choice`` only consumes an index draw, so choosing from the
        target-index list yields the same pick as the node program's choice
        from the id list (both ascending, same length).
        """
        order = self.arrays.order
        mate = self.mate
        free_deg = self.free_deg
        finished = self.finished
        proposed = self.proposed
        new_live: List[int] = []
        proposals: List[Tuple[int, int]] = []
        for i in self.live:
            if mate[i] is not None or not free_deg[i]:
                finished[i] = True  # matched, or no free eligible neighbor
                continue
            new_live.append(i)
            r = self.rng(i)
            if r.random() < 0.5:
                ti = r.choice(self._free_targets(i))
                proposed[i] = True
                proposals.append((i, ti))
            else:
                proposed[i] = False
        self.live = new_live
        self.proposals = proposals

    # -- the four phases -------------------------------------------------
    def step(self, round_number: int) -> int:
        A = self.arrays
        order = A.order
        phase = self.phase

        if phase == "announce":
            live = self.live
            if live:
                i0 = live[0]
                extra = self._price12(self._announce_count, order[i0],
                                      order[A.tgt[self.elig[i0][0]]])
            else:
                extra = self._price12(0, 0, 0)
            self._advance()
            self.phase = "accept"
            return extra

        if phase == "accept":
            proposals = self.proposals
            if proposals:
                p0, t0 = proposals[0]
                extra = self._price12(len(proposals), order[p0], order[t0])
            else:
                extra = self._price12(0, 0, 0)
            by_target: Dict[int, List[int]] = {}
            for p, t in proposals:  # ascending proposer: lists stay sorted
                by_target.setdefault(t, []).append(p)
            accepts: List[Tuple[int, int]] = []
            mate = self.mate
            for t in sorted(by_target):
                if self.proposed[t]:
                    continue  # proposers ignore incoming proposals
                p = self.rng(t).choice(by_target[t])
                mate[t] = order[p]
                accepts.append((t, p))
            self.accepts = accepts
            self.phase = "notify"
            return extra

        if phase == "notify":
            accepts = self.accepts
            if accepts:
                t0, p0 = accepts[0]
                extra = self._price12(len(accepts), order[t0], order[p0])
            else:
                extra = self._price12(0, 0, 0)
            newly: List[int] = []
            mate = self.mate
            for t, p in accepts:
                mate[p] = order[t]
                newly.append(t)
                newly.append(p)
            newly.sort()
            self.newly = newly
            self.phase = "prune"
            return extra

        # phase == "prune": deliver the "m" announcements
        newly = self.newly
        count = sum(self.elig_count[v] for v in newly)
        if count:
            v0 = newly[0]
            extra = self._price12(count, order[v0],
                                  order[A.tgt[self.elig[v0][0]]])
        else:
            extra = self._price12(0, 0, 0)
        if newly:
            # clear the reverse slot of every eligible edge of a newly
            # matched node: rev[e] is "me in my neighbor's row" in O(1)
            mask = self.mask
            rev = A.rev
            tgt = A.tgt
            free_deg = self.free_deg
            for v in newly:
                for e in self.elig[v]:
                    mask[rev[e]] = False
                    free_deg[tgt[e]] -= 1
        self._advance()
        self.phase = "accept"
        return extra

    # -- compiled tier -----------------------------------------------------
    # The four phases rerun as jitted passes over packed arrays; the python
    # ``mate`` id list stays authoritative for outputs while ``matched``
    # mirrors it as a uint8 array for the jitted halting test.  After
    # :meth:`_pack_compiled` the array state is authoritative — the list
    # state from :meth:`setup` is not updated further.

    def _pack_compiled(self) -> Dict[str, Any]:
        A = self.arrays
        n = A.n
        flat: List[int] = []
        indptr: List[int] = [0]
        for i in range(n):
            flat.extend(self.elig[i])
            indptr.append(len(flat))
        c: Dict[str, Any] = {
            "elig_flat": np.asarray(flat, dtype=np.int64),
            "elig_indptr": np.asarray(indptr, dtype=np.int64),
            "tgt": np.asarray(A.tgt, dtype=np.int64),
            "rev": np.asarray(A.rev, dtype=np.int64),
            "mask": np.asarray(self.mask, dtype=np.uint8),
            "free_deg": np.asarray(self.free_deg, dtype=np.int64),
            "matched": np.asarray([m is not None for m in self.mate],
                                  dtype=np.uint8),
            "finished": np.asarray(self.finished, dtype=np.uint8),
            "proposed": np.asarray(self.proposed, dtype=np.uint8),
        }
        self.live = np.asarray(self.live, dtype=np.int64)
        self._c = c
        return c

    def _compiled_advance(self, c: Dict[str, Any]) -> None:
        pool = self._rng_pool
        new_live, props_p, props_t = _ii_advance(
            pool.mt, pool.mti, pool.ids, pool.prefix, self.live,
            c["matched"], c["free_deg"], c["finished"], c["proposed"],
            c["elig_flat"], c["elig_indptr"], c["tgt"], c["mask"])
        self.live = new_live
        self._c_props = (props_p, props_t)

    def compiled_step(self, round_number: int) -> int:
        c = getattr(self, "_c", None)
        if c is None:
            c = self._pack_compiled()
        A = self.arrays
        order = A.order
        pool = self._rng_pool
        phase = self.phase

        if phase == "announce":
            live = self.live
            if len(live):
                i0 = int(live[0])
                extra = self._price12(self._announce_count, order[i0],
                                      order[A.tgt[self.elig[i0][0]]])
            else:
                extra = self._price12(0, 0, 0)
            self._compiled_advance(c)
            self.phase = "accept"
            return extra

        if phase == "accept":
            props_p, props_t = self._c_props
            if len(props_p):
                extra = self._price12(len(props_p), order[int(props_p[0])],
                                      order[int(props_t[0])])
            else:
                extra = self._price12(0, 0, 0)
            acc_t, acc_p = _ii_accept(pool.mt, pool.mti, pool.ids,
                                      pool.prefix, props_p, props_t,
                                      c["proposed"], A.n)
            mate = self.mate
            matched = c["matched"]
            for j in range(len(acc_t)):
                t = int(acc_t[j])
                mate[t] = order[int(acc_p[j])]
                matched[t] = 1
            self._c_acc = (acc_t, acc_p)
            self.phase = "notify"
            return extra

        if phase == "notify":
            acc_t, acc_p = self._c_acc
            if len(acc_t):
                extra = self._price12(len(acc_t), order[int(acc_t[0])],
                                      order[int(acc_p[0])])
            else:
                extra = self._price12(0, 0, 0)
            mate = self.mate
            matched = c["matched"]
            newly: List[int] = []
            for j in range(len(acc_t)):
                t = int(acc_t[j])
                p = int(acc_p[j])
                mate[p] = order[t]
                matched[p] = 1
                newly.append(t)
                newly.append(p)
            newly.sort()
            self._c_newly = np.asarray(newly, dtype=np.int64)
            self.phase = "prune"
            return extra

        # phase == "prune"
        newly = self._c_newly
        count = sum(self.elig_count[int(v)] for v in newly)
        if count:
            v0 = int(newly[0])
            extra = self._price12(count, order[v0],
                                  order[A.tgt[self.elig[v0][0]]])
        else:
            extra = self._price12(0, 0, 0)
        if len(newly):
            _ii_prune(newly, c["elig_flat"], c["elig_indptr"], c["rev"],
                      c["tgt"], c["mask"], c["free_deg"])
        self._compiled_advance(c)
        self.phase = "accept"
        return extra

    # -- protocol surface ------------------------------------------------
    def unfinished(self) -> bool:
        return len(self.live) > 0

    def pending(self) -> bool:  # clock-driven protocol: never consulted
        return bool(self.proposals or self.accepts or self.newly)

    def outputs(self) -> Dict[int, Any]:
        order = self.arrays.order
        mate = self.mate
        return {order[i]: {"mate": mate[i]} for i in range(self.arrays.n)}

    # -- sharded fast path -------------------------------------------------
    # Every worker replicates the full global state (mate/mask/free-degree
    # carry no randomness, so identical bookkeeping is cheaper than
    # exchanging it); only rng draws are owner-restricted, which keeps each
    # node's stream bit-identical to the in-process kernel.  Proposals are
    # routed to the target's owner, acceptances broadcast; announce and
    # prune rounds need no records at all.

    def shard_setup(self, shared: Dict[str, Any]) -> None:
        self.setup(shared)  # no rng in setup: replication is exact

    def _shard_advance(self) -> None:
        """:meth:`_advance` with owner-restricted coin flips.

        Halting bookkeeping runs over the full live list (it reads only
        replicated state), but the coin flip and target choice touch a
        node's rng stream, so they run only at its owner; the resulting
        proposal list is this worker's owned slice of the global one.
        """
        ctx = self.shard
        owner, w = ctx.owner, ctx.w
        mate = self.mate
        free_deg = self.free_deg
        finished = self.finished
        proposed = self.proposed
        new_live: List[int] = []
        proposals: List[Tuple[int, int]] = []
        for i in self.live:
            if mate[i] is not None or not free_deg[i]:
                finished[i] = True
                continue
            new_live.append(i)
            if owner[i] != w:
                continue  # remote stream: its owner draws
            self.shard_pos = i
            r = self.rng(i)
            if r.random() < 0.5:
                ti = r.choice(self._free_targets(i))
                proposed[i] = True
                proposals.append((i, ti))
            else:
                proposed[i] = False
        self.live = new_live
        self.proposals = proposals

    def shard_publish(self, round_number: int) -> int:
        ctx = self.shard
        A = self.arrays
        order = A.order
        owner, w = ctx.owner, ctx.w
        phase = self.phase

        if phase == "announce":
            count = 0
            first = -1
            for i in self.live:
                if owner[i] == w:
                    if first < 0:
                        first = i
                    count += len(self.elig[i])
            if count:
                self.shard_pos = first
                return self._price12(count, order[first],
                                     order[A.tgt[self.elig[first][0]]])
            return self._price12(0, 0, 0)

        if phase == "accept":
            proposals = self.proposals  # owned proposers only
            if proposals:
                p0, t0 = proposals[0]
                self.shard_pos = p0
                extra = self._price12(len(proposals), order[p0], order[t0])
            else:
                extra = self._price12(0, 0, 0)
            words = ctx.staged_words
            for p, t in proposals:
                d = owner[t]
                if d != w:
                    sw = words[d]
                    sw.append(p)
                    sw.append(t)
            return extra

        if phase == "notify":
            accepts = self.accepts  # owned accepters only
            if accepts:
                t0, p0 = accepts[0]
                self.shard_pos = t0
                extra = self._price12(len(accepts), order[t0], order[p0])
                words = ctx.staged_words
                for d in range(ctx.k):  # broadcast: everyone tracks mates
                    if d == w:
                        continue
                    sw = words[d]
                    for t, p in accepts:
                        sw.append(t)
                        sw.append(p)
                return extra
            return self._price12(0, 0, 0)

        # phase == "prune"
        count = 0
        first = -1
        for v in self.newly:
            if owner[v] == w:
                if first < 0:
                    first = v
                count += self.elig_count[v]
        if count:
            self.shard_pos = first
            return self._price12(count, order[first],
                                 order[A.tgt[self.elig[first][0]]])
        return self._price12(0, 0, 0)

    def shard_apply(self, round_number: int) -> None:
        ctx = self.shard
        A = self.arrays
        order = A.order
        phase = self.phase

        if phase == "announce":
            self._shard_advance()
            self.phase = "accept"
            return

        if phase == "accept":
            owner, w = ctx.owner, ctx.w
            pairs = [(p, t) for p, t in self.proposals if owner[t] == w]
            for _peer, words, _blob in ctx.incoming:
                for off in range(0, len(words), 2):
                    pairs.append((int(words[off]), int(words[off + 1])))
            pairs.sort()  # ascending proposer: candidate lists stay sorted
            by_target: Dict[int, List[int]] = {}
            for p, t in pairs:
                by_target.setdefault(t, []).append(p)
            accepts: List[Tuple[int, int]] = []
            mate = self.mate
            for t in sorted(by_target):  # owned targets by construction
                if self.proposed[t]:
                    continue
                self.shard_pos = t
                p = self.rng(t).choice(by_target[t])
                mate[t] = order[p]
                accepts.append((t, p))
            self.accepts = accepts
            self.proposals = []
            self.phase = "notify"
            return

        if phase == "notify":
            pairs = list(self.accepts)
            for _peer, words, _blob in ctx.incoming:
                for off in range(0, len(words), 2):
                    pairs.append((int(words[off]), int(words[off + 1])))
            mate = self.mate
            newly: List[int] = []
            for t, p in pairs:
                mate[t] = order[p]  # no-op for this worker's own accepts
                mate[p] = order[t]
                newly.append(t)
                newly.append(p)
            newly.sort()
            self.newly = newly
            self.accepts = []
            self.phase = "prune"
            return

        # phase == "prune"
        newly = self.newly
        if newly:
            mask = self.mask
            rev = A.rev
            tgt = A.tgt
            free_deg = self.free_deg
            for v in newly:
                for e in self.elig[v]:
                    mask[rev[e]] = False
                    free_deg[tgt[e]] -= 1
        self.newly = []
        self._shard_advance()
        self.phase = "accept"

    def shard_outputs(self) -> Dict[int, Any]:
        order = self.arrays.order
        mate = self.mate
        return {order[i]: {"mate": mate[i]} for i in self.shard.owned}


def israeli_itai(network: Network,
                 initial: Optional[Matching] = None,
                 allowed_edges: Optional[Iterable[Edge]] = None,
                 max_rounds: Optional[int] = None) -> Matching:
    """Run Israeli-Itai on ``network``; returns the (extended) matching.

    ``initial`` seeds a pre-existing matching whose nodes sit out;
    ``allowed_edges`` restricts proposals to a subgraph.  The result is
    maximal on the eligible subgraph and always contains ``initial``.
    ``network`` may also be a :class:`~repro.congest.runtime.Subnetwork`.
    """
    network = as_network(network)
    graph = network.graph
    initial = initial if initial is not None else Matching()
    shared: Dict[str, object] = {
        "initial_mate": {v: initial.mate(v) for v in graph.nodes},
    }
    if allowed_edges is not None:
        shared["allowed_edges"] = {edge_key(u, v) for u, v in allowed_edges}

    result = network.run(
        IsraeliItaiNode,
        protocol="israeli_itai",
        shared=shared,
        max_rounds=max_rounds,
    )

    return Matching.from_mate_map(register_map(result.outputs))
