"""The Israeli-Itai randomized maximal matching algorithm (CONGEST).

The classical baseline the paper improves on: a 1/2-MCM (by maximality) in
O(log n) rounds w.h.p. [Israeli & Itai 1986].  Each iteration costs three
rounds:

1. *propose* — every active node flips a coin; "males" send a proposal to a
   uniformly random free eligible neighbor;
2. *accept*  — "females" accept one received proposal uniformly at random
   (the accepting edge is matched: the male proposed unconditionally);
3. *notify*  — newly matched nodes announce it; everyone prunes their free
   neighbor sets; nodes that are matched or isolated halt.

The protocol supports a pre-existing matching and an edge filter so that the
weighted black box (class-greedy) can run it on weight-class subgraphs among
still-free nodes.  Termination is Las Vegas: nodes halt exactly when no
eligible free-free edge remains, so the result is always maximal on the
eligible subgraph.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..congest.network import Network
from ..congest.node import BROADCAST, Inbox, NodeAlgorithm, NodeContext, Outbox
from ..congest.runtime import as_network, register_map
from ..graphs.graph import Edge, edge_key
from ..matching.core import Matching

# wire tags (single characters keep messages at a few bits)
_FREE = "f"
_PROPOSE = "p"
_ACCEPT = "a"
_MATCHED = "m"


class IsraeliItaiNode(NodeAlgorithm):
    """Node program for one Israeli-Itai execution."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        initial_mate: Dict[int, Optional[int]] = ctx.shared.get("initial_mate", {})
        allowed: Optional[Set[Edge]] = ctx.shared.get("allowed_edges")
        self.mate: Optional[int] = initial_mate.get(ctx.node_id)
        self.eligible_neighbors: Set[int] = {
            u for u in ctx.neighbors
            if allowed is None or edge_key(ctx.node_id, u) in allowed
        }
        self.free_neighbors: Set[int] = set()
        self.phase = "announce"
        self.proposed_to: Optional[int] = None

    # -- helpers ---------------------------------------------------------
    def _is_free(self) -> bool:
        return self.mate is None

    def _finish_if_stuck(self) -> Optional[Outbox]:
        """Halt when matched or when no free eligible neighbor remains."""
        if not self._is_free() or not self.free_neighbors:
            return self.halt({"mate": self.mate})
        return None

    # -- protocol ----------------------------------------------------------
    def start(self) -> Outbox:
        if not self.eligible_neighbors:
            return self.halt({"mate": self.mate})
        if self._is_free():
            return {u: _FREE for u in self.eligible_neighbors}
        # matched nodes only announce their status, then leave
        return {u: _MATCHED for u in self.eligible_neighbors}

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.phase == "announce":
            self.free_neighbors = {
                u for u, tag in inbox.items()
                if tag == _FREE and u in self.eligible_neighbors
            }
            self.phase = "propose"
            stuck = self._finish_if_stuck()
            if stuck is not None:
                return stuck
            return self._propose()
        if self.phase == "propose":
            # inbox holds proposals; acceptance decision
            self.phase = "accept"
            proposals = [u for u, tag in inbox.items() if tag == _PROPOSE]
            if self.proposed_to is None and proposals:
                chosen = self.rng.choice(sorted(proposals))
                self.mate = chosen
                return {chosen: _ACCEPT}
            return {}
        if self.phase == "accept":
            # inbox holds acceptances; males learn the outcome
            self.phase = "notify"
            accepted_by = [u for u, tag in inbox.items() if tag == _ACCEPT]
            if self.proposed_to is not None and self.proposed_to in accepted_by:
                self.mate = self.proposed_to
            self.proposed_to = None
            if not self._is_free():
                return {u: _MATCHED for u in self.eligible_neighbors}
            return {}
        # phase == "notify": prune freshly matched neighbors, loop again
        for u, tag in inbox.items():
            if tag == _MATCHED:
                self.free_neighbors.discard(u)
        self.phase = "propose"
        stuck = self._finish_if_stuck()
        if stuck is not None:
            return stuck
        return self._propose()

    def _propose(self) -> Outbox:
        self.phase = "propose"
        if self.rng.random() < 0.5 and self.free_neighbors:
            self.proposed_to = self.rng.choice(sorted(self.free_neighbors))
            return {self.proposed_to: _PROPOSE}
        self.proposed_to = None
        return {}


def israeli_itai(network: Network,
                 initial: Optional[Matching] = None,
                 allowed_edges: Optional[Iterable[Edge]] = None,
                 max_rounds: Optional[int] = None) -> Matching:
    """Run Israeli-Itai on ``network``; returns the (extended) matching.

    ``initial`` seeds a pre-existing matching whose nodes sit out;
    ``allowed_edges`` restricts proposals to a subgraph.  The result is
    maximal on the eligible subgraph and always contains ``initial``.
    ``network`` may also be a :class:`~repro.congest.runtime.Subnetwork`.
    """
    network = as_network(network)
    graph = network.graph
    initial = initial if initial is not None else Matching()
    shared: Dict[str, object] = {
        "initial_mate": {v: initial.mate(v) for v in graph.nodes},
    }
    if allowed_edges is not None:
        shared["allowed_edges"] = {edge_key(u, v) for u, v in allowed_edges}

    result = network.run(
        IsraeliItaiNode,
        protocol="israeli_itai",
        shared=shared,
        max_rounds=max_rounds,
    )

    return Matching.from_mate_map(register_map(result.outputs))
