"""Bertsekas-style auction for bipartite maximum-weight matching.

A classic alternative to the paper's Algorithm 5 on bipartite inputs, and a
natural citizen of this library's simulator because it is *entirely
event-driven* (auctions tolerate asynchrony natively — they run unchanged
under the delay models of :mod:`repro.congest.asynchrony`).

Bidders (the X side) compete for items (the Y side) by raising prices:

* an unassigned bidder values item j at ``v_j = w(x, j) - price_j``; being
  unmatched is worth 0.  If every value is negative it drops out; otherwise
  it bids ``price_best + (v_best - v_second) + epsilon`` on its best item,
  where ``v_second`` is the runner-up value (floored at 0, the outside
  option);
* an item awards itself to the highest sufficient bid, raises its price to
  the winning bid, evicts the previous owner (who re-bids), rejects lower
  bids with the current price (so stale caches self-correct), and
  broadcasts the new price to its neighborhood.

epsilon-complementary slackness gives the standard guarantee: the final
assignment is within ``n * epsilon`` of the optimum, so ``epsilon =
eps * W_max / n`` yields a (1 - eps)-MWM (``w(M*) >= W_max``).  Each award
raises a price by at least epsilon, bounding the total work by
``n * W_max / epsilon`` awards — the classic quality/round trade-off, which
T18 measures against Algorithm 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..congest.network import Network
from ..congest.node import Inbox, NodeAlgorithm, NodeContext, Outbox
from ..congest.policies import CONGEST, BandwidthPolicy
from ..runtime import as_network, register_map
from ..graphs.graph import BipartiteGraph, Graph, GraphError
from ..matching.core import Matching
from .bipartite_counting import X_SIDE, Y_SIDE
from .bipartite_mcm import side_map_of

# integer message tags: a one-character string costs 12 bits under the
# pricing model, an int below 4 costs 6 — it keeps (tag, float) tuples
# inside the strict CONGEST budget at small n
_PRICE = 0
_BID = 1
_WIN = 2
_EVICT = 3
_REJECT = 4


class AuctionNode(NodeAlgorithm):
    """Node program: bidder on the X side, item on the Y side."""

    passive = True  # every action is a reaction (bids, awards, evictions)

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.side: Optional[int] = ctx.shared["side"].get(ctx.node_id)
        self.epsilon: float = ctx.shared["epsilon"]
        # bidder state
        self.prices: Dict[int, float] = {u: 0.0 for u in ctx.neighbors}
        self.assigned_to: Optional[int] = None
        self.dropped = False
        # item state
        self.price = 0.0
        self.owner: Optional[int] = None
        self.output = {"mate": None}

    # ------------------------------------------------------------------
    def _bid(self) -> Outbox:
        """Compute the best/second-best values and place one bid."""
        best: Optional[Tuple[float, int]] = None
        second_value = 0.0  # the outside option: staying unmatched
        for item in self.neighbors:
            value = self.ctx.weight(item) - self.prices[item]
            if best is None or (value, -item) > (best[0], -best[1]):
                if best is not None:
                    second_value = max(second_value, best[0])
                best = (value, item)
            else:
                second_value = max(second_value, value)
        if best is None or best[0] < 0:
            self.dropped = True
            self.finished = True
            self.output = {"mate": None}
            return {}
        value, item = best
        amount = self.prices[item] + (value - second_value) + self.epsilon
        return {item: (_BID, amount)}

    # ------------------------------------------------------------------
    def start(self) -> Outbox:
        if self.side is None or not self.neighbors:
            return self.halt({"mate": None})
        if self.side == X_SIDE:
            return self._bid()
        return {}

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.side == X_SIDE:
            return self._bidder_round(inbox)
        return self._item_round(inbox)

    # -- bidder ------------------------------------------------------------
    def _bidder_round(self, inbox: Inbox) -> Outbox:
        rebid = False
        for item, msg in sorted(inbox.items()):
            tag = msg[0]
            if tag == _PRICE:
                self.prices[item] = msg[1]
            elif tag == _REJECT:
                self.prices[item] = msg[1]
                rebid = True
            elif tag == _WIN:
                self.assigned_to = item
                self.output = {"mate": item}
            elif tag == _EVICT:
                if self.assigned_to == item:
                    self.assigned_to = None
                    self.output = {"mate": None}
                rebid = True
        if rebid and self.assigned_to is None and not self.dropped:
            return self._bid()
        return {}

    # -- item ----------------------------------------------------------------
    def _item_round(self, inbox: Inbox) -> Outbox:
        bids = [(msg[1], bidder) for bidder, msg in inbox.items()
                if msg[0] == _BID]
        if not bids:
            return {}
        out: Outbox = {}
        bids.sort(key=lambda t: (-t[0], t[1]))
        amount, bidder = bids[0]
        if amount > self.price:
            previous = self.owner
            self.price = amount
            self.owner = bidder
            self.output = {"mate": bidder}
            out[bidder] = (_WIN,)
            if previous is not None and previous != bidder:
                out[previous] = (_EVICT,)
            # everyone else learns the new price; losing bidders get an
            # explicit rejection so they re-bid immediately
            for _, loser in bids[1:]:
                out[loser] = (_REJECT, self.price)
            for u in self.neighbors:
                if u not in out and u != bidder:
                    out[u] = (_PRICE, self.price)
        else:
            for _, loser in bids:
                out[loser] = (_REJECT, self.price)
        return out


def auction_mwm(graph: Graph, eps: float = 0.1, seed: int = 0,
                policy: BandwidthPolicy = CONGEST,
                epsilon: Optional[float] = None,
                network: Optional[Network] = None) -> Tuple[Matching, Network]:
    """Run the auction; returns (matching, network).

    ``epsilon`` (the bid increment) defaults to ``eps * W_max / n``, giving
    weight at least ``(1 - eps) * w(M*)``.  Requires a bipartite graph.
    """
    side = side_map_of(graph)  # raises on non-bipartite inputs
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    network = as_network(network) if network is not None else None
    net = network if network is not None else Network(graph, policy=policy, seed=seed)
    if graph.num_edges == 0:
        return Matching(), net
    w_max = max(w for _, _, w in graph.edges())
    if epsilon is None:
        epsilon = eps * w_max / max(1, graph.num_nodes)
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    result = net.run(
        AuctionNode,
        protocol="auction",
        shared={"side": side, "epsilon": epsilon},
        max_rounds=max(10_000, int(20 * graph.num_nodes * w_max / epsilon)),
    )
    mates = register_map(result.outputs)
    mate: Dict[int, Optional[int]] = {
        v: m for v, m in mates.items() if side.get(v) == X_SIDE
    }
    # items' view must agree with bidders' (cross-checked here)
    for v, owner in mates.items():
        if side.get(v) == Y_SIDE and owner is not None:
            if mate.get(owner) != v:
                raise RuntimeError(
                    f"auction inconsistency: item {v} claims {owner}"
                )
            mate[v] = owner
    return Matching.from_mate_map(mate), net
