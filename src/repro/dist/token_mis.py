"""Token-based selection of a non-conflicting set of augmenting paths.

This is the paper's Section 3.2 emulation of one Luby iteration on the
conflict graph, in O(ell) physical rounds:

* every leader (a free Y node that the counting pass reached at round ell)
  draws the *maximum* of its ``n_y`` path values in one sample
  (:func:`sample_max_uniform`) and launches a token carrying it;
* the token walks backward through the BFS layering, choosing each
  predecessor edge with probability proportional to the recorded path counts
  — this realizes the winning path of the leader stochastically, link by
  link;
* tokens meeting at a node (they can only meet in the same round, because
  the layering gives every node a unique depth) are resolved in favor of the
  largest value; losers vanish;
* a token reaching a free X node has built a complete augmenting path; a
  confirmation message retraces it forward, and every node on the path flips
  its matching status locally (the augmentation).

Values are O(ell log n)-bit numbers; under the PIPELINE policy the simulator
charges the chunked transmission rounds of Lemma 3.9.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..observe.events import TokenCollision
from ..congest.kernels import RoundKernel, register_kernel
from ..congest.message import payload_bits_fast
from ..congest.network import Network, ProtocolError
from ..congest.node import Inbox, NodeAlgorithm, NodeContext, Outbox
from ..runtime import register_map
from ..graphs.graph import Edge
from .bipartite_counting import CountState, X_SIDE, Y_SIDE
from .random_tools import sample_max_uniform, weighted_choice

_TOKEN = "T"
_CONFIRM = "C"


class TokenNode(NodeAlgorithm):
    """Node program for one token-selection + augmentation iteration.

    Output: ``{"mate": <new or unchanged mate>, "confirmed": bool}`` where
    ``confirmed`` marks leaders whose augmenting path was applied.
    """

    passive = True  # tokens/confirmations drive everything; silence = done

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        shared = ctx.shared
        self.side: Optional[int] = shared["side"].get(ctx.node_id)
        self.mate: Optional[int] = shared["mate"].get(ctx.node_id)
        self.ell: int = shared["ell"]
        self.value_cap: int = shared["value_cap"]
        self.state: Optional[CountState] = shared["count_states"].get(ctx.node_id)
        self.is_leader = bool(
            self.side == Y_SIDE
            and self.mate is None
            and self.state is not None
            and self.state.t == self.ell
            and self.state.total > 0
        )
        self.token_id: Optional[int] = None   # leader id of the recorded token
        self.tok_next: Optional[int] = None   # neighbor toward the leader
        self.tok_prev: Optional[int] = None   # neighbor toward the free X end
        self.confirmed = False
        self.output = {"mate": self.mate, "confirmed": False}
        # observability: an emitter callable when someone subscribed to
        # token-collision events, else None (the unobserved common case)
        self._collide = shared.get("collision_observer")

    # ------------------------------------------------------------------
    def start(self) -> Outbox:
        if not self.is_leader:
            return {}
        assert self.state is not None
        draw = sample_max_uniform(self.rng, self.state.total, self.value_cap)
        self.token_id = self.node_id
        self.tok_prev = weighted_choice(self.rng, self.state.counts)
        return {self.tok_prev: (_TOKEN, draw, self.node_id)}

    def on_round(self, inbox: Inbox) -> Outbox:
        out: Outbox = {}
        tokens = {u: msg for u, msg in inbox.items()
                  if isinstance(msg, tuple) and msg[0] == _TOKEN}
        confirms = [msg for msg in inbox.values()
                    if isinstance(msg, tuple) and msg[0] == _CONFIRM]
        if tokens:
            out.update(self._handle_tokens(tokens))
        if confirms:
            out.update(self._handle_confirms(confirms))
        return out

    # ------------------------------------------------------------------
    def _handle_tokens(self, tokens: Dict[int, Tuple[str, int, int]]) -> Outbox:
        if self.token_id is not None:
            # already carrying a token (cannot happen in a correct layering);
            # drop arrivals defensively
            return {}
        # survival of the largest (value, leader id): colliding tokens die
        sender, (_, value, leader) = max(
            tokens.items(), key=lambda kv: (kv[1][1], kv[1][2])
        )
        if len(tokens) > 1 and self._collide is not None:
            self._collide(TokenCollision(node=self.node_id, winner=leader,
                                         losers=len(tokens) - 1))
        self.token_id = leader
        self.tok_next = sender
        if self.side == X_SIDE and self.mate is None:
            # complete augmenting path: flip the first edge and confirm
            self.output = {"mate": sender, "confirmed": False}
            self.confirmed = True
            return {sender: (_CONFIRM, leader)}
        if self.side == X_SIDE:
            # matched X: the unique predecessor is its mate
            self.tok_prev = self.mate
            return {self.mate: (_TOKEN, value, leader)}
        # matched Y (odd layer): stochastic predecessor, like the leader did
        assert self.state is not None, "token reached an uncounted node"
        self.tok_prev = weighted_choice(self.rng, self.state.counts)
        return {self.tok_prev: (_TOKEN, value, leader)}

    def _handle_confirms(self, confirms) -> Outbox:
        # at most one confirmation can match the recorded token
        for _, leader in confirms:
            if leader != self.token_id or self.confirmed:
                continue
            self.confirmed = True
            if self.side == X_SIDE:
                new_mate = self.tok_next
            else:
                new_mate = self.tok_prev
            is_leader_end = self.is_leader and leader == self.node_id
            self.output = {"mate": new_mate, "confirmed": is_leader_end}
            if not is_leader_end and self.tok_next is not None:
                return {self.tok_next: (_CONFIRM, leader)}
        return {}


@register_kernel(TokenNode)
class TokenKernel(RoundKernel):
    """Vectorized superstep executor for :class:`TokenNode`.

    The token walk is sparse — at most one token and one confirmation per
    node per round — so the kernel's state is a handful of per-node-index
    registers (``token_id``/``tok_next``/``tok_prev``/``confirmed``) plus
    the staged message list for the next round.  One :meth:`step` prices
    and delivers the staged walk messages (sender-ascending, exactly like
    the engine), then replays every receiving node's transition in
    ascending node order: token survival-of-the-largest first (including
    the :class:`TokenCollision` emission when observed), confirmation
    retracing second — the same intra-node order as the node program's
    ``on_round``.  Random draws (``sample_max_uniform`` at the leaders,
    ``weighted_choice`` at odd layers) consume the identical per-node
    streams, so outputs, metrics, rounds and rng state are bit-identical
    to per-node dispatch.
    """

    passive = True  # tokens/confirmations drive everything; silence = done
    # audited: node-local state, read-only shared, plain-tuple payloads
    shardable = True
    # compiled-audited: all randomness flows through ``self.rng`` — the
    # compiled tier swaps in the packed-pool facade, so leader draws
    # (``sample_max_uniform``) and layer choices (``weighted_choice``)
    # run on jitted MT19937 state bit-for-bit; the sparse token walk
    # itself stays python (each node is touched O(1) times, so there is
    # no dense loop for a jitted pass to amortize).
    compiled_audited = True
    #: sharded fast path: (kind, sender, target, value, leader) records
    #: (kind 0 = token, 1 = confirmation; ids travel as indices).  When a
    #: collision observer is subscribed, ``shared`` holds a callable and
    #: the sharding eligibility gate already routes the run in-process.
    shard_words = 5

    def setup(self, shared: Dict[str, Any]) -> None:
        A = self.arrays
        order = A.order
        side_map: Dict[int, Optional[int]] = shared["side"]
        mate_map: Dict[int, Optional[int]] = shared["mate"]
        state_map: Dict[int, Optional[CountState]] = shared["count_states"]
        self.ell: int = shared["ell"]
        self.value_cap: int = shared["value_cap"]
        self._collide = shared.get("collision_observer")

        self.side: List[Optional[int]] = [side_map.get(v) for v in order]
        self.mate: List[Optional[int]] = [mate_map.get(v) for v in order]
        self.state: List[Optional[CountState]] = [
            state_map.get(v) for v in order
        ]
        self.token_id: List[Optional[int]] = [None] * A.n
        self.tok_next: List[Optional[int]] = [None] * A.n
        self.tok_prev: List[Optional[int]] = [None] * A.n
        self.confirmed: List[bool] = [False] * A.n
        self.is_leader: List[bool] = [False] * A.n
        #: overridden output registers (default: unchanged mate, unconfirmed)
        self.out: Dict[int, Dict[str, Any]] = {}
        #: staged (sender_id, target_id, payload) for the next delivery,
        #: sender-ascending by construction (nodes are processed in order)
        self.staged: List[Tuple[int, int, Tuple]] = []

        for i in range(A.n):
            st = self.state[i]
            if not (self.side[i] == Y_SIDE and self.mate[i] is None
                    and st is not None and st.t == self.ell
                    and st.total > 0):
                continue
            self.is_leader[i] = True
            r = self.rng(i)
            draw = sample_max_uniform(r, st.total, self.value_cap)
            self.token_id[i] = order[i]
            prev = weighted_choice(r, st.counts)
            self.tok_prev[i] = prev
            self.staged.append((order[i], prev, (_TOKEN, draw, order[i])))

    # ------------------------------------------------------------------
    def step(self, round_number: int) -> int:
        A = self.arrays
        index = A.index
        slot_of = self.net._slot_of
        staged = self.staged
        self.staged = []

        # delivery: price every staged message in sender-major order (the
        # engine's outbox order), validating targets exactly like _deliver
        extra = 0
        messages = 0
        bits_sum = 0
        max_bits = 0
        tokens_at: Dict[int, List[Tuple[int, int, int]]] = {}
        confirms_at: Dict[int, List[int]] = {}
        for sender, target, payload in staged:
            if target not in slot_of[sender]:
                raise ProtocolError(
                    f"node {sender} tried to message non-neighbor {target}"
                )
            bits = payload_bits_fast(payload)
            charge = self.charge(bits, sender, target)
            if charge > extra:
                extra = charge
            messages += 1
            bits_sum += bits
            if bits > max_bits:
                max_bits = bits
            t = index[target]
            if payload[0] == _TOKEN:
                tokens_at.setdefault(t, []).append(
                    (sender, payload[1], payload[2]))
            else:
                confirms_at.setdefault(t, []).append(payload[1])
        self.record_traffic(messages, bits_sum, max_bits)

        # compute: replay each receiving node's transition, ascending order
        for t in sorted(tokens_at.keys() | confirms_at.keys()):
            arrivals = tokens_at.get(t)
            if arrivals:
                self._handle_tokens(t, arrivals)
            confirms = confirms_at.get(t)
            if confirms:
                self._handle_confirms(t, confirms)
        return extra

    def _handle_tokens(self, t: int,
                       arrivals: List[Tuple[int, int, int]]) -> None:
        if self.token_id[t] is not None:
            return  # already carrying a token: drop arrivals defensively
        order = self.arrays.order
        sender, value, leader = arrivals[0]
        for s, v, l in arrivals[1:]:  # first-maximal (value, leader) wins
            if (v, l) > (value, leader):
                sender, value, leader = s, v, l
        if len(arrivals) > 1 and self._collide is not None:
            self._collide(TokenCollision(node=order[t], winner=leader,
                                         losers=len(arrivals) - 1))
        self.token_id[t] = leader
        self.tok_next[t] = sender
        vid = order[t]
        if self.side[t] == X_SIDE and self.mate[t] is None:
            self.out[t] = {"mate": sender, "confirmed": False}
            self.confirmed[t] = True
            self.staged.append((vid, sender, (_CONFIRM, leader)))
            return
        if self.side[t] == X_SIDE:
            mate = self.mate[t]
            self.tok_prev[t] = mate
            self.staged.append((vid, mate, (_TOKEN, value, leader)))
            return
        st = self.state[t]
        assert st is not None, "token reached an uncounted node"
        prev = weighted_choice(self.rng(t), st.counts)
        self.tok_prev[t] = prev
        self.staged.append((vid, prev, (_TOKEN, value, leader)))

    def _handle_confirms(self, t: int, confirms: List[int]) -> None:
        order = self.arrays.order
        for leader in confirms:
            if leader != self.token_id[t] or self.confirmed[t]:
                continue
            self.confirmed[t] = True
            if self.side[t] == X_SIDE:
                new_mate = self.tok_next[t]
            else:
                new_mate = self.tok_prev[t]
            is_leader_end = self.is_leader[t] and leader == order[t]
            self.out[t] = {"mate": new_mate, "confirmed": is_leader_end}
            if not is_leader_end and self.tok_next[t] is not None:
                self.staged.append(
                    (order[t], self.tok_next[t], (_CONFIRM, leader)))
                return

    # ------------------------------------------------------------------
    def unfinished(self) -> bool:
        return self.arrays.n > 0  # nodes never halt; quiescence ends the run

    def pending(self) -> bool:
        return bool(self.staged)

    def outputs(self) -> Dict[int, Any]:
        order = self.arrays.order
        out = self.out
        return {
            order[i]: out.get(i) or {"mate": self.mate[i], "confirmed": False}
            for i in range(self.arrays.n)
        }

    # -- sharded fast path -------------------------------------------------
    # Setup replicates every leader's draws (independent per-node streams),
    # then each worker keeps only the staged messages of its owned senders;
    # the walk's sparse token/confirm traffic crosses the cut as records
    # routed to the receiving node's owner, which replays the identical
    # survival-of-the-largest and retrace transitions.

    def shard_setup(self, shared: Dict[str, Any]) -> None:
        self.setup(shared)
        ctx = self.shard
        owner, w = ctx.owner, ctx.w
        index = self.arrays.index
        self.staged = [m for m in self.staged if owner[index[m[0]]] == w]
        self._local_arrivals: List[Tuple[int, int, int, int, int]] = []

    def shard_publish(self, round_number: int) -> int:
        ctx = self.shard
        index = self.arrays.index
        slot_of = ctx.slot_of()
        owner, w = ctx.owner, ctx.w
        words = ctx.staged_words
        local = self._local_arrivals
        staged = self.staged
        self.staged = []
        extra = 0
        messages = 0
        bits_sum = 0
        max_bits = 0
        for sender, target, payload in staged:  # ascending owned sender
            s = index[sender]
            self.shard_pos = s
            if target not in slot_of[sender]:
                raise ProtocolError(
                    f"node {sender} tried to message non-neighbor {target}"
                )
            bits = payload_bits_fast(payload)
            charge = self.charge(bits, sender, target)
            if charge > extra:
                extra = charge
            messages += 1
            bits_sum += bits
            if bits > max_bits:
                max_bits = bits
            t = index[target]
            if payload[0] == _TOKEN:
                rec = (0, s, t, payload[1], index[payload[2]])
            else:
                rec = (1, s, t, 0, index[payload[1]])
            d = owner[t]
            if d == w:
                local.append(rec)
            else:
                sw = words[d]
                sw.append(rec[0])
                sw.append(rec[1])
                sw.append(rec[2])
                sw.append(ctx.stage_value(d, rec[3]))
                sw.append(rec[4])
        self.record_traffic(messages, bits_sum, max_bits)
        return extra

    def shard_apply(self, round_number: int) -> None:
        ctx = self.shard
        recs = self._local_arrivals
        self._local_arrivals = []
        for _peer, wordsv, blob in ctx.incoming:
            reader = ctx.blob_reader(blob)
            for off in range(0, len(wordsv), 5):
                recs.append((int(wordsv[off]), int(wordsv[off + 1]),
                             int(wordsv[off + 2]),
                             ctx.resolve(int(wordsv[off + 3]), reader),
                             int(wordsv[off + 4])))
        # ascending global sender: arrival lists fill in the engine's
        # staged (sender-major) order
        recs.sort(key=lambda rec: (rec[1], rec[2], rec[0]))
        order = self.arrays.order
        tokens_at: Dict[int, List[Tuple[int, int, int]]] = {}
        confirms_at: Dict[int, List[int]] = {}
        for kind, s, t, v, l in recs:
            if kind == 0:
                tokens_at.setdefault(t, []).append((order[s], v, order[l]))
            else:
                confirms_at.setdefault(t, []).append(order[l])
        for t in sorted(tokens_at.keys() | confirms_at.keys()):
            self.shard_pos = t
            arrivals = tokens_at.get(t)
            if arrivals:
                self._handle_tokens(t, arrivals)
            confirms = confirms_at.get(t)
            if confirms:
                self._handle_confirms(t, confirms)

    def shard_outputs(self) -> Dict[int, Any]:
        order = self.arrays.order
        out = self.out
        return {
            order[i]: out.get(i) or {"mate": self.mate[i], "confirmed": False}
            for i in self.shard.owned
        }


def run_token_selection(network: Network, side: Dict[int, Optional[int]],
                        mate: Dict[int, Optional[int]], ell: int,
                        count_states: Dict[int, Optional[CountState]],
                        value_cap: int) -> Tuple[Dict[int, Optional[int]], int]:
    """One selection/augmentation iteration.

    Returns ``(new_mate_map, paths_applied)``; the mate map covers all nodes
    (non-participants keep their entry unchanged).
    """
    result = network.run(
        TokenNode,
        protocol="token_selection",
        shared={
            "side": side,
            "mate": mate,
            "ell": ell,
            "count_states": count_states,
            "value_cap": value_cap,
            "collision_observer": network.observer_for(TokenCollision),
        },
        max_rounds=2 * ell + 6,
    )
    new_mate = register_map(result.outputs, fallback=mate)
    applied = sum(1 for out in result.outputs.values()
                  if out is not None and out["confirmed"])
    return new_mate, applied
