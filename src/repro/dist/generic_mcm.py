"""Algorithm 1 / Theorem 3.7: the generic (1 - eps)-MCM in the LOCAL model.

The paper's three-step recipe, implemented faithfully:

1. *Conflict-graph construction* (Algorithm 2): nodes flood their local
   views for 2 ell rounds (:mod:`repro.dist.local_views`); every free node
   then enumerates, entirely from its own view, the augmenting paths it
   leads (it is the endpoint with the smaller id — Algorithm 2, step 3).
   The union of the leaders' path sets is exactly C_M(ell).
2. *MIS* (Luby): the conflict graph is itself a distributed network —
   Lemma 3.5 emulates any algorithm on it with an O(ell) slowdown.  We run
   :class:`LubyMISNode` on the conflict graph as a
   :class:`~repro.congest.runtime.Subnetwork` of the physical network and
   charge ``mis_rounds * ell`` physical rounds plus the exchanged traffic.
3. *Augmentation*: the selected (independent → vertex-disjoint) paths are
   applied; leaders notify along their paths (ell rounds charged).

Phases ell = 1, 3, ..., 2k-1 give a matching with no augmenting path
shorter than 2k+1 and hence a (1 - 1/(k+1))-approximation (Lemmas 3.2/3.3)
— with certainty, because the Las Vegas Luby MIS is always maximal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .._compat import warn_deprecated
from ..congest.network import Network
from ..congest.policies import LOCAL
from ..runtime import PhaseDriver, ProtocolResult
from ..graphs.graph import Graph
from ..matching.conflict import ConflictGraph
from ..matching.core import Matching
from ..matching.paths import Path, enumerate_augmenting_paths
from .local_views import flood_views, view_to_graph
from .luby_mis import luby_mis


@dataclass
class GenericPhase:
    ell: int
    conflict_nodes: int
    mis_size: int
    mis_rounds: int
    matching_size: int


@dataclass
class GenericMCMResult(ProtocolResult):
    """Result of Algorithm 1: the matching plus per-phase MIS traces."""

    phases: List[GenericPhase] = field(default_factory=list)


def _paths_from_views(views, graph_nodes, mate, ell) -> List[Path]:
    """Each free node enumerates the paths it leads, from its own view."""
    all_paths: Set[Path] = set()
    for v in graph_nodes:
        if mate.get(v) is not None:
            continue  # leaders are free endpoints
        view = views[v]
        if not view:
            continue
        local_graph, local_mate = view_to_graph(view)
        if not local_graph.has_node(v):
            continue
        local_matching = Matching.from_mate_map(local_mate)
        for p in enumerate_augmenting_paths(local_graph, local_matching, ell):
            if min(p[0], p[-1]) == v:  # v is this path's leader
                all_paths.add(p)
    return sorted(all_paths)


def _conflict_from_paths(paths: List[Path], ell: int) -> ConflictGraph:
    by_phys: Dict[int, List[int]] = {}
    for i, p in enumerate(paths):
        for node in p:
            by_phys.setdefault(node, []).append(i)
    adjacency: List[Set[int]] = [set() for _ in paths]
    for members in by_phys.values():
        for a in members:
            for b in members:
                if a != b:
                    adjacency[a].add(b)
    return ConflictGraph(
        ell=ell,
        paths=paths,
        adjacency=[sorted(s) for s in adjacency],
        leader=[min(p[0], p[-1]) for p in paths],
        _by_phys_node=by_phys,
    )


def _run_mis(net: Network, driver: PhaseDriver, conflict: ConflictGraph,
             ell: int, seed: int, subnetworks: str):
    """Luby MIS on the conflict graph; returns (mis, mis_rounds).

    The ``"inherit"`` path runs the MIS as a :class:`Subnetwork`: seeds
    spawn from the parent stream, faults and the event bus carry over, and
    the Lemma 3.5 emulation charge plus the leader-to-leader traffic are
    folded on exit.  ``"detached"`` reproduces the historical standalone
    sub-``Network`` (deprecated shim).
    """
    if subnetworks == "detached":
        warn_deprecated("generic_detached", stacklevel=3)
        mis_net = Network(conflict.as_graph(), policy=LOCAL,
                          seed=seed * 31 + ell, observe=net.bus)
        mis = luby_mis(mis_net, context=f"conflict ell={ell}")
        mis_rounds = mis_net.metrics.rounds
        net.metrics.charge_rounds("mis_emulation", mis_rounds * ell)
        net.metrics.messages += mis_net.metrics.messages
        net.metrics.total_bits += mis_net.metrics.total_bits
        net.metrics.max_message_bits = max(
            net.metrics.max_message_bits, mis_net.metrics.max_message_bits
        )
        return mis, mis_rounds
    # Lemma 3.5: each conflict-graph round costs O(ell) physical rounds;
    # traffic between leaders is carried by the real network (fold_traffic)
    with driver.subnetwork(conflict.as_graph(), label="conflict",
                           phase=f"conflict ell={ell}",
                           policy=LOCAL, seed_path=(ell,),
                           emulation_factor=ell, fold_traffic=True,
                           charge_label="mis_emulation") as sub:
        mis = luby_mis(sub, context=f"conflict ell={ell}")
        mis_rounds = sub.rounds
    return mis, mis_rounds


def generic_mcm(graph: Graph, k: int, seed: int = 0,
                network: Optional[Network] = None,
                subnetworks: str = "inherit") -> GenericMCMResult:
    """Run Algorithm 1 with k phases (eps = 1/(k+1))."""
    if k < 1:
        raise ValueError("k must be at least 1")
    if subnetworks not in ("inherit", "detached"):
        raise ValueError("subnetworks must be 'inherit' or 'detached'")
    net = network if network is not None else Network(graph, policy=LOCAL, seed=seed)
    matching = Matching()
    result = GenericMCMResult(matching=matching, network=net)

    driver = PhaseDriver(net, "generic_mcm")
    for ell in range(1, 2 * k, 2):
        with driver.phase(f"ell={ell}") as ph:
            mate = {v: matching.mate(v) for v in graph.nodes}
            views = flood_views(net, mate, rounds=2 * ell)
            paths = _paths_from_views(views, graph.nodes, mate, ell)
            conflict = _conflict_from_paths(paths, ell)

            mis_rounds = 0
            selected: List[Path] = []
            if conflict.num_nodes:
                mis, mis_rounds = _run_mis(net, driver, conflict, ell, seed,
                                           subnetworks)
                selected = [conflict.paths[i] for i in sorted(mis)]
                assert conflict.independent(sorted(mis))
                for p in selected:
                    matching.augment(p)
                net.metrics.charge_rounds("augmentation", ell)
                if selected:
                    driver.emit_augmentation(phase=f"ell={ell}",
                                             paths=len(selected),
                                             size=matching.size)

            result.phases.append(GenericPhase(
                ell=ell,
                conflict_nodes=conflict.num_nodes,
                mis_size=len(selected),
                mis_rounds=mis_rounds,
                matching_size=matching.size,
            ))
            ph.set_detail(conflict_nodes=conflict.num_nodes,
                          mis_size=len(selected),
                          matching_size=matching.size)

    result.matching = matching
    return result
