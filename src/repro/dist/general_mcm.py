"""Algorithm 4 / Theorem 3.15: (1 - 1/k)-approximate MCM in general graphs.

The randomized reduction to the bipartite case: in every iteration each node
independently colors itself red or blue (probability 1/2 each, one round of
color exchange); the bichromatic subgraph G-hat — restricted to free nodes
and endpoints of bichromatic matched edges — is bipartite with X = red and
Y = blue, and the bipartite subroutine Aug(G-hat, M, 2k-1) eliminates every
augmenting path of length <= 2k-1 inside it (Observation 3.11 guarantees the
augmentations are valid in G).

Stopping rules:

* ``theory``   — the paper's bound of ceil(2^{2k+1} (k+1) ln k) iterations,
  after which the result is a (1 - 1/k)-MCM w.h.p. (Lemma 3.14);
* ``exact``    — run until no augmenting path of length <= 2k-1 remains in
  G (certified by the harness; counted as a global check), giving a
  *certain* (1 - 1/(k+1))-MCM by Lemma 3.3;
* ``patience`` — stop after ``patience`` consecutive iterations without an
  augmentation (cheap heuristic for large benchmarks), capped by the theory
  bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..congest.network import Network
from ..congest.policies import PIPELINE, BandwidthPolicy
from ..runtime import PhaseDriver, ProtocolResult
from ..congest.utilities import exchange_tokens
from ..graphs.graph import Edge, Graph, edge_key
from ..matching.core import Matching
from ..matching.paths import shortest_augmenting_path_length
from .bipartite_counting import X_SIDE, Y_SIDE
from .bipartite_mcm import AugmentationStats, MateMap, SideMap, augment_to_level

RED = 0
BLUE = 1


@dataclass
class IterationStats:
    iteration: int
    sampled_nodes: int
    sampled_edges: int
    paths_applied: int
    matching_size: int


@dataclass
class GeneralMCMResult(ProtocolResult):
    """Result of Algorithm 4: matching plus the per-iteration trace."""

    iterations: List[IterationStats] = field(default_factory=list)
    certified: bool = False

    @property
    def iterations_used(self) -> int:
        return len(self.iterations)


def theory_iterations(k: int) -> int:
    """The paper's iteration bound 2^{2k+1} (k+1) ln k (Algorithm 4, line 2)."""
    if k <= 2:
        raise ValueError("the theory bound needs k > 2 (ln k must be positive)")
    return math.ceil(2 ** (2 * k + 1) * (k + 1) * math.log(k))


def general_mcm(graph: Graph, k: int, seed: int = 0,
                policy: BandwidthPolicy = PIPELINE,
                stopping: str = "exact",
                patience: Optional[int] = None,
                color_bias: float = 0.5,
                max_iterations: Optional[int] = None,
                network: Optional[Network] = None) -> GeneralMCMResult:
    """Run Algorithm 4 on an arbitrary graph.

    ``color_bias`` is the probability of coloring red (0.5 in the paper; the
    T10 ablation sweeps it).  Returns the matching plus per-iteration stats.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not 0.0 < color_bias < 1.0:
        raise ValueError("color_bias must be strictly between 0 and 1")
    if stopping not in ("theory", "exact", "patience"):
        raise ValueError(f"unknown stopping rule {stopping!r}")

    net = network if network is not None else Network(graph, policy=policy, seed=seed)
    mate: MateMap = {v: None for v in graph.nodes}
    result = GeneralMCMResult(matching=Matching(), network=net)

    if max_iterations is not None:
        budget = max_iterations
    elif stopping == "theory":
        budget = theory_iterations(k)
    else:
        # generous cap: the theory bound when defined, else a large multiple
        budget = theory_iterations(k) if k > 2 else 64 * (k + 1) * 4 ** k
    if patience is None:
        patience = 4 * 4 ** k

    quiet_streak = 0
    driver = PhaseDriver(net, "general_mcm")
    for iteration in range(1, budget + 1):
        with driver.phase(f"iteration={iteration}") as ph:
            colors = {v: RED if net.node_rng(v, salt=iteration).random() < color_bias
                      else BLUE for v in graph.nodes}
            exchange_tokens(net, colors)  # one round: everyone learns neighbor colors

            side, allowed = _sampled_bipartite(graph, mate, colors)
            mate, stats = augment_to_level(net, side, mate, 2 * k - 1, allowed,
                                           label="general_mcm")
            applied = stats.total_paths
            matched = sum(1 for m in mate.values() if m is not None) // 2
            result.iterations.append(IterationStats(
                iteration=iteration,
                sampled_nodes=sum(1 for s in side.values() if s is not None),
                sampled_edges=len(allowed),
                paths_applied=applied,
                matching_size=matched,
            ))
            ph.set_detail(paths_applied=applied,
                          matching_size=matched,
                          sampled_edges=len(allowed))

        if applied == 0:
            quiet_streak += 1
        else:
            quiet_streak = 0

        if stopping == "exact" and applied == 0:
            net.global_check()
            current = Matching.from_mate_map(mate)
            if shortest_augmenting_path_length(graph, current,
                                               max_len=2 * k - 1) is None:
                result.certified = True
                break
        elif stopping == "patience" and quiet_streak >= patience:
            break

    result.matching = Matching.from_mate_map(mate)
    return result


def _sampled_bipartite(graph: Graph, mate: MateMap, colors: Dict[int, int]):
    """Line 4 of Algorithm 4: V-hat, E-hat, and the X/Y side map."""
    in_vhat: Set[int] = set()
    for v in graph.nodes:
        m = mate.get(v)
        if m is None:
            in_vhat.add(v)
        elif colors[v] != colors[m]:
            in_vhat.add(v)
    side: SideMap = {}
    for v in graph.nodes:
        if v in in_vhat:
            side[v] = X_SIDE if colors[v] == RED else Y_SIDE
        else:
            side[v] = None
    allowed: Set[Edge] = set()
    for u, v, _ in graph.edges():
        if u in in_vhat and v in in_vhat and colors[u] != colors[v]:
            allowed.add(edge_key(u, v))
    return side, allowed
