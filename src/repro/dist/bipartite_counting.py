"""Algorithm 3: counting half-augmenting paths in bipartite graphs.

A BFS wave starts at every free X node simultaneously; each node forwards a
message exactly once — immediately after the first round in which it received
any — carrying the *number* of shortest half-augmenting paths that reach it
(Lemma 3.8).  Matched Y nodes forward only to their mate; X nodes forward to
all neighbors; free Y nodes terminate paths.  After ``ell`` rounds, each free
Y node reached at exactly round ``ell`` knows the number of augmenting paths
of length ``ell`` that end at it.

The protocol also serves Algorithm 4's ``Aug`` on the sampled bipartite
subgraph: the ``side`` map then holds the random red/blue colors and
``allowed`` restricts edges to the bichromatic subgraph.

Counts can be as large as Delta^{ceil(ell/2)}; the driver runs this protocol
under the PIPELINE policy, which charges the extra rounds that shipping such
numbers in O(log n)-bit chunks costs (the mechanism of Lemma 3.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..congest.network import Network
from ..congest.node import Inbox, NodeAlgorithm, NodeContext, Outbox
from ..graphs.graph import Edge, edge_key

X_SIDE = 0
Y_SIDE = 1


@dataclass
class CountState:
    """What a node learned from one counting pass."""

    t: int                      # arrival round of the BFS wave (d(v))
    counts: Dict[int, int]      # incoming edge -> number of paths (c_v)
    total: int                  # n_v = sum of counts
    early_free_y: bool = False  # free Y reached before round ell (precondition
    #                             violation in the strict bipartite setting)


class CountingNode(NodeAlgorithm):
    """Node program for Algorithm 3.

    Output: a :class:`CountState` for reached participants, else ``None``.
    """

    passive = True  # acts only on arrivals; unreached nodes stay silent

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        shared = ctx.shared
        self.side: Optional[int] = shared["side"].get(ctx.node_id)
        self.mate: Optional[int] = shared["mate"].get(ctx.node_id)
        self.ell: int = shared["ell"]
        allowed: Optional[Set[Edge]] = shared.get("allowed")
        sides = shared["side"]
        self.eligible: Set[int] = set()
        if self.side is not None:
            for u in ctx.neighbors:
                other = sides.get(u)
                if other is None or other == self.side:
                    continue
                if allowed is not None and edge_key(ctx.node_id, u) not in allowed:
                    continue
                self.eligible.add(u)
        self.round = 0
        self.received = False

    def start(self) -> Outbox:
        if self.side is None or not self.eligible:
            return self.halt()
        if self.side == X_SIDE and self.mate is None:
            # line 2-3: free X nodes seed the wave and halt
            self.output = CountState(t=0, counts={}, total=1)
            self.finished = True
            return {u: 1 for u in self.eligible}
        return {}

    def on_round(self, inbox: Inbox) -> Outbox:
        self.round += 1
        if self.received:
            return {}  # later arrivals are non-shortest paths: discard
        arrivals = {u: int(c) for u, c in inbox.items()
                    if u in self.eligible or u == self.mate}
        if not arrivals:
            if self.round >= self.ell:
                return self.halt()
            return {}
        self.received = True
        total = sum(arrivals.values())
        state = CountState(t=self.round, counts=arrivals, total=total)
        self.output = state
        self.finished = True

        if self.side == X_SIDE:
            # lines 8-10: matched X forwards to all eligible neighbors
            return {u: total for u in self.eligible}
        # Y side
        if self.mate is None:
            state.early_free_y = self.round < self.ell
            return {}
        if self.round < self.ell:
            # lines 11-12: matched Y forwards along its matching edge only
            return {self.mate: total}
        return {}


def run_counting(network: Network, side: Dict[int, Optional[int]],
                 mate: Dict[int, Optional[int]], ell: int,
                 allowed: Optional[Set[Edge]] = None) -> Dict[int, Optional[CountState]]:
    """One counting pass; returns each node's :class:`CountState` (or None)."""
    result = network.run(
        CountingNode,
        protocol="counting",
        shared={"side": side, "mate": mate, "ell": ell, "allowed": allowed},
        max_rounds=2 * ell + 4,
    )
    return result.outputs


def leaders_of(outputs: Dict[int, Optional[CountState]],
               side: Dict[int, Optional[int]],
               mate: Dict[int, Optional[int]], ell: int) -> Dict[int, CountState]:
    """Free Y nodes reached at exactly round ``ell``: the path leaders."""
    leaders: Dict[int, CountState] = {}
    for v, state in outputs.items():
        if state is None or side.get(v) != Y_SIDE or mate.get(v) is not None:
            continue
        if state.t == ell and state.total > 0:
            leaders[v] = state
    return leaders
