"""Algorithm 3: counting half-augmenting paths in bipartite graphs.

A BFS wave starts at every free X node simultaneously; each node forwards a
message exactly once — immediately after the first round in which it received
any — carrying the *number* of shortest half-augmenting paths that reach it
(Lemma 3.8).  Matched Y nodes forward only to their mate; X nodes forward to
all neighbors; free Y nodes terminate paths.  After ``ell`` rounds, each free
Y node reached at exactly round ``ell`` knows the number of augmenting paths
of length ``ell`` that end at it.

The protocol also serves Algorithm 4's ``Aug`` on the sampled bipartite
subgraph: the ``side`` map then holds the random red/blue colors and
``allowed`` restricts edges to the bichromatic subgraph.

Counts can be as large as Delta^{ceil(ell/2)}; the driver runs this protocol
under the PIPELINE policy, which charges the extra rounds that shipping such
numbers in O(log n)-bit chunks costs (the mechanism of Lemma 3.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..congest.kernels import RoundKernel, register_kernel
from ..congest.message import int_bits
from ..congest.network import Network, ProtocolError
from ..congest.node import Inbox, NodeAlgorithm, NodeContext, Outbox
from ..graphs.graph import Edge, edge_key

X_SIDE = 0
Y_SIDE = 1


@dataclass
class CountState:
    """What a node learned from one counting pass."""

    t: int                      # arrival round of the BFS wave (d(v))
    counts: Dict[int, int]      # incoming edge -> number of paths (c_v)
    total: int                  # n_v = sum of counts
    early_free_y: bool = False  # free Y reached before round ell (precondition
    #                             violation in the strict bipartite setting)


class CountingNode(NodeAlgorithm):
    """Node program for Algorithm 3.

    Output: a :class:`CountState` for reached participants, else ``None``.
    """

    passive = True  # acts only on arrivals; unreached nodes stay silent

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        shared = ctx.shared
        self.side: Optional[int] = shared["side"].get(ctx.node_id)
        self.mate: Optional[int] = shared["mate"].get(ctx.node_id)
        self.ell: int = shared["ell"]
        allowed: Optional[Set[Edge]] = shared.get("allowed")
        sides = shared["side"]
        self.eligible: Set[int] = set()
        if self.side is not None:
            for u in ctx.neighbors:
                other = sides.get(u)
                if other is None or other == self.side:
                    continue
                if allowed is not None and edge_key(ctx.node_id, u) not in allowed:
                    continue
                self.eligible.add(u)
        self.round = 0
        self.received = False

    def start(self) -> Outbox:
        if self.side is None or not self.eligible:
            return self.halt()
        if self.side == X_SIDE and self.mate is None:
            # line 2-3: free X nodes seed the wave and halt
            self.output = CountState(t=0, counts={}, total=1)
            self.finished = True
            return {u: 1 for u in self.eligible}
        return {}

    def on_round(self, inbox: Inbox) -> Outbox:
        self.round += 1
        if self.received:
            return {}  # later arrivals are non-shortest paths: discard
        arrivals = {u: int(c) for u, c in inbox.items()
                    if u in self.eligible or u == self.mate}
        if not arrivals:
            if self.round >= self.ell:
                return self.halt()
            return {}
        self.received = True
        total = sum(arrivals.values())
        state = CountState(t=self.round, counts=arrivals, total=total)
        self.output = state
        self.finished = True

        if self.side == X_SIDE:
            # lines 8-10: matched X forwards to all eligible neighbors
            return {u: total for u in self.eligible}
        # Y side
        if self.mate is None:
            state.early_free_y = self.round < self.ell
            return {}
        if self.round < self.ell:
            # lines 11-12: matched Y forwards along its matching edge only
            return {self.mate: total}
        return {}


@register_kernel(CountingNode)
class CountingKernel(RoundKernel):
    """Vectorized superstep executor for :class:`CountingNode`.

    The BFS wave visits each node once, so per-round work is a sparse list
    of in-flight ``(sender, targets, count)`` entries plus one pass over
    the still-unreached nodes — packed python lists throughout.  Path
    counts can reach ``Delta**ceil(ell/2)`` (arbitrary-precision ints), so
    this kernel deliberately has no numpy branch: int64 would silently
    overflow exactly where Lemma 3.9's pipelining costs get interesting.

    Like the node program, a receiver only accepts arrivals from eligible
    neighbors or its mate, forwarding is gated on the round number against
    ``ell``, and a matched Y node forwarding to a non-adjacent mate raises
    the engine's exact ``ProtocolError``.  ``passive = True`` mirrors the
    node class, so the shared execute loop applies the engine's quiescence
    rule (an unreached component parks the wave without spinning).
    """

    passive = True
    # audited: node-local state, read-only shared, (tag, count) payloads
    shardable = True
    # compiled-audited: the kernel draws no randomness and its counts are
    # arbitrary-precision by design (see above — int64 overflows exactly
    # where the pipelining analysis gets interesting), so the compiled
    # tier runs the same sparse wave; auditing it keeps `execution=
    # "compiled"` plans honest instead of silently falling to 'kernel'.
    compiled_audited = True

    def setup(self, shared: Dict[str, Any]) -> None:
        A = self.arrays
        n = A.n
        order = A.order
        tgt = A.tgt
        sides = shared["side"]
        mates = shared["mate"]
        self.ell: int = shared["ell"]
        allowed: Optional[Set[Edge]] = shared.get("allowed")

        self.side = [sides.get(v) for v in order]
        self.mate = [mates.get(v) for v in order]
        self.out: List[Any] = [None] * n
        self.finished = [False] * n

        elig_t: List[List[int]] = []  # eligible target indices, ascending
        for i in range(n):
            si = self.side[i]
            row: List[int] = []
            if si is not None:
                vid = order[i]
                for e in A.row(i):
                    u = tgt[e]
                    other = self.side[u]
                    if other is None or other == si:
                        continue
                    if (allowed is not None
                            and edge_key(vid, order[u]) not in allowed):
                        continue
                    row.append(u)
            elig_t.append(row)
        self.elig_t = elig_t
        # the node program's receive filter: eligible ids, plus the mate
        accept: List[Set[int]] = []
        for i in range(n):
            ids = {order[u] for u in elig_t[i]}
            if self.mate[i] is not None:
                ids.add(self.mate[i])
            accept.append(ids)
        self.accept = accept

        # in-flight wave: (sender index, target indices | None=mate, count)
        pending: List[Tuple[int, Optional[List[int]], int]] = []
        live: List[int] = []
        for i in range(n):
            if self.side[i] is None or not elig_t[i]:
                self.finished[i] = True  # non-participant: halt, output None
            elif self.side[i] == X_SIDE and self.mate[i] is None:
                self.out[i] = CountState(t=0, counts={}, total=1)
                self.finished[i] = True  # free X: seed the wave and halt
                pending.append((i, elig_t[i], 1))
            else:
                live.append(i)
        self.live = live
        self.pending_msgs = pending

    def step(self, round_number: int) -> int:
        A = self.arrays
        order = A.order
        index = A.index
        slot_of = self.net._slot_of
        finished = self.finished
        accept = self.accept
        extra = 0
        messages = 0
        bits_sum = 0
        max_bits = 0
        arrivals: Dict[int, Dict[int, int]] = {}
        for i, targets, value in self.pending_msgs:  # ascending sender
            sid = order[i]
            if targets is None:  # matched Y forwarding along its mate edge
                mid = self.mate[i]
                if mid not in slot_of[sid]:
                    raise ProtocolError(
                        f"node {sid} tried to message non-neighbor {mid}"
                    )
                targets = (index[mid],)
            bits = int_bits(value)
            charge = self.charge(bits, sid, order[targets[0]])
            if charge > extra:
                extra = charge
            cnt = len(targets)
            messages += cnt
            bits_sum += bits * cnt
            if bits > max_bits:
                max_bits = bits
            for t in targets:
                if finished[t] or sid not in accept[t]:
                    continue  # discarded or filtered on receipt
                box = arrivals.get(t)
                if box is None:
                    box = {}
                    arrivals[t] = box
                box[sid] = value
        self.record_traffic(messages, bits_sum, max_bits)
        self._absorb(arrivals, round_number)
        return extra

    def _absorb(self, arrivals: Dict[int, Dict[int, int]], r: int) -> None:
        """Apply one round's accepted arrivals to the unreached frontier."""
        finished = self.finished
        ell = self.ell
        out = self.out
        side = self.side
        mate = self.mate
        new_live: List[int] = []
        new_pending: List[Tuple[int, Optional[List[int]], int]] = []
        for i in self.live:
            arr = arrivals.get(i)
            if arr is None:
                if r >= ell:
                    finished[i] = True  # the wave can no longer reach us
                else:
                    new_live.append(i)
                continue
            total = sum(arr.values())
            state = CountState(t=r, counts=arr, total=total)
            out[i] = state
            finished[i] = True
            if side[i] == X_SIDE:
                new_pending.append((i, self.elig_t[i], total))
            elif mate[i] is None:
                state.early_free_y = r < ell
            elif r < ell:
                new_pending.append((i, None, total))
        self.live = new_live
        self.pending_msgs = new_pending

    # -- protocol surface ------------------------------------------------
    def unfinished(self) -> bool:
        return bool(self.live)

    def pending(self) -> bool:
        return bool(self.pending_msgs)

    def outputs(self) -> Dict[int, Any]:
        order = self.arrays.order
        out = self.out
        return {order[i]: out[i] for i in range(self.arrays.n)}

    # -- sharded fast path -------------------------------------------------
    # Counts ride (sender, target, value) records to the target's owner;
    # the receive filter (finished / accept-set) runs entirely on the
    # receiving worker, whose state for its own rows is authoritative.
    # There is no randomness anywhere, so setup replication is trivial.
    shard_words = 3

    def shard_setup(self, shared: Dict[str, Any]) -> None:
        self.setup(shared)
        ctx = self.shard
        owner, w = ctx.owner, ctx.w
        self.live = [i for i in self.live if owner[i] == w]
        self.pending_msgs = [p for p in self.pending_msgs
                             if owner[p[0]] == w]
        self._local_arrivals: List[Tuple[int, int, int]] = []

    def shard_publish(self, round_number: int) -> int:
        ctx = self.shard
        A = self.arrays
        order = A.order
        index = A.index
        slot_of = ctx.slot_of()
        owner, w = ctx.owner, ctx.w
        words = ctx.staged_words
        local = self._local_arrivals
        extra = 0
        messages = 0
        bits_sum = 0
        max_bits = 0
        for i, targets, value in self.pending_msgs:  # ascending owned sender
            self.shard_pos = i
            sid = order[i]
            if targets is None:  # matched Y forwarding along its mate edge
                mid = self.mate[i]
                if mid not in slot_of[sid]:
                    raise ProtocolError(
                        f"node {sid} tried to message non-neighbor {mid}"
                    )
                targets = (index[mid],)
            bits = int_bits(value)
            charge = self.charge(bits, sid, order[targets[0]])
            if charge > extra:
                extra = charge
            cnt = len(targets)
            messages += cnt
            bits_sum += bits * cnt
            if bits > max_bits:
                max_bits = bits
            for t in targets:
                d = owner[t]
                if d == w:
                    local.append((i, t, value))
                else:
                    sw = words[d]
                    sw.append(i)
                    sw.append(t)
                    sw.append(ctx.stage_value(d, value))
        self.record_traffic(messages, bits_sum, max_bits)
        self.pending_msgs = []
        return extra

    def shard_apply(self, round_number: int) -> None:
        ctx = self.shard
        order = self.arrays.order
        triples = self._local_arrivals
        self._local_arrivals = []
        for _peer, wordsv, blob in ctx.incoming:
            reader = ctx.blob_reader(blob)
            for off in range(0, len(wordsv), 3):
                triples.append((int(wordsv[off]), int(wordsv[off + 1]),
                                ctx.resolve(int(wordsv[off + 2]), reader)))
        # ascending global sender: each arrival box fills in the same
        # insertion order the in-process scan produces
        triples.sort(key=lambda rec: (rec[0], rec[1]))
        finished = self.finished
        accept = self.accept
        arrivals: Dict[int, Dict[int, int]] = {}
        for s, t, value in triples:
            if finished[t]:
                continue
            sid = order[s]
            if sid not in accept[t]:
                continue
            box = arrivals.get(t)
            if box is None:
                box = {}
                arrivals[t] = box
            box[sid] = value
        self._absorb(arrivals, round_number)

    def shard_outputs(self) -> Dict[int, Any]:
        order = self.arrays.order
        out = self.out
        return {order[i]: out[i] for i in self.shard.owned}


def run_counting(network: Network, side: Dict[int, Optional[int]],
                 mate: Dict[int, Optional[int]], ell: int,
                 allowed: Optional[Set[Edge]] = None) -> Dict[int, Optional[CountState]]:
    """One counting pass; returns each node's :class:`CountState` (or None)."""
    result = network.run(
        CountingNode,
        protocol="counting",
        shared={"side": side, "mate": mate, "ell": ell, "allowed": allowed},
        max_rounds=2 * ell + 4,
    )
    return result.outputs


def leaders_of(outputs: Dict[int, Optional[CountState]],
               side: Dict[int, Optional[int]],
               mate: Dict[int, Optional[int]], ell: int) -> Dict[int, CountState]:
    """Free Y nodes reached at exactly round ``ell``: the path leaders."""
    leaders: Dict[int, CountState] = {}
    for v, state in outputs.items():
        if state is None or side.get(v) != Y_SIDE or mate.get(v) is not None:
            continue
        if state.t == ell and state.total > 0:
            leaders[v] = state
    return leaders
