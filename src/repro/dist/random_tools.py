"""Randomness helpers for the distributed algorithms."""

from __future__ import annotations

import math
import os
import random
from typing import Dict, Sequence, Tuple, Union

_MASK64 = (1 << 64) - 1
#: splitmix64 increment / finalizer constants (Steele et al.); the same
#: golden-ratio multiplier already mixes ``Network.node_rng`` streams.
_GAMMA = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

PathElement = Union[int, str]


def _splitmix64(x: int) -> int:
    """One splitmix64 finalization step (64-bit avalanche)."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX_A) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX_B) & _MASK64
    return x ^ (x >> 31)


def _fold(state: int, element: PathElement) -> int:
    """Fold one path element into a 64-bit state.

    Strings are hashed with FNV-1a over their UTF-8 bytes — *not* the
    builtin ``hash``, which is salted per interpreter process and would
    destroy reproducibility across runs.
    """
    if isinstance(element, str):
        h = _FNV_OFFSET
        for byte in element.encode("utf-8"):
            h = ((h ^ byte) * _FNV_PRIME) & _MASK64
        element = h
    return _splitmix64(state ^ (element & _MASK64))


def spawn_seed(seed: int, *path: PathElement) -> int:
    """Derive a child seed from ``seed`` along a labelled path.

    Replaces the ad-hoc linear formulas the drivers used to hand-roll
    (``seed * 31 + ell``, ``seed * 131 + it * 17 + c``) with a proper
    seed sequence: each path element — an int (iteration, class index)
    or a stable string label ("conflict", "class_mis") — is folded into
    a splitmix64 chain, so sibling streams are decorrelated even when
    their indices collide arithmetically, and the derivation is stable
    across Python versions and processes.
    """
    state = _splitmix64(seed & _MASK64)
    for element in path:
        state = _fold(state, element)
    return state


def spawn_rng(seed: int, *path: PathElement) -> random.Random:
    """A ``random.Random`` seeded by :func:`spawn_seed`."""
    return random.Random(spawn_seed(seed, *path))


#: Environment variable restoring the pre-1.4 *additive* per-node seed
#: mixing (value ``1``/``true``/``yes``/``on``) for runs whose goldens were
#: pinned against the old streams.  The additive formula could alias
#: distinct ``(seed, run, salt, node)`` quadruples (e.g. ``salt * 0x1003F``
#: collides with node-id offsets); the splitmix64 chain cannot.
ADDITIVE_NODE_RNG_ENV = "REPRO_ADDITIVE_NODE_RNG"


def additive_node_rng_requested() -> bool:
    """True when :data:`ADDITIVE_NODE_RNG_ENV` asks for the legacy mixing."""
    flag = os.environ.get(ADDITIVE_NODE_RNG_ENV, "").strip().lower()
    return flag in ("1", "true", "yes", "on")


def node_stream_seed(seed: int, run_counter: int, node_id: int,
                     salt: int = 0, additive: bool = False) -> int:
    """Seed of one node's private stream for one protocol run.

    The default derivation routes through the :func:`spawn_seed` splitmix64
    chain, so streams are collision-safe: distinct ``(seed, run, salt,
    node)`` quadruples always yield distinct (and decorrelated) seeds.
    ``additive=True`` reproduces the historical linear formula for
    golden-pinned runs — both :class:`~repro.congest.network.Network` and
    :class:`~repro.congest.asynchrony.AsyncNetwork` consult this helper, so
    a program's random stream always matches between the two executors.
    """
    if additive:
        return (seed * _GAMMA
                + run_counter * _FNV_PRIME
                + salt * 0x1003F
                + node_id) & _MASK64
    return spawn_seed(seed, "node", run_counter, salt, node_id)


def node_stream_prefix(seed: int, run_counter: int, salt: int = 0) -> int:
    """The shared prefix state of :func:`node_stream_seed`'s splitmix chain.

    ``spawn_seed(seed, "node", run, salt, node_id)`` folds the same
    ``(seed, "node", run, salt)`` prefix for every node of a run — including
    an FNV hash of the string label each time.  Executors therefore compute
    the prefix once per ``(run, salt)`` and derive each node's seed with
    :func:`node_seed_from_prefix`, turning n four-fold chains into one
    prefix plus n single finalizations.  By construction
    ``node_seed_from_prefix(node_stream_prefix(s, r, t), v) ==
    node_stream_seed(s, r, v, t)`` for every node id ``v``.
    """
    state = _splitmix64(seed & _MASK64)
    state = _fold(state, "node")
    state = _fold(state, run_counter)
    return _fold(state, salt)


def node_seed_from_prefix(prefix: int, node_id: int) -> int:
    """Finalize one node's stream seed from a precomputed prefix state."""
    return _splitmix64(prefix ^ (node_id & _MASK64))


def sample_max_uniform(rng: random.Random, count: int, cap: int) -> int:
    """One draw distributed as the maximum of ``count`` uniforms on {1..cap}.

    This is the paper's Section 3.2 trick: a leader owning ``count``
    augmenting paths simulates all their Luby draws with a single sample,
    using the explicit CDF Pr[max <= m] = (m / cap)^count.  Inverse-CDF
    sampling: with u ~ U(0,1), the draw is ceil(cap * u^(1/count)).
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if cap < 1:
        raise ValueError("cap must be at least 1")
    u = rng.random()
    if u <= 0.0:
        return 1
    # exp(log(u)/count) is numerically stable for very large counts
    value = int(math.ceil(cap * math.exp(math.log(u) / count)))
    return min(max(value, 1), cap)


def weighted_choice(rng: random.Random, weights: Dict[int, int]) -> int:
    """Pick a key with probability proportional to its (integer) weight."""
    keys = sorted(weights)
    total = sum(weights[k] for k in keys)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    target = rng.randrange(total)
    acc = 0
    for k in keys:
        acc += weights[k]
        if target < acc:
            return k
    return keys[-1]  # unreachable, guards float/int edge cases
