"""Randomness helpers for the distributed algorithms."""

from __future__ import annotations

import math
import random
from typing import Dict, Sequence, Tuple


def sample_max_uniform(rng: random.Random, count: int, cap: int) -> int:
    """One draw distributed as the maximum of ``count`` uniforms on {1..cap}.

    This is the paper's Section 3.2 trick: a leader owning ``count``
    augmenting paths simulates all their Luby draws with a single sample,
    using the explicit CDF Pr[max <= m] = (m / cap)^count.  Inverse-CDF
    sampling: with u ~ U(0,1), the draw is ceil(cap * u^(1/count)).
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if cap < 1:
        raise ValueError("cap must be at least 1")
    u = rng.random()
    if u <= 0.0:
        return 1
    # exp(log(u)/count) is numerically stable for very large counts
    value = int(math.ceil(cap * math.exp(math.log(u) / count)))
    return min(max(value, 1), cap)


def weighted_choice(rng: random.Random, weights: Dict[int, int]) -> int:
    """Pick a key with probability proportional to its (integer) weight."""
    keys = sorted(weights)
    total = sum(weights[k] for k in keys)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    target = rng.randrange(total)
    acc = 0
    for k in keys:
        acc += weights[k]
        if target < acc:
            return k
    return keys[-1]  # unreachable, guards float/int edge cases
