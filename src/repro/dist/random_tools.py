"""Randomness helpers for the distributed algorithms."""

from __future__ import annotations

import math
import random
from typing import Dict, Sequence, Tuple, Union

_MASK64 = (1 << 64) - 1
#: splitmix64 increment / finalizer constants (Steele et al.); the same
#: golden-ratio multiplier already mixes ``Network.node_rng`` streams.
_GAMMA = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

PathElement = Union[int, str]


def _splitmix64(x: int) -> int:
    """One splitmix64 finalization step (64-bit avalanche)."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX_A) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX_B) & _MASK64
    return x ^ (x >> 31)


def _fold(state: int, element: PathElement) -> int:
    """Fold one path element into a 64-bit state.

    Strings are hashed with FNV-1a over their UTF-8 bytes — *not* the
    builtin ``hash``, which is salted per interpreter process and would
    destroy reproducibility across runs.
    """
    if isinstance(element, str):
        h = _FNV_OFFSET
        for byte in element.encode("utf-8"):
            h = ((h ^ byte) * _FNV_PRIME) & _MASK64
        element = h
    return _splitmix64(state ^ (element & _MASK64))


def spawn_seed(seed: int, *path: PathElement) -> int:
    """Derive a child seed from ``seed`` along a labelled path.

    Replaces the ad-hoc linear formulas the drivers used to hand-roll
    (``seed * 31 + ell``, ``seed * 131 + it * 17 + c``) with a proper
    seed sequence: each path element — an int (iteration, class index)
    or a stable string label ("conflict", "class_mis") — is folded into
    a splitmix64 chain, so sibling streams are decorrelated even when
    their indices collide arithmetically, and the derivation is stable
    across Python versions and processes.
    """
    state = _splitmix64(seed & _MASK64)
    for element in path:
        state = _fold(state, element)
    return state


def spawn_rng(seed: int, *path: PathElement) -> random.Random:
    """A ``random.Random`` seeded by :func:`spawn_seed`."""
    return random.Random(spawn_seed(seed, *path))


def sample_max_uniform(rng: random.Random, count: int, cap: int) -> int:
    """One draw distributed as the maximum of ``count`` uniforms on {1..cap}.

    This is the paper's Section 3.2 trick: a leader owning ``count``
    augmenting paths simulates all their Luby draws with a single sample,
    using the explicit CDF Pr[max <= m] = (m / cap)^count.  Inverse-CDF
    sampling: with u ~ U(0,1), the draw is ceil(cap * u^(1/count)).
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if cap < 1:
        raise ValueError("cap must be at least 1")
    u = rng.random()
    if u <= 0.0:
        return 1
    # exp(log(u)/count) is numerically stable for very large counts
    value = int(math.ceil(cap * math.exp(math.log(u) / count)))
    return min(max(value, 1), cap)


def weighted_choice(rng: random.Random, weights: Dict[int, int]) -> int:
    """Pick a key with probability proportional to its (integer) weight."""
    keys = sorted(weights)
    total = sum(weights[k] for k in keys)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    target = rng.randrange(total)
    acc = 0
    for k in keys:
        acc += weights[k]
        if target < acc:
            return k
    return keys[-1]  # unreachable, guards float/int edge cases
