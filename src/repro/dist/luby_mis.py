"""Luby's randomized maximal independent set algorithm (CONGEST).

Used by the paper's Algorithm 1 (step 5): an MIS of the conflict graph
C_M(ell) selects a maximal set of non-conflicting augmenting paths.  Each
iteration costs two rounds:

1. *draw*   — every active node draws a uniform value from [1, n^4]
   (ties broken by node id, making comparisons strict) and broadcasts it;
2. *resolve* — a node whose (value, id) beats every active neighbor joins
   the MIS and announces "J"; nodes hearing "J" are dominated, announce "D",
   and halt.  Everyone prunes halted neighbors.

Las Vegas termination: nodes halt exactly when they are in the MIS or
dominated, so the output is always a correct MIS; O(log n) iterations w.h.p.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..observe.events import MISDecision
from ..congest import compiled as _compiled
from ..congest.compiled import maybe_njit, rng_getrandbits
from ..congest.kernels import RoundKernel, register_kernel
from ..congest.message import int_bits
from ..congest.network import Network
from ..congest.node import BROADCAST, Inbox, NodeAlgorithm, NodeContext, Outbox
from ..runtime import as_network

_JOIN = "J"
_DOMINATED = "D"

# numpy via the compiled module's guarded import: the jitted redraw below
# only ever runs once the compiled tier resolved, which requires numpy.
np = _compiled.np


@maybe_njit
def _luby_redraw(mt, mti, ids, prefix, row, cap, k):
    """Jitted ``randint(1, cap)`` over the packed MT19937 pool.

    Replays CPython's ``_randbelow`` fixed-width rejection loop (the same
    loop :meth:`LubyMISKernel._redraw` peels out in python) against the
    row-``row`` generator state, so the bit stream — and therefore every
    draw — is identical to ``self.rng(i).getrandbits``.  Only valid while
    ``cap`` fits the facade's single-call width (``k <= 62``); the caller
    gates on that and falls back to the python loop otherwise.
    """
    v = rng_getrandbits(mt, mti, ids, prefix, row, k)
    while v >= np.uint64(cap):
        v = rng_getrandbits(mt, mti, ids, prefix, row, k)
    return v + np.uint64(1)

# sharded-kernel halo record kinds (first word of each 3-word record)
_REC_DRAW = 0  # (DRAW, drawer index, value word) -> stamp draw/drawn_at
_REC_D = 1     # (D, slot, -)                    -> clear the reverse slot
_REC_WIN = 2   # (WIN, winner index, -)          -> stamp winner_at


class LubyMISNode(NodeAlgorithm):
    """Node program for Luby's algorithm; output is ``True`` iff in the MIS."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.active_neighbors: Set[int] = set(ctx.neighbors)
        self.value_cap = max(2, ctx.n) ** 4
        self.my_draw: Optional[int] = None
        self.phase = "draw"

    def start(self) -> Outbox:
        return self._draw()

    def _draw(self) -> Outbox:
        self.phase = "draw"
        if not self.active_neighbors:
            return self.halt(True)  # isolated among actives: join
        self.my_draw = self.rng.randint(1, self.value_cap)
        return {u: self.my_draw for u in self.active_neighbors}

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.phase == "draw":
            # inbox: neighbors' draws, plus stragglers' domination notices
            # from the tail of the previous iteration (they sent and halted)
            for u, tag in inbox.items():
                if tag == _DOMINATED:
                    self.active_neighbors.discard(u)
            self.phase = "resolve"
            mine = (self.my_draw, self.node_id)
            beaten = any(
                (value, u) > mine
                for u, value in inbox.items()
                if isinstance(value, int) and u in self.active_neighbors
            )
            if not beaten:
                self.output = True
                self.finished = True
                return {u: _JOIN for u in self.active_neighbors}
            return {}
        # phase == "resolve": hear joins/dominations from this iteration
        joined_neighbors = {u for u, tag in inbox.items() if tag == _JOIN}
        if joined_neighbors:
            self.output = False
            self.finished = True
            return {u: _DOMINATED for u in self.active_neighbors
                    if u not in joined_neighbors}
        for u, tag in inbox.items():
            if tag == _DOMINATED:
                self.active_neighbors.discard(u)
        return self._draw()


@register_kernel(LubyMISNode)
class LubyMISKernel(RoundKernel):
    """Vectorized superstep executor for :class:`LubyMISNode`.

    Per-node state packs into index arrays (draw values, halt flags) and a
    per-slot boolean mask ``active[e]`` ("the owner of slot ``e`` still
    considers its target active").  Rounds strictly alternate:

    * odd rounds deliver draws (plus straggler "D" notices, pruned first
      via the CSR ``rev`` slots); a node beaten by no active drawer wins,
      halts into the MIS and stages "J" to its active neighbors;
    * even rounds deliver the "J"s; a node hearing one is dominated, halts
      and stages "D" to its active non-winner neighbors; survivors redraw.

    Winner detection compares ``(draw, id)`` pairs; since CSR order is
    sorted, comparing ``(draw, index)`` is equivalent, and with numpy the
    whole round collapses to a segment-max over packed ``draw * n + index``
    keys (``np.maximum.reduceat`` per CSR row).  The packing is gated on
    ``cap * (n + 1)`` fitting in int64 — beyond that (n ≳ 6000) the kernel
    runs its pure-python branch, which is also the no-numpy fallback.

    ``drawn_at``/``winner_at`` round stamps stand in for "sender appeared
    in this round's inbox", so stale array entries can never masquerade as
    current-round messages.
    """

    # audited: node-local state, read-only shared, scalar/tag payloads
    shardable = True
    # compiled-audited: the only randomness is `_redraw`, which the
    # compiled tier replays jitted over the packed rng pool (bit-exact);
    # everything else is the numpy/python superstep body unchanged.
    compiled_audited = True
    #: sharded fast path: (kind, a, b) records — see the ``_REC_*`` kinds
    shard_words = 3

    def setup(self, shared: Dict[str, Any]) -> None:
        A = self.arrays
        n = A.n
        cap = max(2, n) ** 4
        self.cap = cap
        self._cap_bits = cap.bit_length()
        # the packed-key path needs draw * n + idx to fit in int64
        np = A.np if (A.np is not None and cap * (n + 1) < 2 ** 63) else None
        self.np = np

        self.out: List[Any] = [None] * n
        self.finished = [False] * n
        self.draw = [0] * n
        live: List[int] = []
        pending_draws: List[Tuple[int, int]] = []  # (sender idx, count)
        indptr = A.indptr
        for i in range(n):
            deg = indptr[i + 1] - indptr[i]
            if deg == 0:
                self.finished[i] = True
                self.out[i] = True  # isolated: joins immediately
                continue
            live.append(i)
            self.draw[i] = self._redraw(i)
            pending_draws.append((i, deg))
        self.live = live
        self.pending_draws = pending_draws
        # Ds staged for the next odd round: one flat slot collection for
        # the prune scatter plus (sender, count, first slot) for pricing
        self.pending_D_price: List[Tuple[int, int, int]] = []
        self.pending_D_slots: Any = None
        self.pending_Js: List[Tuple[int, int]] = []        # (idx, count)

        if np is not None:
            self.mask = np.ones(A.num_slots, dtype=bool)
            self.np_draw = np.zeros(n, dtype=np.int64)
            self.drawn_at = np.zeros(n, dtype=np.int64)
            self.winner_at = np.zeros(n, dtype=np.int64)
            if pending_draws:
                idx = np.asarray([i for i, _ in pending_draws],
                                 dtype=np.int64)
                self.np_draw[idx] = np.asarray(
                    [self.draw[i] for i, _ in pending_draws], dtype=np.int64)
                self.drawn_at[idx] = 1
            if A.num_slots:
                # reduceat wants every offset < num_slots; clipping only
                # garbles rows that are empty, and empty rows belong to
                # degree-0 nodes that halted in setup and are never read
                self._segstarts = np.minimum(A.np_indptr[:-1],
                                             A.num_slots - 1)
                self._slot_owner = np.repeat(np.arange(n, dtype=np.int64),
                                             np.diff(A.np_indptr))
        else:
            self.mask = [True] * A.num_slots
            self.drawn_at = [0] * n
            self.winner_at = [0] * n
            for i, _ in pending_draws:
                self.drawn_at[i] = 1

    def _redraw(self, i: int) -> int:
        """``rng.randint(1, cap)`` with the interpreter frames peeled off.

        ``randint(1, cap)`` reduces to ``1 + Random._randbelow(cap)``, and
        ``_randbelow`` is a fixed-width ``getrandbits`` rejection loop; this
        replays that loop directly, consuming the identical bit stream (the
        kernel golden tests pin the equivalence) at a third of the cost.

        On the compiled tier the loop runs jitted against the packed
        MT19937 pool (same bit stream, no per-call boxing); caps wider
        than 62 bits (n ≳ 46000) stay on the python loop, whose facade
        ``getrandbits`` is still bit-identical.
        """
        if self.compiled and self._cap_bits <= 62:
            pool = self._rng_pool
            return int(_luby_redraw(pool.mt, pool.mti, pool.ids,
                                    pool.prefix, i, self.cap,
                                    self._cap_bits))
        gb = self.rng(i).getrandbits
        cap = self.cap
        k = self._cap_bits
        v = gb(k)
        while v >= cap:
            v = gb(k)
        return v + 1

    # -- pricing ----------------------------------------------------------
    def _price_round(self, rnd: int) -> int:
        """Price this round's in-flight traffic in engine (sender) order.

        The policy charge is memoized per bit-size (shared with the batched
        engine's cache), so the representative receiver is only resolved on
        a cache miss — the steady state is one dict hit per sender.
        """
        A = self.arrays
        order = A.order
        tgt = A.tgt
        cache = self._charge_cache
        extra = 0
        messages = 0
        bits_sum = 0
        max_bits = 0
        draw = self.draw
        if rnd % 2 == 1:  # draws merged with straggler Ds, sender-ascending
            di = 0
            ds = self.pending_D_price
            nd = len(ds)
            for i, cnt in self.pending_draws:
                while di < nd and ds[di][0] < i:
                    s, dcnt, e0 = ds[di]
                    di += 1
                    c = cache.get(12, -1)
                    if c < 0:
                        self.shard_pos = s
                        c = self.charge(12, order[s], order[tgt[e0]])
                    if c > extra:
                        extra = c
                    messages += dcnt
                    bits_sum += 12 * dcnt
                    if max_bits < 12:
                        max_bits = 12
                b = draw[i].bit_length()
                bits = b + b + 2
                c = cache.get(bits, -1)
                if c < 0:
                    self.shard_pos = i
                    c = self.charge(bits, order[i],
                                    order[tgt[self._first_active_slot(i)]])
                if c > extra:
                    extra = c
                messages += cnt
                bits_sum += bits * cnt
                if bits > max_bits:
                    max_bits = bits
            while di < nd:
                s, dcnt, e0 = ds[di]
                di += 1
                c = cache.get(12, -1)
                if c < 0:
                    self.shard_pos = s
                    c = self.charge(12, order[s], order[tgt[e0]])
                if c > extra:
                    extra = c
                messages += dcnt
                bits_sum += 12 * dcnt
                if max_bits < 12:
                    max_bits = 12
        else:  # the winners' Js, all 12-bit
            for i, cnt in self.pending_Js:
                if not cnt:
                    continue
                c = cache.get(12, -1)
                if c < 0:
                    self.shard_pos = i
                    c = self.charge(12, order[i],
                                    order[tgt[self._first_active_slot(i)]])
                if c > extra:
                    extra = c
                messages += cnt
                bits_sum += 12 * cnt
                if max_bits < 12:
                    max_bits = 12
        self.record_traffic(messages, bits_sum, max_bits)
        return extra

    def _first_active_slot(self, i: int) -> int:
        A = self.arrays
        mask = self.mask
        for e in A.row(i):
            if mask[e]:
                return e
        return A.indptr[i]  # unreachable for priced senders

    # -- the two phases ---------------------------------------------------
    def step(self, round_number: int) -> int:
        if round_number % 2 == 1:
            return self._step_draws(round_number)
        return self._step_resolve(round_number)

    def _step_draws(self, rnd: int) -> int:
        """Odd rounds: prune straggler Ds, find winners, stage their Js."""
        extra = self._price_round(rnd)
        self._apply_draws(rnd)
        return extra

    def _apply_draws(self, rnd: int) -> None:
        A = self.arrays
        np = self.np
        mask = self.mask
        # straggler domination notices prune first, exactly as the node
        # program discards D-senders before scanning for a beating draw
        dsl = self.pending_D_slots
        if dsl is not None and len(dsl):
            if np is not None:
                mask[A.np_rev[dsl]] = False
            else:
                rev = A.rev
                for e in dsl:
                    mask[rev[e]] = False
        self.pending_D_slots = None
        self.pending_D_price = []

        n = A.n
        live = self.live
        finished = self.finished
        out = self.out
        pending_Js: List[Tuple[int, int]] = []
        new_live: List[int] = []
        if np is not None:
            np_tgt = A.np_tgt
            cur = mask & (self.drawn_at[np_tgt] == rnd)
            keys = np.where(cur, self.np_draw[np_tgt] * n + np_tgt, -1)
            # one bulk conversion to python lists: the per-live loop below
            # then pays plain list indexing instead of numpy scalar boxing
            best = np.maximum.reduceat(keys, self._segstarts).tolist()
            active_cnt = np.add.reduceat(mask.view(np.int8),
                                         self._segstarts).tolist()
            draw = self.draw
            winner_at = self.winner_at
            for i in live:
                if best[i] > draw[i] * n + i:
                    new_live.append(i)
                    continue
                finished[i] = True
                out[i] = True
                pending_Js.append((i, active_cnt[i]))
                winner_at[i] = rnd + 1
        else:
            tgt = A.tgt
            drawn_at = self.drawn_at
            draw = self.draw
            for i in live:
                mine = draw[i] * n + i
                beaten = False
                cnt = 0
                for e in A.row(i):
                    if not mask[e]:
                        continue
                    cnt += 1
                    u = tgt[e]
                    if drawn_at[u] == rnd and draw[u] * n + u > mine:
                        beaten = True
                if beaten:
                    new_live.append(i)
                    continue
                finished[i] = True
                out[i] = True
                pending_Js.append((i, cnt))
                self.winner_at[i] = rnd + 1
        self.live = new_live
        self.pending_draws = []
        self.pending_Js = pending_Js
        if self.shard is not None:
            # winners announce across the cut next round (the receiver-side
            # slot may still be live even when the winner's own side is not)
            self._win_records = [i for i, _ in pending_Js]

    def _step_resolve(self, rnd: int) -> int:
        """Even rounds: deliver Js; dominated halt and stage Ds; redraw."""
        extra = self._price_round(rnd)
        self._apply_resolve(rnd)
        return extra

    def _apply_resolve(self, rnd: int) -> None:
        A = self.arrays
        np = self.np
        mask = self.mask
        tgt = A.tgt
        live = self.live
        finished = self.finished
        out = self.out
        winner_at = self.winner_at
        draw = self.draw
        pending_draws: List[Tuple[int, int]] = []
        pending_D_price: List[Tuple[int, int, int]] = []
        pending_D_slots: Any = None
        new_live: List[int] = []
        if np is not None:
            slot_join = mask & (winner_at[A.np_tgt] == rnd)
            has_join = np.maximum.reduceat(slot_join.view(np.int8),
                                           self._segstarts).tolist()
            active_cnt = np.add.reduceat(mask.view(np.int8),
                                         self._segstarts).tolist()
            dominated: List[int] = []
            surv: List[int] = []
            vals: List[int] = []
            for i in live:
                if has_join[i]:
                    finished[i] = True
                    out[i] = False
                    dominated.append(i)
                    continue
                # survivor: redraw against the (unpruned) active set
                cnt = active_cnt[i]
                if not cnt:
                    finished[i] = True
                    out[i] = True  # isolated among actives: no rng draw
                    continue
                new_live.append(i)
                v = self._redraw(i)
                draw[i] = v
                surv.append(i)
                vals.append(v)
                pending_draws.append((i, cnt))
            if dominated:
                # all dominated nodes' D slots (active, non-winner targets)
                # in one vectorized sweep; nonzero yields them slot-ascending,
                # i.e. grouped by sender in engine order
                dom = np.zeros(A.n, dtype=bool)
                dom[dominated] = True
                d_slots = np.nonzero(mask & ~slot_join
                                     & dom[self._slot_owner])[0]
                owners = self._slot_owner[d_slots].tolist()
                sl = d_slots.tolist()
                j = 0
                m = len(sl)
                while j < m:
                    o = owners[j]
                    k0 = j
                    j += 1
                    while j < m and owners[j] == o:
                        j += 1
                    pending_D_price.append((o, j - k0, sl[k0]))
                pending_D_slots = d_slots
            if surv:
                si = np.asarray(surv, dtype=np.int64)
                self.np_draw[si] = np.asarray(vals, dtype=np.int64)
                self.drawn_at[si] = rnd + 1
        else:
            flat: List[int] = []
            for i in live:
                joined = False
                cnt = 0
                for e in A.row(i):
                    if mask[e]:
                        cnt += 1
                        if winner_at[tgt[e]] == rnd:
                            joined = True
                if joined:
                    finished[i] = True
                    out[i] = False
                    slots = [e for e in A.row(i)
                             if mask[e] and winner_at[tgt[e]] != rnd]
                    if slots:
                        pending_D_price.append((i, len(slots), slots[0]))
                        flat.extend(slots)
                    continue
                # survivor: redraw against the (unpruned) active set
                if not cnt:
                    finished[i] = True
                    out[i] = True  # isolated among actives: no rng draw
                    continue
                new_live.append(i)
                draw[i] = self._redraw(i)
                pending_draws.append((i, cnt))
                self.drawn_at[i] = rnd + 1
            if flat:
                pending_D_slots = flat
        self.live = new_live
        self.pending_Js = []
        self.pending_draws = pending_draws
        self.pending_D_price = pending_D_price
        self.pending_D_slots = pending_D_slots
        if self.shard is not None:
            self._collect_shard_resolve()

    def _collect_shard_resolve(self) -> None:
        """Queue this resolve round's cross-shard effects for publishing.

        Redrawn values travel to every peer of the drawer; D prunes whose
        reverse slot lives in a remote row go to that row's owner (local
        ones stay in ``pending_D_slots`` for the next odd round's scatter).
        """
        ctx = self.shard
        A = self.arrays
        dsl = self.pending_D_slots
        if dsl is None:
            self._d_remote = []
        elif self.np is not None:
            towner = ctx.np_owner[A.np_tgt[dsl]]
            local = dsl[towner == ctx.w]
            self._d_remote = dsl[towner != ctx.w].tolist()
            self.pending_D_slots = local if len(local) else None
        else:
            owner, w = ctx.owner, ctx.w
            tgt = A.tgt
            local: List[int] = []
            remote: List[int] = []
            for e in dsl:
                (local if owner[tgt[e]] == w else remote).append(e)
            self._d_remote = remote
            self.pending_D_slots = local if local else None
        draw = self.draw
        self._draw_records = [(i, draw[i]) for i, _ in self.pending_draws]

    # -- protocol surface ------------------------------------------------
    def unfinished(self) -> bool:
        return bool(self.live)

    def pending(self) -> bool:  # clock-driven protocol: never consulted
        return bool(self.pending_draws or self.pending_Js
                    or self.pending_D_price)

    def outputs(self) -> Dict[int, Any]:
        order = self.arrays.order
        out = self.out
        return {order[i]: out[i] for i in range(self.arrays.n)}

    # -- sharded fast path -------------------------------------------------
    # Setup replicates every node's initial draw (independent per-node rng
    # streams make that bit-exact), then each worker advances only its
    # owned rows; masks and stamps on remote-adjacent nodes are kept
    # current by DRAW/D/WIN records published along the cut.

    def shard_setup(self, shared: Dict[str, Any]) -> None:
        self.setup(shared)
        ctx = self.shard
        owner, w = ctx.owner, ctx.w
        self.live = [i for i in self.live if owner[i] == w]
        self.pending_draws = [(i, c) for i, c in self.pending_draws
                              if owner[i] == w]
        # record queues staged by the previous apply (round 1 owes none:
        # the setup draws were replicated everywhere)
        self._draw_records: List[Tuple[int, int]] = []
        self._d_remote: List[int] = []
        self._win_records: List[int] = []

    def shard_publish(self, round_number: int) -> int:
        ctx = self.shard
        extra = self._price_round(round_number)
        words = ctx.staged_words
        peers = ctx.peers_of()
        if round_number % 2 == 1:
            for i, v in self._draw_records:
                for d in peers.get(i, ()):
                    sw = words[d]
                    sw.append(_REC_DRAW)
                    sw.append(i)
                    sw.append(ctx.stage_value(d, v))
            owner = ctx.owner
            tgt = self.arrays.tgt
            for e in self._d_remote:
                sw = words[owner[tgt[e]]]
                sw.append(_REC_D)
                sw.append(e)
                sw.append(0)
            self._draw_records = []
            self._d_remote = []
        else:
            for i in self._win_records:
                for d in peers.get(i, ()):
                    sw = words[d]
                    sw.append(_REC_WIN)
                    sw.append(i)
                    sw.append(0)
            self._win_records = []
        return extra

    def shard_apply(self, round_number: int) -> None:
        ctx = self.shard
        A = self.arrays
        if round_number % 2 == 1:
            # incoming prunes and draw stamps land before winner detection,
            # mirroring the in-process prune-then-scan order
            np = self.np
            mask = self.mask
            rev = A.rev
            draw = self.draw
            drawn_at = self.drawn_at
            for _peer, wordsv, blob in ctx.incoming:
                reader = ctx.blob_reader(blob)
                for off in range(0, len(wordsv), 3):
                    if wordsv[off] == _REC_DRAW:
                        u = int(wordsv[off + 1])
                        v = ctx.resolve(int(wordsv[off + 2]), reader)
                        draw[u] = v
                        drawn_at[u] = round_number
                        if np is not None:
                            self.np_draw[u] = v
                    else:  # _REC_D
                        mask[rev[int(wordsv[off + 1])]] = False
            self._apply_draws(round_number)
        else:
            winner_at = self.winner_at
            for _peer, wordsv, _blob in ctx.incoming:
                for off in range(0, len(wordsv), 3):
                    winner_at[int(wordsv[off + 1])] = round_number
            self._apply_resolve(round_number)

    def shard_outputs(self) -> Dict[int, Any]:
        order = self.arrays.order
        out = self.out
        return {order[i]: out[i] for i in self.shard.owned}


def luby_mis(network: Network, max_rounds: Optional[int] = None,
             context: str = "luby_mis") -> Set[int]:
    """Compute an MIS of ``network.graph``; returns the member node ids.

    ``network`` may also be a :class:`~repro.congest.runtime.Subnetwork`,
    so drivers can run the MIS directly inside a ``with`` block.
    """
    network = as_network(network)
    result = network.run(LubyMISNode, protocol="luby_mis", max_rounds=max_rounds)
    if network.wants(MISDecision):
        for v in sorted(result.outputs):
            network.emit(MISDecision(node=v,
                                     selected=bool(result.outputs[v]),
                                     context=context))
    return {v for v, member in result.outputs.items() if member}
