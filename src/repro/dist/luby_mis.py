"""Luby's randomized maximal independent set algorithm (CONGEST).

Used by the paper's Algorithm 1 (step 5): an MIS of the conflict graph
C_M(ell) selects a maximal set of non-conflicting augmenting paths.  Each
iteration costs two rounds:

1. *draw*   — every active node draws a uniform value from [1, n^4]
   (ties broken by node id, making comparisons strict) and broadcasts it;
2. *resolve* — a node whose (value, id) beats every active neighbor joins
   the MIS and announces "J"; nodes hearing "J" are dominated, announce "D",
   and halt.  Everyone prunes halted neighbors.

Las Vegas termination: nodes halt exactly when they are in the MIS or
dominated, so the output is always a correct MIS; O(log n) iterations w.h.p.
"""

from __future__ import annotations

from typing import Optional, Set

from ..congest.events import MISDecision
from ..congest.network import Network
from ..congest.node import BROADCAST, Inbox, NodeAlgorithm, NodeContext, Outbox
from ..congest.runtime import as_network

_JOIN = "J"
_DOMINATED = "D"


class LubyMISNode(NodeAlgorithm):
    """Node program for Luby's algorithm; output is ``True`` iff in the MIS."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.active_neighbors: Set[int] = set(ctx.neighbors)
        self.value_cap = max(2, ctx.n) ** 4
        self.my_draw: Optional[int] = None
        self.phase = "draw"

    def start(self) -> Outbox:
        return self._draw()

    def _draw(self) -> Outbox:
        self.phase = "draw"
        if not self.active_neighbors:
            return self.halt(True)  # isolated among actives: join
        self.my_draw = self.rng.randint(1, self.value_cap)
        return {u: self.my_draw for u in self.active_neighbors}

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.phase == "draw":
            # inbox: neighbors' draws, plus stragglers' domination notices
            # from the tail of the previous iteration (they sent and halted)
            for u, tag in inbox.items():
                if tag == _DOMINATED:
                    self.active_neighbors.discard(u)
            self.phase = "resolve"
            mine = (self.my_draw, self.node_id)
            beaten = any(
                (value, u) > mine
                for u, value in inbox.items()
                if isinstance(value, int) and u in self.active_neighbors
            )
            if not beaten:
                self.output = True
                self.finished = True
                return {u: _JOIN for u in self.active_neighbors}
            return {}
        # phase == "resolve": hear joins/dominations from this iteration
        joined_neighbors = {u for u, tag in inbox.items() if tag == _JOIN}
        if joined_neighbors:
            self.output = False
            self.finished = True
            return {u: _DOMINATED for u in self.active_neighbors
                    if u not in joined_neighbors}
        for u, tag in inbox.items():
            if tag == _DOMINATED:
                self.active_neighbors.discard(u)
        return self._draw()


def luby_mis(network: Network, max_rounds: Optional[int] = None,
             context: str = "luby_mis") -> Set[int]:
    """Compute an MIS of ``network.graph``; returns the member node ids.

    ``network`` may also be a :class:`~repro.congest.runtime.Subnetwork`,
    so drivers can run the MIS directly inside a ``with`` block.
    """
    network = as_network(network)
    result = network.run(LubyMISNode, protocol="luby_mis", max_rounds=max_rounds)
    if network.wants(MISDecision):
        for v in sorted(result.outputs):
            network.emit(MISDecision(node=v,
                                     selected=bool(result.outputs[v]),
                                     context=context))
    return {v for v, member in result.outputs.items() if member}
