"""Theorem 3.10: (1 - 1/(k+1))-approximate MCM in bipartite graphs (CONGEST).

The driver runs the Hopcroft-Karp phase schedule of Algorithm 1 with the
CONGEST implementation of Sections 3.1-3.2: for ell = 1, 3, ..., 2k-1 it
alternates counting passes (Algorithm 3) and token-selection iterations
until the counting pass certifies that no augmenting path of length ell
remains.  By Lemmas 3.2/3.3 the final matching has no augmenting path of
length < 2k+1 and is therefore a (1 - 1/(k+1))-approximation — the paper
states the guarantee as (1 - 1/k) by choosing k one larger; both phrasings
are exposed via ``phases``.

Termination is Las Vegas: every selection iteration applies at least one
augmenting path (the globally largest token always survives every
collision), so each phase finishes after at most |M*| iterations and after
O(log N) iterations w.h.p., N = n * Delta^{(ell+1)/2}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..observe.events import Augmentation
from ..congest.network import Network
from ..congest.policies import PIPELINE, BandwidthPolicy
from ..runtime import PhaseDriver, ProtocolResult
from ..graphs.graph import BipartiteGraph, Edge, Graph, GraphError
from ..matching.core import Matching
from .bipartite_counting import X_SIDE, Y_SIDE, leaders_of, run_counting
from .token_mis import run_token_selection

SideMap = Dict[int, Optional[int]]
MateMap = Dict[int, Optional[int]]


@dataclass
class PhaseStats:
    """One ell-phase of the augmentation schedule."""

    ell: int
    iterations: int
    paths_applied: int
    matching_size: int


@dataclass
class AugmentationStats:
    """Cost/trace of one full augment-to-level run."""

    phases: List[PhaseStats] = field(default_factory=list)

    @property
    def total_paths(self) -> int:
        return sum(p.paths_applied for p in self.phases)


def _value_cap(n: int, max_degree: int, ell: int) -> int:
    """N^4 with N = n * Delta^{(ell+1)/2}, the conflict-graph size bound."""
    n_bound = max(2, n) * max(2, max_degree) ** ((ell + 1) // 2)
    return n_bound ** 4


def augment_to_level(network: Network, side: SideMap, mate: MateMap,
                     max_ell: int,
                     allowed: Optional[Set[Edge]] = None,
                     label: str = "bipartite_mcm") -> Tuple[MateMap, AugmentationStats]:
    """Eliminate all augmenting paths of length <= ``max_ell`` (ascending).

    This is the subroutine Aug(G-hat, M, ell) of Algorithm 4, and the main
    loop of the bipartite algorithm when run on the whole graph.  ``side``
    assigns X/Y (or None for non-participants); ``allowed`` optionally
    restricts usable edges.  Returns the new mate map and per-phase stats.
    ``label`` names the algorithm on the observability event stream
    (``general_mcm`` reuses this loop under its own name).
    """
    n = network.graph.num_nodes
    max_degree = network.graph.max_degree
    stats = AugmentationStats()
    mate = dict(mate)
    driver = PhaseDriver(network, label)
    for ell in range(1, max_ell + 1, 2):
        phase = f"ell={ell}"
        with driver.phase(phase) as ph:
            cap = _value_cap(n, max_degree, ell)
            iterations = 0
            applied_total = 0
            while True:
                outputs = run_counting(network, side, mate, ell, allowed)
                network.global_check()
                leaders = leaders_of(outputs, side, mate, ell)
                if not leaders:
                    break
                iterations += 1
                mate, applied = run_token_selection(
                    network, side, mate, ell, outputs, cap
                )
                if applied == 0:
                    raise RuntimeError(
                        "token selection made no progress despite live "
                        "leaders (protocol invariant violated)"
                    )
                applied_total += applied
                if driver.wants(Augmentation):
                    size = sum(1 for m in mate.values() if m is not None) // 2
                    driver.emit_augmentation(phase=phase, paths=applied,
                                             size=size)
            matched = sum(1 for v, m in mate.items() if m is not None)
            stats.phases.append(PhaseStats(
                ell=ell,
                iterations=iterations,
                paths_applied=applied_total,
                matching_size=matched // 2,
            ))
            ph.set_detail(iterations=iterations,
                          paths_applied=applied_total,
                          matching_size=matched // 2)
    return mate, stats


@dataclass
class BipartiteMCMResult(ProtocolResult):
    """Result of Theorem 3.10's driver: matching plus the phase schedule."""

    stats: AugmentationStats = field(default_factory=AugmentationStats)


def side_map_of(graph: Graph) -> SideMap:
    """X/Y side assignment for a bipartite graph (left = X, right = Y)."""
    if isinstance(graph, BipartiteGraph):
        left, right = set(graph.left), set(graph.right)
    else:
        split = graph.bipartition()
        if split is None:
            raise GraphError("graph is not bipartite; use general_mcm instead")
        left, right = split
    side: SideMap = {}
    for v in graph.nodes:
        side[v] = X_SIDE if v in left else Y_SIDE
    return side


def bipartite_mcm(graph: Graph, k: int, seed: int = 0,
                  policy: BandwidthPolicy = PIPELINE,
                  initial: Optional[Matching] = None,
                  network: Optional[Network] = None) -> BipartiteMCMResult:
    """(1 - 1/(k+1))-approximate maximum matching in a bipartite graph.

    ``k`` is the number of odd phases (ell up to 2k-1); larger k means a
    tighter approximation and more rounds — Theorem 3.10's trade-off.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    net = network if network is not None else Network(graph, policy=policy, seed=seed)
    side = side_map_of(graph)
    initial = initial if initial is not None else Matching()
    mate: MateMap = {v: initial.mate(v) for v in graph.nodes}
    mate, stats = augment_to_level(net, side, mate, 2 * k - 1)
    matching = Matching.from_mate_map(mate)
    return BipartiteMCMResult(matching=matching, stats=stats, network=net)
