"""Exact maximum-weight matching on trees, distributed (CONGEST).

The paper's history section singles trees out (Hoepman, Kutten & Lotker
2006 compute a (1/2 - eps)-MCM on trees in expected constant time).  This
module goes one step further on the quality axis, at diameter cost: the
classic two-state matching DP runs as a distributed protocol —

1. *rooting*: a flood-max over node ids elects one root per component
   (diameter rounds, charged); a BFS wave from each root assigns parents;
2. *convergecast*: leaves report their DP pair ``(best-if-free,
   best-if-matched)``; every node combines its children's pairs and reports
   its own, until the root has the optimum of its component;
3. *broadcast*: decisions flow back down — each node learns whether it is
   matched to its parent and tells each child the same.

Total O(diameter) rounds, O(log n + log W)-bit messages: the exact optimum
where the general algorithms only approximate.  Forests are handled
naturally (one root per component).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..congest.network import Network
from ..congest.policies import PIPELINE, BandwidthPolicy
from ..congest.node import Inbox, NodeAlgorithm, NodeContext, Outbox
from ..congest.utilities import flood_max
from ..graphs.graph import Graph, GraphError
from ..matching.core import Matching
from ..matching.sequential.tree_dp import is_forest

_BFS = "B"
_UP = "U"       # ("U", best_free, best_matched)
_DOWN = "D"     # ("D", matched_to_sender)


class TreeMWMNode(NodeAlgorithm):
    """Node program for the three-phase tree DP."""

    passive = True  # every action is a reaction to a message

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.is_root: bool = ctx.node_id in ctx.shared["roots"]
        self.parent: Optional[int] = None
        self.pending_children: Set[int] = set()
        self.pairs: Dict[int, Tuple[float, float]] = {}
        self.best_free = 0.0
        self.best_matched = float("-inf")
        self.choice: Optional[int] = None
        self.mate: Optional[int] = None
        self.output = {"mate": None}

    # -- DP combination ---------------------------------------------------
    def _combine(self) -> None:
        base = sum(max(pair) for pair in self.pairs.values())
        self.best_free = base
        self.best_matched = float("-inf")
        self.choice = None
        for c, (c_free, c_matched) in sorted(self.pairs.items()):
            candidate = (self.ctx.weight(c) + c_free
                         + base - max(c_free, c_matched))
            if candidate > self.best_matched:
                self.best_matched = candidate
                self.choice = c

    def _decide(self, matched_to_parent: bool) -> Outbox:
        """Phase 3 at this node: fix the mate, instruct the children."""
        if matched_to_parent:
            self.mate = self.parent
            matched_child = None
        elif self.best_matched > self.best_free:
            self.mate = self.choice
            matched_child = self.choice
        else:
            matched_child = None
        self.output = {"mate": self.mate}
        out = {c: (_DOWN, c == matched_child) for c in self.pairs}
        self.finished = True
        return out

    # -- protocol -----------------------------------------------------------
    def start(self) -> Outbox:
        if not self.is_root:
            return {}
        self.pending_children = set(self.neighbors)
        if not self.pending_children:
            return self._decide(matched_to_parent=False)  # isolated node
        return {u: _BFS for u in self.pending_children}

    def on_round(self, inbox: Inbox) -> Outbox:
        out: Outbox = {}
        for sender, msg in sorted(inbox.items()):
            if msg == _BFS:
                # unique in a tree: first (and only) BFS arrival sets parent
                self.parent = sender
                self.pending_children = set(self.neighbors) - {sender}
                if not self.pending_children:
                    # leaf: report the trivial pair immediately
                    out[self.parent] = (_UP, 0.0, float("-inf"))
                else:
                    for u in self.pending_children:
                        out[u] = _BFS
            elif isinstance(msg, tuple) and msg[0] == _UP:
                self.pairs[sender] = (msg[1], msg[2])
                self.pending_children.discard(sender)
                if not self.pending_children:
                    self._combine()
                    if self.is_root:
                        out.update(self._decide(matched_to_parent=False))
                    else:
                        out[self.parent] = (_UP, self.best_free,
                                            self.best_matched)
            elif isinstance(msg, tuple) and msg[0] == _DOWN:
                out.update(self._decide(matched_to_parent=bool(msg[1])))
        return out


def tree_mwm(graph: Graph, seed: int = 0,
             policy: BandwidthPolicy = PIPELINE,
             network: Optional[Network] = None) -> Tuple[Matching, Network]:
    """Exact maximum-weight matching of a forest, distributed.

    Raises :class:`GraphError` on cyclic inputs.  The rooting flood runs for
    exactly the largest component diameter (computed by the harness, charged
    in rounds — the same convention as ``class_greedy_mwm(known_max=False)``).
    """
    if not is_forest(graph):
        raise GraphError("tree_mwm requires a forest")
    net = network if network is not None else Network(graph, policy=policy, seed=seed)
    if graph.num_nodes == 0:
        return Matching(), net

    diameter = max(
        (graph.subgraph(c).diameter() for c in graph.connected_components()
         if len(c) > 1),
        default=1,
    )
    ids = {v: v for v in graph.nodes}
    maxima = flood_max(net, ids, rounds=max(diameter, 1))
    roots = {v for v in graph.nodes if maxima[v] == v}

    result = net.run(
        TreeMWMNode,
        protocol="tree_mwm",
        shared={"roots": roots},
        max_rounds=4 * graph.num_nodes + 8,
    )
    mate_map = {v: (out or {}).get("mate") for v, out in result.outputs.items()}
    return Matching.from_mate_map(mate_map), net
