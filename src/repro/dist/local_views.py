"""Algorithm 2: flooding local views in the LOCAL model.

Every node repeatedly broadcasts everything it knows about the graph; after
``r`` rounds each node's view contains every edge incident to a node within
distance ``r``, together with its matched/unmatched status.  Messages carry
graph descriptions and can be Theta((|V| + |E|) log n) bits (Lemma 3.4) —
this protocol is the reason the generic algorithm needs the LOCAL model, and
running it under the LOCAL policy records those message sizes honestly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..congest.network import Network
from ..congest.node import BROADCAST, Inbox, NodeAlgorithm, NodeContext, Outbox
from ..graphs.graph import Graph, edge_key

# a view item: (u, v, matched_flag) with u < v
ViewItem = Tuple[int, int, bool]


class LocalViewNode(NodeAlgorithm):
    """Flood adjacency + matching information for a fixed number of rounds.

    Output: the node's view as a frozenset of ``(u, v, matched)`` items.
    """

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        mate: Dict[int, Optional[int]] = ctx.shared["mate"]
        self.rounds_left: int = ctx.shared["rounds"]
        my_mate = mate.get(ctx.node_id)
        self.known: Set[ViewItem] = set()
        for u in ctx.neighbors:
            self.known.add(edge_key(ctx.node_id, u) + (u == my_mate,))
        self.fresh: Set[ViewItem] = set(self.known)

    def start(self) -> Outbox:
        self.output = frozenset(self.known)
        if self.rounds_left <= 0 or not self.neighbors:
            return self.halt(frozenset(self.known))
        return {BROADCAST: tuple(sorted(self.fresh))}

    def on_round(self, inbox: Inbox) -> Outbox:
        incoming: Set[ViewItem] = set()
        for items in inbox.values():
            for u, v, flag in items:
                incoming.add((u, v, flag))
        self.fresh = incoming - self.known
        self.known |= self.fresh
        self.output = frozenset(self.known)
        self.rounds_left -= 1
        if self.rounds_left <= 0:
            return self.halt(frozenset(self.known))
        # forward only what is new: once every flood has saturated, the
        # network quiesces and the run ends early with the full views intact
        if self.fresh:
            return {BROADCAST: tuple(sorted(self.fresh))}
        return {}


def flood_views(network: Network, mate: Dict[int, Optional[int]],
                rounds: int) -> Dict[int, FrozenSet[ViewItem]]:
    """Run Algorithm 2's flooding for ``rounds`` rounds; returns the views."""
    result = network.run(
        LocalViewNode,
        protocol="local_views",
        shared={"mate": mate, "rounds": rounds},
        max_rounds=rounds + 2,
    )
    return {v: out if out is not None else frozenset()
            for v, out in result.outputs.items()}


def view_to_graph(view: FrozenSet[ViewItem]) -> Tuple[Graph, Dict[int, Optional[int]]]:
    """Materialize a flooded view as a graph plus the visible mate map."""
    g = Graph()
    mate: Dict[int, Optional[int]] = {}
    for u, v, matched in view:
        g.add_edge(u, v)
        if matched:
            mate[u] = v
            mate[v] = u
    for node in g.nodes:
        mate.setdefault(node, None)
    return g, mate
