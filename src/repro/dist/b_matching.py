"""Distributed weighted b-matching (the paper's "c-matching" follow-up).

The related-work section points to the generalization where each node ``v``
may touch up to ``c(v)`` selected edges; Koufogiannakis & Young [2011] give
a 1/2-approximation in O(log n) rounds.  We implement the natural
mutual-proposal variant of our locally-heaviest matcher: every unsaturated
node proposes to its heaviest remaining edges, one per unit of residual
capacity; an edge proposed from *both* sides is adopted.  Every adopted edge
is locally dominant at adoption time, which yields the classic 1/2
guarantee for maximum-weight b-matching [Mestre 2006]; the globally
heaviest eligible edge is always mutual, so at least one edge is adopted
per iteration (termination within |E| iterations; a handful in practice).

Capacity c(v) = 1 for every node degenerates to ordinary matching and then
this module agrees with :mod:`repro.dist.weighted.local_greedy`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..congest.network import Network
from ..congest.policies import CONGEST, BandwidthPolicy
from ..runtime import as_network, register_map
from ..graphs.graph import Edge, Graph, edge_key
from ..matching.core import Matching

_FREE = "f"
_SATURATED = "s"
_PROPOSE = "p"


class BMatchingError(ValueError):
    """Raised on invalid capacities or b-matchings."""


def validate_b_matching(graph: Graph, edges: Set[Edge],
                        capacity: Dict[int, int]) -> None:
    """Raise unless ``edges`` is a b-matching of ``graph`` under ``capacity``."""
    load: Dict[int, int] = {}
    for u, v in edges:
        if not graph.has_edge(u, v):
            raise BMatchingError(f"({u}, {v}) is not a graph edge")
        load[u] = load.get(u, 0) + 1
        load[v] = load.get(v, 0) + 1
    for v, used in load.items():
        if used > capacity.get(v, 1):
            raise BMatchingError(
                f"node {v} uses {used} edges but has capacity "
                f"{capacity.get(v, 1)}"
            )


def b_matching_weight(graph: Graph, edges: Set[Edge]) -> float:
    return sum(graph.weight(u, v) for u, v in edges)


class BMatchingNode:
    """Node program: mutual proposals to the heaviest residual edges."""

    # implemented without inheriting the matching-specific machinery; the
    # engine only needs the NodeAlgorithm duck type
    passive = False

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.finished = False
        self.output = None
        self.capacity = int(ctx.shared["capacity"].get(ctx.node_id, 1))
        if self.capacity < 0:
            raise BMatchingError(f"negative capacity at node {ctx.node_id}")
        self.adopted: Set[int] = set()        # neighbors adopted
        self.open_neighbors: Set[int] = set() # unsaturated, not yet adopted
        self.phase = "announce"
        self.targets: Set[int] = set()

    # -- helpers ---------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.ctx.node_id

    @property
    def remaining(self) -> int:
        return self.capacity - len(self.adopted)

    def halt(self):
        self.finished = True
        self.output = {"adopted": sorted(self.adopted)}
        return {}

    def _stuck(self):
        if self.remaining <= 0 or not self.open_neighbors:
            return self.halt()
        return None

    def _propose(self):
        self.phase = "propose"
        ranked = sorted(
            self.open_neighbors,
            key=lambda u: (-self.ctx.weight(u), u),
        )
        self.targets = set(ranked[: self.remaining])
        return {u: _PROPOSE for u in self.targets}

    # -- protocol ----------------------------------------------------------
    def start(self):
        eligible = set(self.ctx.neighbors)
        if self.capacity == 0 or not eligible:
            return self.halt()
        return {u: _FREE for u in eligible}

    def on_round(self, inbox):
        if self.phase == "announce":
            self.open_neighbors = {u for u, tag in inbox.items()
                                   if tag == _FREE}
            stuck = self._stuck()
            if stuck is not None:
                return stuck
            return self._propose()
        if self.phase == "propose":
            self.phase = "notify"
            proposals = {u for u, tag in inbox.items() if tag == _PROPOSE}
            mutual = proposals & self.targets
            # |mutual| <= |targets| <= remaining, so adopting all is safe
            # and symmetric (the partner adopts this edge too)
            for u in sorted(mutual):
                self.adopted.add(u)
                self.open_neighbors.discard(u)
            assert self.remaining >= 0
            status = _SATURATED if self.remaining <= 0 else _FREE
            # report status so neighbors can track saturation
            return {u: status for u in self.open_neighbors}
        # phase == "notify"
        for u, tag in inbox.items():
            if tag == _SATURATED:
                self.open_neighbors.discard(u)
        stuck = self._stuck()
        if stuck is not None:
            return stuck
        return self._propose()


def distributed_b_matching(graph: Graph, capacity: Dict[int, int],
                           seed: int = 0,
                           policy: BandwidthPolicy = CONGEST,
                           network: Optional[Network] = None
                           ) -> Tuple[Set[Edge], Network]:
    """Compute a 1/2-approximate maximum-weight b-matching.

    Returns the adopted edge set and the network (for metrics).  The result
    is maximal: no further edge fits the residual capacities.
    """
    network = as_network(network) if network is not None else None
    net = network if network is not None else Network(graph, policy=policy, seed=seed)
    shared = {"capacity": dict(capacity)}
    result = net.run(BMatchingNode, protocol="b_matching", shared=shared)

    edges: Set[Edge] = set()
    adopted_map: Dict[int, Set[int]] = {
        v: set(a or []) for v, a in
        register_map(result.outputs, key="adopted").items()
    }
    for v, nbrs in adopted_map.items():
        for u in nbrs:
            if v not in adopted_map.get(u, set()):
                raise BMatchingError(
                    f"asymmetric adoption between {v} and {u}"
                )
            edges.add(edge_key(v, u))
    validate_b_matching(graph, edges, capacity)
    return edges, net


def b_matching_as_matching(edges: Set[Edge]) -> Matching:
    """Convenience: interpret a b-matching with all capacities 1."""
    return Matching(edges)
