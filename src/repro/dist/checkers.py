"""Distributed self-verification of matching outputs.

The paper's output convention: each node holds a register pointing to a
matched incident edge or NULL.  These protocols let the *network itself*
check that the registers form a valid matching — the distributed analogue
of the library's sequential verifier, and the kind of self-check a
deployment would run after the algorithm:

* :func:`check_matching` — one round: every node announces its register;
  a node flags an error if its mate's register does not point back, if it
  points to a non-neighbor, or if a register names it unexpectedly.
* :func:`check_maximality` — one more round: free nodes announce
  themselves; a free node with a free neighbor flags a violation.

Both run in O(1) rounds with O(log n)-bit messages and return the set of
complaining nodes (empty = verified).  Used in tests as an independent
witness that the distributed outputs are coherent *before* any central
assembly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..observe.events import CheckerVerdict
from ..congest.network import Network
from ..congest.node import BROADCAST, Inbox, NodeAlgorithm, NodeContext, Outbox
from ..runtime import as_network, register_map

_FREE_TAG = -1  # registers are node ids; -1 encodes NULL on the wire


class MatchingCheckNode(NodeAlgorithm):
    """One-round mutual-pointer check of the output registers."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.register: Optional[int] = ctx.shared["mate"].get(ctx.node_id)

    def start(self) -> Outbox:
        if not self.neighbors:
            # an isolated node must be free
            return self.halt({"ok": self.register is None})
        wire = self.register if self.register is not None else _FREE_TAG
        return {BROADCAST: wire}

    def on_round(self, inbox: Inbox) -> Outbox:
        ok = True
        if self.register is not None:
            if self.register not in self.ctx.edge_weights:
                ok = False  # register points outside the neighborhood
            else:
                echo = inbox.get(self.register, _FREE_TAG)
                if echo != self.node_id:
                    ok = False  # mate does not point back
        for u, reg in inbox.items():
            if reg == self.node_id and self.register != u:
                ok = False  # someone claims us unilaterally
        return self.halt({"ok": ok})


class MaximalityCheckNode(NodeAlgorithm):
    """One-round check that no edge joins two free nodes."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.free = ctx.shared["mate"].get(ctx.node_id) is None

    def start(self) -> Outbox:
        if not self.neighbors:
            return self.halt({"ok": True})
        return {BROADCAST: self.free}

    def on_round(self, inbox: Inbox) -> Outbox:
        violated = self.free and any(other_free for other_free in inbox.values())
        return self.halt({"ok": not violated})


def _complaints(result) -> Set[int]:
    """Nodes whose check output is missing or not ok.

    The per-run :attr:`~repro.congest.network.RunResult.metrics` carried by
    the result lets us assert the advertised O(1)-round cost directly —
    no snapshot/diff of the network's cumulative account needed.
    """
    assert result.metrics.rounds <= 1, "checker must finish in one round"
    verdicts = register_map(result.outputs, key="ok", default=False)
    return {v for v, ok in verdicts.items() if not ok}


def _verdict(network: Network, checker: str, complaints: Set[int]) -> Set[int]:
    """Publish the check's outcome on the event bus, pass complaints through."""
    if network.wants(CheckerVerdict):
        network.emit(CheckerVerdict(checker=checker, ok=not complaints,
                                    complaints=len(complaints)))
    return complaints


def check_matching(network: Network,
                   mate: Dict[int, Optional[int]]) -> Set[int]:
    """Run the one-round register check; returns the complaining nodes."""
    network = as_network(network)
    return _verdict(network, "check_matching", _complaints(network.run(
        MatchingCheckNode,
        protocol="check_matching",
        shared={"mate": mate},
        max_rounds=3,
    )))


def check_maximality(network: Network,
                     mate: Dict[int, Optional[int]]) -> Set[int]:
    """Run the one-round maximality check; returns free-free witnesses."""
    network = as_network(network)
    return _verdict(network, "check_maximality", _complaints(network.run(
        MaximalityCheckNode,
        protocol="check_maximality",
        shared={"mate": mate},
        max_rounds=3,
    )))
