"""One home for every deprecation shim's warning.

Every ``DeprecationWarning`` the package emits is registered here by
shim name, with its exact user-facing text (a ``str.format`` template
when the message names the call site).  The emitting modules call
:func:`warn_deprecated` instead of ``warnings.warn`` directly, which
buys two things:

* the warning texts are golden-pinned in one place
  (``tests/test_compat.py`` asserts each registered shim's text and
  its delegation target), so a reworded shim is a deliberate,
  reviewable change rather than drive-by drift; and
* an inventory: ``SHIM_MESSAGES`` *is* the list of compatibility
  surfaces still alive, which is what a future major release deletes.

The legacy ``engine=``/``shards=`` keywords are a deprecation shim too,
but a silent one (they normalize through
:meth:`repro.models.execution.ExecutionPlan.from_legacy` without
warning, golden-pinned there); the test module covers that mapping
alongside the warning shims.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict

__all__ = ["SHIM_MESSAGES", "warn_deprecated"]

#: shim name -> exact warning text (``str.format`` template).  Golden:
#: ``tests/test_compat.py`` asserts these strings verbatim.
SHIM_MESSAGES: Dict[str, str] = {
    # congest/network.py — pre-1.2 tracer= keyword
    "network_tracer": (
        "Network(tracer=...) is deprecated; pass observe=[tracer] "
        "(the Tracer is an event-bus subscriber now)"),
    # congest/faults.py — pre-FaultSpec loss wrapper
    "lossy_network": (
        "LossyNetwork is deprecated; use "
        "Network(..., faults=FaultSpec(loss=...)) instead"),
    # runtime/driver.py — detached sub-Networks
    "nested_network": (
        "nested_network()/detached sub-Networks are deprecated; use "
        "Network.subnetwork() (repro.congest.runtime.Subnetwork), which "
        "inherits faults, observability, and accounting from the parent"),
    # core/api.py — pre-1.1 positional arguments beyond the graph
    "positional_args": (
        "positional arguments to {func}() beyond the graph are "
        "deprecated; call {func}(graph, {shown}) with keywords instead"),
    # dynamic/maintainer.py — per-event maintainer
    "dynamic_matcher": (
        "DynamicMatcher is deprecated; use "
        "repro.stream.MatchingService (or repro.run('stream', ...)), "
        "which batches and coalesces updates"),
    # dist/weighted/algorithm5.py — (graph, seed) black boxes
    "black_box_detached": (
        "black-box callables (graph, seed) -> (Matching, Network) build "
        "a detached Network and are deprecated; accept a network= "
        "keyword to run on the parent's Subnetwork instead"),
    # dist/weighted/hv_local.py — standalone MIS sub-Networks
    "hv_detached": (
        "hv_mwm(subnetworks='detached') reproduces the deprecated "
        "standalone MIS sub-Network (no fault/bus inheritance, ad-hoc "
        "seeds); use the default subnetworks='inherit'"),
    # dist/generic_mcm.py — standalone MIS sub-Networks
    "generic_detached": (
        "generic_mcm(subnetworks='detached') reproduces the deprecated "
        "standalone MIS sub-Network (no fault/bus inheritance, ad-hoc "
        "seeds); use the default subnetworks='inherit'"),
}


def warn_deprecated(shim: str, *, stacklevel: int = 2,
                    **fmt: Any) -> None:
    """Emit the registered shim's :class:`DeprecationWarning`.

    ``stacklevel`` counts from the *caller* exactly as it would for a
    direct ``warnings.warn`` there (this helper adds its own frame), so
    call sites keep the stacklevel they always had and the warning still
    points at user code.
    """
    warnings.warn(SHIM_MESSAGES[shim].format(**fmt), DeprecationWarning,
                  stacklevel=stacklevel + 1)
