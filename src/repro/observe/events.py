"""Structured observability: the event bus the delivery engines emit natively.

The paper's claims are *cost* claims — ``O(k^3 log Delta + k^2 log n)``
rounds, ``O(log n)``-bit messages — so seeing what a run actually did is as
important as the matching it returns.  This module provides the typed event
stream that makes runs inspectable without slowing them down:

* :class:`EventBus` — a publish/subscribe hub.  Subscribers declare an
  *interest mask* (the event kinds they want) and, for the high-volume
  :class:`MessageDelivered` stream, an optional *per-edge sampling rate*.
  The engines check ``bus.wants(kind)`` once per round, so a network with
  no subscribers (or none interested in a kind) pays one dictionary lookup
  per round — never per message.
* Typed events — :class:`RoundStart`/:class:`RoundEnd` and
  :class:`MessageDelivered` from the transport layer, and
  :class:`PhaseStart`/:class:`PhaseEnd`, :class:`Augmentation`,
  :class:`TokenCollision`, :class:`MISDecision`, :class:`CheckerVerdict`
  from the algorithm drivers, and :class:`BatchStart`/:class:`BatchEnd`/
  :class:`Repair` from the streaming matching service
  (:mod:`repro.stream`), so algorithmic structure and transport cost
  appear on one timeline.
* :class:`JsonlTraceWriter` / :func:`load_trace` — stream events to disk
  as JSON lines and reload them as the same event sequence, for offline
  timeline rendering (:func:`render_timeline`) and run-to-run diffing
  (:func:`diff_traces`).  By default the writer records the *structural*
  events only; per-message capture is opt-in (``messages=True`` or a
  ``sample=`` rate) because serializing every delivered message costs more
  than delivering it.
* :func:`observing` — an ambient-observer context: every :class:`Network`
  constructed inside the ``with`` block attaches to the given observers,
  which is how ``python -m repro experiments --trace DIR`` captures whole
  experiment tables without threading a bus through every call site.

Event emission never touches the network's random streams, so an observed
run is bit-identical to an unobserved one (outputs, rounds, metrics) — the
engine-golden tests enforce this.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

# ---------------------------------------------------------------------------
# Event taxonomy
# ---------------------------------------------------------------------------

#: Kind tags, also the ``"kind"`` field of each JSONL line.
ROUND_START = "round_start"
ROUND_END = "round_end"
MESSAGE_DELIVERED = "message"
PHASE_START = "phase_start"
PHASE_END = "phase_end"
AUGMENTATION = "augmentation"
TOKEN_COLLISION = "token_collision"
MIS_DECISION = "mis_decision"
CHECKER_VERDICT = "checker_verdict"
BATCH_START = "batch_start"
BATCH_END = "batch_end"
REPAIR = "repair"


class Event:
    """Base class of all observability events; ``kind`` tags each subclass."""

    kind = "event"

    __slots__ = ()


@dataclass
class RoundStart(Event):
    """The network is about to deliver round ``round`` of ``protocol``."""

    kind = "round_start"

    protocol: str
    round: int


@dataclass
class RoundEnd(Event):
    """Round ``round`` completed: delivery plus every node's computation.

    ``messages``/``bits`` are this round's traffic; ``dropped`` counts
    messages removed by fault injection (paid for but never delivered).
    """

    kind = "round_end"

    protocol: str
    round: int
    messages: int = 0
    bits: int = 0
    dropped: int = 0


@dataclass
class MessageDelivered(Event):
    """One delivered message.  High-volume: subscribe with a sampling rate
    unless you need every edge."""

    kind = "message"

    protocol: str
    round: int
    sender: int
    receiver: int
    bits: int
    payload: Any = None


@dataclass
class PhaseStart(Event):
    """An algorithm driver entered a logical phase (e.g. ``ell=3``)."""

    kind = "phase_start"

    algorithm: str
    phase: str


@dataclass
class PhaseEnd(Event):
    """The matching :class:`PhaseStart`'s phase finished; ``detail`` carries
    driver-specific summary numbers (iterations, paths applied, ...)."""

    kind = "phase_end"

    algorithm: str
    phase: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Augmentation(Event):
    """Augmenting paths were applied to the current matching.

    ``paths`` is how many were applied at once; ``size`` the matching
    size (or weight, for weighted algorithms) afterwards; ``gain`` the
    weight gained (weighted algorithms only).
    """

    kind = "augmentation"

    algorithm: str
    phase: str
    paths: int
    size: float
    gain: float = 0.0


@dataclass
class TokenCollision(Event):
    """Tokens met at ``node`` during token selection; the token of leader
    ``winner`` survived and ``losers`` tokens vanished (Section 3.2)."""

    kind = "token_collision"

    node: int
    winner: int
    losers: int


@dataclass
class MISDecision(Event):
    """A node's final in/out decision in a maximal-independent-set run."""

    kind = "mis_decision"

    node: int
    selected: bool
    context: str = ""


@dataclass
class CheckerVerdict(Event):
    """Outcome of a distributed self-check (:mod:`repro.dist.checkers`)."""

    kind = "checker_verdict"

    checker: str
    ok: bool
    complaints: int = 0


@dataclass
class BatchStart(Event):
    """A streaming service is about to apply update batch ``epoch``.

    ``updates`` is the raw update count of the batch (before coalescing);
    the matching :class:`BatchEnd` reports what the batch actually did.
    """

    kind = "batch_start"

    service: str
    epoch: int
    updates: int


@dataclass
class BatchEnd(Event):
    """The matching :class:`BatchStart`'s batch committed.

    ``seeds`` is the number of repair-worklist seed nodes left after
    coalescing (net topology changes plus broken matched edges);
    ``augmentations`` how many augmenting paths the repair applied;
    ``size`` the matching size afterwards.  Timings stay out of the event
    stream on purpose — traces must be bit-identical run to run.
    """

    kind = "batch_end"

    service: str
    epoch: int
    updates: int
    seeds: int = 0
    augmentations: int = 0
    size: int = 0


@dataclass
class Repair(Event):
    """One invariant-repair pass of a streaming service batch.

    ``mode`` is ``"local"`` (worklist repair seeded at the touched nodes),
    ``"recompute"`` (the repair region was large enough to escalate to a
    from-scratch distributed run on the execution ladder), or ``"init"``
    (the service establishing the invariant on its initial graph).
    """

    kind = "repair"

    service: str
    epoch: int
    mode: str
    seeds: int
    augmentations: int
    nodes_explored: int


EVENT_CLASSES: Dict[str, Type[Event]] = {
    cls.kind: cls
    for cls in (
        RoundStart, RoundEnd, MessageDelivered, PhaseStart, PhaseEnd,
        Augmentation, TokenCollision, MISDecision, CheckerVerdict,
        BatchStart, BatchEnd, Repair,
    )
}

#: Every event kind, in taxonomy order.
ALL_KINDS: Tuple[str, ...] = tuple(EVENT_CLASSES)

#: The low-volume kinds: everything except the per-message stream.
STRUCTURAL_KINDS: Tuple[str, ...] = tuple(
    k for k in ALL_KINDS if k != MESSAGE_DELIVERED
)

_FIELD_NAMES: Dict[Type[Event], Tuple[str, ...]] = {
    cls: tuple(f.name for f in fields(cls)) for cls in EVENT_CLASSES.values()
}

KindSpec = Union[str, Type[Event]]


def _kind_name(kind: KindSpec) -> str:
    """Normalize an event class or kind string to the canonical kind tag."""
    name = kind if isinstance(kind, str) else getattr(kind, "kind", None)
    if name not in EVENT_CLASSES:
        known = ", ".join(ALL_KINDS)
        raise ValueError(f"unknown event kind {kind!r}; known kinds: {known}")
    return name


# ---------------------------------------------------------------------------
# Deterministic per-edge sampling
# ---------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1


def edge_sample_unit(sender: int, receiver: int) -> float:
    """A deterministic pseudo-uniform value in [0, 1) for a directed edge.

    Sampling must not consume any :class:`random.Random` stream (that would
    perturb the algorithms being observed), so it hashes the edge instead:
    a subscriber with ``sample=r`` receives exactly the messages whose
    edge hashes below ``r`` — the *same* edges in every round and every
    run, which is what makes sampled traces comparable run-to-run.
    """
    x = (sender * 0x9E3779B97F4A7C15 + receiver * 0xC2B2AE3D27D4EB4F + 1) & _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 29
    return x / float(1 << 64)


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------

Observer = Callable[[Event], None]


class EventBus:
    """Routes events to subscribers by kind, with optional edge sampling.

    A subscriber is any callable taking one event, or any object with an
    ``on_event(event)`` method.  Its interest mask comes from the
    ``kinds=`` argument, falling back to the object's ``interest``
    attribute, falling back to *all* kinds; likewise ``sample=`` falls
    back to the object's ``sample`` attribute (``None`` = every message).
    Sampling applies only to the :class:`MessageDelivered` stream.
    """

    __slots__ = ("_routes", "_observers")

    def __init__(self) -> None:
        # kind -> list of (callback, sample, observer-identity)
        self._routes: Dict[str, List[Tuple[Observer, Optional[float], Any]]] = {}
        self._observers: List[Any] = []

    # -- subscription ----------------------------------------------------
    def subscribe(self, observer: Any,
                  kinds: Optional[Iterable[KindSpec]] = None,
                  sample: Optional[float] = None) -> Any:
        """Attach ``observer``; returns it, so construction can be inline."""
        callback = getattr(observer, "on_event", observer)
        if not callable(callback):
            raise TypeError(
                f"observer {observer!r} is not callable and has no on_event()"
            )
        if kinds is None:
            kinds = getattr(observer, "interest", None)
        if sample is None:
            sample = getattr(observer, "sample", None)
        if sample is not None and not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        names = ALL_KINDS if kinds is None else tuple(
            _kind_name(k) for k in kinds
        )
        for name in names:
            self._routes.setdefault(name, []).append(
                (callback, sample, observer)
            )
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: Any) -> None:
        """Detach every route of ``observer`` (no-op if not subscribed)."""
        for name in list(self._routes):
            kept = [r for r in self._routes[name] if r[2] is not observer]
            if kept:
                self._routes[name] = kept
            else:
                del self._routes[name]
        self._observers = [o for o in self._observers if o is not observer]

    @property
    def subscribers(self) -> List[Any]:
        return list(self._observers)

    def find(self, cls: type) -> Optional[Any]:
        """The first subscribed observer that is an instance of ``cls``."""
        for observer in self._observers:
            if isinstance(observer, cls):
                return observer
        return None

    # -- emission --------------------------------------------------------
    def wants(self, kind: KindSpec) -> bool:
        """True iff at least one subscriber is interested in ``kind``.

        This is the engines' per-round fast check: O(1), no allocation.
        """
        name = kind if isinstance(kind, str) else kind.kind
        return name in self._routes

    def emit(self, event: Event) -> None:
        """Deliver one event to every interested subscriber."""
        routes = self._routes.get(event.kind)
        if not routes:
            return
        if event.kind == MESSAGE_DELIVERED:
            for callback, sample, _ in routes:
                if (sample is None
                        or edge_sample_unit(event.sender, event.receiver) < sample):
                    callback(event)
            return
        for callback, _, _ in routes:
            callback(event)

    def emit_messages(self, events: Sequence[MessageDelivered]) -> None:
        """Deliver one round's message batch (applies per-edge sampling)."""
        routes = self._routes.get(MESSAGE_DELIVERED)
        if not routes:
            return
        for callback, sample, _ in routes:
            if sample is None:
                for event in events:
                    callback(event)
            else:
                for event in events:
                    if edge_sample_unit(event.sender, event.receiver) < sample:
                        callback(event)


# ---------------------------------------------------------------------------
# Ambient observers (how `--trace DIR` reaches every Network an experiment
# builds without threading a bus through each call site)
# ---------------------------------------------------------------------------

_AMBIENT: List[EventBus] = []


def ambient_bus() -> Optional[EventBus]:
    """The innermost :func:`observing` bus, or None outside any context."""
    return _AMBIENT[-1] if _AMBIENT else None


class observing:
    """Context manager: every Network built inside attaches the observers.

    ::

        with observing(JsonlTraceWriter("run.jsonl")) as bus:
            approx_mcm(graph, eps=0.25, seed=0)

    Explicit ``observe=``/``tracer=`` arguments take precedence over the
    ambient bus.  Contexts nest; the innermost wins.  Serial execution
    only — worker processes of the parallel experiment runner do not
    inherit the ambient context.
    """

    def __init__(self, *observers: Any) -> None:
        self.bus = EventBus()
        for observer in observers:
            self.bus.subscribe(observer)

    def __enter__(self) -> EventBus:
        _AMBIENT.append(self.bus)
        return self.bus

    def __exit__(self, *exc_info: Any) -> None:
        _AMBIENT.remove(self.bus)


# ---------------------------------------------------------------------------
# JSONL persistence
# ---------------------------------------------------------------------------


class JsonlTraceWriter:
    """Streams events to ``path`` as one JSON object per line.

    By default the writer subscribes to the *structural* kinds (rounds,
    phases, augmentations, collisions, MIS decisions, checker verdicts) —
    those cost a few events per round and keep the run on the engine's
    fast path.  Pass ``messages=True`` for full per-message capture, or
    ``sample=rate`` for deterministic per-edge sampling of the message
    stream; an explicit ``kinds=`` overrides the mask entirely.

    Payloads are persisted as ``repr`` strings and reloaded with
    ``ast.literal_eval``, so runs whose payloads are built from Python
    literals (everything in this library) round-trip exactly through
    :func:`load_trace`.
    """

    def __init__(self, path: Union[str, Path],
                 kinds: Optional[Iterable[KindSpec]] = None,
                 messages: bool = False,
                 sample: Optional[float] = None) -> None:
        self.path = Path(path)
        if kinds is not None:
            self.interest: Tuple[str, ...] = tuple(_kind_name(k) for k in kinds)
        elif messages or sample is not None:
            self.interest = ALL_KINDS
        else:
            self.interest = STRUCTURAL_KINDS
        self.sample = sample
        self.count = 0
        self.counts: Dict[str, int] = {}
        self._fh: Optional[IO[str]] = self.path.open("w")

    def on_event(self, event: Event) -> None:
        if self._fh is None:
            raise ValueError(f"trace writer for {self.path} is closed")
        record: Dict[str, Any] = {"kind": event.kind}
        for name in _FIELD_NAMES[type(event)]:
            record[name] = getattr(event, name)
        if event.kind == MESSAGE_DELIVERED:
            record["payload"] = repr(record["payload"])
        self._fh.write(json.dumps(record, separators=(",", ":"), default=repr))
        self._fh.write("\n")
        self.count += 1
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _parse_payload(text: Any) -> Any:
    """Invert the writer's ``repr`` encoding; unknown reprs stay strings."""
    if not isinstance(text, str):
        return text
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def load_trace(path: Union[str, Path]) -> List[Event]:
    """Reload a JSONL trace as the event sequence the writer observed."""
    events: List[Event] = []
    with Path(path).open() as fh:
        for line_number, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", None)
            cls = EVENT_CLASSES.get(kind)
            if cls is None:
                raise ValueError(
                    f"{path}:{line_number}: unknown event kind {kind!r}"
                )
            if cls is MessageDelivered:
                record["payload"] = _parse_payload(record.get("payload"))
            events.append(cls(**record))
    return events


# ---------------------------------------------------------------------------
# Offline rendering and diffing
# ---------------------------------------------------------------------------

_MAX_RENDERED_PAYLOAD = 40


def _render_one(event: Event) -> str:
    if isinstance(event, RoundStart):
        return f"[{event.protocol} r{event.round:>3}] round start"
    if isinstance(event, RoundEnd):
        drop = f" dropped={event.dropped}" if event.dropped else ""
        return (f"[{event.protocol} r{event.round:>3}] round end: "
                f"{event.messages} msgs, {event.bits} bits{drop}")
    if isinstance(event, MessageDelivered):
        text = repr(event.payload)
        if len(text) > _MAX_RENDERED_PAYLOAD:
            text = text[:_MAX_RENDERED_PAYLOAD - 3] + "..."
        return (f"[{event.protocol} r{event.round:>3}] "
                f"{event.sender:>4} -> {event.receiver:<4} "
                f"({event.bits:>4}b) {text}")
    if isinstance(event, PhaseStart):
        return f"{event.algorithm}: phase {event.phase} {{"
    if isinstance(event, PhaseEnd):
        detail = " ".join(f"{k}={v}" for k, v in event.detail.items())
        return f"}} {event.algorithm}: phase {event.phase} done  {detail}".rstrip()
    if isinstance(event, Augmentation):
        gain = f" gain={event.gain:.4g}" if event.gain else ""
        return (f"{event.algorithm}[{event.phase}]: augment "
                f"{event.paths} path(s) -> size {event.size:g}{gain}")
    if isinstance(event, TokenCollision):
        return (f"token collision at {event.node}: leader {event.winner} "
                f"survives, {event.losers} token(s) die")
    if isinstance(event, MISDecision):
        verdict = "in MIS" if event.selected else "dominated"
        ctx = f" ({event.context})" if event.context else ""
        return f"MIS decision: node {event.node} {verdict}{ctx}"
    if isinstance(event, CheckerVerdict):
        verdict = "ok" if event.ok else f"{event.complaints} complaint(s)"
        return f"checker {event.checker}: {verdict}"
    if isinstance(event, BatchStart):
        return (f"[{event.service} e{event.epoch:>4}] batch start: "
                f"{event.updates} update(s)")
    if isinstance(event, BatchEnd):
        return (f"[{event.service} e{event.epoch:>4}] batch end: "
                f"{event.seeds} seed(s), {event.augmentations} "
                f"augmentation(s) -> size {event.size}")
    if isinstance(event, Repair):
        return (f"[{event.service} e{event.epoch:>4}] repair ({event.mode}): "
                f"{event.seeds} seed(s), {event.augmentations} "
                f"augmentation(s), {event.nodes_explored} node(s) explored")
    return repr(event)


def render_timeline(events: Iterable[Event]) -> str:
    """A human-readable timeline, indented by phase nesting depth."""
    lines: List[str] = []
    depth = 0
    for event in events:
        if isinstance(event, PhaseEnd) and depth > 0:
            depth -= 1
        lines.append("  " * depth + _render_one(event))
        if isinstance(event, PhaseStart):
            depth += 1
    return "\n".join(lines)


def diff_traces(a: Sequence[Event], b: Sequence[Event]
                ) -> Optional[Tuple[int, Optional[Event], Optional[Event]]]:
    """First divergence between two event sequences, or None if identical.

    Returns ``(index, event_a, event_b)`` where either event is None when
    one trace is a strict prefix of the other — the primitive behind
    run-to-run comparisons (same seed, different code revision).
    """
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return i, ea, eb
    if len(a) != len(b):
        i = min(len(a), len(b))
        return (i,
                a[i] if i < len(a) else None,
                b[i] if i < len(b) else None)
    return None
