"""Per-protocol and per-phase cost profiling, as an event-bus observer.

A :class:`Profiler` subscribes to the structural round and phase events and
accumulates, per protocol, the wall-clock time, round count, message count
and bit volume — and, per algorithm phase, the inclusive wall-clock and
traffic between its :class:`~repro.congest.events.PhaseStart` and
:class:`~repro.congest.events.PhaseEnd`.  Because it rides the bus, a
profiled run stays on the batched CSR engine and its outputs are
bit-identical to an unprofiled run.

``Network.run`` surfaces the profiler's account as ``RunResult.profile``
and the high-level API as ``MatchingResult.profile`` (via
``repro.run(..., profile=True)``); ``python -m repro profile`` and
``tools/profile_report.py`` render the same numbers on the command line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from .events import (
    PHASE_END,
    PHASE_START,
    ROUND_END,
    ROUND_START,
    Event,
    EventBus,
    JsonlTraceWriter,
)


@dataclass
class ProtocolProfile:
    """Accumulated cost of one protocol across every run on the network."""

    protocol: str
    rounds: int = 0
    messages: int = 0
    bits: int = 0
    wall: float = 0.0


@dataclass
class PhaseProfile:
    """Inclusive cost of one ``(algorithm, phase)`` label.

    ``entries`` counts how many times the phase was entered; rounds,
    messages and wall are summed over all entries and include everything
    nested inside (flame-graph semantics).  ``counters`` sums the numeric
    values of each entry's :class:`~repro.observe.events.PhaseEnd`
    ``detail`` dict — the drivers' per-phase counters (sampled edges,
    ``delta_est``, ``dropped_edges``, ``decay_ratio``, ...) aggregate
    here without any extra instrumentation in the driver.
    """

    algorithm: str
    phase: str
    entries: int = 0
    rounds: int = 0
    messages: int = 0
    wall: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)


class _OpenPhase:
    __slots__ = ("key", "t0", "rounds", "messages")

    def __init__(self, key: Tuple[str, str], t0: float) -> None:
        self.key = key
        self.t0 = t0
        self.rounds = 0
        self.messages = 0


@dataclass
class ProfileReport:
    """An immutable snapshot of a :class:`Profiler`'s account."""

    protocols: List[ProtocolProfile] = field(default_factory=list)
    phases: List[PhaseProfile] = field(default_factory=list)
    wall: float = 0.0

    def protocol(self, name: str) -> Optional[ProtocolProfile]:
        for p in self.protocols:
            if p.protocol == name:
                return p
        return None

    def table(self) -> str:
        """The per-protocol (and, when present, per-phase) cost table."""
        lines = [
            f"{'protocol':<22} {'rounds':>7} {'messages':>9} "
            f"{'bits':>11} {'wall_s':>8} {'wall%':>6}"
        ]
        total = self.wall or sum(p.wall for p in self.protocols) or 1.0
        for p in self.protocols:
            lines.append(
                f"{p.protocol:<22} {p.rounds:>7} {p.messages:>9} "
                f"{p.bits:>11} {p.wall:>8.4f} {100.0 * p.wall / total:>5.1f}%"
            )
        if self.phases:
            lines.append("")
            lines.append(
                f"{'phase':<30} {'entries':>7} {'rounds':>7} "
                f"{'messages':>9} {'wall_s':>8}"
            )
            for ph in self.phases:
                label = f"{ph.phase} ({ph.algorithm})"
                lines.append(
                    f"{label:<30} {ph.entries:>7} {ph.rounds:>7} "
                    f"{ph.messages:>9} {ph.wall:>8.4f}"
                )
                if ph.counters:
                    rendered = " ".join(
                        f"{k}={v:g}" for k, v in sorted(ph.counters.items()))
                    lines.append(f"    counters: {rendered}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.table()


class Profiler:
    """Bus observer accumulating wall-clock and traffic per protocol/phase.

    ``clock`` is injectable for deterministic tests.  The profiler never
    subscribes to the per-message stream, so its overhead is a few
    callbacks per round regardless of message volume.
    """

    interest = (ROUND_START, ROUND_END, PHASE_START, PHASE_END)

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.protocols: Dict[str, ProtocolProfile] = {}
        self.phases: Dict[Tuple[str, str], PhaseProfile] = {}
        self.wall = 0.0
        self._round_t0: Optional[float] = None
        self._open: List[_OpenPhase] = []

    def on_event(self, event: Event) -> None:
        kind = event.kind
        if kind == ROUND_START:
            self._round_t0 = self._clock()
        elif kind == ROUND_END:
            now = self._clock()
            dt = (now - self._round_t0) if self._round_t0 is not None else 0.0
            self._round_t0 = None
            profile = self.protocols.get(event.protocol)
            if profile is None:
                profile = self.protocols[event.protocol] = ProtocolProfile(
                    protocol=event.protocol
                )
            profile.rounds += 1
            profile.messages += event.messages
            profile.bits += event.bits
            profile.wall += dt
            self.wall += dt
            for open_phase in self._open:
                open_phase.rounds += 1
                open_phase.messages += event.messages
        elif kind == PHASE_START:
            self._open.append(
                _OpenPhase((event.algorithm, event.phase), self._clock())
            )
        elif kind == PHASE_END:
            key = (event.algorithm, event.phase)
            for i in range(len(self._open) - 1, -1, -1):
                if self._open[i].key == key:
                    open_phase = self._open.pop(i)
                    break
            else:
                return  # unmatched PhaseEnd: ignore defensively
            profile = self.phases.get(key)
            if profile is None:
                profile = self.phases[key] = PhaseProfile(
                    algorithm=event.algorithm, phase=event.phase
                )
            profile.entries += 1
            profile.rounds += open_phase.rounds
            profile.messages += open_phase.messages
            profile.wall += self._clock() - open_phase.t0
            for name, value in getattr(event, "detail", {}).items():
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    profile.counters[name] = (
                        profile.counters.get(name, 0) + value)

    def report(self) -> ProfileReport:
        """A snapshot of the current account (ordered by wall desc)."""
        protocols = sorted(
            (replace(p) for p in self.protocols.values()),
            key=lambda p: (-p.wall, p.protocol),
        )
        phases = [replace(p) for p in self.phases.values()]
        return ProfileReport(protocols=protocols, phases=phases,
                             wall=self.wall)

    def table(self) -> str:
        return self.report().table()


class ObservabilityScope:
    """Resolves the ``observe``/``trace``/``profile`` keywords of one run.

    Every entry point of the unified API — the static drivers in
    :mod:`repro.core.api` and the streaming
    :class:`~repro.stream.service.MatchingService` alike — shares the
    observability trio.  This helper builds (or augments) the observer set
    handed to ``Network(observe=...)`` / the service's bus, and remembers
    what it created so results can be stamped and owned writers closed:

    * ``trace`` — a path (a :class:`JsonlTraceWriter` is opened and owned)
      or an existing writer (borrowed: flushed, never closed);
    * ``profile`` — truthy opens a fresh :class:`Profiler`, or pass one in;
    * ``observe`` — an :class:`EventBus` (extras subscribe onto it), a
      single observer, or a list of observers.

    :meth:`stamp` writes ``profile``/``trace_path`` onto a result without
    tearing anything down (a long-lived service stamps many results);
    :meth:`finish` stamps and then :meth:`close`\\ s (the one-shot entry
    points' pattern).
    """

    def __init__(self, observe: Any, trace: Any, profile: Any) -> None:
        self.writer: Optional[JsonlTraceWriter] = None
        self._owns_writer = False
        if trace is not None:
            if isinstance(trace, JsonlTraceWriter):
                self.writer = trace
            else:
                self.writer = JsonlTraceWriter(trace)
                self._owns_writer = True
        self.profiler: Optional[Profiler] = None
        if profile:
            self.profiler = (profile if isinstance(profile, Profiler)
                             else Profiler())
        extras = [o for o in (self.writer, self.profiler) if o is not None]
        if isinstance(observe, EventBus):
            for extra in extras:
                observe.subscribe(extra)
            self.observe: Any = observe
        else:
            observers: list = []
            if observe is not None:
                observers.extend(observe if isinstance(observe, (list, tuple))
                                 else [observe])
            observers.extend(extras)
            self.observe = observers or None

    def stamp(self, result: Any) -> Any:
        """Write ``trace_path``/``profile`` onto ``result`` (no teardown)."""
        if self.writer is not None:
            result.trace_path = self.writer.path
            self.writer.flush()
        if self.profiler is not None:
            result.profile = self.profiler.report()
        return result

    def close(self) -> None:
        """Close a trace writer this scope opened (borrowed writers stay)."""
        if self.writer is not None and self._owns_writer:
            self.writer.close()

    def finish(self, result: Any) -> Any:
        """Stamp ``result`` and release what the scope owns."""
        self.stamp(result)
        self.close()
        return result
