"""Model-agnostic observability: event bus, tracing, profiling.

This package is the *leaf* of the runtime seam — it imports nothing from
:mod:`repro.congest`, :mod:`repro.runtime`, or :mod:`repro.models`, so
every computation model (CONGEST message passing, simulated MPC
clusters) can publish to the same :class:`EventBus` and be traced and
profiled by the same subscribers.

The modules here were hoisted verbatim out of ``repro.congest``;
``repro.congest.events`` / ``.tracing`` / ``.profiling`` remain as
golden-pinned shims, so existing imports and JSONL traces are
bit-identical.
"""

from .events import (
    ALL_KINDS,
    AUGMENTATION,
    BATCH_END,
    BATCH_START,
    CHECKER_VERDICT,
    EVENT_CLASSES,
    MESSAGE_DELIVERED,
    MIS_DECISION,
    PHASE_END,
    PHASE_START,
    REPAIR,
    ROUND_END,
    ROUND_START,
    STRUCTURAL_KINDS,
    TOKEN_COLLISION,
    Augmentation,
    BatchEnd,
    BatchStart,
    CheckerVerdict,
    Event,
    EventBus,
    JsonlTraceWriter,
    MessageDelivered,
    MISDecision,
    PhaseEnd,
    PhaseStart,
    Repair,
    RoundEnd,
    RoundStart,
    TokenCollision,
    ambient_bus,
    diff_traces,
    edge_sample_unit,
    load_trace,
    observing,
    render_timeline,
)
from .profiling import (
    ObservabilityScope,
    PhaseProfile,
    ProfileReport,
    Profiler,
    ProtocolProfile,
)
from .tracing import TraceEvent, Tracer

__all__ = [
    "ALL_KINDS",
    "AUGMENTATION",
    "BATCH_END",
    "BATCH_START",
    "CHECKER_VERDICT",
    "EVENT_CLASSES",
    "MESSAGE_DELIVERED",
    "MIS_DECISION",
    "PHASE_END",
    "PHASE_START",
    "REPAIR",
    "ROUND_END",
    "ROUND_START",
    "STRUCTURAL_KINDS",
    "TOKEN_COLLISION",
    "Augmentation",
    "BatchEnd",
    "BatchStart",
    "CheckerVerdict",
    "Event",
    "EventBus",
    "JsonlTraceWriter",
    "MessageDelivered",
    "MISDecision",
    "ObservabilityScope",
    "PhaseEnd",
    "PhaseProfile",
    "PhaseStart",
    "ProfileReport",
    "Profiler",
    "ProtocolProfile",
    "Repair",
    "RoundEnd",
    "RoundStart",
    "TokenCollision",
    "TraceEvent",
    "Tracer",
    "ambient_bus",
    "diff_traces",
    "edge_sample_unit",
    "load_trace",
    "observing",
    "render_timeline",
]
