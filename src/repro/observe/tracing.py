"""Round-by-round execution traces for debugging distributed runs.

Attach a :class:`Tracer` to a :class:`~repro.congest.network.Network` (via
``observe=[tracer]``; the old ``tracer=`` keyword still works but warns)
and every delivered message is recorded as a :class:`TraceEvent`.  Traces
can be filtered (by protocol, node, round window) and rendered as a compact
timeline — the tool that made the token-collision and synchronizer bugs in
this library findable, kept as a first-class debugging aid.

Internally the tracer is now an :class:`~repro.congest.events.EventBus`
subscriber with ``interest = ("message",)``: it converts each
:class:`~repro.congest.events.MessageDelivered` into a :class:`TraceEvent`,
so traced runs stay on the batched CSR engine and record exactly what the
legacy tracer hook recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional

MAX_RENDERED_PAYLOAD = 40


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message."""

    protocol: str
    round: int
    sender: int
    receiver: int
    bits: int
    payload: Any

    def render(self) -> str:
        text = repr(self.payload)
        if len(text) > MAX_RENDERED_PAYLOAD:
            text = text[:MAX_RENDERED_PAYLOAD - 3] + "..."
        return (f"[{self.protocol} r{self.round:>3}] "
                f"{self.sender:>4} -> {self.receiver:<4} "
                f"({self.bits:>4}b) {text}")


@dataclass
class Tracer:
    """Collects trace events; optionally bounded to the most recent ones."""

    #: Bus interest mask: the tracer only wants the per-message stream.
    interest = ("message",)

    capacity: Optional[int] = None
    events: List[TraceEvent] = field(default_factory=list)

    def on_event(self, event: Any) -> None:
        """Bus-subscriber entry point: a MessageDelivered per delivery."""
        self.record(TraceEvent(
            protocol=event.protocol, round=event.round,
            sender=event.sender, receiver=event.receiver,
            bits=event.bits, payload=event.payload,
        ))

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)
        if self.capacity is not None and len(self.events) > self.capacity:
            del self.events[: len(self.events) - self.capacity]

    def record_many(self, events: Iterable[TraceEvent]) -> None:
        """Record a whole round's events at once (single capacity trim)."""
        self.events.extend(events)
        if self.capacity is not None and len(self.events) > self.capacity:
            del self.events[: len(self.events) - self.capacity]

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def filter(self, protocol: Optional[str] = None,
               node: Optional[int] = None,
               rounds: Optional[range] = None,
               predicate: Optional[Callable[[TraceEvent], bool]] = None
               ) -> List[TraceEvent]:
        """Events matching every given criterion."""
        out = []
        for e in self.events:
            if protocol is not None and e.protocol != protocol:
                continue
            if node is not None and node not in (e.sender, e.receiver):
                continue
            if rounds is not None and e.round not in rounds:
                continue
            if predicate is not None and not predicate(e):
                continue
            out.append(e)
        return out

    def messages_between(self, a: int, b: int) -> List[TraceEvent]:
        """The conversation along one edge, in delivery order."""
        return [e for e in self.events
                if {e.sender, e.receiver} == {a, b}]

    def render(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        chosen = list(events) if events is not None else self.events
        return "\n".join(e.render() for e in chosen)

    def protocols(self) -> List[str]:
        seen: List[str] = []
        for e in self.events:
            if e.protocol not in seen:
                seen.append(e.protocol)
        return seen
