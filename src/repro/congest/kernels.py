"""Vectorized superstep kernels: the array-native fast path of the engine.

The paper's protocols are bulk-synchronous supersteps in which every node
runs the *same* small transition function, so — following the standard
BSP/Pregel observation (Malewicz et al., SIGMOD 2010) — whole rounds can be
executed as operations over packed per-node state arrays and the flat CSR
adjacency instead of a Python loop of :class:`~repro.congest.node.
NodeAlgorithm` objects with dict inboxes/outboxes.

A protocol opts in by registering a :class:`RoundKernel` for its node class
(:func:`register_kernel`); :meth:`Network.run <repro.congest.network.
Network.run>` then selects the kernel automatically whenever nothing forces
the per-node path.  The kernel fast path is **golden-equivalent** to per-node
dispatch — identical outputs, round counts, :class:`~repro.congest.metrics.
Metrics`, per-node random streams, and structural event stream
(``RoundStart``/``RoundEnd``), enforced by ``tests/test_kernels.py``.  The
per-node path remains the executable specification; kernels are an
optimization, never a semantic fork.

Selection rules (:func:`repro.congest.execution.resolve_execution`, the
kernel-tier gates):

* the plan's tier must allow a kernel rung (``tier="node"`` runs batched
  delivery with per-node dispatch; ``tier="legacy"`` is the dict
  reference engine);
* the plan must enable kernels and :data:`NO_KERNELS_ENV`
  (``REPRO_NO_KERNELS=1``) must not disable them;
* the run's node factory must be *exactly* a registered class — subclasses
  fall back to per-node dispatch, since they may override behavior;
* no per-message observer may be subscribed (``bus.wants(MESSAGE_DELIVERED)``
  — e.g. an attached :class:`~repro.congest.tracing.Tracer`), no fault
  injection may be active, and the bandwidth policy must be a plain
  :class:`~repro.congest.policies.BandwidthPolicy` (subclasses might price
  per edge, which kernels memoize away).

Kernels also power the **sharded** fast path: a kernel that declares
``shard_words > 0`` and implements the ``shard_*`` hooks runs *inside*
shard worker processes (:mod:`repro.congest.sharding`, kernel mode),
with a :class:`ShardContext` supplying worker-local staging, index
translation and zero-copy halo record views in place of the Network.

numpy is optional: kernels use it for bulk array passes when importable and
fall back to tight pure-python array code otherwise (``_np`` is the module
handle; tests monkeypatch it to ``None`` to exercise the fallback).

Randomness: kernels draw per-node randomness from ``random.Random`` objects
seeded by the same :meth:`~repro.congest.network.Network.node_rng` splitmix64
chain the per-node path uses, created lazily per node and persisted across
rounds, with draws issued in exactly the per-node call order — which is what
makes the streams bit-identical.
"""

from __future__ import annotations

import os
import random
from array import array
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except Exception:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

from ..observe.events import ROUND_END, ROUND_START, RoundEnd, RoundStart
from .network import Network, ProtocolError, RunResult

#: Environment variable disabling kernel selection entirely
#: (value ``1``/``true``/``yes``/``on``): every run takes the per-node path.
NO_KERNELS_ENV = "REPRO_NO_KERNELS"


def kernels_enabled() -> bool:
    """False when :data:`NO_KERNELS_ENV` opts out of the fast path."""
    flag = os.environ.get(NO_KERNELS_ENV, "").strip().lower()
    return flag not in ("1", "true", "yes", "on")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[Any, Type["RoundKernel"]] = {}


def register_kernel(node_cls: type) -> Callable[[type], type]:
    """Class decorator registering a :class:`RoundKernel` for ``node_cls``.

    ::

        @register_kernel(LubyMISNode)
        class LubyMISKernel(RoundKernel):
            ...

    Registration is by exact class: a *subclass* of ``node_cls`` passed as a
    run's factory does not select the kernel (it may override behavior).
    """

    def decorate(kernel_cls: type) -> type:
        kernel_cls.node_cls = node_cls
        _REGISTRY[node_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_for(factory: Any) -> Optional[Type["RoundKernel"]]:
    """The registered kernel class for a node factory, or None."""
    try:
        return _REGISTRY.get(factory)
    except TypeError:  # unhashable factory object
        return None


def registered_kernels() -> Dict[Any, Type["RoundKernel"]]:
    """A snapshot of the kernel registry (node class -> kernel class)."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# CSR array views
# ---------------------------------------------------------------------------

class CSRArrays:
    """Packed views of a network's CSR adjacency for kernel consumption.

    Everything is indexed by node *index* (position in ``order``) and edge
    *slot* (position in ``indices``), exactly like :class:`~repro.graphs.
    graph.CSRAdjacency`.  ``tgt`` maps each slot to the target node index
    and ``rev`` to the reverse-edge slot, so a kernel can address "the
    entry for me in my neighbor's row" in O(1) — the primitive behind
    vectorized pruning.  When numpy is importable, ``np`` holds the module
    and ``np_indptr``/``np_tgt``/``np_rev`` the int64 array views; when it
    is not, ``np`` is None and kernels take their pure-python branches.

    Accepts a :class:`Network` or a bare CSR adjacency snapshot (shard
    workers hold only the latter).
    """

    def __init__(self, source: Any) -> None:
        csr = source.csr if hasattr(source, "csr") else source
        self.order: Tuple[int, ...] = csr.order
        self.index: Dict[int, int] = csr.index
        self.n = len(csr.order)
        self.num_slots = csr.num_slots
        self.indptr = csr.indptr
        self.tgt = csr.indices
        self.rev = csr.rev
        self.np = _np
        if _np is not None:
            self.np_indptr = _np.frombuffer(csr.indptr, dtype=_np.int64)
            if csr.num_slots:
                self.np_tgt = _np.frombuffer(csr.indices, dtype=_np.int64)
                self.np_rev = _np.frombuffer(csr.rev, dtype=_np.int64)
            else:
                self.np_tgt = _np.zeros(0, dtype=_np.int64)
                self.np_rev = _np.zeros(0, dtype=_np.int64)

    def row(self, i: int) -> range:
        """The slot range of node index ``i``."""
        return range(self.indptr[i], self.indptr[i + 1])


def csr_arrays(net: Network) -> CSRArrays:
    """The (cached) :class:`CSRArrays` view of ``net``.

    Rebuilt when the numpy backend handle changed since the cache was
    populated (tests monkeypatch ``kernels._np`` to exercise the fallback).
    """
    cached = getattr(net, "_kernel_arrays", None)
    if cached is None or cached.np is not _np:
        cached = CSRArrays(net)
        net._kernel_arrays = cached
    return cached


# ---------------------------------------------------------------------------
# shard-worker context: the kernel's world inside a worker process
# ---------------------------------------------------------------------------

#: Sentinel record word marking "the real value lives in the blob side
#: channel" (values outside ``(-2**62, 2**62)`` cannot ride an int64 word
#: safely, so they are codec-encoded into the segment's blob instead).
SHARD_BLOB = -(2 ** 62)


class ShardBlobReader:
    """Sequential cursor over one peer segment's overflow blob.

    Records reference blob entries *in order*: resolving a segment's
    sentinel words front to back with one reader yields each oversized
    value exactly once.
    """

    __slots__ = ("view", "pos")

    def __init__(self, view: Any) -> None:
        self.view = view
        self.pos = 0

    def take(self) -> Any:
        from .sharding import decode_payload

        obj, self.pos = decode_payload(self.view, self.pos)
        return obj


class ShardContext:
    """Worker-side services for a kernel's sharded fast path.

    Built once per worker (static translation tables persist across
    runs) and handed to :meth:`RoundKernel.shard_build` in place of the
    :class:`Network`.  A kernel running in shard mode sees the full CSR
    snapshot (``arrays`` covers all n nodes) but only *advances* the
    nodes this worker owns; cross-shard effects travel as fixed-width
    int64 records staged via :meth:`stage_value`/``staged_words`` and
    arrive as zero-copy views in :attr:`incoming`.

    Per-round state: ``staged_words[d]``/``staged_blobs[d]`` accumulate
    the records for destination shard ``d`` during ``shard_publish``;
    ``incoming`` holds ``(peer, words, blob)`` triples during
    ``shard_apply`` (``words`` is an int64 numpy view directly over the
    peer's shared-memory block, or a ``memoryview`` cast in fallback
    mode); ``messages``/``bits``/``max_bits`` accumulate the traffic
    this worker priced (folded into the coordinator's Metrics).
    """

    def __init__(self, arrays: "CSRArrays", worker: int, shards: int,
                 owner: Tuple[int, ...], owned: Tuple[int, ...],
                 policy: Any, charge_cache: Dict[int, int]) -> None:
        self.arrays = arrays
        self.w = worker
        self.k = shards
        self.owner = owner
        self.owned = owned
        self.n = arrays.n
        self.policy = policy
        self.charge_cache = charge_cache
        #: per-run node-id -> random.Random factory (set by the worker
        #: before each run; replicates ``Network.node_rng`` bit-exactly)
        self.node_rng: Optional[Callable[[int], random.Random]] = None
        #: record width of the active kernel (set by the worker)
        self.record_width = 1
        if arrays.np is not None:
            self.np_owner = arrays.np.array(owner, dtype=arrays.np.int64)
            self.np_owned_mask = self.np_owner == worker
        else:
            self.np_owner = None
            self.np_owned_mask = None
        self._peers: Optional[Dict[int, Tuple[int, ...]]] = None
        self._cut_in: Optional[Dict[int, List[int]]] = None
        self._slots: Optional[Dict[int, Dict[int, int]]] = None
        # per-round staging and traffic accumulators
        self.staged_words: List[Any] = [array("q") for _ in range(shards)]
        self.staged_blobs: List[bytearray] = [
            bytearray() for _ in range(shards)]
        self.incoming: List[Tuple[int, Any, Any]] = []
        self.messages = 0
        self.bits = 0
        self.max_bits = 0

    # -- per-round lifecycle (driven by the worker loop) -----------------
    def begin_round(self) -> None:
        self.clear_staged()
        self.incoming = []
        self.messages = 0
        self.bits = 0
        self.max_bits = 0

    def clear_staged(self) -> None:
        for words in self.staged_words:
            del words[:]
        for blob in self.staged_blobs:
            del blob[:]

    def add_traffic(self, messages: int, total_bits: int,
                    max_message_bits: int) -> None:
        """Shard-mode sink behind :meth:`RoundKernel.record_traffic`."""
        self.messages += messages
        self.bits += total_bits
        if max_message_bits > self.max_bits:
            self.max_bits = max_message_bits

    # -- record staging --------------------------------------------------
    def stage_value(self, dest: int, value: Any) -> int:
        """The record word carrying ``value`` to shard ``dest``.

        Plain ints in the int64-safe range ride the word directly;
        anything else is codec-encoded into the destination's blob and
        represented by the :data:`SHARD_BLOB` sentinel (the receiver
        resolves sentinels in order via :meth:`blob_reader`)."""
        if type(value) is int and SHARD_BLOB < value < -SHARD_BLOB:
            return value
        from .sharding import encode_payload

        encode_payload(self.staged_blobs[dest], value)
        return SHARD_BLOB

    def blob_reader(self, blob: Any) -> ShardBlobReader:
        return ShardBlobReader(blob)

    def resolve(self, word: int, reader: ShardBlobReader) -> Any:
        """The value behind one record word (see :meth:`stage_value`)."""
        return reader.take() if word == SHARD_BLOB else word

    # -- static translation tables (lazy, cached across runs) ------------
    def peers_of(self) -> Dict[int, Tuple[int, ...]]:
        """Owned node index -> ascending peer shards it has cut edges to
        (nodes with no cut edges are absent — use ``.get(i, ())``)."""
        peers = self._peers
        if peers is None:
            arrays, owner, w = self.arrays, self.owner, self.w
            tgt = arrays.tgt
            peers = {}
            for i in self.owned:
                seen = 0
                for e in arrays.row(i):
                    seen |= 1 << owner[tgt[e]]
                seen &= ~(1 << w)
                if seen:
                    peers[i] = tuple(d for d in range(self.k)
                                     if (seen >> d) & 1)
            self._peers = peers
        return peers

    def cut_slots_in(self) -> Dict[int, List[int]]:
        """Remote node index -> ascending owned slots targeting it (the
        owned side of every cut edge, grouped by the remote endpoint)."""
        cut = self._cut_in
        if cut is None:
            arrays, owner, w = self.arrays, self.owner, self.w
            tgt = arrays.tgt
            cut = {}
            for i in self.owned:
                for e in arrays.row(i):
                    j = tgt[e]
                    if owner[j] != w:
                        cut.setdefault(j, []).append(e)
            self._cut_in = cut
        return cut

    def slot_of(self) -> Dict[int, Dict[int, int]]:
        """Owned node id -> {neighbor id: global slot} — the shard-local
        replica of ``Network._slot_of`` (owned rows only)."""
        table = self._slots
        if table is None:
            arrays = self.arrays
            order, tgt = arrays.order, arrays.tgt
            table = {}
            for i in self.owned:
                table[order[i]] = {order[tgt[e]]: e
                                   for e in arrays.row(i)}
            self._slots = table
        return table


# ---------------------------------------------------------------------------
# the kernel base class: the engine loop, replayed over arrays
# ---------------------------------------------------------------------------

class RoundKernel:
    """One protocol's vectorized superstep executor.

    Subclasses implement four hooks against packed array state:

    * :meth:`setup` — read ``shared``, pack the initial state, perform the
      per-node path's ``start()`` semantics (including any halts and the
      initial traffic);
    * :meth:`unfinished` — True while any node has not halted;
    * :meth:`pending` — True while traffic is in flight (consulted for the
      quiescence rule only when :attr:`passive` is True);
    * :meth:`step` — execute one full round: price and account the pending
      traffic (via :meth:`charge` and :meth:`record_traffic`), apply it to
      the state arrays, compute every live node's transition, and stage the
      next round's traffic.  Returns the pipelining charge (max extra
      rounds over this round's messages), exactly like the engine's
      ``_deliver``;
    * :meth:`outputs` — the final per-node output register map.

    :meth:`execute` replays ``Network.run``'s loop — the same termination
    and quiescence rules, the same ``ProtocolError`` on the round limit,
    the same ``RoundStart``/``RoundEnd`` emission points and payloads, and
    the same metric recording — which is what keeps the fast path
    observationally identical to per-node dispatch.
    """

    #: the node class this kernel replaces (set by :func:`register_kernel`)
    node_cls: Optional[type] = None
    #: mirror of the node program's ``passive`` flag: True enables the
    #: engine's quiescence rule (nothing in flight and nobody will speak)
    passive: bool = False
    #: shard-safety declaration for :mod:`repro.congest.sharding`: True
    #: promises that the registered *node program* (not the kernel) keeps
    #: all mutable state node-local, treats ``shared`` and its inbox as
    #: read-only, and sends only plain-data payloads (None, bools, ints,
    #: floats, strings and nested tuples/lists/dicts/sets) — the contract
    #: that makes partitioned multi-process execution golden-equivalent.
    #: The default is False: shard safety is declared per audited kernel,
    #: never inherited, so a new kernel cannot be forked across processes
    #: before someone has checked its node program against the contract.
    shardable: bool = False
    #: int64 words per halo record on the sharded-kernel fast path; 0
    #: means the kernel has no shard hooks and sharded runs fall back to
    #: per-node workers even when ``shardable`` is True.
    shard_words: int = 0
    #: audit flag for the ``compiled`` tier: True promises this kernel's
    #: draws go through :meth:`rng`'s random.Random surface (so the
    #: compiled MT19937 facade can replace it bit-identically) and that
    #: any :meth:`compiled_step` fast path is golden-equivalent to
    #: :meth:`step`.  Like ``shardable``, it is declared per audited
    #: kernel and never inherited.
    compiled_audited: bool = False

    def __init__(self, net: Network) -> None:
        self.net = net
        self.arrays = csr_arrays(net)
        self._rngs: List[Optional[random.Random]] = [None] * self.arrays.n
        #: True once :meth:`enable_compiled` swapped in the jitted tier
        self.compiled = False
        #: the :class:`ShardContext` when running inside a shard worker
        #: (kernel mode), else None
        self.shard: Optional[ShardContext] = None
        #: global order position of the node being processed — shard
        #: workers report it for first-error attribution (min phase/pos)
        self.shard_pos = 0
        self._node_rng = net.node_rng
        self._policy = net.policy
        self._charge_cache = net._charge_cache
        self._traffic_sink = net.metrics.record_message_batch

    @classmethod
    def shard_build(cls, ctx: ShardContext) -> "RoundKernel":
        """Instantiate this kernel inside a shard worker (no Network).

        Binds the base services — :meth:`rng`, :meth:`charge`,
        :meth:`record_traffic` — to the worker-side :class:`ShardContext`
        so the subclass's ``shard_*`` hooks program against the same
        surface the in-process path provides.
        """
        self = cls.__new__(cls)
        self.net = None
        self.arrays = ctx.arrays
        self._rngs = [None] * ctx.arrays.n
        self.compiled = False
        self.shard = ctx
        self.shard_pos = 0
        self._node_rng = ctx.node_rng
        self._policy = ctx.policy
        self._charge_cache = ctx.charge_cache
        self._traffic_sink = ctx.add_traffic
        return self

    # -- services for subclasses ----------------------------------------
    def accepts(self) -> bool:
        """Last-chance veto: False sends this run down the per-node path."""
        return True

    def compiled_why(self, shared: Dict[str, Any]) -> Optional[str]:
        """Instance-level veto for the ``compiled`` tier (None = eligible).

        Subclasses return a human-readable reason when this particular
        run cannot take the jitted path (for example a value domain that
        would overflow int64) — the resolution chain reports it and the
        run falls to the next rung.
        """
        return None

    def enable_compiled(self, prefix: Optional[int] = None) -> None:
        """Swap this kernel onto the compiled tier before :meth:`setup`.

        Replaces :meth:`rng` with views over a packed MT19937 pool seeded
        from the same splitmix64 chain ``Network.node_rng`` uses — the
        per-node byte streams are bit-identical, which is what keeps the
        compiled tier golden.  ``prefix`` is the run's node-stream prefix;
        in-process it is derived from the owning network, while shard
        workers pass their replica's value explicitly.
        """
        from . import compiled as _compiled

        if prefix is None:
            net = self.net
            prefix = net._node_stream_prefix(net.seed, net._run_counter, 0)
        self._rng_pool = _compiled.RngPool(self.arrays.order, prefix)
        self.rng = self._rng_pool.view  # type: ignore[method-assign]
        self.compiled = True

    def compiled_step(self, round_number: int) -> int:
        """One round on the compiled tier; defaults to :meth:`step`.

        With the MT-backed :meth:`rng` facade installed, the audited
        :meth:`step` is already bit-identical on this tier; kernels
        override this to run jitted bulk passes over packed state.
        """
        return self.step(round_number)

    def rng(self, i: int) -> random.Random:
        """Node index ``i``'s private stream (lazily created, persistent).

        Seeded exactly like the per-node path's ``NodeContext.rng``; since
        creating a ``random.Random`` consumes nothing, lazy creation keeps
        the streams bit-identical while skipping nodes that never draw.
        """
        r = self._rngs[i]
        if r is None:
            r = self._node_rng(self.arrays.order[i])
            self._rngs[i] = r
        return r

    def charge(self, bits: int, sender: int, receiver: int) -> int:
        """The policy charge for one message, memoized per bit-size.

        Shares the network's per-bit-size cache with the batched engine, so
        ``policy.charge`` is consulted exactly as often (and raises
        ``BandwidthExceeded`` in the same round it would there).
        """
        cache = self._charge_cache
        charge = cache.get(bits, -1)
        if charge < 0:
            charge = self._policy.charge(bits, self.arrays.n,
                                         sender, receiver)
            cache[bits] = charge
        return charge

    def record_traffic(self, messages: int, total_bits: int,
                       max_bits: int) -> None:
        """Account one round's delivered traffic (after pricing it).

        In-process this folds straight into the network's Metrics; in a
        shard worker it accumulates on the :class:`ShardContext`, and the
        coordinator folds the workers' sums after the stats barrier."""
        self._traffic_sink(messages, total_bits, max_bits)

    # -- subclass hooks ---------------------------------------------------
    def setup(self, shared: Dict[str, Any]) -> None:
        raise NotImplementedError

    def unfinished(self) -> bool:
        raise NotImplementedError

    def pending(self) -> bool:
        raise NotImplementedError

    def step(self, round_number: int) -> int:
        raise NotImplementedError

    def outputs(self) -> Dict[int, Any]:
        raise NotImplementedError

    # -- sharded fast path hooks (kernel mode of repro.congest.sharding) --
    # A kernel opts in by setting ``shard_words`` and implementing these
    # four against ``self.shard`` (:class:`ShardContext`).  The audited
    # contract: identical outputs, rounds, Metrics, rng streams and error
    # positions to the in-process path at any shard count.

    def shard_setup(self, shared: Dict[str, Any]) -> None:
        """Replicated setup inside a shard worker.

        Runs the full :meth:`setup` state construction over *all* n
        nodes — per-node rng streams are independent, so every worker
        derives the identical global start state — then restricts
        forward progress (rng draws, staged traffic) to owned nodes.
        """
        raise NotImplementedError

    def shard_publish(self, round_number: int) -> int:
        """Price and account the round's owned outgoing traffic
        (:meth:`record_traffic` exactly once, like :meth:`step`'s
        delivery half), apply local arrivals or stage them, and emit
        cross-shard records into ``self.shard.staged_words``.  Returns
        the pipelining charge.  Must keep :attr:`shard_pos` on the
        global order position of the sender being processed — a raised
        error is attributed there (delivery phase)."""
        raise NotImplementedError

    def shard_apply(self, round_number: int) -> None:
        """Absorb ``self.shard.incoming`` records plus this shard's own
        staged arrivals, then compute owned transitions.  Must keep
        :attr:`shard_pos` current for compute-phase error attribution."""
        raise NotImplementedError

    def shard_outputs(self) -> Dict[int, Any]:
        """Final output registers for *owned* nodes, keyed by global id
        (the coordinator merges the workers' maps)."""
        raise NotImplementedError

    # -- the replayed engine loop ----------------------------------------
    def execute(self, protocol: str, shared: Dict[str, Any], limit: int,
                on_round_end: Optional[Callable[[int, Network], None]],
                ) -> RunResult:
        net = self.net
        self.setup(shared)
        bus = net.bus
        metrics = net.metrics
        step = self.compiled_step if self.compiled else self.step
        rounds = 0
        while True:
            if not self.unfinished():
                break
            if self.passive and rounds > 0 and not self.pending():
                break  # quiescent: nothing in flight, nobody will speak
            if rounds >= limit:
                raise ProtocolError(
                    f"protocol {protocol!r} exceeded {limit} rounds "
                    f"(likely a livelock)"
                )
            want_round_end = False
            if bus is not None:
                if bus.wants(ROUND_START):
                    bus.emit(RoundStart(protocol=protocol, round=rounds + 1))
                want_round_end = bus.wants(ROUND_END)
                if want_round_end:
                    msgs_before = metrics.messages
                    bits_before = metrics.total_bits
                    dropped_before = net.dropped
            extra = step(rounds + 1)
            rounds += 1
            metrics.record_round(protocol, extra)
            if want_round_end:
                bus.emit(RoundEnd(
                    protocol=protocol, round=rounds,
                    messages=metrics.messages - msgs_before,
                    bits=metrics.total_bits - bits_before,
                    dropped=net.dropped - dropped_before,
                ))
            if on_round_end is not None:
                on_round_end(rounds, net)
        return RunResult(
            outputs=self.outputs(),
            rounds=rounds,
            all_finished=not self.unfinished(),
        )
