"""Vectorized superstep kernels: the array-native fast path of the engine.

The paper's protocols are bulk-synchronous supersteps in which every node
runs the *same* small transition function, so — following the standard
BSP/Pregel observation (Malewicz et al., SIGMOD 2010) — whole rounds can be
executed as operations over packed per-node state arrays and the flat CSR
adjacency instead of a Python loop of :class:`~repro.congest.node.
NodeAlgorithm` objects with dict inboxes/outboxes.

A protocol opts in by registering a :class:`RoundKernel` for its node class
(:func:`register_kernel`); :meth:`Network.run <repro.congest.network.
Network.run>` then selects the kernel automatically whenever nothing forces
the per-node path.  The kernel fast path is **golden-equivalent** to per-node
dispatch — identical outputs, round counts, :class:`~repro.congest.metrics.
Metrics`, per-node random streams, and structural event stream
(``RoundStart``/``RoundEnd``), enforced by ``tests/test_kernels.py``.  The
per-node path remains the executable specification; kernels are an
optimization, never a semantic fork.

Selection rules (``Network._select_kernel``):

* the engine must be ``"csr"`` (``engine="node"`` runs batched delivery with
  per-node dispatch; ``engine="legacy"`` is the dict reference engine);
* :data:`NO_KERNELS_ENV` (``REPRO_NO_KERNELS=1``) globally disables kernels;
* the run's node factory must be *exactly* a registered class — subclasses
  fall back to per-node dispatch, since they may override behavior;
* no per-message observer may be subscribed (``bus.wants(MESSAGE_DELIVERED)``
  — e.g. an attached :class:`~repro.congest.tracing.Tracer`), no fault
  injection may be active, and the bandwidth policy must be a plain
  :class:`~repro.congest.policies.BandwidthPolicy` (subclasses might price
  per edge, which kernels memoize away).

numpy is optional: kernels use it for bulk array passes when importable and
fall back to tight pure-python array code otherwise (``_np`` is the module
handle; tests monkeypatch it to ``None`` to exercise the fallback).

Randomness: kernels draw per-node randomness from ``random.Random`` objects
seeded by the same :meth:`~repro.congest.network.Network.node_rng` splitmix64
chain the per-node path uses, created lazily per node and persisted across
rounds, with draws issued in exactly the per-node call order — which is what
makes the streams bit-identical.
"""

from __future__ import annotations

import os
import random
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except Exception:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

from .events import ROUND_END, ROUND_START, RoundEnd, RoundStart
from .network import Network, ProtocolError, RunResult

#: Environment variable disabling kernel selection entirely
#: (value ``1``/``true``/``yes``/``on``): every run takes the per-node path.
NO_KERNELS_ENV = "REPRO_NO_KERNELS"


def kernels_enabled() -> bool:
    """False when :data:`NO_KERNELS_ENV` opts out of the fast path."""
    flag = os.environ.get(NO_KERNELS_ENV, "").strip().lower()
    return flag not in ("1", "true", "yes", "on")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[Any, Type["RoundKernel"]] = {}


def register_kernel(node_cls: type) -> Callable[[type], type]:
    """Class decorator registering a :class:`RoundKernel` for ``node_cls``.

    ::

        @register_kernel(LubyMISNode)
        class LubyMISKernel(RoundKernel):
            ...

    Registration is by exact class: a *subclass* of ``node_cls`` passed as a
    run's factory does not select the kernel (it may override behavior).
    """

    def decorate(kernel_cls: type) -> type:
        kernel_cls.node_cls = node_cls
        _REGISTRY[node_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_for(factory: Any) -> Optional[Type["RoundKernel"]]:
    """The registered kernel class for a node factory, or None."""
    try:
        return _REGISTRY.get(factory)
    except TypeError:  # unhashable factory object
        return None


def registered_kernels() -> Dict[Any, Type["RoundKernel"]]:
    """A snapshot of the kernel registry (node class -> kernel class)."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# CSR array views
# ---------------------------------------------------------------------------

class CSRArrays:
    """Packed views of a network's CSR adjacency for kernel consumption.

    Everything is indexed by node *index* (position in ``order``) and edge
    *slot* (position in ``indices``), exactly like :class:`~repro.graphs.
    graph.CSRAdjacency`.  ``tgt`` maps each slot to the target node index
    and ``rev`` to the reverse-edge slot, so a kernel can address "the
    entry for me in my neighbor's row" in O(1) — the primitive behind
    vectorized pruning.  When numpy is importable, ``np`` holds the module
    and ``np_indptr``/``np_tgt``/``np_rev`` the int64 array views; when it
    is not, ``np`` is None and kernels take their pure-python branches.
    """

    def __init__(self, net: Network) -> None:
        csr = net.csr
        self.order: Tuple[int, ...] = csr.order
        self.index: Dict[int, int] = csr.index
        self.n = len(csr.order)
        self.num_slots = csr.num_slots
        self.indptr = csr.indptr
        self.tgt = csr.indices
        self.rev = csr.rev
        self.np = _np
        if _np is not None:
            self.np_indptr = _np.frombuffer(csr.indptr, dtype=_np.int64)
            if csr.num_slots:
                self.np_tgt = _np.frombuffer(csr.indices, dtype=_np.int64)
                self.np_rev = _np.frombuffer(csr.rev, dtype=_np.int64)
            else:
                self.np_tgt = _np.zeros(0, dtype=_np.int64)
                self.np_rev = _np.zeros(0, dtype=_np.int64)

    def row(self, i: int) -> range:
        """The slot range of node index ``i``."""
        return range(self.indptr[i], self.indptr[i + 1])


def csr_arrays(net: Network) -> CSRArrays:
    """The (cached) :class:`CSRArrays` view of ``net``.

    Rebuilt when the numpy backend handle changed since the cache was
    populated (tests monkeypatch ``kernels._np`` to exercise the fallback).
    """
    cached = getattr(net, "_kernel_arrays", None)
    if cached is None or cached.np is not _np:
        cached = CSRArrays(net)
        net._kernel_arrays = cached
    return cached


# ---------------------------------------------------------------------------
# the kernel base class: the engine loop, replayed over arrays
# ---------------------------------------------------------------------------

class RoundKernel:
    """One protocol's vectorized superstep executor.

    Subclasses implement four hooks against packed array state:

    * :meth:`setup` — read ``shared``, pack the initial state, perform the
      per-node path's ``start()`` semantics (including any halts and the
      initial traffic);
    * :meth:`unfinished` — True while any node has not halted;
    * :meth:`pending` — True while traffic is in flight (consulted for the
      quiescence rule only when :attr:`passive` is True);
    * :meth:`step` — execute one full round: price and account the pending
      traffic (via :meth:`charge` and :meth:`record_traffic`), apply it to
      the state arrays, compute every live node's transition, and stage the
      next round's traffic.  Returns the pipelining charge (max extra
      rounds over this round's messages), exactly like the engine's
      ``_deliver``;
    * :meth:`outputs` — the final per-node output register map.

    :meth:`execute` replays ``Network.run``'s loop — the same termination
    and quiescence rules, the same ``ProtocolError`` on the round limit,
    the same ``RoundStart``/``RoundEnd`` emission points and payloads, and
    the same metric recording — which is what keeps the fast path
    observationally identical to per-node dispatch.
    """

    #: the node class this kernel replaces (set by :func:`register_kernel`)
    node_cls: Optional[type] = None
    #: mirror of the node program's ``passive`` flag: True enables the
    #: engine's quiescence rule (nothing in flight and nobody will speak)
    passive: bool = False
    #: shard-safety declaration for :mod:`repro.congest.sharding`: True
    #: promises that the registered *node program* (not the kernel) keeps
    #: all mutable state node-local, treats ``shared`` and its inbox as
    #: read-only, and sends only plain-data payloads (None, bools, ints,
    #: floats, strings and nested tuples/lists/dicts/sets) — the contract
    #: that makes partitioned multi-process execution golden-equivalent.
    #: The default is False: shard safety is declared per audited kernel,
    #: never inherited, so a new kernel cannot be forked across processes
    #: before someone has checked its node program against the contract.
    shardable: bool = False

    def __init__(self, net: Network) -> None:
        self.net = net
        self.arrays = csr_arrays(net)
        self._rngs: List[Optional[random.Random]] = [None] * self.arrays.n

    # -- services for subclasses ----------------------------------------
    def accepts(self) -> bool:
        """Last-chance veto: False sends this run down the per-node path."""
        return True

    def rng(self, i: int) -> random.Random:
        """Node index ``i``'s private stream (lazily created, persistent).

        Seeded exactly like the per-node path's ``NodeContext.rng``; since
        creating a ``random.Random`` consumes nothing, lazy creation keeps
        the streams bit-identical while skipping nodes that never draw.
        """
        r = self._rngs[i]
        if r is None:
            r = self.net.node_rng(self.arrays.order[i])
            self._rngs[i] = r
        return r

    def charge(self, bits: int, sender: int, receiver: int) -> int:
        """The policy charge for one message, memoized per bit-size.

        Shares the network's per-bit-size cache with the batched engine, so
        ``policy.charge`` is consulted exactly as often (and raises
        ``BandwidthExceeded`` in the same round it would there).
        """
        cache = self.net._charge_cache
        charge = cache.get(bits, -1)
        if charge < 0:
            charge = self.net.policy.charge(bits, self.arrays.n,
                                            sender, receiver)
            cache[bits] = charge
        return charge

    def record_traffic(self, messages: int, total_bits: int,
                       max_bits: int) -> None:
        """Account one round's delivered traffic (after pricing it)."""
        self.net.metrics.record_message_batch(messages, total_bits, max_bits)

    # -- subclass hooks ---------------------------------------------------
    def setup(self, shared: Dict[str, Any]) -> None:
        raise NotImplementedError

    def unfinished(self) -> bool:
        raise NotImplementedError

    def pending(self) -> bool:
        raise NotImplementedError

    def step(self, round_number: int) -> int:
        raise NotImplementedError

    def outputs(self) -> Dict[int, Any]:
        raise NotImplementedError

    # -- the replayed engine loop ----------------------------------------
    def execute(self, protocol: str, shared: Dict[str, Any], limit: int,
                on_round_end: Optional[Callable[[int, Network], None]],
                ) -> RunResult:
        net = self.net
        self.setup(shared)
        bus = net.bus
        metrics = net.metrics
        rounds = 0
        while True:
            if not self.unfinished():
                break
            if self.passive and rounds > 0 and not self.pending():
                break  # quiescent: nothing in flight, nobody will speak
            if rounds >= limit:
                raise ProtocolError(
                    f"protocol {protocol!r} exceeded {limit} rounds "
                    f"(likely a livelock)"
                )
            want_round_end = False
            if bus is not None:
                if bus.wants(ROUND_START):
                    bus.emit(RoundStart(protocol=protocol, round=rounds + 1))
                want_round_end = bus.wants(ROUND_END)
                if want_round_end:
                    msgs_before = metrics.messages
                    bits_before = metrics.total_bits
                    dropped_before = net.dropped
            extra = self.step(rounds + 1)
            rounds += 1
            metrics.record_round(protocol, extra)
            if want_round_end:
                bus.emit(RoundEnd(
                    protocol=protocol, round=rounds,
                    messages=metrics.messages - msgs_before,
                    bits=metrics.total_bits - bits_before,
                    dropped=net.dropped - dropped_before,
                ))
            if on_round_end is not None:
                on_round_end(rounds, net)
        return RunResult(
            outputs=self.outputs(),
            rounds=rounds,
            all_finished=not self.unfinished(),
        )
