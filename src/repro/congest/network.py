"""The synchronous message-passing engine.

As the paper assumes, the input graph *is* the communication network: in each
round every processor sends (possibly different) messages to its neighbors,
receives, and computes.  The engine delivers messages, prices them under the
active :class:`BandwidthPolicy`, accumulates :class:`Metrics`, and detects
termination (all nodes halted) or quiescence (no traffic and nobody spoke).

Composite algorithms run several *protocols* on one persistent network; the
metrics accumulate so composite costs are the true totals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..graphs.graph import Graph
from .message import payload_bits
from .metrics import Metrics
from .tracing import TraceEvent, Tracer
from .node import BROADCAST, NodeAlgorithm, NodeContext
from .policies import CONGEST, BandwidthPolicy

NodeFactory = Callable[[NodeContext], NodeAlgorithm]

DEFAULT_MAX_ROUNDS = 100_000


class ProtocolError(RuntimeError):
    """Raised for protocol violations (bad targets, runaway protocols...)."""


@dataclass
class RunResult:
    """Outcome of one protocol execution."""

    outputs: Dict[int, Any]
    rounds: int
    all_finished: bool

    def output_of(self, node: int) -> Any:
        return self.outputs[node]


class Network:
    """A simulated synchronous network over a :class:`Graph`."""

    def __init__(self, graph: Graph, policy: BandwidthPolicy = CONGEST,
                 seed: int = 0, tracer: Optional[Tracer] = None) -> None:
        self.graph = graph
        self.policy = policy
        self.seed = seed
        self.tracer = tracer
        self.metrics = Metrics()
        self._run_counter = 0
        self._neighbor_cache: Dict[int, tuple] = {
            v: tuple(graph.neighbors(v)) for v in graph.nodes
        }
        self._weight_cache: Dict[int, Dict[int, float]] = {
            v: {u: graph.weight(v, u) for u in self._neighbor_cache[v]}
            for v in graph.nodes
        }

    # ------------------------------------------------------------------
    def node_rng(self, node_id: int, salt: int = 0) -> random.Random:
        """A deterministic private random stream for a node."""
        mixed = (self.seed * 0x9E3779B97F4A7C15
                 + self._run_counter * 0x100000001B3
                 + salt * 0x1003F
                 + node_id) & ((1 << 64) - 1)
        return random.Random(mixed)

    def run(self, factory: NodeFactory, protocol: str = "protocol",
            shared: Optional[Dict[str, Any]] = None,
            max_rounds: Optional[int] = None) -> RunResult:
        """Execute one protocol to termination/quiescence.

        ``factory`` builds the node program from its :class:`NodeContext`.
        ``shared`` holds globally known constants (n, k, epsilon, W_max ...),
        readable by every node — the paper's standing assumptions.
        """
        self._run_counter += 1
        limit = max_rounds if max_rounds is not None else DEFAULT_MAX_ROUNDS
        shared = dict(shared or {})
        n = self.graph.num_nodes

        algorithms: Dict[int, NodeAlgorithm] = {}
        for v in self.graph.nodes:
            ctx = NodeContext(
                node_id=v,
                neighbors=self._neighbor_cache[v],
                edge_weights=self._weight_cache[v],
                n=n,
                rng=self.node_rng(v),
                shared=shared,
            )
            algorithms[v] = factory(ctx)

        outboxes: Dict[int, Dict[Any, Any]] = {}
        for v in self.graph.nodes:
            out = algorithms[v].start()
            if out:
                outboxes[v] = out

        rounds_this_run = 0
        while True:
            if all(alg.finished for alg in algorithms.values()):
                break
            in_flight = any(outboxes.values())
            if (not in_flight and rounds_this_run > 0
                    and all(alg.finished or alg.passive
                            for alg in algorithms.values())):
                # quiescent: nothing in flight and every live node is purely
                # event-driven, so nothing will ever move again
                break
            if rounds_this_run >= limit:
                raise ProtocolError(
                    f"protocol {protocol!r} exceeded {limit} rounds "
                    f"(likely a livelock)"
                )

            inboxes, extra = self._deliver(outboxes, n, protocol,
                                           rounds_this_run + 1)
            rounds_this_run += 1
            self.metrics.record_round(protocol, extra)

            outboxes = {}
            for v in self.graph.nodes:
                alg = algorithms[v]
                if alg.finished:
                    continue
                out = alg.on_round(inboxes.get(v, {}))
                if out:
                    outboxes[v] = out

        return RunResult(
            outputs={v: algorithms[v].output for v in self.graph.nodes},
            rounds=rounds_this_run,
            all_finished=all(alg.finished for alg in algorithms.values()),
        )

    # ------------------------------------------------------------------
    def _deliver(self, outboxes: Dict[int, Dict[Any, Any]], n: int,
                 protocol: str = "protocol", round_number: int = 0):
        """Expand broadcasts, price messages, and build inboxes."""
        inboxes: Dict[int, Dict[int, Any]] = {}
        extra_rounds = 0
        for sender in sorted(outboxes):
            out = outboxes[sender]
            expanded: Dict[int, Any] = {}
            for target, payload in out.items():
                if target == BROADCAST:
                    for u in self._neighbor_cache[sender]:
                        expanded[u] = payload
                else:
                    if target not in self._weight_cache[sender]:
                        raise ProtocolError(
                            f"node {sender} tried to message non-neighbor "
                            f"{target}"
                        )
                    expanded[target] = payload
            for target, payload in expanded.items():
                bits = payload_bits(payload)
                charge = self.policy.charge(bits, n, sender, target)
                extra_rounds = max(extra_rounds, charge)
                self.metrics.record_message(bits)
                if self.tracer is not None:
                    self.tracer.record(TraceEvent(
                        protocol=protocol, round=round_number,
                        sender=sender, receiver=target,
                        bits=bits, payload=payload,
                    ))
                inboxes.setdefault(target, {})[sender] = payload
        return inboxes, extra_rounds

    def global_check(self) -> None:
        """Record a driver-level global predicate evaluation (see Metrics)."""
        self.metrics.record_global_check()
