"""The synchronous message-passing engine.

As the paper assumes, the input graph *is* the communication network: in each
round every processor sends (possibly different) messages to its neighbors,
receives, and computes.  The engine delivers messages, prices them under the
active :class:`BandwidthPolicy`, accumulates :class:`Metrics`, and detects
termination (all nodes halted) or quiescence (no traffic and nobody spoke).

Composite algorithms run several *protocols* on one persistent network; the
metrics accumulate so composite costs are the true totals.

Two delivery engines share one contract:

* ``"csr"`` (the default) — a batched engine over a flat CSR adjacency
  (:meth:`~repro.graphs.graph.Graph.to_csr`): broadcast expansion walks
  precomputed neighbor rows, message pricing is memoized per bit-size, and
  metrics are accumulated per round instead of per message.
* ``"legacy"`` — the original per-message dict engine, kept for one release
  behind ``REPRO_LEGACY_ENGINE=1`` (or ``engine="legacy"``) as the golden
  reference.  Both engines produce bit-identical outputs, round counts and
  metrics for the same seed; ``tests/test_engine_golden.py`` enforces it.

On top of the CSR engine sits the *vectorized kernel* fast path
(:mod:`repro.congest.kernels`): protocols that register a ``RoundKernel``
execute whole rounds as array operations instead of per-node dispatch,
again bit-identically (``tests/test_kernels.py``).  ``engine="node"``
keeps batched delivery but opts out of kernels, and is therefore the
per-node reference the kernel goldens compare against.

Observability rides the :class:`~repro.congest.events.EventBus`
(``observe=``): **both** engines emit the same structured events — attaching
an observer never changes the engine, and dispatch is always-fast.  The
engines ask ``bus.wants(kind)`` once per round, so a network with no
subscribers (or none interested in the per-message stream) pays one
dictionary lookup per round, never per-message work.  Fault injection is a
constructor argument too (``faults=FaultSpec(loss=0.05)``), so lossy links
compose with any engine and any observer.

The graph is snapshotted at :class:`Network` construction (neighbor caches
and the CSR layout); mutating the graph afterwards is not supported.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .._compat import warn_deprecated
from ..graphs.graph import Graph
from ..models.execution import ExecutionDecision, ExecutionPlan, resolve_execution
from ..observe.events import (
    MESSAGE_DELIVERED,
    ROUND_END,
    ROUND_START,
    Event,
    EventBus,
    MessageDelivered,
    RoundEnd,
    RoundStart,
    ambient_bus,
)
from .message import payload_bits, payload_bits_fast
from ..runtime.metrics import Metrics
from ..observe.tracing import Tracer
from .node import BROADCAST, NodeAlgorithm, NodeContext
from .policies import CONGEST, BandwidthPolicy

NodeFactory = Callable[[NodeContext], NodeAlgorithm]
RoundHook = Callable[[int, "Network"], None]

DEFAULT_MAX_ROUNDS = 100_000

#: Environment variable that flips the default engine back to the
#: pre-CSR dict implementation (value ``1``/``true``/``yes``/``on``).
LEGACY_ENGINE_ENV = "REPRO_LEGACY_ENGINE"

_UNSET = object()  # sentinel for untouched outbox slots in the mixed path

#: Shared empty inbox handed to nodes with no mail this round (saves one
#: dict allocation per silent node per round).  Node programs must treat
#: their inbox as read-only; no program in this library mutates it.
_EMPTY_INBOX: Dict[int, Any] = {}


def default_engine() -> str:
    """The engine a new :class:`Network` uses when none is requested."""
    flag = os.environ.get(LEGACY_ENGINE_ENV, "").strip().lower()
    return "legacy" if flag in ("1", "true", "yes", "on") else "csr"


class ProtocolError(RuntimeError):
    """Raised for protocol violations (bad targets, runaway protocols...)."""


@dataclass
class FaultSpec:
    """Fault-injection parameters for a :class:`Network`.

    ``loss`` is the i.i.d. per-message drop probability; drops happen
    *after* metric accounting (the message was sent and paid for — it just
    never arrives), mirroring a real lossy link.  ``seed`` overrides the
    drop stream's seed (defaults to the network seed, which reproduces the
    historical :class:`~repro.congest.faults.LossyNetwork` drop pattern).
    """

    loss: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")


@dataclass
class RunResult:
    """Outcome of one protocol execution.

    ``metrics`` is the cost of *this* run alone (a
    :meth:`~repro.congest.metrics.Metrics.delta_since` snapshot of the
    network's cumulative account), so callers no longer need to snapshot
    and diff ``network.metrics`` around every call.  ``profile`` is a
    :class:`~repro.congest.profiling.ProfileReport` snapshot when a
    :class:`~repro.congest.profiling.Profiler` is subscribed to the
    network's bus (None otherwise).
    """

    outputs: Dict[int, Any]
    rounds: int
    all_finished: bool
    metrics: Metrics = field(default_factory=Metrics)
    profile: Optional[Any] = None

    def output_of(self, node: int) -> Any:
        return self.outputs[node]


class Network:
    """A simulated synchronous network over a :class:`Graph`.

    ``execution`` selects how protocols run: an
    :class:`~repro.congest.execution.ExecutionPlan` (or a tier name
    shorthand like ``"node"``) naming the highest performance tier the
    network may use — ``sharded-kernel``, ``kernel``, ``sharded``,
    ``node`` or ``legacy``; the default plan (``tier="auto"``) engages
    vectorized kernels whenever a protocol registers one and shard
    workers on top when requested or when the auto rules fire.  Use
    :meth:`explain_execution` to see how a plan resolves for a protocol.

    The historical ``engine=`` (``"csr"``/``"node"``/``"legacy"``/
    ``"sharded"``) and ``shards=`` keywords remain as deprecation shims;
    they normalize into a plan via :meth:`ExecutionPlan.from_legacy`
    with identical observable behavior.  ``max_rounds`` sets the default
    round limit for every :meth:`run` on this network (individual calls
    may still override it).

    ``observe`` attaches observability: an :class:`EventBus`, a single
    observer, or a list of observers (each subscribed with its own
    interest mask — see :mod:`repro.congest.events`).  Attaching an
    observer never changes the engine.  ``faults`` injects link faults
    (:class:`FaultSpec`); the historical ``tracer=`` keyword still works
    but is deprecated — it wraps the :class:`Tracer` in a bus subscriber.
    """

    def __init__(self, graph: Graph, policy: BandwidthPolicy = CONGEST,
                 seed: int = 0, tracer: Optional[Tracer] = None,
                 engine: Optional[str] = None,
                 max_rounds: Optional[int] = None,
                 observe: Any = None,
                 faults: Optional[FaultSpec] = None,
                 shards: Optional[int] = None,
                 execution: Any = None) -> None:
        self.graph = graph
        self.policy = policy
        self.seed = seed
        self.metrics = Metrics()
        #: the :class:`~repro.models.base.ComputationModel` this executor
        #: implements (named in ``explain_execution`` reason chains)
        from ..models.base import CONGEST_MODEL
        self.model = CONGEST_MODEL
        self.default_max_rounds = max_rounds
        self._run_counter = 0
        if execution is not None:
            if engine is not None or shards is not None:
                raise ValueError(
                    "pass either execution= or the legacy engine=/shards= "
                    "keywords, not both")
            if isinstance(execution, str):
                plan = ExecutionPlan(tier=execution)
            elif isinstance(execution, ExecutionPlan):
                plan = execution
            else:
                raise TypeError(
                    f"execution= wants an ExecutionPlan or a tier name, "
                    f"got {type(execution).__name__}")
        else:
            plan = ExecutionPlan.from_legacy(
                engine if engine is not None else default_engine(), shards)
        # fail fast on foreign rungs (e.g. 'mpc_kernel' belongs to the
        # MPC model's ladder, not CONGEST's)
        self.model.check_plan(plan)
        #: the frozen :class:`~repro.congest.execution.ExecutionPlan`
        #: every :meth:`run` resolves against
        self.execution_plan = plan
        #: legacy engine vocabulary derived from the plan (delivery
        #: branch + Subnetwork inheritance still read it)
        self.engine = plan.engine_name()
        #: explicit shard request from the plan (or the ``shards=`` shim);
        #: resolution and eligibility live in :mod:`repro.congest.sharding`
        self.requested_shards = plan.shards
        self._sharded_execs: Dict[int, Any] = {}

        # per-node random streams: splitmix64 spawn_seed chain by default,
        # legacy additive mixing behind REPRO_ADDITIVE_NODE_RNG=1 (imported
        # late — repro.dist's package init itself imports this module)
        from ..dist.random_tools import (
            additive_node_rng_requested,
            node_seed_from_prefix,
            node_stream_prefix,
            node_stream_seed,
        )
        self._node_stream_seed = node_stream_seed
        self._node_stream_prefix = node_stream_prefix
        self._node_seed_from_prefix = node_seed_from_prefix
        self._rng_additive = additive_node_rng_requested()
        self._rng_prefix: Tuple[int, int, int] = (-1, -1, 0)  # (run, salt, pre)

        # observability: explicit observe= wins, else the ambient bus of an
        # enclosing `observing(...)` context, else nothing
        self.bus: Optional[EventBus] = None
        if observe is not None:
            if isinstance(observe, EventBus):
                self.bus = observe
            else:
                self.bus = EventBus()
                observers = (observe if isinstance(observe, (list, tuple))
                             else (observe,))
                for observer in observers:
                    self.bus.subscribe(observer)
        else:
            self.bus = ambient_bus()
        self.tracer = tracer
        if tracer is not None:
            warn_deprecated("network_tracer", stacklevel=2)
            if self.bus is None or self.bus is ambient_bus():
                self.bus = EventBus()
            self.bus.subscribe(tracer)

        # fault injection (the former LossyNetwork, folded into the core
        # constructor so it composes with any engine and any observer)
        self.faults = faults
        self.dropped = 0
        if faults is not None and faults.loss > 0.0:
            fault_seed = faults.seed if faults.seed is not None else seed
            self._fault_rng: Optional[random.Random] = random.Random(
                fault_seed ^ 0x1F123BB5)
        else:
            self._fault_rng = None

        # flat CSR adjacency: the batched engine's whole world (a cached
        # snapshot on the Graph — repeat constructions over one graph hit)
        hits0 = getattr(graph, "csr_cache_hits", 0)
        misses0 = getattr(graph, "csr_cache_misses", 0)
        self.csr = graph.to_csr()
        self.metrics.record_csr_cache(
            getattr(graph, "csr_cache_hits", 0) - hits0,
            getattr(graph, "csr_cache_misses", 0) - misses0)
        self._order: Tuple[int, ...] = self.csr.order
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}
        self._weight_cache: Dict[int, Dict[int, float]] = {}
        self._slot_of: Dict[int, Dict[int, int]] = {}
        order, indptr, indices, weights = (
            self.csr.order, self.csr.indptr, self.csr.indices, self.csr.weights
        )
        for i, v in enumerate(order):
            lo, hi = indptr[i], indptr[i + 1]
            nbrs = tuple(order[indices[e]] for e in range(lo, hi))
            self._neighbor_cache[v] = nbrs
            self._weight_cache[v] = {
                u: weights[lo + off] for off, u in enumerate(nbrs)
            }
            self._slot_of[v] = {u: lo + off for off, u in enumerate(nbrs)}
        # per-slot scratch used by the mixed broadcast+unicast outbox path
        self._slot_scratch: List[Any] = [_UNSET] * self.csr.num_slots
        # pipelining charge memoized per message bit-size (policy and n are
        # fixed for the lifetime of the network)
        self._charge_cache: Dict[int, int] = {}
        # pooled per-receiver inbox dicts for the batched engine: reused
        # round to round instead of reallocated (an inbox is only valid for
        # the round it is delivered in — copy what you keep)
        self._round_inboxes: Dict[int, Dict[int, Any]] = {}
        self._box_pool: List[Dict[int, Any]] = []
        self._live_boxes: List[Dict[int, Any]] = []

    # ------------------------------------------------------------------
    def node_rng(self, node_id: int, salt: int = 0) -> random.Random:
        """A deterministic private random stream for a node.

        Seeds come from the splitmix64 :func:`~repro.dist.random_tools.
        spawn_seed` chain keyed by ``(seed, run, salt, node)``, so distinct
        streams can never alias (the historical additive formula could —
        set ``REPRO_ADDITIVE_NODE_RNG=1`` to restore it for goldens pinned
        against the old streams).  The per-run chain prefix is cached, so
        spinning up all n streams costs one finalization per node.
        """
        if self._rng_additive:
            return random.Random(self._node_stream_seed(
                self.seed, self._run_counter, node_id, salt, additive=True))
        run, cached_salt, prefix = self._rng_prefix
        if run != self._run_counter or cached_salt != salt:
            prefix = self._node_stream_prefix(self.seed, self._run_counter,
                                              salt)
            self._rng_prefix = (self._run_counter, salt, prefix)
        return random.Random(self._node_seed_from_prefix(prefix, node_id))

    def run(self, factory: NodeFactory, protocol: str = "protocol",
            shared: Optional[Dict[str, Any]] = None,
            max_rounds: Optional[int] = None,
            on_round_end: Optional[RoundHook] = None) -> RunResult:
        """Execute one protocol to termination/quiescence.

        ``factory`` builds the node program from its :class:`NodeContext`.
        ``shared`` holds globally known constants (n, k, epsilon, W_max ...),
        readable by every node — the paper's standing assumptions.
        ``on_round_end`` is called as ``hook(round_number, network)`` after
        each completed round (delivery plus node computation) — the place to
        sample convergence traces or drive visualizations without touching
        the node programs.

        When ``factory`` has a registered :class:`~repro.congest.kernels.
        RoundKernel` and nothing forces the slow path (see
        :mod:`repro.congest.kernels`), the run executes on the vectorized
        fast path instead of per-node dispatch — with identical outputs,
        rounds, metrics, random streams and structural events.

        Inbox lifetime: the batched engine reuses delivered inbox dicts
        round to round, so an inbox passed to ``on_round`` is only valid
        for that round — a node that wants to keep arrivals must copy them.
        """
        self._run_counter += 1
        if max_rounds is None:
            max_rounds = self.default_max_rounds
        limit = max_rounds if max_rounds is not None else DEFAULT_MAX_ROUNDS
        shared = dict(shared or {})
        n = self.graph.num_nodes
        before = self.metrics.snapshot()
        # never recycle a previous run's delivered boxes into this run —
        # its results may still reference them
        self._round_inboxes = {}
        self._live_boxes = []

        decision = resolve_execution(self, factory, shared)
        if decision.tier in ("sharded", "sharded-kernel"):
            executor = self._sharded_executor(decision.shards)
            kernel_cls = (decision.kernel_cls
                          if decision.tier == "sharded-kernel" else None)
            result = executor.execute(factory, protocol, shared, limit,
                                      on_round_end, kernel_cls=kernel_cls)
            result.metrics = self.metrics.delta_since(before)
            return self._attach_profile(result)

        if decision.tier in ("kernel", "compiled"):
            if decision.tier == "compiled":
                decision.kernel.enable_compiled()
            result = decision.kernel.execute(protocol, shared, limit,
                                             on_round_end)
            result.metrics = self.metrics.delta_since(before)
            return self._attach_profile(result)

        algorithms: Dict[int, NodeAlgorithm] = {}
        for v in self._order:
            ctx = NodeContext(
                node_id=v,
                neighbors=self._neighbor_cache[v],
                edge_weights=self._weight_cache[v],
                n=n,
                rng=self.node_rng(v),
                shared=shared,
            )
            algorithms[v] = factory(ctx)

        outboxes: Dict[int, Dict[Any, Any]] = {}
        unfinished: List[int] = []
        for v in self._order:
            alg = algorithms[v]
            out = alg.start()
            if out:
                outboxes[v] = out
            if not alg.finished:
                unfinished.append(v)

        bus = self.bus
        rounds_this_run = 0
        while True:
            if not unfinished:
                break
            if (not outboxes and rounds_this_run > 0
                    and all(algorithms[v].passive for v in unfinished)):
                # quiescent: nothing in flight and every live node is purely
                # event-driven, so nothing will ever move again
                break
            if rounds_this_run >= limit:
                raise ProtocolError(
                    f"protocol {protocol!r} exceeded {limit} rounds "
                    f"(likely a livelock)"
                )

            want_round_end = False
            if bus is not None:
                if bus.wants(ROUND_START):
                    bus.emit(RoundStart(protocol=protocol,
                                        round=rounds_this_run + 1))
                want_round_end = bus.wants(ROUND_END)
                if want_round_end:
                    msgs_before = self.metrics.messages
                    bits_before = self.metrics.total_bits
                    dropped_before = self.dropped

            inboxes, extra = self._deliver(outboxes, n, protocol,
                                           rounds_this_run + 1)
            rounds_this_run += 1
            self.metrics.record_round(protocol, extra)

            outboxes.clear()  # fully consumed by _deliver; reuse the dict
            still_active: List[int] = []
            for v in unfinished:
                alg = algorithms[v]
                out = alg.on_round(inboxes.get(v, _EMPTY_INBOX))
                if out:
                    outboxes[v] = out
                if not alg.finished:
                    still_active.append(v)
            unfinished = still_active
            if want_round_end:
                bus.emit(RoundEnd(
                    protocol=protocol, round=rounds_this_run,
                    messages=self.metrics.messages - msgs_before,
                    bits=self.metrics.total_bits - bits_before,
                    dropped=self.dropped - dropped_before,
                ))
            if on_round_end is not None:
                on_round_end(rounds_this_run, self)

        result = RunResult(
            outputs={v: algorithms[v].output for v in self._order},
            rounds=rounds_this_run,
            all_finished=not unfinished,
            metrics=self.metrics.delta_since(before),
        )
        return self._attach_profile(result)

    def _attach_profile(self, result: RunResult) -> RunResult:
        """Snapshot a subscribed Profiler's report onto ``result``."""
        bus = self.bus
        if bus is not None:
            from ..observe.profiling import Profiler

            profiler = bus.find(Profiler)
            if profiler is not None:
                result.profile = profiler.report()
        return result

    def explain_execution(self, factory: Optional[NodeFactory] = None,
                          shared: Optional[Dict[str, Any]] = None,
                          ) -> ExecutionDecision:
        """How this network's plan resolves for a run of ``factory``.

        Returns an :class:`~repro.congest.execution.ExecutionDecision`
        whose ``tier``/``shards`` are the rung :meth:`run` would use and
        whose ``reasons`` chain explains, per considered tier, why it was
        or wasn't selected (``decision.explain()`` formats it).  Dry:
        no worker pool is built and no protocol state is touched.
        """
        return self.model.resolve(self, factory, dict(shared or {}),
                                  collect=True)

    def _select_kernel(self, factory: NodeFactory) -> Optional[Any]:
        """The :class:`~repro.congest.kernels.RoundKernel` instance to run
        ``factory`` with, or None for per-node dispatch.

        Compatibility shim over :func:`~repro.congest.execution.
        resolve_execution` restricted to the single-process rungs; the
        gate-by-gate logic lives there now.
        """
        decision = resolve_execution(self, factory, None, skip_sharding=True)
        if decision.tier == "compiled":
            decision.kernel.enable_compiled()
            return decision.kernel
        return decision.kernel if decision.tier == "kernel" else None

    def _select_sharded(self, factory: NodeFactory,
                        shared: Dict[str, Any]) -> Optional[Any]:
        """The :class:`~repro.congest.sharding.ShardedNetwork` executor to
        run ``factory`` with, or None for single-process execution.

        Compatibility shim over :func:`~repro.congest.execution.
        resolve_execution`: returns the (cached) executor when the plan
        resolves to a sharded tier for this run.
        """
        decision = resolve_execution(self, factory, shared)
        if decision.tier not in ("sharded", "sharded-kernel"):
            return None
        return self._sharded_executor(decision.shards)

    def _sharded_executor(self, k: int) -> Any:
        """The cached :class:`~repro.congest.sharding.ShardedNetwork` for
        ``k`` shards, building (or rebuilding a broken) pool on demand."""
        from . import sharding as _sharding

        executor = self._sharded_execs.get(k)
        if executor is None or executor.broken:
            executor = _sharding.ShardedNetwork(self, k)
            self._sharded_execs[k] = executor
        return executor

    def close(self) -> None:
        """Release external resources (sharded worker pools and their
        shared-memory blocks).  Idempotent; the network remains usable —
        single-process paths are unaffected and a later sharded run
        simply builds a fresh pool."""
        execs, self._sharded_execs = self._sharded_execs, {}
        for executor in execs.values():
            executor.close()

    def __enter__(self) -> "Network":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def subnetwork(self, graph: Graph, **kwargs: Any) -> Any:
        """Spawn a :class:`~repro.congest.runtime.Subnetwork` over ``graph``.

        The child inherits this network's policy, engine, fault spec, event
        bus (scoped under a ``PhaseStart``/``PhaseEnd`` pair) and seed
        stream, and folds its cost back into this network's metrics on
        exit — see :mod:`repro.congest.runtime` for the fold modes.
        """
        from ..runtime.driver import Subnetwork

        return Subnetwork(self, graph, **kwargs)

    # ------------------------------------------------------------------
    # driver-side observability helpers
    def wants(self, kind: Any) -> bool:
        """True iff an observer is interested in ``kind`` (False when
        unobserved) — drivers guard expensive event construction with it."""
        bus = self.bus
        return bus is not None and bus.wants(kind)

    def emit(self, event: Event) -> None:
        """Publish a driver-level event on the bus (no-op when unobserved)."""
        bus = self.bus
        if bus is not None:
            bus.emit(event)

    def observer_for(self, kind: Any):
        """``bus.emit`` when someone is interested in ``kind``, else None.

        The hook for instrumentation inside node programs: drivers thread
        the returned callable through ``shared`` only when an observer is
        actually listening, so unobserved runs carry no closure at all.
        """
        bus = self.bus
        if bus is not None and bus.wants(kind):
            return bus.emit
        return None

    # ------------------------------------------------------------------
    def _deliver(self, outboxes: Dict[int, Dict[Any, Any]], n: int,
                 protocol: str = "protocol", round_number: int = 0):
        """Expand broadcasts, price messages, and build inboxes.

        Dispatch is engine-only — observers never change it: the batched
        CSR engine always serves ``engine="csr"`` and the dict engine the
        ``"legacy"`` opt-out.  Fault injection and event emission are
        post-passes over the delivered inboxes, shared by both engines
        (which is what makes their event streams identical).  Subclasses
        that post-process delivery may still override this method and
        delegate to ``super()``.
        """
        if self.engine != "legacy":
            inboxes, extra = self._deliver_batched(outboxes, n)
        else:
            inboxes, extra = self._deliver_dict(outboxes, n)
        if self._fault_rng is not None:
            self._apply_faults(inboxes)
        bus = self.bus
        if bus is not None and bus.wants(MESSAGE_DELIVERED):
            self._emit_messages(bus, inboxes, protocol, round_number)
        return inboxes, extra

    def _apply_faults(self, inboxes: Dict[int, Dict[int, Any]]) -> None:
        """Drop delivered messages i.i.d. with ``faults.loss``.

        Iteration order (sorted receivers, sorted senders) and the rng
        stream reproduce the historical LossyNetwork drop pattern exactly.
        """
        loss = self.faults.loss
        rng_random = self._fault_rng.random
        for receiver in sorted(inboxes):
            box = inboxes[receiver]
            for sender in sorted(box):
                if rng_random() < loss:
                    del box[sender]
                    self.dropped += 1
            if not box:
                del inboxes[receiver]

    def _emit_messages(self, bus: EventBus, inboxes: Dict[int, Dict[int, Any]],
                       protocol: str, round_number: int) -> None:
        """Publish the round's delivered messages, sender-major order.

        Events are reconstructed from the inboxes *after* delivery and
        fault injection, so both engines emit the identical sequence and
        only actually-delivered messages appear.
        """
        triples: List[Tuple[int, int, Any]] = []
        for receiver, box in inboxes.items():
            for sender, payload in box.items():
                triples.append((sender, receiver, payload))
        triples.sort(key=lambda t: (t[0], t[1]))
        bus.emit_messages([
            MessageDelivered(protocol=protocol, round=round_number,
                             sender=sender, receiver=receiver,
                             bits=payload_bits_fast(payload), payload=payload)
            for sender, receiver, payload in triples
        ])

    def _deliver_batched(self, outboxes: Dict[int, Dict[Any, Any]], n: int):
        """One batched pass: expansion, validation, pricing, accumulation.

        Per-receiver inbox dicts are pooled and reused round to round
        instead of reallocated — the previous round's boxes (fully consumed
        by then) are cleared and recycled here.  This is why an inbox is
        only valid for the round it is delivered in (see :meth:`run`).
        """
        inboxes = self._round_inboxes
        pool = self._box_pool
        live = self._live_boxes
        if live:
            for box in live:
                box.clear()
            pool.extend(live)
            live.clear()
        inboxes.clear()
        live_append = live.append
        pool_pop = pool.pop
        extra_rounds = 0
        messages = 0
        bits_sum = 0
        max_bits = 0
        charge_cache = self._charge_cache
        policy_charge = self.policy.charge
        neighbor_cache = self._neighbor_cache
        inbox_get = inboxes.get
        outbox_get = outboxes.get
        for sender in self._order:
            out = outbox_get(sender)
            if not out:
                continue
            nbrs = neighbor_cache[sender]
            if BROADCAST in out:
                if len(out) == 1:
                    # pure broadcast: price once, deliver along the CSR row
                    if not nbrs:
                        continue
                    payload = out[BROADCAST]
                    bits = payload_bits_fast(payload)
                    charge = charge_cache.get(bits, -1)
                    if charge < 0:
                        charge = policy_charge(bits, n, sender, nbrs[0])
                        charge_cache[bits] = charge
                    if charge > extra_rounds:
                        extra_rounds = charge
                    messages += len(nbrs)
                    bits_sum += bits * len(nbrs)
                    if bits > max_bits:
                        max_bits = bits
                    for u in nbrs:
                        box = inbox_get(u)
                        if box is None:
                            box = pool_pop() if pool else {}
                            inboxes[u] = box
                            live_append(box)
                        box[sender] = payload
                    continue
                # mixed broadcast + unicast: expand into the sender's slot
                # range so later entries overwrite earlier ones exactly as
                # the dict engine's ``expanded`` mapping did
                slots = self._slot_scratch
                slot_of = self._slot_of[sender]
                i = self.csr.index[sender]
                lo, hi = self.csr.indptr[i], self.csr.indptr[i + 1]
                for target, payload in out.items():
                    if target == BROADCAST:
                        for e in range(lo, hi):
                            slots[e] = payload
                    else:
                        e = slot_of.get(target)
                        if e is None:
                            raise ProtocolError(
                                f"node {sender} tried to message non-neighbor "
                                f"{target}"
                            )
                        slots[e] = payload
                for off in range(hi - lo):
                    payload = slots[lo + off]
                    if payload is _UNSET:
                        continue
                    slots[lo + off] = _UNSET
                    target = nbrs[off]
                    bits = payload_bits_fast(payload)
                    charge = charge_cache.get(bits, -1)
                    if charge < 0:
                        charge = policy_charge(bits, n, sender, target)
                        charge_cache[bits] = charge
                    if charge > extra_rounds:
                        extra_rounds = charge
                    messages += 1
                    bits_sum += bits
                    if bits > max_bits:
                        max_bits = bits
                    box = inbox_get(target)
                    if box is None:
                        box = pool_pop() if pool else {}
                        inboxes[target] = box
                        live_append(box)
                    box[sender] = payload
                continue
            # unicast-only outbox: keys are already distinct targets
            slot_of = self._slot_of[sender]
            for target, payload in out.items():
                if target not in slot_of:
                    raise ProtocolError(
                        f"node {sender} tried to message non-neighbor "
                        f"{target}"
                    )
                bits = payload_bits_fast(payload)
                charge = charge_cache.get(bits, -1)
                if charge < 0:
                    charge = policy_charge(bits, n, sender, target)
                    charge_cache[bits] = charge
                if charge > extra_rounds:
                    extra_rounds = charge
                messages += 1
                bits_sum += bits
                if bits > max_bits:
                    max_bits = bits
                box = inbox_get(target)
                if box is None:
                    box = pool_pop() if pool else {}
                    inboxes[target] = box
                    live_append(box)
                box[sender] = payload
        self.metrics.record_message_batch(messages, bits_sum, max_bits)
        return inboxes, extra_rounds

    def _deliver_dict(self, outboxes: Dict[int, Dict[Any, Any]], n: int):
        """The reference per-message engine (``engine="legacy"`` opt-out)."""
        inboxes: Dict[int, Dict[int, Any]] = {}
        extra_rounds = 0
        # graph order instead of a per-round sort: node ids ascend by
        # construction, so delivery order is unchanged (and regression-tested)
        for sender in self._order:
            out = outboxes.get(sender)
            if not out:
                continue
            expanded: Dict[int, Any] = {}
            for target, payload in out.items():
                if target == BROADCAST:
                    for u in self._neighbor_cache[sender]:
                        expanded[u] = payload
                else:
                    if target not in self._weight_cache[sender]:
                        raise ProtocolError(
                            f"node {sender} tried to message non-neighbor "
                            f"{target}"
                        )
                    expanded[target] = payload
            for target, payload in expanded.items():
                bits = payload_bits(payload)
                charge = self.policy.charge(bits, n, sender, target)
                extra_rounds = max(extra_rounds, charge)
                self.metrics.record_message(bits)
                inboxes.setdefault(target, {})[sender] = payload
        return inboxes, extra_rounds

    def global_check(self) -> None:
        """Record a driver-level global predicate evaluation (see Metrics)."""
        self.metrics.record_global_check()
