"""The synchronous message-passing engine.

As the paper assumes, the input graph *is* the communication network: in each
round every processor sends (possibly different) messages to its neighbors,
receives, and computes.  The engine delivers messages, prices them under the
active :class:`BandwidthPolicy`, accumulates :class:`Metrics`, and detects
termination (all nodes halted) or quiescence (no traffic and nobody spoke).

Composite algorithms run several *protocols* on one persistent network; the
metrics accumulate so composite costs are the true totals.

Two delivery engines share one contract:

* ``"csr"`` (the default) — a batched engine over a flat CSR adjacency
  (:meth:`~repro.graphs.graph.Graph.to_csr`): broadcast expansion walks
  precomputed neighbor rows, message pricing is memoized per bit-size,
  metrics are accumulated per round instead of per message, and the whole
  tracer machinery is skipped when no tracer is installed.
* ``"legacy"`` — the original per-message dict engine, kept for one release
  behind ``REPRO_LEGACY_ENGINE=1`` (or ``engine="legacy"``) as the golden
  reference.  Both engines produce bit-identical outputs, round counts and
  metrics for the same seed; ``tests/test_engine_golden.py`` enforces it.

The graph is snapshotted at :class:`Network` construction (neighbor caches
and the CSR layout); mutating the graph afterwards is not supported.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs.graph import Graph
from .message import payload_bits, payload_bits_fast
from .metrics import Metrics
from .tracing import TraceEvent, Tracer
from .node import BROADCAST, NodeAlgorithm, NodeContext
from .policies import CONGEST, BandwidthPolicy

NodeFactory = Callable[[NodeContext], NodeAlgorithm]
RoundHook = Callable[[int, "Network"], None]

DEFAULT_MAX_ROUNDS = 100_000

#: Environment variable that flips the default engine back to the
#: pre-CSR dict implementation (value ``1``/``true``/``yes``/``on``).
LEGACY_ENGINE_ENV = "REPRO_LEGACY_ENGINE"

_UNSET = object()  # sentinel for untouched outbox slots in the mixed path


def default_engine() -> str:
    """The engine a new :class:`Network` uses when none is requested."""
    flag = os.environ.get(LEGACY_ENGINE_ENV, "").strip().lower()
    return "legacy" if flag in ("1", "true", "yes", "on") else "csr"


class ProtocolError(RuntimeError):
    """Raised for protocol violations (bad targets, runaway protocols...)."""


@dataclass
class RunResult:
    """Outcome of one protocol execution.

    ``metrics`` is the cost of *this* run alone (a
    :meth:`~repro.congest.metrics.Metrics.delta_since` snapshot of the
    network's cumulative account), so callers no longer need to snapshot
    and diff ``network.metrics`` around every call.
    """

    outputs: Dict[int, Any]
    rounds: int
    all_finished: bool
    metrics: Metrics = field(default_factory=Metrics)

    def output_of(self, node: int) -> Any:
        return self.outputs[node]


class Network:
    """A simulated synchronous network over a :class:`Graph`.

    ``engine`` selects the delivery implementation (``"csr"`` or
    ``"legacy"``); by default it follows :func:`default_engine`, i.e. the
    batched CSR engine unless ``REPRO_LEGACY_ENGINE`` is set.
    ``max_rounds`` sets the default round limit for every :meth:`run` on
    this network (individual calls may still override it).
    """

    def __init__(self, graph: Graph, policy: BandwidthPolicy = CONGEST,
                 seed: int = 0, tracer: Optional[Tracer] = None,
                 engine: Optional[str] = None,
                 max_rounds: Optional[int] = None) -> None:
        self.graph = graph
        self.policy = policy
        self.seed = seed
        self.tracer = tracer
        self.metrics = Metrics()
        self.default_max_rounds = max_rounds
        self._run_counter = 0
        if engine is None:
            engine = default_engine()
        if engine not in ("csr", "legacy"):
            raise ValueError(f"unknown engine {engine!r}; use 'csr' or 'legacy'")
        self.engine = engine

        # flat CSR adjacency: the batched engine's whole world
        self.csr = graph.to_csr()
        self._order: Tuple[int, ...] = self.csr.order
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}
        self._weight_cache: Dict[int, Dict[int, float]] = {}
        self._slot_of: Dict[int, Dict[int, int]] = {}
        order, indptr, indices, weights = (
            self.csr.order, self.csr.indptr, self.csr.indices, self.csr.weights
        )
        for i, v in enumerate(order):
            lo, hi = indptr[i], indptr[i + 1]
            nbrs = tuple(order[indices[e]] for e in range(lo, hi))
            self._neighbor_cache[v] = nbrs
            self._weight_cache[v] = {
                u: weights[lo + off] for off, u in enumerate(nbrs)
            }
            self._slot_of[v] = {u: lo + off for off, u in enumerate(nbrs)}
        # per-slot scratch used by the mixed broadcast+unicast outbox path
        self._slot_scratch: List[Any] = [_UNSET] * self.csr.num_slots
        # pipelining charge memoized per message bit-size (policy and n are
        # fixed for the lifetime of the network)
        self._charge_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def node_rng(self, node_id: int, salt: int = 0) -> random.Random:
        """A deterministic private random stream for a node."""
        mixed = (self.seed * 0x9E3779B97F4A7C15
                 + self._run_counter * 0x100000001B3
                 + salt * 0x1003F
                 + node_id) & ((1 << 64) - 1)
        return random.Random(mixed)

    def run(self, factory: NodeFactory, protocol: str = "protocol",
            shared: Optional[Dict[str, Any]] = None,
            max_rounds: Optional[int] = None,
            on_round_end: Optional[RoundHook] = None) -> RunResult:
        """Execute one protocol to termination/quiescence.

        ``factory`` builds the node program from its :class:`NodeContext`.
        ``shared`` holds globally known constants (n, k, epsilon, W_max ...),
        readable by every node — the paper's standing assumptions.
        ``on_round_end`` is called as ``hook(round_number, network)`` after
        each completed round (delivery plus node computation) — the place to
        sample convergence traces or drive visualizations without touching
        the node programs.
        """
        self._run_counter += 1
        if max_rounds is None:
            max_rounds = self.default_max_rounds
        limit = max_rounds if max_rounds is not None else DEFAULT_MAX_ROUNDS
        shared = dict(shared or {})
        n = self.graph.num_nodes
        before = self.metrics.snapshot()

        algorithms: Dict[int, NodeAlgorithm] = {}
        for v in self._order:
            ctx = NodeContext(
                node_id=v,
                neighbors=self._neighbor_cache[v],
                edge_weights=self._weight_cache[v],
                n=n,
                rng=self.node_rng(v),
                shared=shared,
            )
            algorithms[v] = factory(ctx)

        outboxes: Dict[int, Dict[Any, Any]] = {}
        unfinished: List[int] = []
        for v in self._order:
            alg = algorithms[v]
            out = alg.start()
            if out:
                outboxes[v] = out
            if not alg.finished:
                unfinished.append(v)

        rounds_this_run = 0
        while True:
            if not unfinished:
                break
            if (not outboxes and rounds_this_run > 0
                    and all(algorithms[v].passive for v in unfinished)):
                # quiescent: nothing in flight and every live node is purely
                # event-driven, so nothing will ever move again
                break
            if rounds_this_run >= limit:
                raise ProtocolError(
                    f"protocol {protocol!r} exceeded {limit} rounds "
                    f"(likely a livelock)"
                )

            inboxes, extra = self._deliver(outboxes, n, protocol,
                                           rounds_this_run + 1)
            rounds_this_run += 1
            self.metrics.record_round(protocol, extra)

            outboxes = {}
            still_active: List[int] = []
            for v in unfinished:
                alg = algorithms[v]
                out = alg.on_round(inboxes.get(v, {}))
                if out:
                    outboxes[v] = out
                if not alg.finished:
                    still_active.append(v)
            unfinished = still_active
            if on_round_end is not None:
                on_round_end(rounds_this_run, self)

        return RunResult(
            outputs={v: algorithms[v].output for v in self._order},
            rounds=rounds_this_run,
            all_finished=not unfinished,
            metrics=self.metrics.delta_since(before),
        )

    # ------------------------------------------------------------------
    def _deliver(self, outboxes: Dict[int, Dict[Any, Any]], n: int,
                 protocol: str = "protocol", round_number: int = 0):
        """Expand broadcasts, price messages, and build inboxes.

        Dispatches to the batched CSR engine when possible; the dict engine
        handles the legacy opt-out and the traced path (the fast path skips
        tracer hooks entirely, so it is only taken when none are installed).
        Subclasses that post-process delivery (e.g.
        :class:`~repro.congest.faults.LossyNetwork`) override this method
        and delegate to ``super()``, which keeps them on the fast path too.
        """
        if self.engine == "csr" and self.tracer is None:
            return self._deliver_batched(outboxes, n)
        return self._deliver_dict(outboxes, n, protocol, round_number)

    def _deliver_batched(self, outboxes: Dict[int, Dict[Any, Any]], n: int):
        """One batched pass: expansion, validation, pricing, accumulation."""
        inboxes: Dict[int, Dict[int, Any]] = {}
        extra_rounds = 0
        messages = 0
        bits_sum = 0
        max_bits = 0
        charge_cache = self._charge_cache
        policy_charge = self.policy.charge
        neighbor_cache = self._neighbor_cache
        inbox_get = inboxes.get
        outbox_get = outboxes.get
        for sender in self._order:
            out = outbox_get(sender)
            if not out:
                continue
            nbrs = neighbor_cache[sender]
            if BROADCAST in out:
                if len(out) == 1:
                    # pure broadcast: price once, deliver along the CSR row
                    if not nbrs:
                        continue
                    payload = out[BROADCAST]
                    bits = payload_bits_fast(payload)
                    charge = charge_cache.get(bits, -1)
                    if charge < 0:
                        charge = policy_charge(bits, n, sender, nbrs[0])
                        charge_cache[bits] = charge
                    if charge > extra_rounds:
                        extra_rounds = charge
                    messages += len(nbrs)
                    bits_sum += bits * len(nbrs)
                    if bits > max_bits:
                        max_bits = bits
                    for u in nbrs:
                        box = inbox_get(u)
                        if box is None:
                            inboxes[u] = {sender: payload}
                        else:
                            box[sender] = payload
                    continue
                # mixed broadcast + unicast: expand into the sender's slot
                # range so later entries overwrite earlier ones exactly as
                # the dict engine's ``expanded`` mapping did
                slots = self._slot_scratch
                slot_of = self._slot_of[sender]
                i = self.csr.index[sender]
                lo, hi = self.csr.indptr[i], self.csr.indptr[i + 1]
                for target, payload in out.items():
                    if target == BROADCAST:
                        for e in range(lo, hi):
                            slots[e] = payload
                    else:
                        e = slot_of.get(target)
                        if e is None:
                            raise ProtocolError(
                                f"node {sender} tried to message non-neighbor "
                                f"{target}"
                            )
                        slots[e] = payload
                for off in range(hi - lo):
                    payload = slots[lo + off]
                    if payload is _UNSET:
                        continue
                    slots[lo + off] = _UNSET
                    target = nbrs[off]
                    bits = payload_bits_fast(payload)
                    charge = charge_cache.get(bits, -1)
                    if charge < 0:
                        charge = policy_charge(bits, n, sender, target)
                        charge_cache[bits] = charge
                    if charge > extra_rounds:
                        extra_rounds = charge
                    messages += 1
                    bits_sum += bits
                    if bits > max_bits:
                        max_bits = bits
                    box = inbox_get(target)
                    if box is None:
                        inboxes[target] = {sender: payload}
                    else:
                        box[sender] = payload
                continue
            # unicast-only outbox: keys are already distinct targets
            slot_of = self._slot_of[sender]
            for target, payload in out.items():
                if target not in slot_of:
                    raise ProtocolError(
                        f"node {sender} tried to message non-neighbor "
                        f"{target}"
                    )
                bits = payload_bits_fast(payload)
                charge = charge_cache.get(bits, -1)
                if charge < 0:
                    charge = policy_charge(bits, n, sender, target)
                    charge_cache[bits] = charge
                if charge > extra_rounds:
                    extra_rounds = charge
                messages += 1
                bits_sum += bits
                if bits > max_bits:
                    max_bits = bits
                box = inbox_get(target)
                if box is None:
                    inboxes[target] = {sender: payload}
                else:
                    box[sender] = payload
        self.metrics.record_message_batch(messages, bits_sum, max_bits)
        return inboxes, extra_rounds

    def _deliver_dict(self, outboxes: Dict[int, Dict[Any, Any]], n: int,
                      protocol: str = "protocol", round_number: int = 0):
        """The reference per-message engine (legacy opt-out, traced runs)."""
        inboxes: Dict[int, Dict[int, Any]] = {}
        extra_rounds = 0
        events: List[TraceEvent] = []
        traced = self.tracer is not None
        # graph order instead of a per-round sort: node ids ascend by
        # construction, so delivery order is unchanged (and regression-tested)
        for sender in self._order:
            out = outboxes.get(sender)
            if not out:
                continue
            expanded: Dict[int, Any] = {}
            for target, payload in out.items():
                if target == BROADCAST:
                    for u in self._neighbor_cache[sender]:
                        expanded[u] = payload
                else:
                    if target not in self._weight_cache[sender]:
                        raise ProtocolError(
                            f"node {sender} tried to message non-neighbor "
                            f"{target}"
                        )
                    expanded[target] = payload
            for target, payload in expanded.items():
                bits = payload_bits(payload)
                charge = self.policy.charge(bits, n, sender, target)
                extra_rounds = max(extra_rounds, charge)
                self.metrics.record_message(bits)
                if traced:
                    events.append(TraceEvent(
                        protocol=protocol, round=round_number,
                        sender=sender, receiver=target,
                        bits=bits, payload=payload,
                    ))
                inboxes.setdefault(target, {})[sender] = payload
        if traced and events:
            self.tracer.record_many(events)
        return inboxes, extra_rounds

    def global_check(self) -> None:
        """Record a driver-level global predicate evaluation (see Metrics)."""
        self.metrics.record_global_check()
