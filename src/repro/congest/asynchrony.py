"""Asynchronous execution with an alpha synchronizer (paper footnote 2).

The paper assumes a synchronous network and notes that this is without loss
of generality "using, say, the alpha synchronizer of [Awerbuch 1985]".  This
module makes that footnote executable: the same :class:`NodeAlgorithm`
programs run unchanged over a network with arbitrary per-message delays.

Mechanism (the alpha synchronizer, specialized to reliable channels): every
node sends exactly one *envelope* per neighbor per simulated round — either
the program's payload or an explicit pulse — tagged with the round number.
A node executes round ``r`` only once it holds the round-``r`` envelope from
every live neighbor; out-of-order deliveries are buffered by round.  A
halting node announces it, so neighbors stop waiting for its envelopes.

The price of asynchrony is message overhead (pulses on every edge every
round — the alpha synchronizer's O(|E|) messages per round) and the virtual
time dictated by the slowest envelope on the critical path; both are
reported in :class:`AsyncReport`.  Determinism: with equal seeds, a program
produces *identical outputs* under the synchronizer as under the
synchronous engine, because per-round inboxes are reproduced exactly.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs.graph import Graph
from .message import payload_bits
from .network import NodeFactory, ProtocolError
from .node import BROADCAST, NodeAlgorithm, NodeContext

# envelope = (kind, payload, final): kind "m" (message) or "p" (pulse);
# final marks the sender's last round, so receivers stop waiting for it
_KIND_MSG = "m"
_KIND_PULSE = "p"


class DelayModel:
    """Chooses the in-flight latency of each message."""

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        raise NotImplementedError  # pragma: no cover


class FixedDelay(DelayModel):
    """Every message takes exactly ``latency`` time units."""

    def __init__(self, latency: float = 1.0) -> None:
        if latency <= 0:
            raise ValueError("latency must be positive")
        self.latency = latency

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        return self.latency


class UniformDelay(DelayModel):
    """Latencies uniform on [low, high] — the generic asynchronous network."""

    def __init__(self, low: float = 0.5, high: float = 2.0) -> None:
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self.low = low
        self.high = high

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class HeavyTailDelay(DelayModel):
    """Mostly fast links with occasional stragglers (Pareto-ish)."""

    def __init__(self, base: float = 0.5, tail: float = 10.0,
                 tail_probability: float = 0.05) -> None:
        if not 0 <= tail_probability <= 1:
            raise ValueError("tail_probability must be in [0, 1]")
        self.base = base
        self.tail = tail
        self.tail_probability = tail_probability

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        if rng.random() < self.tail_probability:
            return self.tail * (1.0 + rng.random())
        return self.base * (0.5 + rng.random())


class SlowEdgeDelay(DelayModel):
    """One adversarially slow edge; everything else is fast.

    Demonstrates that the synchronizer's critical path is the slowest link.
    """

    def __init__(self, slow_edge: Tuple[int, int], slow: float = 25.0,
                 fast: float = 1.0) -> None:
        a, b = slow_edge
        self.slow_edge = (min(a, b), max(a, b))
        self.slow = slow
        self.fast = fast

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        edge = (min(sender, receiver), max(sender, receiver))
        return self.slow if edge == self.slow_edge else self.fast


@dataclass
class AsyncReport:
    """Cost of an asynchronous execution."""

    outputs: Dict[int, Any]
    all_finished: bool
    rounds: int                 # synchronizer rounds completed (max over nodes)
    virtual_time: float         # latest delivery time on the event queue
    envelopes: int              # all messages incl. pulses (the alpha overhead)
    payload_messages: int       # real program messages
    payload_bits: int
    max_payload_bits: int = 0

    @property
    def pulse_overhead(self) -> float:
        """Fraction of envelopes that were pure synchronization pulses."""
        if self.envelopes == 0:
            return 0.0
        return 1.0 - self.payload_messages / self.envelopes


class _AsyncNode:
    """Per-node synchronizer state."""

    def __init__(self, alg: NodeAlgorithm, neighbors: Tuple[int, ...]) -> None:
        self.alg = alg
        self.neighbors = set(neighbors)
        self.round = 0
        # halt_round[u] = the last round for which u sent envelopes; for
        # later rounds u is skipped.  Round-indexed (not a plain set) because
        # reordered delays can deliver the final envelope before earlier ones.
        self.halt_round: Dict[int, int] = {}
        # per-round buffers: round -> {sender: envelope}
        self.buffer: Dict[int, Dict[int, Any]] = {}

    def ready(self) -> bool:
        """Can this node execute its next round?"""
        if self.alg.finished:
            return False
        got = self.buffer.get(self.round, {})
        return all(
            u in got or self.halt_round.get(u, 1 << 60) < self.round
            for u in self.neighbors
        )


class AsyncNetwork:
    """Event-driven executor running synchronous programs via the synchronizer."""

    def __init__(self, graph: Graph, delay_model: Optional[DelayModel] = None,
                 seed: int = 0) -> None:
        self.graph = graph
        self.delay_model = delay_model or UniformDelay()
        self.seed = seed
        self._neighbors = {v: tuple(graph.neighbors(v)) for v in graph.nodes}
        self._weights = {
            v: {u: graph.weight(v, u) for u in self._neighbors[v]}
            for v in graph.nodes
        }
        self._delay_rng = random.Random(seed ^ 0x5DEECE66D)
        self._run_counter = 0
        from ..dist.random_tools import (  # late: repro.dist init cycle
            additive_node_rng_requested,
            node_seed_from_prefix,
            node_stream_prefix,
            node_stream_seed,
        )
        self._node_stream_seed = node_stream_seed
        self._node_stream_prefix = node_stream_prefix
        self._node_seed_from_prefix = node_seed_from_prefix
        self._rng_additive = additive_node_rng_requested()
        self._rng_prefix = (-1, -1, 0)

    def node_rng(self, node_id: int, salt: int = 0) -> random.Random:
        # identical mixing to Network.node_rng at the same run counter, so a
        # program's random stream matches its synchronous execution
        if self._rng_additive:
            return random.Random(self._node_stream_seed(
                self.seed, self._run_counter, node_id, salt, additive=True))
        run, cached_salt, prefix = self._rng_prefix
        if run != self._run_counter or cached_salt != salt:
            prefix = self._node_stream_prefix(self.seed, self._run_counter,
                                              salt)
            self._rng_prefix = (self._run_counter, salt, prefix)
        return random.Random(self._node_seed_from_prefix(prefix, node_id))

    def run(self, factory: NodeFactory,
            shared: Optional[Dict[str, Any]] = None,
            max_rounds: int = 100_000) -> AsyncReport:
        self._run_counter += 1
        shared = dict(shared or {})
        n = self.graph.num_nodes
        nodes: Dict[int, _AsyncNode] = {}
        for v in self.graph.nodes:
            ctx = NodeContext(
                node_id=v,
                neighbors=self._neighbors[v],
                edge_weights=self._weights[v],
                n=n,
                rng=self.node_rng(v),
                shared=shared,
            )
            nodes[v] = _AsyncNode(factory(ctx), self._neighbors[v])

        events: List[Tuple[float, int, int, int, int, Any]] = []
        seq = 0
        stats = {"envelopes": 0, "payload_messages": 0, "payload_bits": 0,
                 "real_in_flight": 0, "real_buffered": 0,
                 "virtual_time": 0.0, "max_payload_bits": 0}

        def send_round(v: int, outbox: Dict[Any, Any], rnd: int,
                       now: float, final: bool) -> None:
            nonlocal seq
            expanded: Dict[int, Any] = {}
            for target, payload in (outbox or {}).items():
                if target == BROADCAST:
                    for u in self._neighbors[v]:
                        expanded[u] = payload
                else:
                    if target not in self._weights[v]:
                        raise ProtocolError(
                            f"node {v} tried to message non-neighbor {target}"
                        )
                    expanded[target] = payload
            for u in self._neighbors[v]:
                if u in expanded:
                    envelope = (_KIND_MSG, expanded[u], final)
                    stats["payload_messages"] += 1
                    bits = payload_bits(expanded[u])
                    stats["payload_bits"] += bits
                    stats["max_payload_bits"] = max(
                        stats["max_payload_bits"], bits)
                    stats["real_in_flight"] += 1
                else:
                    envelope = (_KIND_PULSE, None, final)
                stats["envelopes"] += 1
                latency = self.delay_model.delay(v, u, self._delay_rng)
                if latency <= 0:
                    raise ProtocolError("delay model produced a non-positive delay")
                seq += 1
                heapq.heappush(events, (now + latency, seq, v, u, rnd, envelope))

        # round 0: everyone starts
        for v in sorted(nodes):
            node = nodes[v]
            outbox = node.alg.start()
            send_round(v, outbox, 0, 0.0, final=node.alg.finished)

        max_round_seen = 0
        while events:
            time_now, _, sender, receiver, rnd, envelope = heapq.heappop(events)
            stats["virtual_time"] = max(stats["virtual_time"], time_now)
            node = nodes[receiver]

            kind, _, final = envelope
            if kind == _KIND_MSG:
                stats["real_in_flight"] -= 1
            if final:
                node.halt_round[sender] = rnd
            if node.alg.finished:
                pass  # a halted node consumes (and ignores) late arrivals
            else:
                node.buffer.setdefault(rnd, {})[sender] = envelope
                if kind == _KIND_MSG:
                    stats["real_buffered"] += 1

            # a delivery may unblock several consecutive rounds (buffered)
            while node.ready():
                got = node.buffer.pop(node.round, {})
                inbox = {u: env[1] for u, env in got.items()
                         if env[0] == _KIND_MSG}
                stats["real_buffered"] -= len(inbox)
                node.round += 1
                max_round_seen = max(max_round_seen, node.round)
                if node.round > max_rounds:
                    raise ProtocolError(
                        f"asynchronous run exceeded {max_rounds} rounds"
                    )
                outbox = node.alg.on_round(inbox)
                send_round(receiver, outbox, node.round, time_now,
                           final=node.alg.finished)
                if node.alg.finished:
                    # anything still buffered for this node will never be
                    # consumed: settle the accounting and drop it
                    for got_late in node.buffer.values():
                        for env in got_late.values():
                            if env[0] == _KIND_MSG:
                                stats["real_buffered"] -= 1
                    node.buffer.clear()
                    break

            if (stats["real_in_flight"] == 0
                    and stats["real_buffered"] == 0
                    and all(x.alg.finished or x.alg.passive
                            for x in nodes.values())):
                break  # quiescent: no real payload in flight or buffered,
                #        and pulses alone cannot wake a passive node

        return AsyncReport(
            outputs={v: nodes[v].alg.output for v in self.graph.nodes},
            all_finished=all(x.alg.finished for x in nodes.values()),
            rounds=max_round_seen,
            virtual_time=stats["virtual_time"],
            envelopes=stats["envelopes"],
            payload_messages=stats["payload_messages"],
            payload_bits=stats["payload_bits"],
            max_payload_bits=stats["max_payload_bits"],
        )


class SynchronizedNetwork:
    """A drop-in :class:`~repro.congest.network.Network` replacement that
    executes every protocol over the asynchronous engine.

    Any driver accepting a ``network`` parameter — ``bipartite_mcm``,
    ``general_mcm``, ``approximate_mwm``, ``tree_mwm`` — runs unchanged over
    arbitrary message delays, and (given equal seeds) produces the identical
    result, because the alpha synchronizer reproduces the synchronous
    per-round inboxes exactly.  Rounds recorded in :attr:`metrics` are the
    synchronizer's logical rounds; the asynchronous costs (virtual time and
    pulse envelopes) accumulate in :attr:`virtual_time` / :attr:`envelopes`.
    """

    def __init__(self, graph: Graph, delay_model: Optional[DelayModel] = None,
                 seed: int = 0) -> None:
        from ..runtime.metrics import Metrics

        self.graph = graph
        self.seed = seed
        self.metrics = Metrics()
        self.virtual_time = 0.0
        self.envelopes = 0
        self.bus = None  # the asynchronous engine does not emit events (yet)
        self._inner = AsyncNetwork(graph, delay_model, seed=seed)

    @property
    def _run_counter(self) -> int:
        return self._inner._run_counter

    def node_rng(self, node_id: int, salt: int = 0) -> random.Random:
        return self._inner.node_rng(node_id, salt)

    def run(self, factory: NodeFactory, protocol: str = "protocol",
            shared: Optional[Dict[str, Any]] = None,
            max_rounds: Optional[int] = None):
        from .network import RunResult

        report = self._inner.run(
            factory, shared=shared,
            max_rounds=max_rounds if max_rounds is not None else 100_000,
        )
        self.metrics.rounds += report.rounds
        self.metrics.protocol_rounds[protocol] = (
            self.metrics.protocol_rounds.get(protocol, 0) + report.rounds
        )
        self.metrics.messages += report.payload_messages
        self.metrics.total_bits += report.payload_bits
        self.metrics.max_message_bits = max(
            self.metrics.max_message_bits, report.max_payload_bits)
        self.virtual_time += report.virtual_time
        self.envelopes += report.envelopes
        return RunResult(outputs=report.outputs, rounds=report.rounds,
                         all_finished=report.all_finished)

    def global_check(self) -> None:
        self.metrics.record_global_check()

    # observability surface of the Network duck type: always unobserved
    def wants(self, kind: Any) -> bool:
        return False

    def emit(self, event: Any) -> None:
        pass

    def observer_for(self, kind: Any) -> None:
        return None
